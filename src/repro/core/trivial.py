"""The deterministic ``n``-round algorithm (Section 3, success-probability note).

"Balls try all bins one by one, in arbitrary order (which may be
different for each ball); bins use threshold ``ceil(m/n)`` in each
round."  Every ball is allocated within ``n`` rounds *deterministically*:
a bin's fullness is monotone, so a ball rejected by every bin would
imply all bins full — i.e. ``n * ceil(m/n) >= m`` balls placed while one
remains, a contradiction.

The paper invokes this algorithm for the regime ``n < log log(m/n)``
where the w.h.p. guarantees of ``A_heavy`` (stated in terms of ``n``)
are vacuous; see :mod:`repro.core.combined`.

Implementation: ball ``b`` visits bin ``(b + r) mod n`` in round ``r``
(staggered orders spread contention); fully vectorized per round.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.api.spec import register_allocator
from repro.fastpath.roundstate import RoundState
from repro.result import AllocationResult
from repro.utils.seeding import RngFactory
from repro.utils.validation import ensure_m_n
from repro.workloads import bind_workload

__all__ = ["run_trivial"]


@register_allocator(
    "trivial",
    summary="deterministic n-round algorithm, max load ceil(m/n)",
    paper_ref="Section 3",
    kernel_backed=True,
    workload_capable=True,
)
def run_trivial(
    m: int,
    n: int,
    *,
    seed=None,
    threshold: Optional[int] = None,
    workload=None,
) -> AllocationResult:
    """Deterministically allocate with max load ``ceil(m/n)`` in <= n rounds.

    Parameters
    ----------
    m, n:
        Instance size (any ``m >= 1``, ``n >= 1``).
    seed:
        Only used for the bins' arbitrary accept tie-breaking; the
        round/load guarantees are deterministic regardless.
    threshold:
        Override the per-bin cap (default ``ceil(m/n)``).  Must satisfy
        ``threshold * n >= m`` or the run cannot complete.
    workload:
        Optional :class:`repro.workloads.Workload` (or spec string).
        The capacity profile scales the per-bin cap (total capacity
        must still cover ``m``) and ball weights feed the weighted-load
        statistics.  The contact rule is deterministic, so a choice
        distribution is structurally inapplicable (recorded in
        ``extra["workload"]``).  The ``n``-round completion argument
        survives heterogeneous caps: a ball rejected everywhere would
        imply every bin full, i.e. total capacity ``>= m`` balls placed
        while one remains.
    """
    m, n = ensure_m_n(m, n)
    cap = threshold if threshold is not None else math.ceil(m / n)
    factory = RngFactory(seed)
    wl = bind_workload(workload, m, n, factory)
    caps = wl.capacities(cap)
    total_capacity = int(caps.sum()) if isinstance(caps, np.ndarray) else cap * n
    if total_capacity < m:
        raise ValueError(
            f"threshold {cap} gives total capacity {total_capacity} < m={m}"
        )
    accept_rng = factory.stream("trivial", "accept")

    state = RoundState(m, n, weights=wl.weights)
    while state.active_count > 0:
        if state.rounds >= n:  # impossible by the monotonicity argument
            raise RuntimeError(
                "trivial algorithm exceeded n rounds; invariant violated"
            )
        # Protocol policy: ball b deterministically visits bin (b + r)
        # mod n; bins cap at the fixed threshold (workload-scaled).
        targets = (state.active + state.rounds) % n
        batch = state.sample_contacts(targets=targets)
        decision = state.group_and_accept(batch, caps - state.loads, accept_rng)
        state.commit_and_revoke(batch, decision, threshold=cap)

    extra: dict = {"threshold": cap}
    workload_record = wl.extra_record(
        state.weighted_loads,
        inapplicable=(("choice",) if wl.pvals is not None else ()),
    )
    if workload_record is not None:
        extra["workload"] = workload_record

    return AllocationResult(
        algorithm="trivial",
        m=m,
        n=n,
        loads=state.loads,
        rounds=state.rounds,
        metrics=state.metrics,
        total_messages=state.total_messages,
        seed_entropy=factory.root_entropy,
        extra=extra,
    )
