"""ASCII figure rendering for the F-series experiments.

The paper's "figures" are reproduced as terminal plots so the harness
has zero plotting dependencies and the archived EXPERIMENTS.md stays
plain text.  Two chart types cover all the series we report:

* :func:`ascii_chart` — one or more named series over a shared x axis,
  rendered on a log or linear y scale;
* :func:`ascii_histogram` — a load-distribution bar chart.

These are deliberately small: axes, markers, a legend — enough to see a
doubly-exponential decay or a square-root growth at a glance.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["ascii_chart", "ascii_histogram"]

_MARKERS = "*o+x#@%&"


def _format_tick(value: float) -> str:
    if value == 0:
        return "0"
    if abs(value) >= 10_000 or abs(value) < 0.01:
        return f"{value:.1e}"
    if abs(value) >= 100:
        return f"{value:.0f}"
    return f"{value:.2f}"


def ascii_chart(
    x: Sequence[float],
    series: Mapping[str, Sequence[float]],
    *,
    title: str = "",
    width: int = 64,
    height: int = 18,
    log_y: bool = False,
    x_label: str = "x",
) -> str:
    """Render named series over a shared x axis as an ASCII chart.

    Parameters
    ----------
    x:
        Shared x coordinates (rendered on a linear index axis — the
        callers pass round indices or exponents, which are already the
        natural scale).
    series:
        Mapping of series name to y values (same length as ``x``).
        Missing values may be passed as ``float("nan")``.
    title, x_label:
        Labels.
    width, height:
        Plot area size in characters.
    log_y:
        Log-10 y axis (requires positive values; NaNs are skipped).
    """
    if not series:
        raise ValueError("need at least one series")
    n_points = len(x)
    for name, ys in series.items():
        if len(ys) != n_points:
            raise ValueError(
                f"series {name!r} has {len(ys)} points, expected {n_points}"
            )
    if n_points < 2:
        raise ValueError("need at least 2 x points")

    # Collect finite plotted values for the y range.
    values = []
    for ys in series.values():
        for v in ys:
            if v is None or (isinstance(v, float) and math.isnan(v)):
                continue
            if log_y and v <= 0:
                continue
            values.append(math.log10(v) if log_y else float(v))
    if not values:
        raise ValueError("no finite values to plot")
    y_min, y_max = min(values), max(values)
    if y_max == y_min:
        y_max = y_min + 1.0

    grid = [[" "] * width for _ in range(height)]
    for s_index, (name, ys) in enumerate(series.items()):
        marker = _MARKERS[s_index % len(_MARKERS)]
        for i, v in enumerate(ys):
            if v is None or (isinstance(v, float) and math.isnan(v)):
                continue
            if log_y and v <= 0:
                continue
            yv = math.log10(v) if log_y else float(v)
            col = round(i * (width - 1) / (n_points - 1))
            row = round((y_max - yv) * (height - 1) / (y_max - y_min))
            grid[row][col] = marker

    lines = []
    if title:
        lines.append(title)
    top_label = _format_tick(10**y_max if log_y else y_max)
    bottom_label = _format_tick(10**y_min if log_y else y_min)
    label_width = max(len(top_label), len(bottom_label))
    for r, row in enumerate(grid):
        if r == 0:
            prefix = top_label.rjust(label_width)
        elif r == height - 1:
            prefix = bottom_label.rjust(label_width)
        else:
            prefix = " " * label_width
        lines.append(f"{prefix} |{''.join(row)}")
    axis = "-" * width
    lines.append(f"{' ' * label_width} +{axis}")
    x_left = _format_tick(float(x[0]))
    x_right = _format_tick(float(x[-1]))
    padding = width - len(x_left) - len(x_right)
    lines.append(
        f"{' ' * label_width}  {x_left}{' ' * max(padding, 1)}{x_right}"
        f"  ({x_label})"
    )
    legend = "   ".join(
        f"{_MARKERS[i % len(_MARKERS)]} {name}"
        for i, name in enumerate(series)
    )
    lines.append(f"{' ' * label_width}  legend: {legend}"
                 + ("   [log y]" if log_y else ""))
    return "\n".join(lines)


def ascii_histogram(
    counts: Mapping[object, int],
    *,
    title: str = "",
    width: int = 50,
) -> str:
    """Render labelled counts as horizontal bars."""
    if not counts:
        raise ValueError("need at least one bucket")
    peak = max(counts.values())
    if peak < 0:
        raise ValueError("counts must be non-negative")
    label_width = max(len(str(k)) for k in counts)
    lines = [title] if title else []
    for key, value in counts.items():
        if value < 0:
            raise ValueError("counts must be non-negative")
        bar = "#" * (round(value * width / peak) if peak else 0)
        lines.append(f"{str(key).rjust(label_width)} | {bar} {value}")
    return "\n".join(lines)
