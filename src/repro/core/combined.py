"""The combined algorithm (Section 3, "A Note on Success Probability").

``A_heavy`` succeeds with probability ``1 - n^{-c}`` — vacuous when
``n`` is a small constant.  The paper's fix: when
``n < log log(m/n)``, run the deterministic trivial algorithm instead
(``n`` rounds, perfectly balanced), which is *within the round budget*
in exactly that regime.  The combination succeeds with probability
``1 - o(1)`` over the entire parameter range.

:func:`run_combined` implements the dispatch and records which branch
ran; experiment T8 exercises both sides of the boundary.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.api.spec import (
    register_allocator,
    register_dynamic,
    register_replicator,
)
from repro.core.heavy import (
    HeavyConfig,
    dynamic_heavy,
    replicate_heavy,
    run_heavy,
)
from repro.core.trivial import replicate_trivial, run_trivial
from repro.dynamic.placement import DynamicPlacement
from repro.result import AllocationResult
from repro.utils.logstar import loglog2
from repro.utils.validation import ensure_m_n

__all__ = [
    "dynamic_combined",
    "replicate_combined",
    "run_combined",
    "should_use_trivial",
]


def should_use_trivial(m: int, n: int) -> bool:
    """The paper's dispatch test: ``n < log log(m/n)``.

    In this regime ``n`` rounds fit inside the ``O(log log(m/n))``
    budget and the deterministic algorithm's perfect balance beats any
    probabilistic guarantee that degrades with small ``n``.
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    return n < loglog2(m / n)


@register_allocator(
    "combined",
    summary="Section 3 dispatcher: trivial for tiny n, else A_heavy",
    paper_ref="Section 3",
    modes=("perball", "aggregate", "engine"),
    kernel_backed=True,
    workload_capable=True,
    config_type=HeavyConfig,
)
def run_combined(
    m: int,
    n: int,
    *,
    seed=None,
    config: Optional[HeavyConfig] = None,
    mode: str = "perball",
    workload=None,
) -> AllocationResult:
    """Run the combined algorithm of Section 3.

    Dispatches to :func:`~repro.core.trivial.run_trivial` when
    ``n < log log(m/n)`` and to :func:`~repro.core.heavy.run_heavy`
    otherwise.  The chosen branch is recorded in
    ``result.extra["branch"]``.  ``workload`` is forwarded to the
    chosen branch (see each branch's docstring for its workload
    semantics; engine mode supports the uniform workload only).
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    if should_use_trivial(m, n):
        result = run_trivial(m, n, seed=seed, workload=workload)
        result.extra["branch"] = "trivial"
    else:
        result = run_heavy(
            m,
            n,
            seed=seed,
            mode=mode,  # type: ignore[arg-type]
            config=config or HeavyConfig(),
            workload=workload,
        )
        result.extra["branch"] = "heavy"
    result.algorithm = "combined"
    return result


@register_replicator("combined", equivalent_mode="aggregate")
def replicate_combined(
    m: int,
    n: int,
    *,
    trials: int,
    seed_seqs,
    workload=None,
    config: Optional[HeavyConfig] = None,
) -> list[AllocationResult]:
    """Run ``trials`` seeded replications of the combined algorithm.

    The Section 3 dispatch test depends only on ``(m, n)``, so every
    trial takes the same branch: the batch delegates wholesale to the
    trivial or heavy trial-batched engine.  Trial ``t`` is
    bitwise-identical to ``run_combined(m, n, seed=seed_seqs[t],
    mode="aggregate", ...)``.
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    if should_use_trivial(m, n):
        results = replicate_trivial(
            m, n, trials=trials, seed_seqs=seed_seqs, workload=workload
        )
        branch = "trivial"
    else:
        results = replicate_heavy(
            m,
            n,
            trials=trials,
            seed_seqs=seed_seqs,
            workload=workload,
            config=config or HeavyConfig(),
        )
        branch = "heavy"
    for result in results:
        result.extra["branch"] = branch
        result.algorithm = "combined"
    return results


def _waterfill(
    initial: np.ndarray, k: int, cap: int
) -> tuple[np.ndarray, int]:
    """Deterministically fill ``k`` balls into the least-loaded bins.

    The dynamic analog of the trivial algorithm: every bin caps at
    ``cap`` and balls go to the lowest bins first (ties broken by bin
    index, so the fill is a pure function of the inputs).  Returns the
    new total loads and the number of balls that did not fit.
    """
    loads = initial.astype(np.int64, copy=True)
    free = np.maximum(cap - loads, 0)
    fits = int(min(k, free.sum()))
    unplaced = k - fits
    if fits == 0:
        return loads, unplaced

    def filled(level: int) -> int:
        # Balls absorbed when the water reaches ``level`` (<= cap, so
        # the per-bin cap never binds below it).
        return int(np.maximum(level - loads, 0).sum())

    # Smallest level whose fill covers the cohort (binary search), then
    # the partial top layer goes to the lowest-indexed bins at it.
    lo, hi = int(loads.min()) + 1, cap
    while lo < hi:
        mid = (lo + hi) // 2
        if filled(mid) >= fits:
            hi = mid
        else:
            lo = mid + 1
    level = lo
    base = np.maximum(level - 1 - loads, 0)
    new = loads + base
    leftover = fits - int(base.sum())
    if leftover > 0:
        eligible = np.flatnonzero(new == level - 1)
        new[eligible[:leftover]] += 1
    return new, unplaced


@register_dynamic("combined")
def dynamic_combined(
    m: int,
    n: int,
    *,
    initial_loads: np.ndarray,
    seed=None,
    workload=None,
    mode: str = "aggregate",
    config: Optional[HeavyConfig] = None,
    drain_settle: bool = False,
) -> DynamicPlacement:
    """Place a cohort with the Section 3 dispatch under residual loads.

    The dispatch test runs on the *population* (residents plus
    cohort): for ``n < log log(total/n)`` the deterministic trivial
    analog places the cohort by water-filling the least-loaded bins up
    to ``ceil(total/n)`` (zero randomness, ``<= n`` rounds); otherwise
    the cohort runs the incremental ``A_heavy`` placement
    (:func:`~repro.core.heavy.dynamic_heavy`).  The branch taken is
    recorded in ``extra["branch"]``.
    """
    initial = np.asarray(initial_loads, dtype=np.int64)
    if initial.shape != (n,):
        raise ValueError(
            f"initial_loads must have shape ({n},), got {initial.shape}"
        )
    if m == 0:
        return DynamicPlacement(
            loads=initial.copy(),
            placed=0,
            unplaced=0,
            rounds=0,
            total_messages=0,
        )
    total = m + int(initial.sum())
    ensure_m_n(total, n, require_heavy=True)
    if should_use_trivial(total, n):
        cap = math.ceil(total / n)
        loads, unplaced = _waterfill(initial, m, cap)
        # Message model: the trivial algorithm is one request per ball
        # per visited bin; the deterministic fill charges the lower
        # bound of one commit message per placed ball.
        placement = DynamicPlacement(
            loads=loads,
            placed=m - unplaced,
            unplaced=unplaced,
            rounds=min(n, m - unplaced) if m > unplaced else 0,
            total_messages=m - unplaced,
            extra={"branch": "trivial", "threshold": cap},
        )
        return placement
    placement = dynamic_heavy(
        m,
        n,
        initial_loads=initial,
        seed=seed,
        workload=workload,
        mode=mode,  # type: ignore[arg-type]
        config=config or HeavyConfig(),
        drain_settle=drain_settle,
    )
    placement.extra["branch"] = "heavy"
    return placement
