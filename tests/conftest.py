"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest


@pytest.fixture
def rng() -> np.random.Generator:
    """A fixed-seed generator for deterministic tests."""
    return np.random.default_rng(12345)


@pytest.fixture(params=[(1024, 16), (4096, 64), (2048, 128)])
def heavy_instance(request) -> tuple[int, int]:
    """(m, n) pairs in the heavily loaded regime (m = n * ratio)."""
    n, ratio = request.param
    return n * ratio, n


@pytest.fixture
def small_instance() -> tuple[int, int]:
    """A small instance usable with the object-level engine."""
    return 2000, 32
