"""Tests for repro.analysis.chernoff (Lemma 1)."""

import math

import numpy as np
import pytest

from repro.analysis.chernoff import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    deviation_for_failure_probability,
    underload_probability_bound,
)


class TestTailBounds:
    def test_lower_tail_formula(self):
        assert chernoff_lower_tail(100, 0.5) == pytest.approx(
            math.exp(-0.25 * 100 / 2)
        )

    def test_upper_tail_formula(self):
        assert chernoff_upper_tail(100, 0.5) == pytest.approx(
            math.exp(-0.25 * 100 / 3)
        )

    def test_bounds_in_unit_interval(self):
        for mu in (1, 10, 1000):
            for delta in (0.01, 0.5, 0.99):
                assert 0 < chernoff_lower_tail(mu, delta) <= 1
                assert 0 < chernoff_upper_tail(mu, delta) <= 1

    def test_monotone_in_mu(self):
        assert chernoff_lower_tail(1000, 0.1) < chernoff_lower_tail(10, 0.1)

    def test_monotone_in_delta(self):
        assert chernoff_lower_tail(100, 0.9) < chernoff_lower_tail(100, 0.1)

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.5, 2.0])
    def test_invalid_delta(self, delta):
        with pytest.raises(ValueError):
            chernoff_lower_tail(10, delta)

    def test_negative_mu(self):
        with pytest.raises(ValueError):
            chernoff_upper_tail(-1, 0.5)

    def test_bound_is_valid_upper_bound_empirically(self, rng):
        # Binomial(2000, 0.05), mu = 100: the bound must dominate the
        # empirical lower-tail frequency.
        mu, trials = 100.0, 20000
        samples = rng.binomial(2000, 0.05, size=trials)
        for delta in (0.2, 0.4):
            freq = np.mean(samples < (1 - delta) * mu)
            assert freq <= chernoff_lower_tail(mu, delta) + 0.01


class TestDeviationInversion:
    def test_matches_lemma1_forms(self):
        # failure 1/m with lower tail gives sqrt(2 mu log m).
        mu, m = 500.0, 1000
        d = deviation_for_failure_probability(mu, 1 / m, tail="lower")
        assert d == pytest.approx(math.sqrt(2 * mu * math.log(m)))
        d_up = deviation_for_failure_probability(mu, 1 / m, tail="upper")
        assert d_up == pytest.approx(math.sqrt(3 * mu * math.log(m)))

    def test_roundtrip(self):
        mu = 200.0
        d = deviation_for_failure_probability(mu, 1e-3, tail="lower")
        delta = d / mu
        assert chernoff_lower_tail(mu, delta) == pytest.approx(1e-3)

    def test_invalid_tail(self):
        with pytest.raises(ValueError):
            deviation_for_failure_probability(10, 0.1, tail="both")

    @pytest.mark.parametrize("failure", [0.0, 1.0, -1])
    def test_invalid_failure(self, failure):
        with pytest.raises(ValueError):
            deviation_for_failure_probability(10, failure)


class TestUnderloadBound:
    def test_claim1_formula(self):
        # exp(-(mtilde/n)^(1/3)/2)
        assert underload_probability_bound(8000, 1000) == pytest.approx(
            math.exp(-(8.0 ** (1 / 3)) / 2)
        )

    def test_decreases_with_load(self):
        values = [underload_probability_bound(n * r, 1000) for r in (2, 8, 64, 512) for n in (1000,)]
        assert values == sorted(values, reverse=True)

    def test_zero_balls_gives_one(self):
        assert underload_probability_bound(0, 10) == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            underload_probability_bound(-1, 10)
        with pytest.raises(ValueError):
            underload_probability_bound(10, 0)

    def test_bound_dominates_empirical_frequency(self, rng):
        # Round i of A_heavy with mtilde/n = 64: capacity T_i - T_{i-1}
        # = mtilde/n - (mtilde/n)^(2/3) = 48; measure Pr[X < 48].
        n, mtilde = 500, 500 * 64
        need = 64 - 16  # (64)^(2/3) = 16
        freq = 0
        trials = 200
        for _ in range(trials):
            counts = rng.multinomial(mtilde, np.full(n, 1 / n))
            freq += (counts < need).sum()
        freq /= trials * n
        assert freq <= underload_probability_bound(mtilde, n)
