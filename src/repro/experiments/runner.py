"""Repetition helpers: run an algorithm over seeds, aggregate metrics."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.analysis.stats import ConfidenceInterval, mean_confidence_interval
from repro.result import AllocationResult

__all__ = ["repeat_gaps", "repeat_metric", "seed_list"]


def seed_list(base_seed: int, count: int) -> list[int]:
    """Deterministic distinct seeds for repeated runs."""
    if count < 1:
        raise ValueError(f"count must be >= 1, got {count}")
    return [base_seed + 1009 * k for k in range(count)]


def repeat_metric(
    run: Callable[[int], AllocationResult],
    *,
    metric: Callable[[AllocationResult], float],
    seeds: Sequence[int],
) -> ConfidenceInterval:
    """Run ``run(seed)`` for each seed and aggregate ``metric``."""
    values = [metric(run(seed)) for seed in seeds]
    return mean_confidence_interval(values)


def repeat_gaps(
    run: Callable[[int], AllocationResult],
    seeds: Sequence[int],
) -> tuple[ConfidenceInterval, float]:
    """Mean gap CI and worst observed gap over the seeds."""
    gaps = [run(seed).gap for seed in seeds]
    return mean_confidence_interval(gaps), float(np.max(gaps))
