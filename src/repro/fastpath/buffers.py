"""Memory policy for the kernel layer: narrow dtypes and a reusable arena.

Two small objects let the round kernels run at hardware limits without
changing a single drawn value:

* :class:`DtypePolicy` — which integer/float widths the kernel arrays
  use.  The default (:meth:`DtypePolicy.wide`) is the historical int64
  layout, bitwise-unchanged.  :meth:`DtypePolicy.narrow` switches bin
  indices, ball ids, and per-bin counts to int32 wherever the instance
  provably fits (``n < 2**31`` bins, ``m < 2**31`` balls, per-bin loads
  below int32 range), halving the footprint of the dominant arrays.
  Narrowing is *value-preserving by construction*: every random draw
  still happens at the historical width (``rng.integers(...,
  dtype=int64)``, ``rng.random()`` float64) and only the *storage* of
  the resulting values is narrowed — so the RNG streams, the accepted
  sets, and every load/message/metric are identical to the wide run
  (the dtype-equivalence tests pin this).  ``float32`` weighted-load
  accumulation is a separate opt-in that *does* change float rounding
  and is therefore never chosen automatically.

* :class:`RoundBuffers` — a grow-only arena of named scratch arrays so
  the three kernel steps stop allocating fresh ``O(active)`` arrays
  every round.  A protocol loop (or a long-lived caller such as the
  dynamic epoch runner and :class:`repro.service.AllocatorService`)
  creates one arena and threads it through every round/epoch/flush;
  each kernel call borrows prefix views of the persistent buffers
  instead of churning the allocator.  Borrowed views are overwritten
  in full by their producers, so reuse never leaks stale values.

Chunked sampling (see :func:`repro.fastpath.sampling.fill_choices`)
composes with the arena: random draws happen through a small bounded
temporary tile (``chunk_size`` elements) and land directly in arena
storage, which is what caps the transient footprint of an
``m = 10**8`` per-ball round to the arena itself plus one tile.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["DEFAULT_CHUNK", "DtypePolicy", "RoundBuffers"]

#: Default sampling tile: 2**22 elements (32 MB of int64 draws) — large
#: enough that per-tile numpy dispatch overhead is negligible, small
#: enough that the transient footprint of a chunked round is bounded by
#: the persistent arena, not the draw.
DEFAULT_CHUNK = 1 << 22

#: Largest exclusive value an int32 index/count can represent.
_INT32_LIMIT = 2**31


@dataclass(frozen=True)
class DtypePolicy:
    """Array widths for one kernel run.

    Attributes
    ----------
    index_dtype:
        Dtype of bin indices and active-ball ids (``choices``,
        ``active``, sorted-bin scratch).
    load_dtype:
        Dtype of the per-bin load vector.
    weight_dtype:
        Dtype of the weighted-load accumulator.  ``float32`` is an
        explicit opt-in: it halves the accumulator but changes float
        rounding, so it is never part of :meth:`narrow`.
    """

    index_dtype: np.dtype = np.dtype(np.int64)
    load_dtype: np.dtype = np.dtype(np.int64)
    weight_dtype: np.dtype = np.dtype(np.float64)

    @classmethod
    def wide(cls) -> "DtypePolicy":
        """The historical int64/float64 layout (the default)."""
        return cls()

    @classmethod
    def narrow(
        cls, m: int, n: int, *, float32_weights: bool = False
    ) -> "DtypePolicy":
        """int32 indices/counts wherever the instance provably fits.

        Bin indices need ``n < 2**31``; ball ids need ``m < 2**31``;
        per-bin loads are bounded by ``m`` (every ball lands somewhere),
        so ``m < 2**31`` also covers the load vector.  Instances beyond
        either bound keep the wide dtype for that axis — narrowing is
        per-axis, never all-or-nothing.
        """
        fits_ids = 0 <= m < _INT32_LIMIT
        fits_bins = 0 < n < _INT32_LIMIT
        return cls(
            index_dtype=np.dtype(
                np.int32 if fits_ids and fits_bins else np.int64
            ),
            load_dtype=np.dtype(np.int32 if fits_ids else np.int64),
            weight_dtype=np.dtype(
                np.float32 if float32_weights else np.float64
            ),
        )

    @property
    def is_wide(self) -> bool:
        return (
            self.index_dtype == np.dtype(np.int64)
            and self.load_dtype == np.dtype(np.int64)
            and self.weight_dtype == np.dtype(np.float64)
        )


class RoundBuffers:
    """Grow-only arena of named scratch arrays for the kernel steps.

    ``take(name, size, dtype)`` returns a C-contiguous prefix view of a
    persistent buffer, growing it when a larger request arrives (with
    1.25x headroom so a shrinking active set never reallocates).  The
    view's contents are unspecified — every borrower overwrites it in
    full before reading.  A request under a different dtype for the
    same name replaces the buffer (dtype changes mid-run do not happen
    on the kernel paths; this keeps the arena safe for ad-hoc use).

    One arena serves one run at a time: the kernels borrow and release
    within a single round, so sharing an arena *across* concurrent
    states would alias scratch space.  Sequential reuse — round after
    round, epoch after epoch, flush after flush — is the point.
    """

    def __init__(self, chunk_size: int = DEFAULT_CHUNK) -> None:
        if chunk_size < 1:
            raise ValueError(f"chunk_size must be >= 1, got {chunk_size}")
        self.chunk_size = int(chunk_size)
        self._buffers: dict[str, np.ndarray] = {}

    def take(self, name: str, size: int, dtype) -> np.ndarray:
        """Borrow a ``size``-element view of the named buffer."""
        if size < 0:
            raise ValueError(f"size must be >= 0, got {size}")
        dt = np.dtype(dtype)
        buf = self._buffers.get(name)
        if buf is None or buf.dtype != dt or buf.size < size:
            capacity = max(size + size // 4, 1)
            buf = np.empty(capacity, dtype=dt)
            self._buffers[name] = buf
        return buf[:size]

    @property
    def nbytes(self) -> int:
        """Total bytes currently held by the arena."""
        return sum(buf.nbytes for buf in self._buffers.values())

    def clear(self) -> None:
        """Drop every buffer (frees the arena's memory)."""
        self._buffers.clear()
