"""Algorithm ``A_heavy`` — the paper's main contribution (Theorem 1/6).

Structure (Section 3):

* **Phase 1** (threshold rounds): every unallocated ball contacts one
  uniformly random bin; bins accept up to ``T_i - ℓ`` requests with the
  oblivious schedule ``T_i = m/n - (m̃_i/n)^{2/3}``,
  ``m̃_{i+1} = m̃_i^{2/3} n^{1/3}``.  The phase runs until the estimate
  drops to ``m̃ <= stop_factor * n`` — ``O(log log(m/n))`` rounds —
  after which ``O(n)`` balls remain w.h.p. (Claims 1-4).
* **Phase 2** (handoff): remaining balls run ``A_light`` over ``g``
  virtual bins per real bin (Theorem 5), adding at most ``2 g = O(1)``
  load per real bin in ``log* n + O(1)`` rounds.

Execution modes:

* ``"perball"`` — exact vectorized semantics with full per-ball message
  accounting (default; ``m`` up to ~10^7);
* ``"aggregate"`` — per-bin multinomial request counts, ``O(n)``/round;
  identical in distribution for loads/rounds/per-bin messages, but
  per-ball counters are not tracked (``m`` up to ~10^12).  Phase 2
  always runs per-ball (only ``O(n)`` balls remain).
* ``"engine"`` — the object-level reference engine
  (:mod:`repro.core.heavy_agents`); small instances only.

The generic :func:`run_threshold_protocol` underlies both ``A_heavy``
(paper schedule) and the Section 1.1 negative example (fixed schedule,
experiment F2) and the ablation schedules (experiment A1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from repro.api.spec import register_allocator
from repro.core.thresholds import PaperSchedule, ThresholdSchedule
from repro.fastpath.sampling import (
    grouped_accept,
    multinomial_occupancy,
    sample_uniform_choices,
)
from repro.light.lw16 import LightConfig
from repro.light.virtual import run_light_on_virtual_bins
from repro.result import AllocationResult
from repro.simulation.metrics import MessageCounter, RoundMetrics, RunMetrics
from repro.utils.seeding import RngFactory
from repro.utils.validation import ensure_m_n

__all__ = [
    "HeavyConfig",
    "run_heavy",
    "run_threshold_protocol",
    "ThresholdPhaseOutcome",
]

Mode = Literal["perball", "aggregate", "engine"]


@dataclass(frozen=True)
class HeavyConfig:
    """Tunables for ``A_heavy``.

    Attributes
    ----------
    stop_factor:
        Phase 1 ends when ``m̃_i <= stop_factor * n`` (paper: the loop
        exits once the estimate is ``O(n)``; 2 matches Claim 3's ``i_1``).
    light:
        Configuration of the phase-2 ``A_light`` run.
    max_rounds:
        Safety cap on total rounds.
    track_per_ball:
        Maintain per-ball message counters in per-ball mode (arrays of
        size ``m``; disable for very large ``m`` to save memory).
    """

    stop_factor: float = 2.0
    light: LightConfig = LightConfig()
    max_rounds: int = 100_000
    track_per_ball: bool = True


@dataclass
class ThresholdPhaseOutcome:
    """Result of running just the threshold rounds (phase 1)."""

    loads: np.ndarray
    remaining: int
    remaining_ids: Optional[np.ndarray]  # None in aggregate mode
    rounds: int
    metrics: RunMetrics
    counter: Optional[MessageCounter]
    total_messages: int
    thresholds: list[int]


def run_threshold_protocol(
    m: int,
    n: int,
    schedule: ThresholdSchedule,
    *,
    rng_factory: Optional[RngFactory] = None,
    mode: Mode = "perball",
    max_rounds: Optional[int] = None,
    track_per_ball: bool = True,
    stop_when_empty: bool = True,
) -> ThresholdPhaseOutcome:
    """Run the symmetric threshold protocol under any oblivious schedule.

    Each round: active balls contact one uniform bin; bins accept up to
    ``schedule.threshold(i) - load``.  The run ends when the schedule's
    :meth:`~repro.core.thresholds.ThresholdSchedule.phase1_rounds` are
    exhausted, all balls are allocated (if ``stop_when_empty``), or
    ``max_rounds`` is hit — whichever comes first.

    Message accounting counts one request per active ball per round plus
    one accept per allocated ball; rejections are silent, matching the
    paper's protocol (Theorem 6 counts only sent messages).
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    factory = rng_factory or RngFactory()
    rng = factory.stream("threshold", "choices")
    accept_rng = factory.stream("threshold", "accept")

    planned = schedule.phase1_rounds()
    cap_rounds = max_rounds if max_rounds is not None else 100_000
    if planned is not None:
        cap_rounds = min(cap_rounds, planned)

    loads = np.zeros(n, dtype=np.int64)
    metrics = RunMetrics(m, n)
    counter = (
        MessageCounter(m, n) if (mode == "perball" and track_per_ball) else None
    )
    total_messages = 0
    thresholds: list[int] = []

    if mode == "perball":
        active = np.arange(m, dtype=np.int64)
    elif mode == "aggregate":
        active_count = m
    else:
        raise ValueError(f"mode must be 'perball' or 'aggregate', got {mode!r}")

    round_no = 0
    while round_no < cap_rounds:
        m_i = int(active.size) if mode == "perball" else active_count
        if stop_when_empty and m_i == 0:
            break
        threshold = schedule.threshold(round_no)
        thresholds.append(threshold)
        capacity = np.maximum(threshold - loads, 0)

        if mode == "perball":
            choices = sample_uniform_choices(m_i, n, rng)
            accepted_mask = grouped_accept(choices, capacity, accept_rng)
            accepted_bins = choices[accepted_mask]
            np.add.at(loads, accepted_bins, 1)
            accepts = int(accepted_mask.sum())
            if counter is not None:
                counter.record_bulk_ball_to_bin(choices, active)
                counter.record_bulk_bin_to_ball(
                    accepted_bins, active[accepted_mask]
                )
            active = active[~accepted_mask]
            m_next = int(active.size)
        else:
            counts = multinomial_occupancy(m_i, n, rng)
            accepted_per_bin = np.minimum(counts, capacity)
            loads += accepted_per_bin
            accepts = int(accepted_per_bin.sum())
            active_count = m_i - accepts
            m_next = active_count

        total_messages += m_i + accepts
        metrics.add_round(
            RoundMetrics(
                round_no=round_no,
                unallocated_start=m_i,
                requests_sent=m_i,
                accepts_sent=accepts,
                rejects_sent=0,
                commits=accepts,
                unallocated_end=m_next,
                max_load=int(loads.max(initial=0)),
                threshold=float(threshold),
            )
        )
        round_no += 1

    remaining = int(active.size) if mode == "perball" else active_count
    return ThresholdPhaseOutcome(
        loads=loads,
        remaining=remaining,
        remaining_ids=active if mode == "perball" else None,
        rounds=round_no,
        metrics=metrics,
        counter=counter,
        total_messages=total_messages,
        thresholds=thresholds,
    )


@register_allocator(
    "heavy",
    summary="A_heavy: adaptive thresholds, then A_light on stragglers",
    paper_ref="Theorem 1",
    aliases=("a_heavy",),
    modes=("perball", "aggregate", "engine"),
    config_type=HeavyConfig,
)
def run_heavy(
    m: int,
    n: int,
    *,
    seed=None,
    mode: Mode = "perball",
    config: HeavyConfig = HeavyConfig(),
    schedule: Optional[ThresholdSchedule] = None,
    handoff: bool = True,
) -> AllocationResult:
    """Allocate ``m`` balls into ``n`` bins with Algorithm ``A_heavy``.

    Parameters
    ----------
    m, n:
        Instance size; requires ``m >= n`` (heavily loaded regime; for
        ``m < n`` use :func:`repro.light.run_light` directly).
    seed:
        Reproducibility seed (int, SeedSequence, Generator, or None).
    mode:
        ``"perball"`` (exact, default), ``"aggregate"`` (``O(n)``/round,
        no per-ball counters), or ``"engine"`` (object-level reference).
    config:
        Algorithm tunables (stop factor, light-phase config, caps).
    schedule:
        Override the threshold schedule (default: the paper's
        :class:`~repro.core.thresholds.PaperSchedule`).  Used by the
        ablation experiments.
    handoff:
        Run phase 2 (``A_light``) on the leftover balls.  Disabling it
        (experiment A2) leaves stragglers unallocated and sets
        ``complete=False`` on the result.

    Returns
    -------
    AllocationResult
        With ``extra`` keys ``phase1_rounds``, ``phase2_rounds``,
        ``phase1_remaining`` (balls left for ``A_light``) and
        ``light_used_fallback``.
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    if mode == "engine":
        from repro.core.heavy_agents import run_heavy_engine

        return run_heavy_engine(
            m, n, seed=seed, config=config, schedule=schedule, handoff=handoff
        )
    factory = RngFactory(seed)
    sched = schedule or PaperSchedule(m, n, stop_factor=config.stop_factor)
    phase1 = run_threshold_protocol(
        m,
        n,
        sched,
        rng_factory=factory,
        mode=mode,
        max_rounds=config.max_rounds,
        track_per_ball=config.track_per_ball,
    )

    loads = phase1.loads.copy()
    total_messages = phase1.total_messages
    rounds = phase1.rounds
    extra: dict = {
        "phase1_rounds": phase1.rounds,
        "phase1_remaining": phase1.remaining,
        "thresholds": phase1.thresholds,
        "light_used_fallback": False,
        "phase2_rounds": 0,
    }
    counter = phase1.counter
    metrics = phase1.metrics

    unallocated = phase1.remaining
    if handoff and unallocated > 0:
        real_loads, light, vmap = run_light_on_virtual_bins(
            unallocated,
            n,
            seed=factory.stream("light"),
            config=config.light,
        )
        loads += real_loads
        rounds += light.rounds
        total_messages += light.total_messages
        extra["phase2_rounds"] = light.rounds
        extra["light_used_fallback"] = light.used_fallback
        extra["virtual_factor"] = vmap.factor
        # Merge per-round progress into the global metrics with offset
        # round numbers.
        for r in light.metrics.rounds:
            metrics.add_round(
                RoundMetrics(
                    round_no=phase1.rounds + r.round_no,
                    unallocated_start=r.unallocated_start,
                    requests_sent=r.requests_sent,
                    accepts_sent=r.accepts_sent,
                    rejects_sent=r.rejects_sent,
                    commits=r.commits,
                    unallocated_end=r.unallocated_end,
                    max_load=int(loads.max(initial=0)),
                )
            )
        if counter is not None and phase1.remaining_ids is not None:
            # Phase-2 messages by global ball id; bin receives are folded
            # through the virtual map (uniform over virtual bins means
            # uniform over real bins).
            ids = phase1.remaining_ids
            counter.ball_sent[ids] += light.ball_messages  # sends+receives folded
            counter.total += light.total_messages
            assigned_real = vmap.to_real(light.assignment)
            np.add.at(counter.bin_received, assigned_real, 1)
        unallocated = 0

    result = AllocationResult(
        algorithm="heavy" if schedule is None else f"threshold[{type(sched).__name__}]",
        m=m,
        n=n,
        loads=loads,
        rounds=rounds,
        metrics=metrics,
        messages=counter,
        total_messages=total_messages,
        complete=unallocated == 0,
        unallocated=unallocated,
        seed_entropy=factory.root_entropy,
        extra=extra,
    )
    return result
