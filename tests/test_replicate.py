"""Tests for the trial-batched replication engine and its API.

The engine's contract is *exact equivalence*: ``replicate(trials=T,
seed=s)`` must produce, per trial, bitwise the results of the
sequential per-seed loop (``allocate_many`` with the same root seed)
for every ``trial_batched`` spec, on the uniform workload and on a
skewed+weighted one.  Everything else — quantiles, CIs, fallbacks,
dispatch routing — is layered on top of that invariant.
"""

import json

import numpy as np
import pytest

import repro
from repro.api import (
    allocate_many,
    get_replicator,
    get_spec,
    list_allocators,
    replicate,
    sweep,
)

M, N, SEED, TRIALS = 20_000, 64, 11, 8

#: Every spec that must carry the trial_batched capability.
BATCHED_SPECS = ("heavy", "combined", "trivial", "single", "stemann")

#: The skewed + weighted scenario of the equivalence satellite.
WL = "zipf:1.1+geomw:0.5"


def metrics_rows(result):
    return [
        (r.round_no, r.unallocated_start, r.requests_sent, r.accepts_sent,
         r.commits, r.unallocated_end, r.max_load, r.threshold)
        for r in result.metrics.rounds
    ]


class TestRegistry:
    def test_expected_specs_are_trial_batched(self):
        for name in BATCHED_SPECS:
            spec = get_spec(name)
            assert spec.trial_batched, name
            assert "trial_batched" in spec.capabilities(), name
            assert get_replicator(name) is not None, name

    def test_non_batched_specs_unflagged(self):
        for spec in list_allocators():
            if spec.name in BATCHED_SPECS:
                continue
            assert not spec.trial_batched, spec.name
            assert get_replicator(spec.name) is None, spec.name

    def test_equivalent_modes(self):
        assert get_replicator("heavy").equivalent_mode == "aggregate"
        assert get_replicator("trivial").equivalent_mode is None


class TestEquivalence:
    """replicate(trials=T, seed=s) == allocate_many(repeats=T, seed=s)."""

    @pytest.mark.parametrize("name", BATCHED_SPECS)
    @pytest.mark.parametrize("workload", [None, WL])
    def test_matches_allocate_many_default(self, name, workload):
        opts = {"workload": workload} if workload else {}
        rep = replicate(name, M, N, trials=TRIALS, seed=SEED, **opts)
        many = allocate_many(
            name, M, N, repeats=TRIALS, seed=SEED, **opts
        )
        assert rep.batched
        for t in range(TRIALS):
            assert np.array_equal(rep.loads[t], many[t].loads), (name, t)
            assert rep.rounds[t] == many[t].rounds
            assert rep.total_messages[t] == many[t].total_messages
            assert rep.results[t].seed_entropy == many[t].seed_entropy

    @pytest.mark.parametrize("name", BATCHED_SPECS)
    @pytest.mark.parametrize("workload", [None, WL])
    def test_matches_sequential_loop_exactly(self, name, workload):
        """The substantive check: batched vs the true per-seed loop."""
        entry = get_replicator(name)
        opts = {"workload": workload} if workload else {}
        rep = replicate(name, M, N, trials=TRIALS, seed=SEED, **opts)
        seq = allocate_many(
            name,
            M,
            N,
            repeats=TRIALS,
            seed=SEED,
            mode=entry.equivalent_mode if entry.equivalent_mode else "auto",
            trial_batched=False,
            **opts,
        )
        assert rep.batched
        for t in range(TRIALS):
            s = seq[t]
            assert np.array_equal(rep.loads[t], s.loads), (name, t)
            assert rep.rounds[t] == s.rounds, (name, t)
            assert rep.total_messages[t] == s.total_messages, (name, t)
            assert rep.results[t].algorithm == s.algorithm
            assert rep.results[t].complete == s.complete
            assert metrics_rows(rep.results[t]) == metrics_rows(s), (name, t)
            b_wl = rep.results[t].extra.get("workload")
            s_wl = s.extra.get("workload")
            assert (b_wl is None) == (s_wl is None)
            if b_wl is not None:
                assert b_wl == s_wl, (name, t)

    def test_forced_sequential_replicate_matches_batched(self):
        rep = replicate("heavy", M, N, trials=4, seed=3)
        seq = replicate(
            "heavy", M, N, trials=4, seed=3, trial_batched=False
        )
        assert rep.batched and not seq.batched
        assert np.array_equal(rep.loads, seq.loads)
        assert np.array_equal(rep.rounds, seq.rounds)

    def test_options_forwarded(self):
        rep = replicate(
            "heavy", M, N, trials=4, seed=3, stop_factor=3.0
        )
        seq = allocate_many(
            "heavy",
            M,
            N,
            repeats=4,
            seed=3,
            mode="aggregate",
            trial_batched=False,
            stop_factor=3.0,
        )
        assert rep.batched
        for t in range(4):
            assert np.array_equal(rep.loads[t], seq[t].loads)


class TestDispatchRouting:
    def test_explicit_perball_mode_runs_sequentially(self):
        rep = replicate("heavy", M, N, trials=2, seed=1, mode="perball")
        assert not rep.batched and rep.mode == "perball"
        direct = repro.run_heavy(
            M, N, seed=repro.api.spawn_seeds(1, 2)[0], mode="perball"
        )
        assert np.array_equal(rep.loads[0], direct.loads)

    def test_fallback_spec_runs_sequentially(self):
        rep = replicate("light", 100, N, trials=3, seed=1)
        assert not rep.batched
        assert rep.trials == 3 and rep.all_complete

    def test_trial_batched_true_requires_engine(self):
        with pytest.raises(ValueError, match="trial-batched"):
            replicate("light", 100, N, trials=2, seed=1, trial_batched=True)
        with pytest.raises(ValueError, match="cannot"):
            replicate(
                "heavy", M, N, trials=2, seed=1, mode="perball",
                trial_batched=True,
            )

    def test_allocate_many_trial_batched_true_validates(self):
        with pytest.raises(ValueError, match="no trial-batched engine"):
            allocate_many(
                "light", 100, N, repeats=2, seed=1, trial_batched=True
            )

    def test_allocate_many_mode_none_keeps_runner_default(self):
        # mode=None promises the run_* default (perball for heavy):
        # the aggregate-mode engine must not be substituted.
        results = allocate_many(
            "heavy", M, N, repeats=2, seed=9, mode=None
        )
        assert results[0].extra["api"]["mode"] == "perball"
        assert "trial_batched" not in results[0].extra["api"]

    def test_allocate_many_batched_records_dispatch(self):
        results = allocate_many("heavy", M, N, repeats=2, seed=9)
        assert results[0].extra["api"]["trial_batched"] is True
        assert results[0].extra["api"]["mode"] == "aggregate"
        assert [r.extra["api"]["repeat"] for r in results] == [0, 1]

    def test_workers_do_not_change_batched_values(self):
        serial = allocate_many("single", M, N, repeats=4, seed=9)
        pooled = allocate_many("single", M, N, repeats=4, seed=9, workers=2)
        for a, b in zip(serial, pooled):
            assert np.array_equal(a.loads, b.loads)

    def test_sweep_batches_per_point(self):
        points = [(M, 32), (M // 2, 16)]
        batched = sweep("single", points, repeats=3, seed=3)
        seq = sweep(
            "single", points, repeats=3, seed=3,
            mode="aggregate", trial_batched=False,
        )
        assert [r.extra["api"].get("trial_batched") for r in batched] == [
            True
        ] * 6
        for a, b in zip(batched, seq):
            assert np.array_equal(a.loads, b.loads)
            assert (
                a.extra["api"]["point"], a.extra["api"]["repeat"]
            ) == (b.extra["api"]["point"], b.extra["api"]["repeat"])

    def test_replicate_rejects_bad_trials(self):
        with pytest.raises(ValueError, match="trials"):
            replicate("single", M, N, trials=0, seed=1)

    def test_replicate_validates_options(self):
        with pytest.raises(ValueError, match="unknown option"):
            replicate("single", M, N, trials=2, seed=1, bogus=3)


class TestReplicationResult:
    @pytest.fixture(scope="class")
    def rep(self):
        return replicate("heavy", M, N, trials=16, seed=SEED)

    def test_shapes_and_conservation(self, rep):
        assert rep.loads.shape == (16, N)
        assert rep.all_complete
        assert np.all(rep.loads.sum(axis=1) == M)
        assert np.array_equal(
            rep.max_loads, rep.loads.max(axis=1)
        )
        assert np.allclose(rep.gaps, rep.max_loads - M / N)

    def test_quantiles_and_ci(self, rep):
        q = rep.quantiles("gap", (0.0, 0.5, 1.0))
        assert q[0.0] <= q[0.5] <= q[1.0]
        assert q[0.0] == rep.gaps.min() and q[1.0] == rep.gaps.max()
        ci = rep.ci("gap")
        assert ci.low <= rep.gaps.mean() <= ci.high
        assert rep.ci("rounds").mean == rep.rounds.mean()
        with pytest.raises(ValueError, match="unknown metric"):
            rep.metric("bogus")

    def test_summary_and_describe(self, rep):
        summary = rep.summary()
        assert set(summary) == {"gap", "max_load", "rounds", "messages"}
        text = rep.describe()
        assert "trial-batched" in text and "trials        : 16" in text

    def test_to_dict_json_safe(self, rep):
        payload = rep.to_dict()
        text = json.dumps(payload)
        back = json.loads(text)
        assert back["trials"] == 16
        assert back["batched"] is True
        assert len(back["gaps"]) == 16
        assert len(back["loads"]) == 16
        assert back["summary"]["gap"]["quantiles"]["0.5"] == pytest.approx(
            rep.quantiles("gap", (0.5,))[0.5]
        )

    def test_weighted_workload_exposes_weighted_gaps(self):
        rep = replicate(
            "heavy", M, N, trials=4, seed=2, workload=WL
        )
        assert rep.weighted_gaps is not None
        assert rep.weighted_gaps.shape == (4,)
        assert rep.workload == WL

    def test_seed_convention_shared_with_allocate_many(self):
        # Trial t's entropy must be the t-th spawned child of the root.
        rep = replicate("single", M, N, trials=3, seed=5)
        children = repro.api.spawn_seeds(5, 3)
        for t, child in enumerate(children):
            factory_entropy = tuple(
                int(e)
                for e in (
                    list(
                        child.entropy
                        if isinstance(child.entropy, (list, tuple))
                        else [child.entropy]
                    )
                    + [int(k) for k in child.spawn_key]
                )
            )
            assert rep.results[t].seed_entropy == factory_entropy


class TestBenchmarkReplication:
    def test_records_and_speedup_fields(self):
        from repro.api import benchmark_replication

        records = benchmark_replication(
            2000, 16, trials=4, seed=0, algorithms=("single",)
        )
        assert len(records) == 1
        r = records[0]
        assert r.algorithm == "single" and r.trials == 4
        assert r.batched_seconds > 0
        assert r.sequential_seconds is not None and r.speedup is not None
        assert r.gap_p99 >= r.gap_mean - 1e-9 or r.gap_p99 >= 0
        payload = r.to_dict()
        assert payload["m"] == 2000 and "speedup" in payload

    def test_skip_sequential(self):
        from repro.api import benchmark_replication

        records = benchmark_replication(
            2000, 16, trials=2, seed=0, algorithms=("heavy",),
            include_sequential=False,
        )
        assert records[0].sequential_seconds is None
        assert records[0].speedup is None

    def test_defaults_to_all_trial_batched_specs(self):
        from repro.api import benchmark_replication, list_allocators

        records = benchmark_replication(
            2000, 16, trials=2, seed=0, include_sequential=False
        )
        expected = {s.name for s in list_allocators() if s.trial_batched}
        assert {r.algorithm for r in records} == expected

    def test_render_table(self):
        from repro.api import benchmark_replication
        from repro.api.bench import render_replication_table

        records = benchmark_replication(
            2000, 16, trials=2, seed=0, algorithms=("single", "trivial"),
        )
        table = render_replication_table(records)
        assert "speedup" in table and "single" in table and "trivial" in table


class TestCli:
    def test_replicate_subcommand(self, capsys):
        from repro.__main__ import main

        assert main(
            ["replicate", "heavy", "--m", "4000", "--n", "16",
             "--trials", "8", "--seed", "1"]
        ) == 0
        out = capsys.readouterr().out
        assert "trial-batched" in out and "gap" in out

    def test_replicate_subcommand_sequential_and_json(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "rep.json"
        assert main(
            ["replicate", "single", "--m", "4000", "--n", "16",
             "--trials", "4", "--seed", "1", "--sequential",
             "--json", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "(sequential)" in out
        payload = json.loads(path.read_text())
        assert payload["trials"] == 4 and payload["batched"] is False

    def test_bench_trials_flag(self, capsys):
        from repro.__main__ import main

        assert main(
            ["bench", "--m", "2000", "--n", "16", "--trials", "2",
             "--algorithms", "single", "--skip-sequential"]
        ) == 0
        out = capsys.readouterr().out
        assert "batched" in out and "single" in out

    def test_rejects_non_batched_algorithms(self):
        from repro.api import benchmark_replication

        with pytest.raises(ValueError, match="no\\s+trial-batched"):
            benchmark_replication(
                2000, 16, trials=2, seed=0, algorithms=("light",)
            )

    def test_sweep_single_pool_for_sequential_blocks(self):
        # Never-eligible sweeps (explicit perball) must still produce
        # point-major results identical to the historical path.
        points = [(4000, 16), (2000, 8)]
        seq = sweep("heavy", points, repeats=2, seed=3, mode="perball")
        legacy = sweep(
            "heavy", points, repeats=2, seed=3, mode="perball",
            trial_batched=False,
        )
        for a, b in zip(seq, legacy):
            assert np.array_equal(a.loads, b.loads)
            assert a.extra["api"]["point"] == b.extra["api"]["point"]

    def test_sweep_mixed_batched_and_fallback_points(self):
        # One eligible block (auto) and one never-eligible block via a
        # per-point mode override: order and values must both hold.
        points = [(4000, 16), {"m": 2000, "n": 8, "mode": "perball"}]
        mixed = sweep("single", points, repeats=2, seed=3)
        assert mixed[0].extra["api"].get("trial_batched") is True
        assert "trial_batched" not in mixed[2].extra["api"]
        # Coordinates must be point-major regardless of execution path.
        assert [
            (r.extra["api"]["point"], r.extra["api"]["repeat"])
            for r in mixed
        ] == [(0, 0), (0, 1), (1, 0), (1, 1)]
        assert all(r.m == 4000 for r in mixed[:2])
        assert all(r.m == 2000 for r in mixed[2:])
