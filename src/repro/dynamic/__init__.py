"""Dynamic allocation: churn, epochs, and incremental rebalancing.

Every other entry point in the package solves a one-shot instance —
``m`` balls arrive, the protocol runs, the process ends.  This
subsystem runs allocation as a *process*: balls continuously arrive
and depart (:class:`DynamicSpec`'s arrival processes and departure
policies), and the system re-establishes the paper's load guarantee
every epoch, either incrementally (only the arriving cohort moves,
placed against the residents' loads on the shared round kernels via
``RoundState(initial_loads=...)``) or by the full-rerun oracle
(everything moves — the cost incremental rebalancing amortizes away).

Entry points: :func:`repro.dynamic.run_dynamic` (also exported as
``repro.run_dynamic``), the ``python -m repro dynamic`` CLI, and the
per-protocol adapters registered with
:func:`repro.api.register_dynamic` (see ``python -m repro list`` for
the ``dynamic`` capability column).  ``docs/dynamic.md`` documents the
epoch model and the capability matrix.
"""

from repro.dynamic.faults import FaultState, place_with_loss
from repro.dynamic.placement import DynamicPlacement
from repro.dynamic.runner import (
    DynamicResult,
    EpochRecord,
    run_dynamic,
    run_dynamic_many,
)
from repro.dynamic.spec import DynamicSpec
from repro.dynamic.state import ResidentState

__all__ = [
    "DynamicPlacement",
    "DynamicResult",
    "DynamicSpec",
    "EpochRecord",
    "FaultState",
    "ResidentState",
    "place_with_loss",
    "run_dynamic",
    "run_dynamic_many",
]
