"""Telemetry subsystem tests (ISSUE-10).

Pins the two hard guarantees of :mod:`repro.telemetry`:

1. **Bitwise invariance** — results with telemetry fully on (metrics,
   spans, kernel profiling) are bitwise-identical to telemetry off on
   every instrumented path: ``allocate`` (both granularities, both
   kernel backends), ``replicate`` (including multi-process sharding),
   ``run_dynamic`` (including the adversarial + fault-injection leg),
   and the continuous service.  The companion zero-RNG pin drives both
   legs from identically seeded Generators and compares the
   *post-run generator state* — telemetry that consumed a single draw
   would diverge the probe.
2. **Default-off is a no-op** — with no telemetry installed,
   ``current_telemetry()`` is None and hooks fall through.

Plus the unit contracts of the instruments, span tracer, exporters,
and logging setup, the audit-trace fold in the service (satellite 1),
and the ``ServiceStats`` queue-depth/flush-latency extensions
(satellite 2).
"""

from __future__ import annotations

import json
import logging

import numpy as np
import pytest

import repro
from repro import Telemetry, current_telemetry, use_telemetry
from repro.service import AllocatorService, replay_trace, simulate_service
from repro.service.events import SimulatedClock
from repro.telemetry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    SpanTracer,
    configure_logging,
    get_logger,
    prometheus_text,
    stats_to_prometheus,
    telemetry_to_dict,
)


# -- instruments --------------------------------------------------------


class TestCounter:
    def test_monotone(self):
        c = Counter("x")
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="only go up"):
            Counter("x").inc(-1)


class TestGauge:
    def test_tracks_max(self):
        g = Gauge("depth")
        g.set(3.0)
        g.set(10.0)
        g.set(2.0)
        assert g.value == 2.0
        assert g.max_value == 10.0

    def test_max_of_negative_values(self):
        # The first write must seed the max — a gauge that only saw
        # negative values must not report the 0.0 initializer.
        g = Gauge("signed")
        g.set(-5.0)
        g.set(-9.0)
        assert g.max_value == -5.0


class TestHistogram:
    def test_bucket_edges(self):
        h = Histogram("t", base=2.0, scale=1e-9)
        assert h.bucket_index(0.0) == 0
        assert h.bucket_index(1e-9) == 0
        # Exactly on a boundary lands in that bucket (upper-inclusive).
        assert h.bucket_index(2e-9) == 1
        assert h.bucket_index(2.0000001e-9) == 2
        assert h.bucket_index(float("inf")) == h.NBUCKETS

    def test_overflow_bucket(self):
        h = Histogram("t")
        h.observe(1e30)
        assert h.bucket_counts[h.NBUCKETS] == 1
        assert h.bucket_upper_bound(h.NBUCKETS) == float("inf")

    def test_exact_stats_ride_along(self):
        h = Histogram("t")
        for v in (0.5, 1.5, 4.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(6.0)
        assert h.min == 0.5
        assert h.max == 4.0
        assert h.mean == pytest.approx(2.0)

    def test_to_dict_compresses_trailing_zeros(self):
        h = Histogram("t")
        h.observe(1e-9)  # bucket 0
        d = h.to_dict()
        assert d["buckets"] == [1]
        assert d["count"] == 1

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError, match="base"):
            Histogram("t", base=1.0)
        with pytest.raises(ValueError, match="scale"):
            Histogram("t", scale=0.0)


class TestMetricsRegistry:
    def test_get_or_create_identity(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", route="x")
        b = reg.counter("hits", route="x")
        assert a is b
        assert len(reg) == 1

    def test_label_order_is_canonical(self):
        reg = MetricsRegistry()
        a = reg.counter("hits", a="1", b="2")
        b = reg.counter("hits", b="2", a="1")
        assert a is b

    def test_kind_mismatch_raises(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(TypeError, match="already registered"):
            reg.gauge("x")

    def test_get_returns_none_when_absent(self):
        reg = MetricsRegistry()
        assert reg.get("nope") is None
        reg.gauge("depth").set(1)
        assert reg.get("depth").value == 1.0

    def test_to_dict_shape(self):
        reg = MetricsRegistry()
        reg.counter("ops", op="place").inc(3)
        reg.counter("ops", op="release").inc()
        d = reg.to_dict()
        assert sorted(e["labels"]["op"] for e in d["ops"]) == [
            "place",
            "release",
        ]
        assert all(e["kind"] == "counter" for e in d["ops"])


# -- spans --------------------------------------------------------------


class TestSpanTracer:
    def test_complete_records_x_event_and_returns_seconds(self):
        tracer = SpanTracer()
        start = tracer.begin()
        seconds = tracer.complete("work", start, cat="test", k=1)
        assert seconds >= 0.0
        (event,) = tracer.events
        assert event["ph"] == "X"
        assert event["name"] == "work"
        assert event["cat"] == "test"
        assert event["dur"] >= 0.0
        assert event["args"] == {"k": 1}

    def test_instant_event(self):
        tracer = SpanTracer()
        tracer.instant("marker", cat="test")
        (event,) = tracer.events
        assert event["ph"] == "i"
        assert event["s"] == "t"

    def test_span_contextmanager(self):
        tracer = SpanTracer()
        with tracer.span("block"):
            pass
        assert tracer.events[0]["name"] == "block"

    def test_chrome_trace_object_form(self):
        tracer = SpanTracer()
        tracer.instant("m")
        out = tracer.to_chrome_trace()
        assert isinstance(out["traceEvents"], list)
        assert out["displayTimeUnit"] == "ms"
        json.dumps(out)  # serializable


# -- exporters ----------------------------------------------------------


class TestPrometheusText:
    def test_counter_gauge_histogram_shapes(self):
        tele = Telemetry()
        tele.count("kernel.rounds", 7)
        tele.gauge("queue.depth", 42, side="in")
        tele.observe("flush.seconds", 0.25)
        text = tele.prometheus()
        assert "# TYPE repro_kernel_rounds_total counter" in text
        assert "repro_kernel_rounds_total 7" in text
        assert 'repro_queue_depth{side="in"} 42' in text
        assert 'repro_queue_depth_max{side="in"} 42' in text
        assert "# TYPE repro_flush_seconds histogram" in text
        assert 'repro_flush_seconds_bucket{le="+Inf"} 1' in text
        assert "repro_flush_seconds_sum 0.25" in text
        assert "repro_flush_seconds_count 1" in text

    def test_histogram_buckets_are_cumulative(self):
        tele = Telemetry()
        for v in (1e-9, 1e-9, 1.0):
            tele.observe("t", v)
        lines = [
            line
            for line in prometheus_text(tele.metrics).splitlines()
            if "_bucket" in line
        ]
        counts = [int(line.rsplit(" ", 1)[1]) for line in lines]
        assert counts == sorted(counts)
        assert counts[-1] == 3  # +Inf == total count

    def test_empty_registry_renders_empty(self):
        assert prometheus_text(MetricsRegistry()) == ""


class TestStatsToPrometheus:
    def test_service_snapshot_exposition(self):
        report = simulate_service("heavy", 5_000, 64, seed=0, epochs=3)
        text = stats_to_prometheus(report.stats)
        assert 'repro_service_info{algorithm="heavy",n="64"} 1' in text
        assert "# TYPE repro_service_batches_total counter" in text
        assert "repro_service_queue_depth_hwm" in text
        assert 'repro_service_latency_seconds{quantile="0.5"}' in text
        assert 'repro_service_flush_seconds{quantile="0.99"}' in text
        assert "repro_service_complete 1" in text


class TestTelemetryJson:
    def test_roundtrip_keeps_trace_event_contract(self):
        tele = Telemetry()
        with use_telemetry(tele):
            repro.allocate("heavy", 5_000, 64, seed=1)
        payload = json.loads(json.dumps(telemetry_to_dict(tele)))
        assert payload["schema"] == 1
        assert payload["displayTimeUnit"] == "ms"
        names = {e["name"] for e in payload["traceEvents"]}
        assert {"allocate", "phase", "round"} <= names
        for event in payload["traceEvents"]:
            assert event["ph"] in ("X", "i")
            assert isinstance(event["ts"], (int, float))
        assert "kernel.rounds" in payload["metrics"]

    def test_write(self, tmp_path):
        tele = Telemetry()
        tele.count("x")
        path = tmp_path / "out.trace.json"
        tele.write(str(path))
        assert json.loads(path.read_text())["metrics"]["x"][0]["value"] == 1


# -- logging ------------------------------------------------------------


class TestLogging:
    def test_get_logger_anchors_namespace(self):
        assert get_logger("experiments").name == "repro.experiments"
        assert get_logger("repro.api").name == "repro.api"
        assert get_logger().name == "repro"

    def test_configure_logging_is_idempotent(self):
        root = logging.getLogger("repro")
        before = list(root.handlers)
        try:
            configure_logging(1)
            configure_logging(2)
            ours = [
                h
                for h in root.handlers
                if getattr(h, "_repro_cli", False)
            ]
            assert len(ours) == 1
            assert root.level == logging.DEBUG
            configure_logging(0)
            assert root.level == logging.WARNING
        finally:
            for h in list(root.handlers):
                if getattr(h, "_repro_cli", False):
                    root.removeHandler(h)
            root.handlers = before
            root.setLevel(logging.NOTSET)


# -- ambient selection --------------------------------------------------


class TestAmbientTelemetry:
    def test_default_is_off(self):
        assert current_telemetry() is None

    def test_use_telemetry_installs_and_restores(self):
        tele = Telemetry()
        with use_telemetry(tele):
            assert current_telemetry() is tele
            with use_telemetry(None):  # explicit disable nests
                assert current_telemetry() is None
            assert current_telemetry() is tele
        assert current_telemetry() is None

    def test_restored_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_telemetry(Telemetry()):
                raise RuntimeError("boom")
        assert current_telemetry() is None


# -- kernel profiling ---------------------------------------------------


class TestProfilingBackend:
    def test_resolve_wraps_under_telemetry(self):
        from repro.fastpath.backend import ProfilingBackend, resolve_backend

        assert not isinstance(resolve_backend(None), ProfilingBackend)
        with use_telemetry(Telemetry()):
            backend = resolve_backend("fused")
            assert isinstance(backend, ProfilingBackend)
            assert backend.name == "fused"  # inner name preserved
            # Re-resolving an already-wrapped backend never double-wraps.
            again = resolve_backend(backend)
            assert not isinstance(again.inner, ProfilingBackend)

    def test_profile_kernels_false_skips_wrap(self):
        from repro.fastpath.backend import ProfilingBackend, resolve_backend

        with use_telemetry(Telemetry(profile_kernels=False)):
            assert not isinstance(
                resolve_backend("fused"), ProfilingBackend
            )

    def test_primitive_histogram_populated(self):
        # Pin the backend so the label matches even when the suite
        # runs under REPRO_KERNEL_BACKEND=reference.
        tele = Telemetry()
        with use_telemetry(tele):
            repro.allocate("heavy", 5_000, 64, seed=1, backend="fused")
        hist = tele.metrics.get(
            "kernel.primitive.seconds",
            primitive="grouped_accept",
            backend="fused",
        )
        assert hist is not None and hist.count > 0


# -- bitwise identity matrix --------------------------------------------


def _on_off(run):
    """Run once with telemetry off, once fully on; return both + tele."""
    off = run()
    tele = Telemetry()
    with use_telemetry(tele):
        on = run()
    return off, on, tele


def _assert_same_allocation(a, b):
    assert np.array_equal(a.loads, b.loads)
    assert a.max_load == b.max_load
    assert a.total_messages == b.total_messages
    assert a.rounds == b.rounds


class TestBitwiseIdentity:
    M, N = 20_000, 64

    @pytest.mark.parametrize("mode", ["perball", "aggregate"])
    def test_allocate(self, mode):
        off, on, tele = _on_off(
            lambda: repro.allocate(
                "heavy", self.M, self.N, seed=3, mode=mode
            )
        )
        _assert_same_allocation(off, on)
        assert any(e["name"] == "allocate" for e in tele.tracer.events)

    def test_allocate_reference_backend(self):
        off, on, _ = _on_off(
            lambda: repro.allocate(
                "heavy", self.M, self.N, seed=3, backend="reference"
            )
        )
        _assert_same_allocation(off, on)
        # The dispatch record reports the inner backend, not the wrapper.
        assert on.extra["api"]["backend"] == "reference"

    def test_replicate(self):
        off, on, _ = _on_off(
            lambda: repro.replicate(
                "heavy", 5_000, 64, trials=8, seed=5
            )
        )
        assert np.array_equal(off.loads, on.loads)
        assert np.array_equal(off.gaps, on.gaps)
        assert np.array_equal(off.total_messages, on.total_messages)

    def test_replicate_workers_sharded_under_telemetry(self):
        def run(workers):
            with use_telemetry(Telemetry()):
                return repro.replicate(
                    "heavy", 5_000, 64, trials=8, seed=5, workers=workers
                )

        one, two = run(1), run(2)
        assert np.array_equal(one.loads, two.loads)
        assert np.array_equal(one.gaps, two.gaps)

    def test_run_dynamic_adversarial_with_faults(self):
        fault_model = repro.parse_faults(
            "bin_fail=0.05,recover=0.2,loss=0.01"
        )
        off, on, tele = _on_off(
            lambda: repro.run_dynamic(
                "heavy",
                10_000,
                64,
                seed=2,
                epochs=4,
                arrivals="hotset_adversary",
                departures="greedy_adversary",
                fault_model=fault_model,
            )
        )
        assert np.array_equal(off.loads, on.loads)
        assert np.array_equal(off.loads_history, on.loads_history)
        assert [(r.gap, r.messages, r.moved) for r in off.records] == [
            (r.gap, r.messages, r.moved) for r in on.records
        ]
        assert any(e["name"] == "epoch" for e in tele.tracer.events)

    def test_simulate_service(self):
        off, on, tele = _on_off(
            lambda: simulate_service("heavy", 5_000, 64, seed=0, epochs=3)
        )
        assert off.stats.messages == on.stats.messages
        assert off.stats.gap == on.stats.gap
        assert off.stats.population == on.stats.population
        assert [r.gap for r in off.records] == [r.gap for r in on.records]
        assert any(e["name"] == "flush" for e in tele.tracer.events)

    def test_zero_rng_draws(self):
        """Telemetry must not consume randomness: run both legs from
        identically seeded Generators and compare the post-run state.
        A single extra draw anywhere would diverge the probe."""

        def probe(telemetry):
            rng = np.random.default_rng(42)
            if telemetry is None:
                result = repro.allocate(
                    "heavy", self.M, self.N, seed=rng, mode="perball"
                )
            else:
                with use_telemetry(telemetry):
                    result = repro.allocate(
                        "heavy", self.M, self.N, seed=rng, mode="perball"
                    )
            return result, int(rng.integers(2**62))

        res_off, probe_off = probe(None)
        res_on, probe_on = probe(Telemetry())
        _assert_same_allocation(res_off, res_on)
        assert probe_off == probe_on


# -- service audit-trace fold (satellite 1) -----------------------------


def _drive_service():
    clock = SimulatedClock()
    svc = AllocatorService(
        "heavy", 16, seed=11, max_batch=64, clock=clock, max_wait=1.0
    )
    svc.place(200)
    svc.tick(1.5)
    for i in range(10):
        clock.advance_to(2.0 + i * 0.1)
        svc.release(3)
        svc.place(3)
    svc.tick(4.0)
    svc.flush(all_pending=True)
    svc.place(40)
    svc.drain()
    return svc


class TestServiceTraceFold:
    def test_trace_bitwise_identical_on_vs_off(self):
        off = _drive_service()
        tele = Telemetry()
        with use_telemetry(tele):
            on = _drive_service()
        assert on.trace == off.trace
        assert np.array_equal(on.residents.loads, off.residents.loads)
        # The -1.0 no-timestamp sentinel survives the fold.
        assert any(at == -1.0 for (_, _, at) in on.trace)

    def test_replay_of_instrumented_trace(self):
        tele = Telemetry()
        with use_telemetry(tele):
            original = _drive_service()
        replay = replay_trace(
            original.trace, "heavy", 16, seed=11, max_batch=64,
            max_wait=1.0,
        )
        assert np.array_equal(
            replay.residents.loads, original.residents.loads
        )
        assert replay.trace == original.trace

    def test_ops_counter_mirrors_trace(self):
        tele = Telemetry()
        with use_telemetry(tele):
            svc = _drive_service()
        counted = sum(
            inst.value
            for inst in tele.metrics
            if inst.name == "service.ops"
        )
        assert counted == len(svc.trace)

    def test_per_op_instants_are_batch_level_only(self):
        tele = Telemetry()
        with use_telemetry(tele):
            _drive_service()
        ops = [
            e["args"]["op"]
            for e in tele.tracer.events
            if e["name"] == "service.op"
        ]
        assert ops  # tick/flush/drain mirrored as instants
        assert not {"place", "release"} & set(ops)


# -- ServiceStats extensions (satellite 2) ------------------------------


class TestServiceStatsExtensions:
    def test_queue_depth_high_water(self):
        svc = AllocatorService(
            "heavy", 16, seed=0, max_batch=1024,
            clock=SimulatedClock(), auto_flush=False,
        )
        svc.place(300)
        svc.flush(all_pending=True)
        svc.place(50)
        stats = svc.stats()
        assert stats.queue_depth_hwm == 300
        assert svc.queue.high_water == 300

    def test_flush_latency_percentiles(self):
        report = simulate_service("heavy", 5_000, 64, seed=0, epochs=3)
        lat = report.stats.flush_latency
        assert set(lat) == {"p50", "p95", "p99"}
        assert 0.0 < lat["p50"] <= lat["p95"] <= lat["p99"]

    def test_zero_batches_report_zero_percentiles(self):
        svc = AllocatorService(
            "heavy", 16, seed=0, clock=SimulatedClock(), auto_flush=False
        )
        stats = svc.stats()
        assert stats.flush_latency == {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        assert stats.queue_depth_hwm == 0

    def test_rendered_in_service_table(self):
        from repro.api.bench import benchmark_service, render_service_table

        records = benchmark_service(
            2_000, 64, epochs=3, algorithms=["heavy"], seed=0
        )
        table = render_service_table(records)
        assert "q-hwm" in table and "fl-p99" in table
        assert records[0].queue_depth_hwm > 0
        assert records[0].flush_p50 <= records[0].flush_p99


# -- telemetry benchmark harness ----------------------------------------


class TestBenchmarkTelemetry:
    def test_records_and_roundtrip(self):
        from repro.api.bench import (
            benchmark_telemetry,
            render_telemetry_table,
        )

        records = benchmark_telemetry(
            5_000, 64, seed=0, repeats=1, dynamic=(2_000, 32, 2),
            service=(2_000, 32, 2),
        )
        assert [r.scenario for r in records] == [
            "allocate",
            "dynamic",
            "service",
        ]
        for r in records:
            assert r.bitwise_equal and r.span_roundtrip
            assert r.trace_events > 0 and r.metric_series > 0
        table = render_telemetry_table(records)
        assert "overhead" in table and "allocate" in table


# -- CLI threading ------------------------------------------------------


class TestCli:
    def test_telemetry_flag_writes_trace(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "run.trace.json"
        assert (
            main(
                [
                    "heavy", "--m", "2000", "--n", "64", "--seed", "1",
                    "--telemetry", str(path),
                ]
            )
            == 0
        )
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1
        assert payload["traceEvents"]
        assert "wrote telemetry" in capsys.readouterr().out

    def test_serve_metrics_out(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "metrics.prom"
        code = main(
            [
                "serve", "heavy", "--m", "2000", "--n", "64",
                "--simulate", "--epochs", "2", "--metrics-out", str(path),
            ]
        )
        assert code == 0
        text = path.read_text()
        assert "repro_service_batches_total" in text
        assert "repro_service_queue_depth_hwm" in text

    def test_verbose_flag_configures_logging(self):
        from repro.__main__ import main

        root = logging.getLogger("repro")
        before = list(root.handlers)
        try:
            assert main(["-v", "list"]) == 0
            assert root.level == logging.INFO
        finally:
            for h in list(root.handlers):
                if getattr(h, "_repro_cli", False):
                    root.removeHandler(h)
            root.handlers = before
            root.setLevel(logging.NOTSET)
