"""Vectorized numpy execution paths.

Per the HPC guides, the hot loops of every protocol are expressed as
whole-array numpy operations — no Python-level loop over balls ever
executes.  Two granularities are offered:

* **per-ball** (:mod:`repro.fastpath.sampling` kernels over arrays of
  ball choices): exact per-ball semantics and message accounting,
  ``O(m_i log m_i)`` work per round; practical to ``m ≈ 10^7``.
* **aggregate** (multinomial occupancy sampling): balls in a uniform-
  contact round are exchangeable, so the per-bin request counts are
  *exactly* ``Multinomial(m_i, 1/n)``; sampling them directly costs
  ``O(n)`` per round and scales to ``m ≈ 10^12`` while remaining
  distributionally identical for every per-bin and global statistic.

:mod:`repro.fastpath.roundstate` layers the shared round skeleton on
top of the sampling kernels: :class:`RoundState` owns the flat arrays
(loads, active balls, metrics, message tallies) and exposes the three
kernel steps — ``sample_contacts``, ``group_and_accept``,
``commit_and_revoke`` — that every protocol's vectorized mode drives
(see ``docs/performance.md``).

A third axis batches *trials*: the aggregate-granularity state accepts
``trials=T`` and advances T independent replications of one instance
in lock-step from per-trial generators (the replication engine behind
``repro.replicate``; see ``docs/replication.md``).

Cross-validation tests assert both paths agree with the object-level
engine on conserved quantities and in distribution.

The bin-side resolution primitives themselves (grouping, commit
resolution, load scatters) are pluggable through
:mod:`repro.fastpath.backend`: the ``reference`` lexsort kernels or
the default ``fused`` counting-sort kernels, bitwise-identical by
contract and selectable per call, per :class:`RoundState`, by
``use_backend`` context, or by the ``REPRO_KERNEL_BACKEND``
environment variable.
"""

from repro.fastpath.backend import (
    BACKEND_ENV_VAR,
    DEFAULT_BACKEND,
    FusedBackend,
    KernelBackend,
    ReferenceBackend,
    available_backends,
    get_backend,
    register_backend,
    resolve_backend,
    use_backend,
)
from repro.fastpath.buffers import DEFAULT_CHUNK, DtypePolicy, RoundBuffers
from repro.fastpath.roundstate import (
    AcceptDecision,
    ContactBatch,
    RoundOutcome,
    RoundState,
    priority_commit_accept,
)
from repro.fastpath.sampling import (
    fill_choices,
    fill_priorities,
    grouped_accept,
    grouped_accept_with_priorities,
    multinomial_occupancy,
    multinomial_occupancy_batched,
    sample_choices,
    sample_uniform_choices,
    validate_pvals,
)

__all__ = [
    "AcceptDecision",
    "BACKEND_ENV_VAR",
    "ContactBatch",
    "DEFAULT_BACKEND",
    "DEFAULT_CHUNK",
    "DtypePolicy",
    "FusedBackend",
    "KernelBackend",
    "ReferenceBackend",
    "RoundBuffers",
    "RoundOutcome",
    "RoundState",
    "available_backends",
    "fill_choices",
    "fill_priorities",
    "grouped_accept",
    "grouped_accept_with_priorities",
    "get_backend",
    "multinomial_occupancy",
    "multinomial_occupancy_batched",
    "priority_commit_accept",
    "register_backend",
    "resolve_backend",
    "sample_choices",
    "sample_uniform_choices",
    "use_backend",
    "validate_pvals",
]
