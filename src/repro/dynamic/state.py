"""Resident-population bookkeeping for the dynamic epoch runner.

The dynamic regime tracks balls at *bin* granularity, grouped into
**cohorts** — one per arrival epoch — because that is exactly the
information the departure policies need:

* ``uniform`` departures sample uniformly among all resident balls:
  a multivariate hypergeometric draw over the flattened
  ``(cohort, bin)`` count matrix (balls of one bin and cohort are
  exchangeable, so per-cell counts are a sufficient statistic);
* ``fifo`` departures consume cohorts oldest-first, splitting only the
  boundary cohort (hypergeometrically over its bins);
* ``hotset`` departures drain the currently hottest bins first —
  uniformly among the residents of the top ``hot_frac`` fraction of
  bins, falling back to the cold bins only when the hot set runs out;
* ``greedy_adversary`` departures drain the *lightest* bins level by
  level — the gap-maximizing attack: the maximum load is never
  touched while the mean sinks, so each epoch of churn widens the gap
  by the full departure volume spread over the valley floor.  The
  drain order is deterministic given the loads (ties at the boundary
  level split by :func:`repro.lowerbound.adversary.spread_budget`);
  randomness is spent only on splitting partially drained bins across
  cohorts.

Every draw comes from the caller-supplied generator (one spawned
control stream per epoch), so a dynamic run replays bitwise from its
root seed regardless of policy.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

__all__ = ["ResidentState"]


class ResidentState:
    """Per-bin resident counts, grouped into arrival cohorts."""

    def __init__(self, n: int) -> None:
        if n < 1:
            raise ValueError(f"need n >= 1, got {n}")
        self.n = n
        #: Oldest-first list of ``[epoch_id, (n,) counts]`` cohorts.
        self.cohorts: list[list] = []
        self._loads = np.zeros(n, dtype=np.int64)

    @property
    def loads(self) -> np.ndarray:
        """Current per-bin resident counts (a defensive copy)."""
        return self._loads.copy()

    @property
    def population(self) -> int:
        """Total resident balls."""
        return int(self._loads.sum())

    def add_cohort(self, epoch: int, counts: np.ndarray) -> None:
        """Admit one arrival cohort with the given per-bin placement."""
        counts = np.asarray(counts, dtype=np.int64)
        if counts.shape != (self.n,):
            raise ValueError(
                f"cohort counts must have shape ({self.n},), "
                f"got {counts.shape}"
            )
        if np.any(counts < 0):
            raise ValueError("cohort counts must be non-negative")
        if counts.sum() == 0:
            return
        self.cohorts.append([epoch, counts.copy()])
        self._loads += counts

    def _matrix(self) -> np.ndarray:
        """The ``(C, n)`` cohort-by-bin count matrix (a view stack)."""
        if not self.cohorts:
            return np.zeros((0, self.n), dtype=np.int64)
        return np.stack([c for _, c in self.cohorts])

    def _apply_departures(self, taken: np.ndarray) -> np.ndarray:
        """Subtract a ``(C, n)`` departure matrix; drop empty cohorts."""
        departed = taken.sum(axis=0)
        for row, cohort in zip(taken, self.cohorts):
            cohort[1] -= row
        self.cohorts = [c for c in self.cohorts if c[1].sum() > 0]
        self._loads -= departed
        if np.any(self._loads < 0):  # pragma: no cover - internal guard
            raise AssertionError("departures exceeded resident counts")
        return departed

    def depart(
        self,
        k: int,
        policy: str,
        rng: Optional[np.random.Generator],
        *,
        hot_frac: float = 0.1,
    ) -> np.ndarray:
        """Remove ``k`` residents under ``policy``; returns the per-bin
        departure counts.

        ``k = 0`` is a strict no-op: no generator draw, no state
        change (the zero-churn bitwise-stability guarantee).
        """
        if k < 0:
            raise ValueError(f"k must be >= 0, got {k}")
        if k == 0:
            return np.zeros(self.n, dtype=np.int64)
        if k > self.population:
            raise ValueError(
                f"cannot depart {k} balls from a population of "
                f"{self.population}"
            )
        matrix = self._matrix()
        if policy == "uniform":
            taken = rng.multivariate_hypergeometric(
                matrix.ravel(), k
            ).reshape(matrix.shape)
        elif policy == "fifo":
            taken = np.zeros_like(matrix)
            remaining = k
            for i in range(matrix.shape[0]):
                size = int(matrix[i].sum())
                if size <= remaining:
                    taken[i] = matrix[i]
                    remaining -= size
                elif remaining > 0:
                    taken[i] = rng.multivariate_hypergeometric(
                        matrix[i], remaining
                    )
                    remaining = 0
                else:
                    break
        elif policy == "hotset":
            n_hot = max(1, min(self.n - 1, math.ceil(hot_frac * self.n)))
            order = np.argsort(-self._loads, kind="stable")
            hot = order[:n_hot]
            cold = order[n_hot:]
            taken = np.zeros_like(matrix)
            hot_total = int(matrix[:, hot].sum())
            k_hot = min(k, hot_total)
            if k_hot > 0:
                taken[:, hot] = rng.multivariate_hypergeometric(
                    matrix[:, hot].ravel(), k_hot
                ).reshape(matrix.shape[0], hot.size)
            k_cold = k - k_hot
            if k_cold > 0:
                taken[:, cold] = rng.multivariate_hypergeometric(
                    matrix[:, cold].ravel(), k_cold
                ).reshape(matrix.shape[0], cold.size)
        elif policy == "greedy_adversary":
            # Gap-maximizing drain: empty the lightest bins level by
            # level, apportioning the boundary level's budget across
            # its tied bins with the adversaries' largest-remainder
            # spreader.  The maximum bin is never touched (unless the
            # budget consumes the whole population), so the mean falls
            # while the max stands — the worst case for the gap.
            from repro.lowerbound.adversary import spread_budget

            per_bin = np.zeros(self.n, dtype=np.int64)
            remaining = k
            for level in np.unique(self._loads[self._loads > 0]):
                bins = np.flatnonzero(self._loads == level)
                level_total = int(level) * bins.size
                if level_total <= remaining:
                    per_bin[bins] = level
                    remaining -= level_total
                    if remaining == 0:
                        break
                else:
                    per_bin[bins] = spread_budget(
                        remaining, np.ones(bins.size)
                    )
                    remaining = 0
                    break
            taken = np.zeros_like(matrix)
            # Randomness only splits partially drained bins across
            # cohorts (which balls of a bin leave is exchangeable);
            # the per-bin drain itself is deterministic in the loads.
            for b in np.flatnonzero(per_bin):
                column = matrix[:, b]
                q = int(per_bin[b])
                if q == int(column.sum()):
                    taken[:, b] = column
                else:
                    taken[:, b] = rng.multivariate_hypergeometric(
                        column, q
                    )
        else:
            raise ValueError(f"unknown departure policy {policy!r}")
        return self._apply_departures(taken)

    def reshuffle(
        self, new_loads: np.ndarray, rng: np.random.Generator
    ) -> None:
        """Redistribute the cohorts' bin composition to ``new_loads``.

        The full-rerun oracle re-places every resident from scratch,
        which changes where each cohort's balls sit without changing
        cohort membership.  Placed balls of one run are exchangeable,
        so each cohort's new bin distribution is a hypergeometric
        split of the placement, drawn oldest-first from the epoch's
        control stream.  ``new_loads`` may total *less* than the
        current population (a protocol that strands balls evicts them);
        the shortfall is charged to the newest cohorts.
        """
        new_loads = np.asarray(new_loads, dtype=np.int64)
        if new_loads.shape != (self.n,):
            raise ValueError(
                f"new_loads must have shape ({self.n},), "
                f"got {new_loads.shape}"
            )
        total_placed = int(new_loads.sum())
        sizes = [int(c[1].sum()) for c in self.cohorts]
        shortfall = sum(sizes) - total_placed
        if shortfall < 0:
            raise ValueError(
                "reshuffle target exceeds the resident population"
            )
        for i in range(len(sizes) - 1, -1, -1):
            if shortfall <= 0:
                break
            cut = min(sizes[i], shortfall)
            sizes[i] -= cut
            shortfall -= cut
        remaining = new_loads.copy()
        for size, cohort in zip(sizes, self.cohorts):
            if size == 0:
                part = np.zeros(self.n, dtype=np.int64)
            elif size == int(remaining.sum()):
                part = remaining.copy()
            else:
                part = rng.multivariate_hypergeometric(remaining, size)
            cohort[1] = part.astype(np.int64)
            remaining -= part
        self.cohorts = [c for c in self.cohorts if c[1].sum() > 0]
        self._loads = new_loads.copy()
