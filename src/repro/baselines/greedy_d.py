"""The sequential multiple-choice (greedy[d]) process of [ABKU99].

Balls arrive **one at a time**; each samples ``d`` bins uniformly and
independently and joins the least loaded (ties broken uniformly).  For
the heavily loaded case [BCSV06] proved the max load is
``m/n + log log n / log d + O(1)`` w.h.p. — independent of ``m``.  The
paper's contribution is a *parallel* algorithm matching the ``m/n +
O(1)`` quality; this sequential process is the quality yardstick in
experiments T1 and F5.

The process is inherently sequential (each decision depends on all
earlier ones), so no full vectorization is possible.  The implementation
amortizes RNG cost by sampling all ``m x d`` choices up front and runs a
tight Python loop over balls (~1 µs/ball); benchmarks size accordingly.
``d = 1`` degenerates to single-choice and is dispatched to the
vectorized path.
"""

from __future__ import annotations

import numpy as np

from repro.api.spec import register_allocator
from repro.baselines.single_choice import run_single_choice
from repro.result import AllocationResult
from repro.simulation.metrics import RoundMetrics, RunMetrics
from repro.utils.seeding import RngFactory
from repro.utils.validation import check_positive_int, ensure_m_n

__all__ = ["run_greedy_d", "greedy_d_loads"]

#: Sampling block size: choices are drawn in blocks to bound memory at
#: large m without per-ball RNG calls.
_BLOCK = 1 << 18


def greedy_d_loads(
    m: int, n: int, d: int, rng: np.random.Generator
) -> np.ndarray:
    """Core sequential loop; returns the final load vector.

    Ties are broken uniformly among the minimum-loaded choices, as in
    [ABKU99] (the tie-break rule does not affect the asymptotics but
    uniform is the canonical choice).
    """
    loads = np.zeros(n, dtype=np.int64)
    loads_list = loads  # local alias for the loop
    for start in range(0, m, _BLOCK):
        count = min(_BLOCK, m - start)
        block = rng.integers(0, n, size=(count, d))
        tie_break = rng.random(size=(count, d))
        for row in range(count):
            choices = block[row]
            vals = loads_list[choices]
            min_val = vals.min()
            # Uniform tie-break: among minimum entries pick the one with
            # the smallest pre-drawn uniform mark.
            mask = vals == min_val
            if mask.sum() == 1:
                target = choices[int(np.argmax(mask))]
            else:
                marks = np.where(mask, tie_break[row], 2.0)
                target = choices[int(np.argmin(marks))]
            loads_list[target] += 1
    return loads


@register_allocator(
    "greedy",
    summary="sequential greedy[d]: least-loaded of d random bins",
    paper_ref="baseline [ABKU99/BCSV06]",
    aliases=("greedy_d",),
    sequential=True,
    supports_multicontact=True,
)
def run_greedy_d(
    m: int,
    n: int,
    d: int = 2,
    *,
    seed=None,
) -> AllocationResult:
    """Sequential greedy[d] allocation.

    Parameters
    ----------
    m, n:
        Instance size.
    d:
        Number of choices per ball (``d >= 1``; ``d = 1`` is the naive
        process).
    seed:
        Reproducibility seed.

    Notes
    -----
    The result sets ``sequential=True`` and ``rounds=0``: the process
    has no message-round structure comparable to the parallel
    algorithms.  ``total_messages`` counts ``d`` probes plus one commit
    per ball, the standard accounting for the two-choice paradigm.
    """
    m, n = ensure_m_n(m, n)
    d = check_positive_int(d, "d")
    if d == 1:
        result = run_single_choice(m, n, seed=seed, mode="perball")
        result.algorithm = "greedy[1]"
        result.sequential = True
        return result
    factory = RngFactory(seed)
    rng = factory.stream("greedy", d)
    loads = greedy_d_loads(m, n, d, rng)
    metrics = RunMetrics(m, n)
    metrics.add_round(
        RoundMetrics(
            round_no=0,
            unallocated_start=m,
            requests_sent=m * d,
            accepts_sent=m,
            rejects_sent=0,
            commits=m,
            unallocated_end=0,
            max_load=int(loads.max(initial=0)),
        )
    )
    return AllocationResult(
        algorithm=f"greedy[{d}]",
        m=m,
        n=n,
        loads=loads,
        rounds=0,
        metrics=metrics,
        total_messages=m * (d + 1),
        sequential=True,
        seed_entropy=factory.root_entropy,
    )
