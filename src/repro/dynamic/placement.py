"""The contract between dynamic adapters and the epoch runner.

A dynamic-placement adapter (registered with
:func:`repro.api.register_dynamic`) places one cohort of ``m`` new
balls into ``n`` bins that already hold a residual occupancy.  It
returns a :class:`DynamicPlacement`: the resulting *total* per-bin
loads plus the cost accounting the epoch runner folds into the
:class:`~repro.dynamic.runner.DynamicResult` time series.

This module deliberately imports nothing from the algorithm packages
— they import *it* (exactly like :mod:`repro.api.spec`), so adapters
can live next to their protocols without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["DynamicPlacement"]


@dataclass
class DynamicPlacement:
    """Outcome of placing one cohort against residual bin loads.

    Attributes
    ----------
    loads:
        Total per-bin loads after placement: the residual occupancy the
        adapter was given plus every placed ball.
    placed:
        Balls of the cohort that were allocated.
    unplaced:
        Balls the adapter could not place (saturated capacity under the
        protocol's own rules); ``placed + unplaced == m``.
    rounds:
        Communication rounds the placement executed (saturated rounds a
        protocol skipped without sampling do not count).
    total_messages:
        Messages charged for the placement — the quantity the
        amortization claim (incremental cost scales with churn, not
        ``m``) is stated over.
    extra:
        Adapter-specific records (phase split, thresholds, branch
        taken, workload record).
    """

    loads: np.ndarray
    placed: int
    unplaced: int
    rounds: int
    total_messages: int
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.loads = np.asarray(self.loads, dtype=np.int64)
        if self.placed < 0 or self.unplaced < 0:
            raise ValueError(
                f"placed/unplaced must be >= 0, got "
                f"{self.placed}/{self.unplaced}"
            )
