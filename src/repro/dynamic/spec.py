"""Dynamic-scenario specifications: how churn arrives and departs.

A :class:`DynamicSpec` describes one churn regime the epoch runner
(:func:`repro.dynamic.runner.run_dynamic`) executes on top of any
``dynamic_capable`` allocator:

* **arrival process** — how many balls arrive per epoch: ``fixed``
  (exactly the churn rate's worth), ``poisson`` (a Poisson draw with
  that mean), ``bursty`` (a deterministic lull/burst cycle with the
  same long-run mean), or ``hotset_adversary`` (fixed-size cohorts
  whose *contact distributions* are concentrated on the currently
  hottest ``hot_frac`` fraction of bins — the adaptive-attacker
  arrival process; see ``docs/dynamic.md``);
* **departure policy** — which resident balls leave: ``uniform``
  (uniformly at random over all residents), ``fifo`` (oldest cohorts
  first — the age-ordered job-queue regime), ``hotset``
  (preferentially from the currently hottest bins — correlated
  departures, the cache-invalidation regime), or ``greedy_adversary``
  (the gap-maximizing attacker: drain the lightest bins level by
  level, never touching the maximum, so the mean sinks while the max
  stands);
* **epoch count and churn rate** — each epoch turns over
  ``churn * m`` balls (departures and arrivals are count-matched, so
  the population stays pinned at ``m`` and the per-epoch gap series is
  comparable across epochs);
* **rebalance strategy** — ``incremental`` (only the arriving cohort
  runs through the round kernels, against the residents' loads via
  ``RoundState(initial_loads=...)``) or ``full_rerun`` (the oracle:
  the entire population is re-placed from scratch every epoch).

The spec is a frozen value object; all randomness is drawn by the
runner from per-epoch spawned streams, so one spec replays bitwise
from one root seed.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Optional

__all__ = [
    "ARRIVAL_KINDS",
    "DEPARTURE_KINDS",
    "REBALANCE_KINDS",
    "DynamicSpec",
]

#: Accepted arrival-process kinds (``hotset_adversary`` is the
#: adaptive attack: fixed cohort sizes, contacts aimed at the
#: currently hottest bins).
ARRIVAL_KINDS = ("fixed", "poisson", "bursty", "hotset_adversary")
#: Accepted departure-policy kinds (``greedy_adversary`` is the
#: gap-maximizing attack: drain the lightest bins first).
DEPARTURE_KINDS = ("uniform", "fifo", "hotset", "greedy_adversary")
#: Accepted rebalance strategies.
REBALANCE_KINDS = ("incremental", "full_rerun")


@dataclass(frozen=True)
class DynamicSpec:
    """One churn regime: arrivals x departures x rebalance strategy.

    Attributes
    ----------
    epochs:
        Number of churn epochs after the initial fill (epoch 0).
    churn:
        Target per-epoch turnover as a fraction of the initial
        population ``m`` (0 <= churn <= 1; 0 makes every epoch a
        no-op, 1 replaces the entire population each epoch).
    arrivals:
        Arrival process (``fixed``/``poisson``/``bursty``/
        ``hotset_adversary``).  The adversarial process sizes cohorts
        like ``fixed``; the runner aims each cohort's contact
        distribution at the currently hottest ``hot_frac`` fraction of
        bins.
    burst_every:
        Bursty arrivals: cycle length — every ``burst_every``-th epoch
        is a burst.
    burst_factor:
        Bursty arrivals: burst epochs carry ``burst_factor`` times the
        lull rate; the lull rate is scaled so the long-run mean stays
        at ``churn * m`` per epoch.
    departures:
        Departure policy (``uniform``/``fifo``/``hotset``/
        ``greedy_adversary``).  The adversarial policy drains the
        lightest bins level by level (gap-maximizing, deterministic up
        to cohort splits).
    hot_frac:
        Hotset departures and hotset-adversary arrivals: the fraction
        of currently hottest bins the policy targets (departures drawn
        from it, or attack contacts concentrated on it).
    rebalance:
        ``incremental`` or ``full_rerun`` (the all-moves oracle).
    """

    epochs: int = 16
    churn: float = 0.1
    arrivals: str = "fixed"
    burst_every: int = 4
    burst_factor: float = 4.0
    departures: str = "uniform"
    hot_frac: float = 0.1
    rebalance: str = "incremental"

    def __post_init__(self) -> None:
        if self.epochs < 0:
            raise ValueError(f"epochs must be >= 0, got {self.epochs}")
        if not (0.0 <= self.churn <= 1.0):
            raise ValueError(
                f"churn must lie in [0, 1], got {self.churn}"
            )
        if self.arrivals not in ARRIVAL_KINDS:
            raise ValueError(
                f"unknown arrival process {self.arrivals!r}; "
                f"expected one of {', '.join(ARRIVAL_KINDS)}"
            )
        if self.departures not in DEPARTURE_KINDS:
            raise ValueError(
                f"unknown departure policy {self.departures!r}; "
                f"expected one of {', '.join(DEPARTURE_KINDS)}"
            )
        if self.rebalance not in REBALANCE_KINDS:
            raise ValueError(
                f"unknown rebalance strategy {self.rebalance!r}; "
                f"expected one of {', '.join(REBALANCE_KINDS)}"
            )
        if self.burst_every < 2:
            raise ValueError(
                f"burst_every must be >= 2, got {self.burst_every}"
            )
        if self.burst_factor < 1.0:
            raise ValueError(
                f"burst_factor must be >= 1, got {self.burst_factor}"
            )
        if not (0.0 < self.hot_frac < 1.0):
            raise ValueError(
                f"hot_frac must lie strictly in (0, 1), got {self.hot_frac}"
            )

    def with_rebalance(self, rebalance: str) -> "DynamicSpec":
        """The same regime under another rebalance strategy (the
        incremental-vs-oracle comparisons pivot on this)."""
        return replace(self, rebalance=rebalance)

    def arrival_count(
        self, epoch: int, m: int, rng: Optional[object] = None
    ) -> int:
        """Cohort size for ``epoch`` (1-based) at population ``m``.

        ``fixed`` and ``bursty`` are deterministic; ``poisson`` draws
        from ``rng`` (the epoch's own control stream).  The long-run
        mean of every process is ``churn * m`` per epoch.
        """
        if epoch < 1:
            raise ValueError(f"epoch must be >= 1, got {epoch}")
        rate = self.churn * m
        if self.arrivals in ("fixed", "hotset_adversary"):
            # The adversary controls *where* contacts aim, not how
            # many balls arrive: cohort sizes stay deterministic so
            # attacked and benign runs are count-matched.
            return int(round(rate))
        if self.arrivals == "poisson":
            if rng is None:
                raise ValueError("poisson arrivals need the epoch rng")
            return int(rng.poisson(rate))
        # Bursty: every ``burst_every``-th epoch carries ``burst_factor``
        # times the lull rate; the lull rate is chosen so one full cycle
        # averages to ``rate``.
        lull = rate * self.burst_every / (
            self.burst_every - 1 + self.burst_factor
        )
        if epoch % self.burst_every == 0:
            return int(round(lull * self.burst_factor))
        return int(round(lull))

    def describe(self) -> str:
        """Compact human-readable regime string."""
        parts = [
            f"churn={self.churn:g}",
            f"epochs={self.epochs}",
            f"arrivals={self.arrivals}",
        ]
        if self.arrivals == "bursty":
            parts.append(
                f"burst={self.burst_factor:g}x/{self.burst_every}"
            )
        if self.arrivals == "hotset_adversary":
            parts.append(f"hot_frac={self.hot_frac:g}")
        parts.append(f"departures={self.departures}")
        if self.departures == "hotset":
            parts.append(f"hot_frac={self.hot_frac:g}")
        parts.append(self.rebalance)
        return "+".join(parts)

    def to_dict(self) -> dict:
        return {
            "epochs": self.epochs,
            "churn": self.churn,
            "arrivals": self.arrivals,
            "burst_every": self.burst_every,
            "burst_factor": self.burst_factor,
            "departures": self.departures,
            "hot_frac": self.hot_frac,
            "rebalance": self.rebalance,
        }
