"""Experiments T4, T5, T7, T8, F5 and the ablations A1, A2."""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.chernoff import underload_probability_bound
from repro.analysis.theory import expected_max_load_greedy_d
from repro.baselines import run_greedy_d
from repro.core import (
    ExponentSchedule,
    PaperSchedule,
    run_asymmetric,
    run_combined,
    run_heavy,
    should_use_trivial,
)
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import seed_list
from repro.fastpath.sampling import multinomial_occupancy
from repro.light import run_light
from repro.utils.logstar import log_star
from repro.utils.seeding import RngFactory

__all__ = [
    "exp_t4",
    "exp_t5",
    "exp_t7",
    "exp_t8",
    "exp_f5",
    "exp_a1",
    "exp_a2",
]


def exp_t4(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """T4 — the asymmetric algorithm (Theorem 3, Claims 7-10, Cor 2)."""
    report = ExperimentReport(
        exp_id="T4",
        title="Asymmetric algorithm: rounds, gap, per-bin messages",
        claim="Thm 3: m/n + O(1) load in O(1) rounds; bins receive "
        "(1+o(1)) m/n + O(log n) messages",
        columns=[
            "n",
            "m/n",
            "gap",
            "rounds",
            "cleanup",
            "bin recv max",
            "(m/n)+8ln n",
        ],
    )
    grid = (
        [(256, 64), (1024, 1024)]
        if scale == "quick"
        else [(256, 4), (256, 256), (1024, 64), (1024, 4096), (4096, 256)]
    )
    reps = 3 if scale == "quick" else 5
    ok = True
    max_rounds_seen = 0
    for n, ratio in grid:
        m = n * ratio
        gaps, rounds, cleanups, binmax = [], [], [], []
        for s in seed_list(seed, reps):
            res = run_asymmetric(m, n, seed=s)
            gaps.append(res.gap)
            rounds.append(res.rounds)
            cleanups.append(res.extra["cleanup_rounds"])
            binmax.append(res.messages.summary()["per_bin_received_max"])
        report.add_row(
            n,
            ratio,
            float(np.mean(gaps)),
            float(np.mean(rounds)),
            float(np.mean(cleanups)),
            float(np.mean(binmax)),
            m / n + 8 * math.log(n),
        )
        # O(1) with an explicit constant.  The worst case sits in the
        # moderate regime (m/n ~ n), where the terminal round's
        # per-block deviation delta_term/block_size peaks; it does NOT
        # grow with m/n (the sweep's largest ratios have the smallest
        # gaps), which is what "O(1)" demands.
        ok = ok and max(gaps) <= 14.0 and float(np.mean(gaps)) <= 10.0
        max_rounds_seen = max(max_rounds_seen, max(rounds))
    ok = ok and max_rounds_seen <= 8  # O(1): absolute cap across scales
    report.passed = ok
    report.notes.append(
        "the gap peaks (~7-10) in the moderate regime m/n ~ n — the "
        "terminal round's per-block noise delta/block_size — and shrinks "
        "as m/n grows: constant, with a larger constant than the "
        "symmetric algorithm's."
    )
    report.notes.append(
        "per-bin max messages exceeds (1+o(1))m/n + O(log n) by a "
        "moderate-regime factor ~log n/(m/n)^(1/3) = o(1): leaders absorb "
        "the terminal round (see DESIGN.md on Claim 10's block-size gap)."
    )
    return report


def exp_t5(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """T5 — Claim 1's underload probability bound, round by round."""
    report = ExperimentReport(
        exp_id="T5",
        title="Pr[bin receives < T_i - T_{i-1} requests] vs "
        "exp(-(m̃_i/n)^(1/3)/2)",
        claim="Claim 1 (via Chernoff, Lemma 1)",
        columns=[
            "round",
            "m̃_i/n",
            "capacity T_i-T_{i-1}",
            "measured Pr",
            "Claim 1 bound",
            "bound holds",
        ],
    )
    n = 4096
    ratio = 2**10 if scale == "quick" else 2**14
    m = n * ratio
    trials = 20 if scale == "quick" else 50
    schedule = PaperSchedule(m, n)
    rng = RngFactory(seed).stream("t5")
    ok = True
    rounds = schedule.phase1_rounds()
    for i in range(min(rounds, 6)):
        mtilde = schedule.estimate(i)
        need = schedule.capacity(i)
        if need <= 0:
            continue
        # Underload frequency measured over `trials` fresh multinomial
        # rounds at the schedule's nominal ball count.
        under = 0
        for _ in range(trials):
            counts = multinomial_occupancy(int(mtilde), n, rng)
            under += int((counts < need).sum())
        measured = under / (trials * n)
        bound = underload_probability_bound(mtilde, n)
        report.add_row(i, mtilde / n, need, measured, bound, measured <= bound)
        ok = ok and measured <= bound
    report.passed = ok
    return report


def exp_t7(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """T7 — A_light meets Theorem 5's guarantees."""
    report = ExperimentReport(
        exp_id="T7",
        title="A_light: rounds, max load, messages",
        claim="Thm 5 [LW16]: load <= 2 in log* n + O(1) rounds with O(n) "
        "messages",
        columns=[
            "n",
            "max load",
            "rounds",
            "log* n + 6",
            "messages/n",
            "fallback used",
        ],
    )
    ns = [256, 4096] if scale == "quick" else [256, 1024, 4096, 16384, 65536]
    reps = 3 if scale == "quick" else 5
    ok = True
    for n in ns:
        loads, rounds, msgs, fallbacks = [], [], [], 0
        for s in seed_list(seed, reps):
            out = run_light(n, n, seed=s)
            loads.append(out.max_load)
            rounds.append(out.rounds)
            msgs.append(out.total_messages / n)
            fallbacks += int(out.used_fallback)
        budget = log_star(n) + 6
        report.add_row(
            n,
            max(loads),
            float(np.mean(rounds)),
            budget,
            float(np.mean(msgs)),
            fallbacks,
        )
        ok = ok and max(loads) <= 2
        ok = ok and max(rounds) <= budget + 1
        ok = ok and float(np.mean(msgs)) <= 12.0
        ok = ok and fallbacks == 0
    report.passed = ok
    return report


def exp_t8(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """T8 — the combined algorithm's small-n branch."""
    report = ExperimentReport(
        exp_id="T8",
        title="Combined algorithm across the n < log log(m/n) boundary",
        claim="Section 3 note: trivial n-round deterministic algorithm "
        "covers tiny n; combined succeeds on the whole range",
        columns=["m", "n", "branch", "gap", "rounds", "rounds <= n (trivial)"],
    )
    cases = [
        (2**20, 2),
        (2**24, 3),
        (2**22, 64),
        (2**20, 256),
    ]
    if scale == "full":
        cases += [(2**24, 4), (2**24, 1024)]
    ok = True
    for m, n in cases:
        res = run_combined(m, n, seed=seed, mode="aggregate" if m > 4e6 else "perball")
        branch = res.extra["branch"]
        within = res.rounds <= n if branch == "trivial" else True
        report.add_row(m, n, branch, res.gap, res.rounds, within)
        expected_branch = "trivial" if should_use_trivial(m, n) else "heavy"
        ok = ok and branch == expected_branch
        ok = ok and res.complete and within
        if branch == "trivial":
            ok = ok and res.gap < 1.0  # perfectly balanced: ceil(m/n) max
    report.passed = ok
    return report


def exp_f5(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """F5 — sequential greedy[d] gap vs log log n / log d ([BCSV06])."""
    report = ExperimentReport(
        exp_id="F5",
        title="greedy[d] gap vs (log log n)/(log d) + O(1)",
        claim="[BCSV06] (paper's comparison point): gap is m-independent "
        "and ~ log log n / log d",
        columns=["n", "d", "m/n", "gap(mean)", "predicted gap"],
    )
    ns = [256, 4096] if scale == "quick" else [256, 1024, 4096, 16384]
    ratio = 100
    reps = 3 if scale == "quick" else 5
    ok = True
    for n in ns:
        m = n * ratio
        for d in (1, 2, 3):
            gaps = [run_greedy_d(m, n, d, seed=s).gap for s in seed_list(seed, reps)]
            mean_gap = float(np.mean(gaps))
            pred = expected_max_load_greedy_d(m, n, d) - m / n
            report.add_row(n, d, ratio, mean_gap, pred)
            if d >= 2:
                ok = ok and mean_gap <= pred + 3.0
    # d=2 must beat d=1 decisively (the multiple-choice gap).
    report.passed = ok
    report.notes.append(
        "d=1 column shows the sqrt((m/n) log n) single-choice gap for "
        "contrast; the d>=2 gaps must be m-independent and tiny."
    )
    return report


def exp_a1(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """A1 — ablation: the threshold exponent 2/3."""
    report = ExperimentReport(
        exp_id="A1",
        title="Ablation: schedule exponent alpha in T_i = m/n - (m̃_i/n)^alpha",
        claim="Section 1.1/3 design choice: alpha = 2/3 balances progress "
        "vs underload risk",
        columns=[
            "alpha",
            "phase1 rounds",
            "leftover for A_light",
            "leftover/n",
            "gap",
            "total rounds",
        ],
    )
    n = 1024
    ratio = 2**12 if scale == "quick" else 2**16
    m = n * ratio
    ok = True
    for alpha in (0.5, 2.0 / 3.0, 0.75, 0.9):
        schedule = ExponentSchedule(m, n, alpha=alpha)
        res = run_heavy(m, n, seed=seed, schedule=schedule, mode="aggregate")
        leftover = res.extra["phase1_remaining"]
        report.add_row(
            alpha,
            res.extra["phase1_rounds"],
            leftover,
            leftover / n,
            res.gap,
            res.rounds,
        )
        ok = ok and res.complete
    report.passed = ok
    report.notes.append(
        "smaller alpha: fewer, more conservative rounds but larger "
        "leftover; larger alpha: more rounds with thresholds hugging the "
        "mean (underload risk).  alpha = 2/3 is the paper's balance."
    )
    return report


def exp_a2(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """A2 — ablation: is the A_light handoff necessary?"""
    report = ExperimentReport(
        exp_id="A2",
        title="Ablation: threshold rounds without the phase-2 handoff",
        claim="Section 3: after phase 1, O(n) stragglers remain — "
        "threshold rounds alone cannot finish in O(log log(m/n))",
        columns=[
            "variant",
            "rounds",
            "complete",
            "unallocated",
            "gap (complete runs)",
        ],
    )
    n = 1024
    ratio = 2**10 if scale == "quick" else 2**14
    m = n * ratio
    mode = "perball" if scale == "quick" else "aggregate"
    with_handoff = run_heavy(m, n, seed=seed, handoff=True, mode=mode)  # type: ignore[arg-type]
    without = run_heavy(m, n, seed=seed, handoff=False, mode=mode)  # type: ignore[arg-type]
    report.add_row(
        "phase1 + A_light",
        with_handoff.rounds,
        with_handoff.complete,
        with_handoff.unallocated,
        with_handoff.gap,
    )
    report.add_row(
        "phase1 only",
        without.rounds,
        without.complete,
        without.unallocated,
        "n/a",
    )
    report.passed = (
        with_handoff.complete
        and not without.complete
        and without.unallocated > 0
        and without.unallocated <= 8 * n
    )
    report.notes.append(
        "phase 1 alone strands Theta(n) balls (the schedule's estimate "
        "floor); A_light places them in log* n + O(1) extra rounds."
    )
    return report
