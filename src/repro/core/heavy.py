"""Algorithm ``A_heavy`` — the paper's main contribution (Theorem 1/6).

Structure (Section 3):

* **Phase 1** (threshold rounds): every unallocated ball contacts one
  uniformly random bin; bins accept up to ``T_i - ℓ`` requests with the
  oblivious schedule ``T_i = m/n - (m̃_i/n)^{2/3}``,
  ``m̃_{i+1} = m̃_i^{2/3} n^{1/3}``.  The phase runs until the estimate
  drops to ``m̃ <= stop_factor * n`` — ``O(log log(m/n))`` rounds —
  after which ``O(n)`` balls remain w.h.p. (Claims 1-4).
* **Phase 2** (handoff): remaining balls run ``A_light`` over ``g``
  virtual bins per real bin (Theorem 5), adding at most ``2 g = O(1)``
  load per real bin in ``log* n + O(1)`` rounds.

Execution modes:

* ``"perball"`` — exact vectorized semantics with full per-ball message
  accounting (default; ``m`` up to ~10^7);
* ``"aggregate"`` — per-bin multinomial request counts, ``O(n)``/round;
  identical in distribution for loads/rounds/per-bin messages, but
  per-ball counters are not tracked (``m`` up to ~10^12).  Phase 2
  always runs per-ball (only ``O(n)`` balls remain).
* ``"engine"`` — the object-level reference engine
  (:mod:`repro.core.heavy_agents`); small instances only.

The generic :func:`run_threshold_protocol` underlies both ``A_heavy``
(paper schedule) and the Section 1.1 negative example (fixed schedule,
experiment F2) and the ablation schedules (experiment A1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Literal, Optional

import numpy as np

from repro.api.spec import (
    register_allocator,
    register_dynamic,
    register_replicator,
)
from repro.core.thresholds import PaperSchedule, ThresholdSchedule
from repro.dynamic.placement import DynamicPlacement
from repro.fastpath.buffers import DtypePolicy, RoundBuffers
from repro.fastpath.roundstate import RoundState
from repro.light.lw16 import LightConfig
from repro.light.virtual import run_light_on_virtual_bins
from repro.result import AllocationResult
from repro.simulation.metrics import MessageCounter, RoundMetrics, RunMetrics
from repro.telemetry import current_telemetry
from repro.utils.seeding import RngFactory
from repro.utils.validation import ensure_m_n
from repro.workloads import Workload, as_workload, bind_workload

__all__ = [
    "HeavyConfig",
    "dynamic_heavy",
    "replicate_heavy",
    "run_heavy",
    "run_threshold_protocol",
    "run_threshold_protocol_batched",
    "ThresholdPhaseOutcome",
]

Mode = Literal["perball", "aggregate", "engine"]


def _memory_plan(
    m: int,
    n: int,
    chunk_size: Optional[int],
    buffers: Optional[RoundBuffers],
    base: int = 0,
) -> tuple[Optional[RoundBuffers], Optional[DtypePolicy]]:
    """Resolve the (arena, dtype policy) pair for one kernel run.

    ``chunk_size`` without an arena creates one sized to that tile;
    engaging the memory path (either way) also narrows the storage
    dtypes wherever the instance fits.  Both are value-preserving —
    the scaling-equivalence tests pin bitwise identity with the
    default path — so there is no separate opt-in for narrowing.

    ``base`` is the residual population already in the bins (dynamic
    placement): per-bin loads are bounded by the *population*
    ``m + base``, not the cohort, so narrowing must budget for it.
    """
    if buffers is None and chunk_size is not None:
        buffers = RoundBuffers(chunk_size)
    policy = DtypePolicy.narrow(m + base, n) if buffers is not None else None
    return buffers, policy


@dataclass(frozen=True)
class HeavyConfig:
    """Tunables for ``A_heavy``.

    Attributes
    ----------
    stop_factor:
        Phase 1 ends when ``m̃_i <= stop_factor * n`` (paper: the loop
        exits once the estimate is ``O(n)``; 2 matches Claim 3's ``i_1``).
    light:
        Configuration of the phase-2 ``A_light`` run.
    max_rounds:
        Safety cap on total rounds.
    track_per_ball:
        Maintain per-ball message counters in per-ball mode (arrays of
        size ``m``; disable for very large ``m`` to save memory).
    """

    stop_factor: float = 2.0
    light: LightConfig = LightConfig()
    max_rounds: int = 100_000
    track_per_ball: bool = True


@dataclass
class ThresholdPhaseOutcome:
    """Result of running just the threshold rounds (phase 1)."""

    loads: np.ndarray
    remaining: int
    remaining_ids: Optional[np.ndarray]  # None in aggregate mode
    rounds: int
    metrics: RunMetrics
    counter: Optional[MessageCounter]
    total_messages: int
    thresholds: list[int]
    #: Per-bin weighted intake (None for unit-weight workloads).
    weighted_loads: Optional[np.ndarray] = None


def run_threshold_protocol(
    m: int,
    n: int,
    schedule: ThresholdSchedule,
    *,
    rng_factory: Optional[RngFactory] = None,
    mode: Mode = "perball",
    max_rounds: Optional[int] = None,
    track_per_ball: bool = True,
    stop_when_empty: bool = True,
    workload=None,
    initial_loads: Optional[np.ndarray] = None,
    skip_saturated_rounds: bool = False,
    start_round: int = 0,
    chunk_size: Optional[int] = None,
    buffers: Optional[RoundBuffers] = None,
) -> ThresholdPhaseOutcome:
    """Run the symmetric threshold protocol under any oblivious schedule.

    Each round: active balls contact one bin drawn from the workload's
    choice distribution (uniform by default); bins accept up to
    ``schedule.threshold(i) - load`` (per-bin thresholds scaled by the
    workload's capacity profile).  The run ends when the schedule's
    :meth:`~repro.core.thresholds.ThresholdSchedule.phase1_rounds` are
    exhausted, all balls are allocated (if ``stop_when_empty``), or
    ``max_rounds`` is hit — whichever comes first.

    Message accounting counts one request per active ball per round plus
    one accept per allocated ball; rejections are silent, matching the
    paper's protocol (Theorem 6 counts only sent messages).

    The round body is three calls into the shared
    :class:`~repro.fastpath.roundstate.RoundState` kernels; the only
    protocol policies are the oblivious threshold schedule and the
    workload (a :class:`repro.workloads.Workload`, spec string, or an
    already-bound workload from a composing caller; the default uniform
    workload leaves the run bitwise-identical to the pre-workload code).

    Dynamic placement (the incremental-rebalance backend):
    ``initial_loads`` starts the bins at a residual occupancy, with
    only the ``m`` new balls active — the heavy-regime requirement then
    applies to the *population*, not the cohort, so ``m < n`` cohorts
    are legal.  ``skip_saturated_rounds`` skips any scheduled round
    whose total residual capacity is zero *without sampling anything*:
    no request messages, no RNG draws, no metrics row — such a round
    would reject every request, and an incremental epoch whose early
    thresholds sit below the residents' loads would otherwise burn
    rounds and messages on them.  A schedule that stays saturated
    throughout therefore terminates with zero draws (the regression
    the saturation tests pin).  ``start_round`` enters the schedule at
    a later index (the incremental fast-forward: early rounds exist to
    whittle a huge unallocated estimate that a small cohort never
    had).  All three default to the historical behavior, bitwise.

    Memory path: ``chunk_size`` streams per-ball choice draws through
    bounded tiles into a :class:`~repro.fastpath.buffers.RoundBuffers`
    arena (pass ``buffers`` to share an existing arena across runs,
    e.g. from the dynamic epoch loop), and either engages the
    int32-narrowing :class:`~repro.fastpath.buffers.DtypePolicy`.
    Loads returned in the outcome are widened back to int64 so every
    downstream consumer sees the historical dtype; the values are
    bitwise-identical either way.
    """
    m, n = ensure_m_n(m, n, require_heavy=initial_loads is None)
    if mode not in ("perball", "aggregate"):
        raise ValueError(f"mode must be 'perball' or 'aggregate', got {mode!r}")
    factory = rng_factory or RngFactory()
    bound = bind_workload(workload, m, n, factory, granularity=mode)
    rng = factory.stream("threshold", "choices")
    accept_rng = factory.stream("threshold", "accept")

    planned = schedule.phase1_rounds()
    cap_rounds = max_rounds if max_rounds is not None else 100_000
    if planned is not None:
        cap_rounds = min(cap_rounds, planned)

    base = 0 if initial_loads is None else int(np.sum(initial_loads))
    arena, policy = _memory_plan(m, n, chunk_size, buffers, base)
    state = RoundState(
        m,
        n,
        granularity=mode,
        track_messages=(mode == "perball" and track_per_ball),
        weights=bound.weights,
        weight_sum_sampler=bound.weight_sum_sampler,
        initial_loads=initial_loads,
        buffers=arena,
        dtype_policy=policy,
    )
    thresholds: list[int] = []

    # ``round_index`` walks the schedule; ``state.rounds`` counts only
    # executed rounds.  They coincide unless saturated rounds are
    # skipped or the schedule is entered late.
    if start_round < 0:
        raise ValueError(f"start_round must be >= 0, got {start_round}")
    # Telemetry: the threshold phase is one span, each executed round a
    # child span feeding the round-duration histogram.  Off is one
    # ``is not None`` branch per round; nothing here touches the RNG.
    tele = current_telemetry()
    phase_start = tele.begin() if tele is not None else 0.0
    round_index = start_round
    while round_index < cap_rounds:
        if stop_when_empty and state.active_count == 0:
            break
        threshold = schedule.threshold(round_index)
        capacity = np.maximum(bound.capacities(threshold) - state.loads, 0)
        if skip_saturated_rounds and not np.any(capacity > 0):
            round_index += 1
            continue
        thresholds.append(threshold)
        if tele is not None:
            round_start = tele.begin()
        batch = state.sample_contacts(rng, pvals=bound.pvals)
        decision = state.group_and_accept(batch, capacity, accept_rng)
        state.commit_and_revoke(batch, decision, threshold=threshold)
        if tele is not None:
            seconds = tele.complete(
                "round",
                round_start,
                cat="kernel",
                round=round_index,
                threshold=threshold,
            )
            tele.observe("kernel.round.seconds", seconds)
        round_index += 1
    if tele is not None:
        tele.complete(
            "phase",
            phase_start,
            cat="kernel",
            phase="threshold",
            rounds=state.rounds,
            remaining=state.active_count,
        )

    return ThresholdPhaseOutcome(
        # Widen narrow-policy loads back to the historical int64 at the
        # boundary (no copy on the default path).
        loads=state.loads.astype(np.int64, copy=False),
        remaining=state.active_count,
        remaining_ids=state.active,
        rounds=state.rounds,
        metrics=state.metrics,
        counter=state.counter,
        total_messages=state.total_messages,
        thresholds=thresholds,
        weighted_loads=state.weighted_loads,
    )


@register_allocator(
    "heavy",
    summary="A_heavy: adaptive thresholds, then A_light on stragglers",
    paper_ref="Theorem 1",
    aliases=("a_heavy",),
    modes=("perball", "aggregate", "engine"),
    kernel_backed=True,
    workload_capable=True,
    config_type=HeavyConfig,
)
def run_heavy(
    m: int,
    n: int,
    *,
    seed=None,
    mode: Mode = "perball",
    config: HeavyConfig = HeavyConfig(),
    schedule: Optional[ThresholdSchedule] = None,
    handoff: bool = True,
    workload: Optional[Workload] = None,
    chunk_size: Optional[int] = None,
    buffers: Optional[RoundBuffers] = None,
) -> AllocationResult:
    """Allocate ``m`` balls into ``n`` bins with Algorithm ``A_heavy``.

    Parameters
    ----------
    m, n:
        Instance size; requires ``m >= n`` (heavily loaded regime; for
        ``m < n`` use :func:`repro.light.run_light` directly).
    seed:
        Reproducibility seed (int, SeedSequence, Generator, or None).
    mode:
        ``"perball"`` (exact, default), ``"aggregate"`` (``O(n)``/round,
        no per-ball counters), or ``"engine"`` (object-level reference).
    config:
        Algorithm tunables (stop factor, light-phase config, caps).
    schedule:
        Override the threshold schedule (default: the paper's
        :class:`~repro.core.thresholds.PaperSchedule`).  Used by the
        ablation experiments.
    handoff:
        Run phase 2 (``A_light``) on the leftover balls.  Disabling it
        (experiment A2) leaves stragglers unallocated and sets
        ``complete=False`` on the result.
    workload:
        Optional :class:`repro.workloads.Workload` (or spec string,
        e.g. ``"zipf:1.1+geomw:0.5"``): skewed choice distribution for
        the phase-1 contacts, per-bin threshold scaling from the
        capacity profile, and weighted-load tracking.  Phase 2 always
        rebalances the stragglers uniformly over virtual bins (its
        correctness relies on the symmetric contact pattern); straggler
        weights still land in the weighted-load accounting.  The
        default (uniform) workload leaves the run bitwise-identical to
        the pre-workload implementation.  Engine mode supports the
        uniform workload only.
    chunk_size:
        Per-ball memory path: stream phase-1 choice draws through
        tiles of this many elements into a reused arena, with int32
        narrowing where the instance fits (see
        :mod:`repro.fastpath.buffers`).  Values are bitwise-identical
        to the default path; with
        ``config=HeavyConfig(track_per_ball=False)`` this is what
        makes one-shot ``m = 10**8`` per-ball runs fit in a few GB
        (see ``docs/performance.md``).  Ignored by aggregate/engine
        kernels (they never allocate per-ball arrays).
    buffers:
        Share an existing :class:`~repro.fastpath.buffers.RoundBuffers`
        arena across runs (long-lived callers: the dynamic epoch loop,
        the allocator service).  Implies the same value-preserving
        dtype narrowing as ``chunk_size``.

    Returns
    -------
    AllocationResult
        With ``extra`` keys ``phase1_rounds``, ``phase2_rounds``,
        ``phase1_remaining`` (balls left for ``A_light``) and
        ``light_used_fallback`` (plus ``workload`` for non-uniform
        workloads).
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    if mode == "engine":
        if as_workload(workload) is not None:
            raise ValueError(
                "engine mode supports the uniform workload only; "
                "use mode='perball' or 'aggregate' for non-uniform "
                "workloads"
            )
        from repro.core.heavy_agents import run_heavy_engine

        return run_heavy_engine(
            m, n, seed=seed, config=config, schedule=schedule, handoff=handoff
        )
    factory = RngFactory(seed)
    bound = bind_workload(workload, m, n, factory, granularity=mode)
    sched = schedule or PaperSchedule(m, n, stop_factor=config.stop_factor)
    phase1 = run_threshold_protocol(
        m,
        n,
        sched,
        rng_factory=factory,
        mode=mode,
        max_rounds=config.max_rounds,
        track_per_ball=config.track_per_ball,
        workload=bound,
        chunk_size=chunk_size,
        buffers=buffers,
    )
    algorithm = (
        "heavy" if schedule is None else f"threshold[{type(sched).__name__}]"
    )
    return _finish_heavy_run(
        m,
        n,
        phase1=phase1,
        factory=factory,
        bound=bound,
        config=config,
        handoff=handoff,
        algorithm=algorithm,
    )


def _finish_heavy_run(
    m: int,
    n: int,
    *,
    phase1: ThresholdPhaseOutcome,
    factory: RngFactory,
    bound,
    config: HeavyConfig,
    handoff: bool,
    algorithm: str,
) -> AllocationResult:
    """Phase 2 (``A_light`` handoff) and result assembly.

    Shared verbatim by the sequential :func:`run_heavy` and the
    trial-batched :func:`replicate_heavy` (which runs phase 1 in
    lock-step across trials, then finishes each trial through this
    helper) — one implementation is what keeps the two paths
    bitwise-identical.
    """
    loads = phase1.loads.copy()
    total_messages = phase1.total_messages
    rounds = phase1.rounds
    extra: dict = {
        "phase1_rounds": phase1.rounds,
        "phase1_remaining": phase1.remaining,
        "thresholds": phase1.thresholds,
        "light_used_fallback": False,
        "phase2_rounds": 0,
    }
    counter = phase1.counter
    metrics = phase1.metrics
    weighted_loads = (
        phase1.weighted_loads.copy()
        if phase1.weighted_loads is not None
        else None
    )

    unallocated = phase1.remaining
    if handoff and unallocated > 0:
        tele = current_telemetry()
        light_start = tele.begin() if tele is not None else 0.0
        real_loads, light, vmap = run_light_on_virtual_bins(
            unallocated,
            n,
            seed=factory.stream("light"),
            config=config.light,
        )
        if tele is not None:
            tele.complete(
                "phase",
                light_start,
                cat="kernel",
                phase="light",
                stragglers=unallocated,
                rounds=light.rounds,
            )
        loads += real_loads
        if weighted_loads is not None:
            if bound.weights is not None:
                # Per-ball mode: the stragglers keep the weights they
                # were born with; fold them through the light phase's
                # virtual-bin assignment.
                np.add.at(
                    weighted_loads,
                    vmap.to_real(light.assignment),
                    bound.weights[phase1.remaining_ids],
                )
            else:
                # Aggregate mode: straggler weights are fresh i.i.d.
                # draws (exchangeability makes this identical in law).
                weighted_loads += bound.weight_sum_sampler(real_loads)
        rounds += light.rounds
        total_messages += light.total_messages
        extra["phase2_rounds"] = light.rounds
        extra["light_used_fallback"] = light.used_fallback
        extra["virtual_factor"] = vmap.factor
        # Merge per-round progress into the global metrics with offset
        # round numbers.
        for r in light.metrics.rounds:
            metrics.add_round(
                RoundMetrics(
                    round_no=phase1.rounds + r.round_no,
                    unallocated_start=r.unallocated_start,
                    requests_sent=r.requests_sent,
                    accepts_sent=r.accepts_sent,
                    rejects_sent=r.rejects_sent,
                    commits=r.commits,
                    unallocated_end=r.unallocated_end,
                    max_load=int(loads.max(initial=0)),
                )
            )
        if counter is not None and phase1.remaining_ids is not None:
            # Phase-2 messages by global ball id; bin receives are folded
            # through the virtual map (uniform over virtual bins means
            # uniform over real bins).
            ids = phase1.remaining_ids
            counter.ball_sent[ids] += light.ball_messages  # sends+receives folded
            counter.total += light.total_messages
            assigned_real = vmap.to_real(light.assignment)
            np.add.at(counter.bin_received, assigned_real, 1)
        unallocated = 0

    workload_record = bound.extra_record(weighted_loads)
    if workload_record is not None:
        extra["workload"] = workload_record

    result = AllocationResult(
        algorithm=algorithm,
        m=m,
        n=n,
        loads=loads,
        rounds=rounds,
        metrics=metrics,
        messages=counter,
        total_messages=total_messages,
        complete=unallocated == 0,
        unallocated=unallocated,
        seed_entropy=factory.root_entropy,
        extra=extra,
    )
    return result


def run_threshold_protocol_batched(
    m: int,
    n: int,
    schedule: ThresholdSchedule,
    *,
    factories: list[RngFactory],
    bounds: list,
    max_rounds: Optional[int] = None,
) -> list[ThresholdPhaseOutcome]:
    """Phase 1 for ``T`` seeded replications in one lock-step pass.

    Trial ``t`` draws from its own ``("threshold", "choices")`` stream
    of ``factories[t]`` (and its own workload weights stream through
    ``bounds[t]``), so its outcome is bitwise-identical to
    :func:`run_threshold_protocol` in aggregate mode with that factory
    — lock-stepping is possible because the schedule is *oblivious*:
    round ``i``'s threshold depends only on ``i``, never on a trial's
    state.  Trials whose active set empties drop out of the batch mask
    and stop consuming their streams, exactly where their sequential
    loop would have exited.
    """
    trials = len(factories)
    if len(bounds) != trials:
        raise ValueError("need one bound workload per factory")
    rngs = [f.stream("threshold", "choices") for f in factories]
    # The sequential path also creates the accept stream up front; the
    # aggregate kernels never draw from it, so creation is skipped here.
    samplers = [b.weight_sum_sampler for b in bounds]
    weighted = any(s is not None for s in samplers)
    pvals = bounds[0].pvals

    planned = schedule.phase1_rounds()
    cap_rounds = max_rounds if max_rounds is not None else 100_000
    if planned is not None:
        cap_rounds = min(cap_rounds, planned)

    state = RoundState(
        m,
        n,
        granularity="aggregate",
        trials=trials,
        weight_sum_sampler=samplers if weighted else None,
    )
    thresholds: list[int] = []
    while state.rounds < cap_rounds and state.any_active:
        threshold = schedule.threshold(state.rounds)
        thresholds.append(threshold)
        capacity = np.maximum(bounds[0].capacities(threshold) - state.loads, 0)
        batch = state.sample_contacts(rngs, pvals=pvals)
        decision = state.group_and_accept(batch, capacity)
        state.commit_and_revoke(batch, decision, threshold=threshold)

    outcomes = []
    for t in range(trials):
        executed = int(state.trial_rounds[t])
        outcomes.append(
            ThresholdPhaseOutcome(
                loads=state.loads[t],
                remaining=int(state.active_counts[t]),
                remaining_ids=None,
                rounds=executed,
                metrics=state.trial_metrics[t],
                counter=None,
                total_messages=int(state.total_messages[t]),
                thresholds=thresholds[:executed],
                weighted_loads=(
                    state.weighted_loads[t]
                    if state.weighted_loads is not None
                    else None
                ),
            )
        )
    return outcomes


@register_replicator("heavy", equivalent_mode="aggregate")
def replicate_heavy(
    m: int,
    n: int,
    *,
    trials: int,
    seed_seqs,
    workload: Optional[Workload] = None,
    config: HeavyConfig = HeavyConfig(),
    schedule: Optional[ThresholdSchedule] = None,
    handoff: bool = True,
) -> list[AllocationResult]:
    """Run ``trials`` seeded replications of ``A_heavy`` in one batch.

    Phase 1 (threshold rounds) advances all trials in lock-step on the
    trial-batched aggregate kernels; phase 2 hands each trial's ``O(n)``
    stragglers to its own ``A_light`` run, exactly as the sequential
    algorithm does.  Trial ``t`` is bitwise-identical to
    ``run_heavy(m, n, seed=seed_seqs[t], mode="aggregate", ...)``.
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    if len(seed_seqs) != trials:
        raise ValueError(f"need {trials} seed sequences, got {len(seed_seqs)}")
    factories = [RngFactory(s) for s in seed_seqs]
    bounds = [
        bind_workload(workload, m, n, f, granularity="aggregate")
        for f in factories
    ]
    sched = schedule or PaperSchedule(m, n, stop_factor=config.stop_factor)
    phase1s = run_threshold_protocol_batched(
        m, n, sched, factories=factories, bounds=bounds,
        max_rounds=config.max_rounds,
    )
    algorithm = (
        "heavy" if schedule is None else f"threshold[{type(sched).__name__}]"
    )
    return [
        _finish_heavy_run(
            m,
            n,
            phase1=phase1,
            factory=factory,
            bound=bound,
            config=config,
            handoff=handoff,
            algorithm=algorithm,
        )
        for phase1, factory, bound in zip(phase1s, factories, bounds)
    ]


@register_dynamic("heavy")
def dynamic_heavy(
    m: int,
    n: int,
    *,
    initial_loads: np.ndarray,
    seed=None,
    workload: Optional[Workload] = None,
    mode: Mode = "aggregate",
    config: HeavyConfig = HeavyConfig(),
    handoff: bool = True,
    settle_rounds: int = 2,
    drain_settle: bool = False,
    chunk_size: Optional[int] = None,
    buffers: Optional[RoundBuffers] = None,
) -> DynamicPlacement:
    """Place a cohort of ``m`` new balls against residual bin loads.

    The incremental form of ``A_heavy``: the paper's oblivious
    threshold schedule is computed for the *population* (residents
    plus cohort) and the cohort runs the threshold rounds against the
    residents' loads (``RoundState(initial_loads=...)``).  Thresholds
    that sit below the residents' current loads yield zero capacity
    and are skipped without sampling (``skip_saturated_rounds``), so
    the cost of an epoch — messages and draws — scales with the
    cohort, not the population.

    After the schedule, up to ``settle_rounds`` extra threshold rounds
    run at the population average ``ceil(total/n)`` — the paper's own
    load cap — before stragglers ride the usual phase-2 ``A_light``
    handoff.  A settle round costs one message per remaining ball
    against nearly-full-cohort capacity, so it drains almost everyone
    for a fraction of the light protocol's per-ball cost; the load
    guarantee is untouched (the cap never exceeds the average, and
    ``A_light`` still bounds whatever remains by ``+2g``).

    ``drain_settle`` lifts the settle-round cap to ``max(settle_rounds,
    4n)`` with an early exit after 8 consecutive no-progress rounds.
    The phase-2 handoff is load-*oblivious* (correct on a fresh fill,
    where the threshold rounds leave the bins level by construction),
    so when an adversary has skewed the residual loads — drained a few
    bins far below the average — a fixed two-round settle hands a large
    straggler mass to ``A_light``, which then ratchets the maximum up
    every epoch.  Draining the settle phase keeps every cohort ball
    below the population-average cap whenever capacity for it exists;
    the dynamic runner turns this on automatically for adversarial and
    fault-injected regimes.  Settle draws come from the dedicated
    ``("dynamic", "settle")`` streams, so the default-off path is
    bitwise-unchanged.

    With ``settle_rounds=0``, all-zero ``initial_loads``, and
    ``m >= n`` this is exactly ``run_heavy(m, n, seed=seed,
    mode=mode)``: same streams, same schedule, same values (the
    fresh-fill anchor the 100%-churn tests pin; settle rounds draw
    from their own ``("dynamic", "settle")`` stream, so enabling them
    perturbs no phase-1 or light draw).

    ``buffers``/``chunk_size`` engage the value-preserving memory path
    (see :func:`run_heavy`); the epoch loop in
    :mod:`repro.dynamic.runner` passes one shared arena so repeated
    epochs stop churning the allocator.
    """
    initial = np.asarray(initial_loads, dtype=np.int64)
    if initial.shape != (n,):
        raise ValueError(
            f"initial_loads must have shape ({n},), got {initial.shape}"
        )
    if settle_rounds < 0:
        raise ValueError(
            f"settle_rounds must be >= 0, got {settle_rounds}"
        )
    if m == 0:
        return DynamicPlacement(
            loads=initial.copy(),
            placed=0,
            unplaced=0,
            rounds=0,
            total_messages=0,
        )
    total = m + int(initial.sum())
    ensure_m_n(total, n, require_heavy=True)
    factory = RngFactory(seed)
    bound = bind_workload(workload, m, n, factory, granularity=mode)
    sched = PaperSchedule(total, n, stop_factor=config.stop_factor)
    # Fast-forward: the schedule's early rounds whittle an unallocated
    # estimate m̃_i the cohort never had — enter at the first round
    # whose estimate is at or below the cohort size.  A fresh fill has
    # m̃_0 = m = cohort, so this reduces to the paper schedule exactly.
    planned = sched.phase1_rounds()
    start = 0
    # The relative tolerance absorbs the log-space float noise of the
    # estimate (a fresh fill has estimate(0) == m only up to rounding).
    while start < planned - 1 and sched.estimate(start) > m * (1 + 1e-9):
        start += 1
    phase1 = run_threshold_protocol(
        m,
        n,
        sched,
        rng_factory=factory,
        mode=mode,
        max_rounds=config.max_rounds,
        track_per_ball=config.track_per_ball,
        workload=bound,
        initial_loads=initial,
        skip_saturated_rounds=True,
        start_round=start,
        chunk_size=chunk_size,
        buffers=buffers,
    )
    loads = phase1.loads.copy()
    rounds = phase1.rounds
    messages = phase1.total_messages
    unplaced = phase1.remaining
    straggler_ids = phase1.remaining_ids
    weighted_loads = phase1.weighted_loads
    extra: dict = {
        "phase1_rounds": phase1.rounds,
        "phase1_remaining": phase1.remaining,
        "thresholds": phase1.thresholds,
        "settle_rounds": 0,
        "phase2_rounds": 0,
    }

    if unplaced > 0 and (settle_rounds > 0 or drain_settle):
        settle_threshold = math.ceil(total / n)
        settle_weights = (
            bound.weights[straggler_ids]
            if bound.weights is not None and straggler_ids is not None
            else None
        )
        arena, policy = _memory_plan(
            unplaced, n, chunk_size, buffers, base=total - unplaced
        )
        state = RoundState(
            unplaced,
            n,
            granularity=mode,
            initial_loads=loads,
            weights=settle_weights,
            weight_sum_sampler=bound.weight_sum_sampler,
            buffers=arena,
            dtype_policy=policy,
        )
        settle_rng = factory.stream("dynamic", "settle")
        settle_accept = factory.stream("dynamic", "settle", "accept")
        settle_cap = (
            max(settle_rounds, 4 * n) if drain_settle else settle_rounds
        )
        stale = 0
        prev_active = state.active_count
        while state.active_count > 0 and state.rounds < settle_cap:
            capacity = np.maximum(
                bound.capacities(settle_threshold) - state.loads, 0
            )
            if not np.any(capacity > 0):
                break
            batch = state.sample_contacts(settle_rng, pvals=bound.pvals)
            decision = state.group_and_accept(
                batch, capacity, settle_accept
            )
            state.commit_and_revoke(
                batch, decision, threshold=settle_threshold
            )
            if drain_settle:
                # Skewed contact distributions can aim every draw at
                # capacity-less bins; stop paying messages once the
                # drain stops making progress.
                if state.active_count == prev_active:
                    stale += 1
                    if stale >= 8:
                        break
                else:
                    stale = 0
                    prev_active = state.active_count
        # ``state`` copied ``loads`` at construction, so this is a
        # private array already; widen narrow-policy loads to int64.
        loads = state.loads.astype(np.int64, copy=False)
        rounds += state.rounds
        messages += int(state.total_messages)
        if weighted_loads is not None and state.weighted_loads is not None:
            weighted_loads = weighted_loads + state.weighted_loads
        if straggler_ids is not None and state.active is not None:
            straggler_ids = straggler_ids[state.active]
        unplaced = state.active_count
        extra["settle_rounds"] = state.rounds

    if handoff and unplaced > 0:
        real_loads, light, vmap = run_light_on_virtual_bins(
            unplaced,
            n,
            seed=factory.stream("light"),
            config=config.light,
        )
        loads += real_loads
        if weighted_loads is not None:
            if bound.weights is not None and straggler_ids is not None:
                np.add.at(
                    weighted_loads,
                    vmap.to_real(light.assignment),
                    bound.weights[straggler_ids],
                )
            elif bound.weight_sum_sampler is not None:
                weighted_loads = (
                    weighted_loads + bound.weight_sum_sampler(real_loads)
                )
        rounds += light.rounds
        messages += light.total_messages
        extra["phase2_rounds"] = light.rounds
        extra["light_used_fallback"] = light.used_fallback
        unplaced = 0
    workload_record = bound.extra_record(weighted_loads)
    if workload_record is not None:
        extra["workload"] = workload_record
    return DynamicPlacement(
        loads=loads,
        placed=m - unplaced,
        unplaced=unplaced,
        rounds=rounds,
        total_messages=messages,
        extra=extra,
    )
