"""Admission control and the gap-SLO controller.

Every ``place()`` call passes through an :class:`AdmissionPolicy`
before it may enqueue.  Three decisions come back:

* ``accept`` — enqueue, process at the normal micro-batch cadence;
* ``defer`` — enqueue, but the service is under pressure: the
  controller **widens the micro-batch watermark**, so pending events
  wait for a larger cohort.  Rounds per placement grow only
  logarithmically with cohort size (the paper's bound), so a wider
  batch amortizes the per-epoch fixed cost over more balls — messages
  *per operation* fall exactly when the per-epoch message budget is
  threatened, at the price of queueing latency;
* ``shed`` — reject the arrival outright (recorded, not queued).
  Shedding triggers on queue overflow (capacity is a hard bound) and
  on gap emergency: the observed gap crossed ``shed_gap``, so adding
  balls before the backlog drains would dig the SLO hole deeper.

Releases are never shed at all — departures *reduce* load, and a
shed release would leak occupancy forever (the resident population
would permanently exceed what the outside world believes is in the
system).  They spill past the queue capacity bound instead: capacity
is backpressure on *work admitted*, and a release is bookkeeping that
shrinks the system.  Before PR 9 a full queue shed both kinds — the
occupancy-leak bug the release-spill regression test pins.

The :class:`GapSloController` holds the feedback state: the last
observed gap and message cost update a batch-widening multiplier
(``widen``), doubled while the SLO is threatened and decayed by one
step per healthy flush.  All state is a pair of small floats — the
controller replays bitwise with the rest of the service.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

__all__ = [
    "ACCEPT",
    "DEFER",
    "SHED",
    "AdmissionPolicy",
    "GapSloController",
]

#: Admission decisions (strings, so records JSON-serialize as-is).
ACCEPT = "accept"
DEFER = "defer"
SHED = "shed"


@dataclass(frozen=True)
class AdmissionPolicy:
    """Thresholds for accept/defer/shed decisions.

    Attributes
    ----------
    gap_slo:
        Target max-load gap.  While the observed gap exceeds it, new
        arrivals are deferred (batches widen).  ``None`` disables the
        gap controller entirely — queue capacity is then the only
        backpressure (the configuration the bitwise-vs-``run_dynamic``
        pin uses, since shedding would change cohort sizes).
    shed_headroom:
        Arrivals are shed once the gap exceeds
        ``gap_slo + shed_headroom`` (the emergency line).
    defer_depth:
        Queue-fullness fraction beyond which arrivals are deferred
        even while the gap is healthy (the queue itself signals that
        batches should widen to catch up).
    message_budget:
        Optional per-operation message budget: when a flush spends
        more than this many messages per processed ball, the
        controller widens batches to amortize (``None`` disables).
    max_widen:
        Cap on the batch-widening multiplier (power of two).
    """

    gap_slo: Optional[float] = None
    shed_headroom: float = 8.0
    defer_depth: float = 0.5
    message_budget: Optional[float] = None
    max_widen: int = 8

    def __post_init__(self) -> None:
        if self.gap_slo is not None and self.gap_slo <= 0:
            raise ValueError(f"gap_slo must be > 0, got {self.gap_slo}")
        if self.shed_headroom < 0:
            raise ValueError(
                f"shed_headroom must be >= 0, got {self.shed_headroom}"
            )
        if not 0.0 < self.defer_depth <= 1.0:
            raise ValueError(
                f"defer_depth must lie in (0, 1], got {self.defer_depth}"
            )
        if self.message_budget is not None and self.message_budget <= 0:
            raise ValueError(
                f"message_budget must be > 0, got {self.message_budget}"
            )
        if self.max_widen < 1:
            raise ValueError(
                f"max_widen must be >= 1, got {self.max_widen}"
            )


class GapSloController:
    """Feedback state between the flush path and admission decisions."""

    def __init__(self, policy: AdmissionPolicy) -> None:
        self.policy = policy
        #: Batch-widening multiplier (1 = nominal micro-batches).
        self.widen = 1
        #: Gap observed at the last flush (None before the first).
        self.last_gap: Optional[float] = None
        #: Messages per processed ball at the last flush.
        self.last_cost: Optional[float] = None

    # -- flush feedback -------------------------------------------------

    def observe(self, gap: float, messages: int, processed: int) -> None:
        """Fold one flush's outcome into the controller state."""
        self.last_gap = gap
        self.last_cost = messages / processed if processed else None
        threatened = (
            self.policy.gap_slo is not None and gap > self.policy.gap_slo
        ) or (
            self.policy.message_budget is not None
            and self.last_cost is not None
            and self.last_cost > self.policy.message_budget
        )
        if threatened:
            self.widen = min(self.policy.max_widen, self.widen * 2)
        elif self.widen > 1:
            self.widen //= 2

    # -- admission ------------------------------------------------------

    def decide(self, kind: str, count: int, queue) -> str:
        """Admission decision for one incoming event.

        ``queue`` is the service's :class:`~repro.service.events
        .EventQueue`; capacity overflow sheds places (releases spill
        past the bound — shedding one would leak occupancy forever).
        """
        if kind == "release":
            # Departures always help the gap and their loss is
            # unrecoverable; they are accepted unconditionally.
            return ACCEPT
        if queue.pending + count > queue.capacity:
            return SHED
        slo = self.policy.gap_slo
        if slo is not None and self.last_gap is not None:
            if self.last_gap > slo + self.policy.shed_headroom:
                return SHED
            if self.last_gap > slo:
                return DEFER
        if self.widen > 1 or queue.depth > self.policy.defer_depth:
            return DEFER
        return ACCEPT
