"""The naive single-choice process: every ball picks one uniform bin.

This is the paper's stated point of comparison: for ``m >= n log n``
the max load is ``m/n + Theta(sqrt((m/n) log n))`` w.h.p. — the
``sqrt``-excess that ``A_heavy`` eliminates.  One round, one message per
ball.

Modes mirror the main algorithm: ``"perball"`` samples explicit choices
(and can return the assignment); ``"aggregate"`` samples the occupancy
vector directly from the multinomial distribution — identical in law,
``O(n)`` memory.
"""

from __future__ import annotations

from typing import Literal

import numpy as np

from repro.api.spec import register_allocator
from repro.fastpath.sampling import multinomial_occupancy, sample_uniform_choices
from repro.result import AllocationResult
from repro.simulation.metrics import MessageCounter, RoundMetrics, RunMetrics
from repro.utils.seeding import RngFactory
from repro.utils.validation import ensure_m_n

__all__ = ["run_single_choice"]


@register_allocator(
    "single",
    summary="naive one-shot uniform random allocation",
    paper_ref="baseline",
    aliases=("single_choice", "one_choice"),
    modes=("perball", "aggregate"),
)
def run_single_choice(
    m: int,
    n: int,
    *,
    seed=None,
    mode: Literal["perball", "aggregate"] = "perball",
) -> AllocationResult:
    """One-shot uniform random allocation.

    Parameters
    ----------
    m, n:
        Instance size (no heaviness requirement).
    seed:
        Reproducibility seed.
    mode:
        ``"perball"`` (explicit choices, per-ball accounting) or
        ``"aggregate"`` (multinomial occupancy, ``O(n)`` memory).
    """
    m, n = ensure_m_n(m, n)
    factory = RngFactory(seed)
    rng = factory.stream("single", "choices")
    metrics = RunMetrics(m, n)
    counter = None

    if mode == "perball":
        choices = sample_uniform_choices(m, n, rng)
        loads = np.bincount(choices, minlength=n).astype(np.int64)
        counter = MessageCounter(m, n)
        counter.record_bulk_ball_to_bin(choices, np.arange(m, dtype=np.int64))
    elif mode == "aggregate":
        loads = multinomial_occupancy(m, n, rng)
    else:
        raise ValueError(f"mode must be 'perball' or 'aggregate', got {mode!r}")

    metrics.add_round(
        RoundMetrics(
            round_no=0,
            unallocated_start=m,
            requests_sent=m,
            accepts_sent=m,
            rejects_sent=0,
            commits=m,
            unallocated_end=0,
            max_load=int(loads.max(initial=0)),
        )
    )
    return AllocationResult(
        algorithm="single-choice",
        m=m,
        n=n,
        loads=loads,
        rounds=1,
        metrics=metrics,
        messages=counter,
        total_messages=m,
        seed_entropy=factory.root_entropy,
    )
