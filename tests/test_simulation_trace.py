"""Tests for the engine trace recorder."""

import numpy as np
import pytest

from repro.simulation.trace import RoundTrace, TraceRecorder, render_trace
from tests.test_simulation_engine import CappedBin, OneShotBall, build


class TestTraceRecorder:
    def test_records_every_round(self):
        engine = build(100, 20, bin_cls=CappedBin, seed=3)
        recorder = TraceRecorder(engine)
        out = engine.run()
        assert len(recorder.events) == out.rounds
        assert recorder.events[0].active_before == 100

    def test_progress_consistent_with_metrics(self):
        engine = build(200, 50, bin_cls=CappedBin, seed=4)
        recorder = TraceRecorder(engine)
        engine.run()
        for ev, metrics in zip(recorder.events, engine.metrics.rounds):
            assert ev.requests == metrics.requests_sent
            assert ev.commits == metrics.commits
            assert ev.active_after == metrics.unallocated_end

    def test_busiest_bin_tracked(self):
        engine = build(500, 10, seed=5)
        recorder = TraceRecorder(engine)
        engine.run()
        first = recorder.events[0]
        assert 0 <= first.busiest_bin < 10
        # with 500 requests over 10 bins, the hottest bin saw >= mean
        assert first.busiest_bin_requests >= 50

    def test_detach_stops_recording(self):
        engine = build(100, 50, bin_cls=CappedBin, seed=6)
        recorder = TraceRecorder(engine)
        engine.step()
        recorder.detach()
        engine.step()
        assert len(recorder.events) == 1

    def test_engine_outcome_unchanged_by_tracing(self):
        plain = build(150, 30, bin_cls=CappedBin, seed=7).run()
        traced_engine = build(150, 30, bin_cls=CappedBin, seed=7)
        TraceRecorder(traced_engine)
        traced = traced_engine.run()
        assert np.array_equal(plain.loads, traced.loads)


class TestRenderTrace:
    def _events(self, k=3):
        return [
            RoundTrace(
                round_no=i,
                active_before=100 - 10 * i,
                requests=100 - 10 * i,
                accepts=10,
                rejects=0,
                commits=10,
                active_after=90 - 10 * i,
                max_load=i + 1,
                busiest_bin=2,
                busiest_bin_requests=17,
            )
            for i in range(k)
        ]

    def test_renders_rows(self):
        text = render_trace(self._events())
        assert "rnd" in text
        assert text.count("\n") == 3  # header + 3 rows

    def test_max_rounds_truncates(self):
        text = render_trace(self._events(5), max_rounds=2)
        assert "more rounds shown" in text

    def test_contains_hot_bin(self):
        text = render_trace(self._events(1))
        assert "(17 rx)" in text
