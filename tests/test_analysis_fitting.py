"""Tests for the shape-claim fitting helpers."""

import math

import numpy as np
import pytest

from repro.analysis.fitting import (
    PREDICTED_ROUNDS_SLOPE,
    fit_linear,
    fit_loglog_rounds,
    fit_power_law,
)


class TestLinearFit:
    def test_exact_line(self):
        fit = fit_linear([0, 1, 2, 3], [1, 3, 5, 7])
        assert fit.slope == pytest.approx(2.0)
        assert fit.intercept == pytest.approx(1.0)
        assert fit.r_squared == pytest.approx(1.0)

    def test_predict(self):
        fit = fit_linear([0, 1], [0, 2])
        assert fit.predict(5) == pytest.approx(10.0)

    def test_noisy_line_r2_below_one(self, rng):
        x = np.linspace(0, 10, 50)
        y = 3 * x + rng.normal(0, 1.0, size=50)
        fit = fit_linear(x, y)
        assert 2.5 < fit.slope < 3.5
        assert 0.9 < fit.r_squared <= 1.0

    def test_too_few_points(self):
        with pytest.raises(ValueError):
            fit_linear([1], [1])

    def test_constant_x_rejected(self):
        with pytest.raises(ValueError):
            fit_linear([2, 2, 2], [1, 2, 3])

    def test_mismatched_lengths(self):
        with pytest.raises(ValueError):
            fit_linear([1, 2], [1, 2, 3])

    def test_str(self):
        assert "R^2" in str(fit_linear([0, 1], [0, 1]))


class TestPowerLawFit:
    def test_recovers_exponent(self):
        x = np.array([1, 2, 4, 8, 16, 32], dtype=float)
        y = 3.0 * x**0.5
        fit = fit_power_law(x, y)
        assert fit.exponent == pytest.approx(0.5, abs=1e-9)
        assert fit.coefficient == pytest.approx(3.0, rel=1e-9)
        assert fit.r_squared == pytest.approx(1.0)

    def test_recovers_sqrt_gap_shape(self, rng):
        """The naive single-choice gap ~ sqrt(m/n): fitted exponent near
        0.5 over a synthetic sweep with noise."""
        ratios = np.array([16, 64, 256, 1024, 4096], dtype=float)
        gaps = 2.5 * np.sqrt(ratios) * rng.uniform(0.9, 1.1, size=5)
        fit = fit_power_law(ratios, gaps)
        assert 0.4 < fit.exponent < 0.6

    def test_predict(self):
        fit = fit_power_law([1, 2, 4], [2, 4, 8])
        assert fit.predict(16) == pytest.approx(32.0, rel=1e-9)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            fit_power_law([0, 1], [1, 2])
        with pytest.raises(ValueError):
            fit_power_law([1, 2], [-1, 2])


class TestRoundsFit:
    def test_slope_matches_theory_on_schedule(self):
        """The phase-1 recursion's exact round counts must fit
        rounds ~ PREDICTED_ROUNDS_SLOPE * log2 log2 (m/n) + b."""
        from repro.analysis.theory import heavy_phase_round_bound

        n = 1024
        ratios = [2**e for e in (4, 6, 8, 12, 16, 24, 32, 48, 64)]
        rounds = [heavy_phase_round_bound(n * r, n) for r in ratios]
        fit = fit_loglog_rounds(ratios, rounds)
        assert fit.r_squared > 0.97
        assert abs(fit.slope - PREDICTED_ROUNDS_SLOPE) < 0.6

    def test_linear_growth_fits_badly(self):
        """A process needing Theta(log(m/n)) rounds must show a much
        larger slope in log log coordinates than the paper's schedule."""
        ratios = [2**e for e in (4, 6, 8, 12, 16)]
        rounds = [int(math.log2(r)) for r in ratios]  # linear in log
        fit = fit_loglog_rounds(ratios, rounds)
        assert fit.slope > 2 * PREDICTED_ROUNDS_SLOPE

    def test_small_ratio_rejected(self):
        with pytest.raises(ValueError):
            fit_loglog_rounds([2, 4], [1, 2])

    def test_predicted_slope_value(self):
        assert PREDICTED_ROUNDS_SLOPE == pytest.approx(1.0 / math.log2(1.5))
