"""Extension experiments A3 (degree-d contacts) and A4 (fault injection).

Both go beyond the paper's evaluation: A3 makes the conclusion's open
question ("can we provide a faster symmetric algorithm?") executable
within the lower-bound family, and A4 stress-tests the schedule's
robustness outside the reliable model.  They are documented as
extensions in DESIGN.md §4.
"""

from __future__ import annotations

from repro.core import run_heavy_faulty, run_heavy_multicontact
from repro.experiments.report import ExperimentReport

__all__ = ["exp_a3", "exp_a4"]


def exp_a3(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """A3 — do d contacts per round beat d = 1? (Theorem 2 says no.)"""
    report = ExperimentReport(
        exp_id="A3",
        title="Degree-d threshold algorithm on the paper schedule",
        claim="Conclusion open problem + Thm 2: extra uniform contacts "
        "cannot beat Omega(log log(m/n)) rounds",
        columns=[
            "d",
            "total rounds",
            "phase1 rounds",
            "phase1 leftover",
            "gap",
            "messages/m",
        ],
    )
    n = 1024
    ratio = 2**10 if scale == "quick" else 2**14
    m = n * ratio
    ok = True
    rounds_by_d = {}
    for d in (1, 2, 4):
        res = run_heavy_multicontact(m, n, d, seed=seed)
        rounds_by_d[d] = res.rounds
        report.add_row(
            d,
            res.rounds,
            res.extra["phase1_rounds"],
            res.extra["phase1_remaining"],
            res.gap,
            res.total_messages / m,
        )
        ok = ok and res.complete and res.gap <= 10.0
    # Theorem 2's message: no round improvement from extra contacts —
    # the phase-1 horizon is schedule-bound either way.
    ok = ok and rounds_by_d[4] >= rounds_by_d[1] - 1
    report.passed = ok
    report.notes.append(
        "extra contacts multiply message cost by d without reducing the "
        "round horizon — the empirical face of the Theorem 2 lower bound "
        "(the schedule, not the contact count, is the bottleneck)."
    )
    return report


def exp_a4(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """A4 — fault injection: crashes and message loss."""
    report = ExperimentReport(
        exp_id="A4",
        title="A_heavy under ball crashes and message loss (extension)",
        claim="robustness extension (not in paper): the oblivious "
        "schedule tolerates faults with graceful degradation",
        columns=[
            "crash",
            "loss",
            "rounds",
            "gap vs survivors",
            "ghost slots/n",
            "placed all survivors",
        ],
    )
    n = 512
    ratio = 2**8 if scale == "quick" else 2**12
    m = n * ratio
    ok = True
    baseline_rounds = None
    for crash, loss in ((0.0, 0.0), (0.02, 0.0), (0.0, 0.05), (0.02, 0.1)):
        res = run_heavy_faulty(
            m, n, seed=seed, crash_prob=crash, loss_prob=loss
        )
        survivors = m - res.extra["crashed"]
        gap_surv = res.max_load - survivors / n
        placed = res.unallocated == res.extra["crashed"]
        report.add_row(
            crash,
            loss,
            res.rounds,
            gap_surv,
            res.extra["ghost_slots"] / n,
            placed,
        )
        if crash == 0.0 and loss == 0.0:
            baseline_rounds = res.rounds
            ok = ok and res.complete
        ok = ok and placed
        # Graceful degradation: lost accepts strand ~loss * m ghost
        # reservations (re-routed through the A_light tail) and crashes
        # lower the survivors' mean while bins still fill toward the
        # oblivious thresholds — both shift the gap proportionally to
        # (fault rate) * (m/n), never a collapse.  (A flat constant
        # cannot hold across scales; the fault mass is proportional to
        # m by construction.)
        ok = ok and gap_surv <= (0.5 * loss + 1.5 * crash) * (m / n) + 30.0
    report.passed = ok
    report.notes.append(
        "gap is measured against the surviving-ball average; ghost slots "
        "are bin capacity reserved for accepts whose reply was lost.  "
        "Fault mass scales with m, so the acceptance bound is "
        "(0.5 loss + 1.5 crash) * (m/n) + O(1) — proportional response, "
        "no collapse."
    )
    return report
