"""Ingest layer of the allocator service: events, clock, bounded queue.

The service speaks three event kinds:

* :class:`Place` — ``count`` new balls ask to enter the system;
* :class:`Release` — ``count`` resident balls leave.  Releases are
  *anonymous*: the dynamic engine tracks residents at cohort-by-bin
  granularity (:class:`~repro.dynamic.state.ResidentState`), so which
  balls leave is decided by the service's departure policy when the
  batch flushes, exactly as in :func:`repro.run_dynamic`;
* :class:`Query` — a read-only stats request; never queued, never
  draws randomness, never forces an epoch.

Pending ``Place``/``Release`` events accumulate in an
:class:`EventQueue` — bounded in *balls*, not event objects, so a
single ``Place(count=10_000)`` burst and ten thousand unit events
exert the same backpressure.  The queue knows nothing about
processing; the service flushes it onto the incremental-rebalance
path when a **watermark** trips:

* **count watermark** — pending balls reach the micro-batch size;
* **age watermark** — the oldest pending event has waited longer than
  ``max_wait`` (checked on :meth:`~repro.service.AllocatorService.tick`).

Time comes from a :class:`Clock`: :class:`WallClock` for live use,
:class:`SimulatedClock` for deterministic replay — with a simulated
clock every latency figure, batch boundary, and placement replays
bitwise from the root seed (the guarantee the service tests pin).
"""

from __future__ import annotations

import time
from collections import deque
from dataclasses import dataclass, field
from typing import Iterator, Optional

__all__ = [
    "Clock",
    "Event",
    "EventQueue",
    "Place",
    "Query",
    "Release",
    "SimulatedClock",
    "WallClock",
]


@dataclass(frozen=True)
class Event:
    """One timestamped ingest event.

    ``at`` is the submission time on the service's clock; latency of
    every ball the event carries is measured from it.
    """

    count: int
    at: float

    kind: str = field(init=False, default="event")

    def __post_init__(self) -> None:
        if self.count < 1:
            raise ValueError(f"event count must be >= 1, got {self.count}")


@dataclass(frozen=True)
class Place(Event):
    """``count`` new balls arriving."""

    kind: str = field(init=False, default="place")


@dataclass(frozen=True)
class Release(Event):
    """``count`` resident balls departing (policy-sampled at flush)."""

    kind: str = field(init=False, default="release")


@dataclass(frozen=True)
class Query(Event):
    """A read-only stats request (count is the conventional 1)."""

    kind: str = field(init=False, default="query")


class Clock:
    """The service's time source; subclasses define ``now()``."""

    def now(self) -> float:  # pragma: no cover - interface
        raise NotImplementedError


class WallClock(Clock):
    """Monotonic wall time (``time.perf_counter``) for live service."""

    def now(self) -> float:
        return time.perf_counter()


class SimulatedClock(Clock):
    """A manually advanced clock: deterministic, replayable time.

    ``advance`` is monotone (time never goes backward), so a recorded
    event trace carries a consistent timeline and replays bitwise.
    """

    def __init__(self, start: float = 0.0) -> None:
        self._now = float(start)

    def now(self) -> float:
        return self._now

    def advance(self, dt: float) -> float:
        if dt < 0:
            raise ValueError(f"cannot advance time by {dt}")
        self._now += dt
        return self._now

    def advance_to(self, t: float) -> float:
        if t < self._now:
            raise ValueError(
                f"cannot move the clock backward ({t} < {self._now})"
            )
        self._now = float(t)
        return self._now


class EventQueue:
    """Bounded FIFO of pending ``Place``/``Release`` events.

    Capacity is measured in balls (the sum of event counts): the
    backpressure signal the admission policy reads.  ``take(limit)``
    pops whole events FIFO until adding the next event would exceed
    ``limit`` balls — events are never split, so a ball's latency is
    always attributed to its own submission timestamp and a micro-batch
    is always a prefix of the arrival order.
    """

    def __init__(self, capacity: int) -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._events: deque[Event] = deque()
        self._pending = 0
        self._pending_places = 0
        self._pending_releases = 0
        #: Most balls ever pending at once — the queue-depth high-water
        #: mark ``ServiceStats`` reports.  Deterministic bookkeeping
        #: (no clock, no RNG), so it is maintained unconditionally.
        self.high_water = 0

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[Event]:
        return iter(self._events)

    @property
    def pending(self) -> int:
        """Queued balls (places + releases)."""
        return self._pending

    @property
    def pending_places(self) -> int:
        return self._pending_places

    @property
    def pending_releases(self) -> int:
        return self._pending_releases

    @property
    def depth(self) -> float:
        """Queue fullness in [0, 1] — the admission policy's signal."""
        return self._pending / self.capacity

    def fits(self, event: Event) -> bool:
        """True when the event's balls fit under the capacity."""
        return self._pending + event.count <= self.capacity

    def push(self, event: Event) -> None:
        """Enqueue; raises ``OverflowError`` when a **place** would
        exceed capacity (the admission policy sheds before this
        triggers).  **Releases spill past the bound**: a departure
        strictly reduces load, and shedding one would leak its balls'
        occupancy forever — the resident population would permanently
        exceed what the outside world believes is in the system.  The
        capacity is a backpressure bound on *work admitted*, not on
        bookkeeping that shrinks the system."""
        if event.kind != "release" and not self.fits(event):
            raise OverflowError(
                f"queue over capacity: {self._pending} pending + "
                f"{event.count} > {self.capacity}"
            )
        self._events.append(event)
        self._pending += event.count
        if self._pending > self.high_water:
            self.high_water = self._pending
        if event.kind == "place":
            self._pending_places += event.count
        elif event.kind == "release":
            self._pending_releases += event.count
        else:
            raise TypeError(
                f"only place/release events queue, got {event.kind!r}"
            )

    def oldest_age(self, now: float) -> float:
        """Seconds the head event has waited (0.0 when empty)."""
        if not self._events:
            return 0.0
        return now - self._events[0].at

    def take(self, limit: Optional[int] = None) -> list[Event]:
        """Pop a FIFO prefix of up to ``limit`` balls (all, when None).

        Always pops at least one event when non-empty, so a single
        event larger than ``limit`` still drains rather than wedging
        the queue.
        """
        batch: list[Event] = []
        taken = 0
        while self._events:
            head = self._events[0]
            if batch and limit is not None and taken + head.count > limit:
                break
            batch.append(self._events.popleft())
            taken += head.count
            self._pending -= head.count
            if head.kind == "place":
                self._pending_places -= head.count
            else:
                self._pending_releases -= head.count
        return batch
