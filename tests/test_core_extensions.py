"""Tests for the extension modules: multicontact and fault injection."""

import numpy as np
import pytest

from repro.core import run_heavy, run_heavy_faulty, run_heavy_multicontact
from repro.core.thresholds import PaperSchedule


class TestMulticontact:
    def test_completes_and_conserves(self):
        res = run_heavy_multicontact(2**16, 256, 2, seed=1)
        assert res.complete
        assert res.loads.sum() == 2**16

    @pytest.mark.parametrize("d", [1, 2, 4])
    def test_gap_constant(self, d):
        res = run_heavy_multicontact(2**16, 256, d, seed=1)
        assert res.gap <= 10.0

    def test_d1_matches_heavy_statistically(self):
        """d = 1 multicontact is the same protocol as run_heavy phase 1;
        round counts and leftovers must coincide up to noise."""
        m, n = 2**16, 256
        mc = run_heavy_multicontact(m, n, 1, seed=3)
        hv = run_heavy(m, n, seed=3)
        assert mc.extra["phase1_rounds"] == hv.extra["phase1_rounds"]
        assert (
            abs(mc.extra["phase1_remaining"] - hv.extra["phase1_remaining"])
            <= 0.5 * n + 50
        )

    def test_no_round_speedup_from_degree(self):
        """The Theorem 2 message: the schedule bounds the horizon, so
        d = 4 finishes in the same number of rounds as d = 1."""
        m, n = 2**16, 256
        r1 = run_heavy_multicontact(m, n, 1, seed=5).rounds
        r4 = run_heavy_multicontact(m, n, 4, seed=5).rounds
        assert abs(r1 - r4) <= 2

    def test_messages_scale_with_d(self):
        m, n = 2**14, 128
        m1 = run_heavy_multicontact(m, n, 1, seed=5).total_messages
        m4 = run_heavy_multicontact(m, n, 4, seed=5).total_messages
        assert m4 > 2.5 * m1

    def test_custom_schedule(self):
        m, n = 2**14, 128
        res = run_heavy_multicontact(
            m, n, 2, seed=1, schedule=PaperSchedule(m, n, stop_factor=4.0)
        )
        assert res.complete

    def test_no_handoff(self):
        res = run_heavy_multicontact(2**14, 128, 2, seed=1, handoff=False)
        assert not res.complete
        assert res.unallocated > 0

    def test_deterministic(self):
        a = run_heavy_multicontact(2**14, 128, 2, seed=9)
        b = run_heavy_multicontact(2**14, 128, 2, seed=9)
        assert np.array_equal(a.loads, b.loads)

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            run_heavy_multicontact(1000, 10, 0)


class TestFaulty:
    def test_faultfree_matches_heavy_in_law(self):
        m, n = 2**16, 256
        res = run_heavy_faulty(m, n, seed=1)
        assert res.complete
        assert res.loads.sum() == m
        assert res.gap <= 8.0
        assert res.extra["crashed"] == 0
        assert res.extra["ghost_slots"] == 0

    def test_crashes_accounted(self):
        m, n = 2**16, 256
        res = run_heavy_faulty(m, n, seed=1, crash_prob=0.05)
        crashed = res.extra["crashed"]
        assert crashed > 0
        assert res.loads.sum() == m - crashed
        assert res.unallocated == crashed
        assert not res.complete  # crashed balls never land

    def test_crash_rate_sane(self):
        m, n = 2**16, 256
        res = run_heavy_faulty(m, n, seed=1, crash_prob=0.05)
        # with geometric retry counts, total crashed ~ 5-15% of m
        assert res.extra["crashed"] < 0.3 * m

    def test_survivors_all_placed_under_loss(self):
        m, n = 2**16, 256
        res = run_heavy_faulty(m, n, seed=2, loss_prob=0.1)
        assert res.complete
        assert res.loads.sum() == m

    def test_ghost_slots_appear_with_loss(self):
        res = run_heavy_faulty(2**16, 256, seed=2, loss_prob=0.1)
        assert res.extra["ghost_slots"] > 0

    def test_loads_exclude_ghosts(self):
        """Ghost reservations must not count as balls."""
        m, n = 2**16, 256
        res = run_heavy_faulty(m, n, seed=2, loss_prob=0.2)
        assert res.loads.sum() == m  # every survivor placed exactly once

    def test_degradation_graceful(self):
        """Gap grows with loss but stays far below the naive baseline's
        sqrt((m/n) log n) ~ 60."""
        m, n = 2**16, 256
        res = run_heavy_faulty(m, n, seed=3, loss_prob=0.1)
        assert res.gap <= 25.0

    def test_combined_faults(self):
        m, n = 2**15, 128
        res = run_heavy_faulty(
            m, n, seed=4, crash_prob=0.02, loss_prob=0.05
        )
        survivors = m - res.extra["crashed"]
        assert res.loads.sum() == survivors
        assert res.unallocated == res.extra["crashed"]

    def test_invalid_probabilities(self):
        with pytest.raises(ValueError):
            run_heavy_faulty(1000, 10, crash_prob=1.5)
        with pytest.raises(ValueError):
            run_heavy_faulty(1000, 10, loss_prob=-0.1)

    def test_deterministic(self):
        a = run_heavy_faulty(2**14, 128, seed=7, loss_prob=0.05)
        b = run_heavy_faulty(2**14, 128, seed=7, loss_prob=0.05)
        assert np.array_equal(a.loads, b.loads)
        assert a.extra["ghost_slots"] == b.extra["ghost_slots"]
