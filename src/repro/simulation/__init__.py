"""Synchronous message-passing substrate.

The paper's model (Section 3) is a synchronous network of ``m`` ball
agents and ``n`` bin agents.  Each round has three steps:

1. balls perform local computation and send messages to arbitrary bins;
2. bins receive those messages, compute, and reply to any ball that has
   contacted them in this or an earlier round;
3. balls receive the replies and may commit to a bin (and terminate).

:class:`repro.simulation.engine.SyncEngine` executes exactly this loop
over explicit agent objects, delivering message objects and counting
every send/receive.  It is the *reference semantics* of the package: the
vectorized implementations in :mod:`repro.fastpath` are validated against
it on small instances.

The engine also implements the paper's adversarial port numbering: each
bin addresses balls through a per-bin permutation fixed *after* all
randomness is drawn, and accept decisions may only use port numbers and
bin-local randomness — never ball identities.
"""

from repro.simulation.agents import BallAgent, BinAgent
from repro.simulation.engine import EngineConfig, SyncEngine
from repro.simulation.messages import Message, MessageKind
from repro.simulation.metrics import MessageCounter, RoundMetrics, RunMetrics

__all__ = [
    "BallAgent",
    "BinAgent",
    "EngineConfig",
    "Message",
    "MessageCounter",
    "MessageKind",
    "RoundMetrics",
    "RunMetrics",
    "SyncEngine",
]
