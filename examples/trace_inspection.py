#!/usr/bin/env python
"""Peek inside a run: round-by-round trace of the reference engine.

The package's object-level engine executes the paper's synchronous
model literally — ball and bin agents exchanging message objects with
symmetric port routing.  This example attaches a
:class:`~repro.simulation.trace.TraceRecorder` and prints what actually
happens, round by round, when the threshold protocol runs on a small
instance: the conservative thresholds keeping every bin busy, the
collapse of the active set, and the hand-off point where A_light takes
over.

A useful first stop when implementing a new protocol on the engine.

Run:
    python examples/trace_inspection.py [--balls 5000] [--bins 32]
"""

from __future__ import annotations

import argparse

import repro
from repro.core.heavy_agents import (
    ThresholdBallAgent,
    ThresholdBinAgent,
    _make_engine,
)
from repro.core.thresholds import PaperSchedule
from repro.simulation.trace import TraceRecorder, render_trace
from repro.utils.seeding import RngFactory


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--balls", type=int, default=5_000)
    parser.add_argument("--bins", type=int, default=32)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args()
    m, n = args.balls, args.bins

    # "engine" is one of the registered execution modes of the heavy
    # allocator — the registry knows it, and `repro.allocate(...,
    # mode="engine")` runs the same object-level machinery this example
    # dissects by hand.
    spec = repro.get_spec("heavy")
    print(f"allocator {spec.name!r} ({spec.paper_ref}): modes {spec.modes}")

    schedule = PaperSchedule(m, n)
    print(
        f"threshold protocol, m={m:,}, n={n}: schedule plans "
        f"{schedule.phase1_rounds()} phase-1 rounds with thresholds "
        f"{[schedule.threshold(i) for i in range(schedule.phase1_rounds())]}\n"
    )

    engine = _make_engine(
        m,
        n,
        RngFactory(args.seed),
        lambda i, rng: ThresholdBallAgent(i, rng),
        lambda j, rng: ThresholdBinAgent(j, rng, schedule),
        max_rounds=schedule.phase1_rounds(),
    )
    recorder = TraceRecorder(engine)
    outcome = engine.run()

    print(render_trace(recorder.events))
    print()
    print(
        f"after phase 1: {outcome.unallocated} stragglers remain "
        f"({outcome.unallocated / n:.1f} per bin — the O(n) the paper "
        "promises), ready for the A_light hand-off."
    )
    print(
        f"loads now range {outcome.loads.min()}..{outcome.loads.max()} "
        f"around the mean {m / n:.0f}: the conservatively-low thresholds "
        "kept every bin equally filled, which is the whole trick."
    )

    # Cross-check against the dispatch API's engine mode: the full
    # protocol (phase 1 + A_light hand-off) through the same machinery.
    full = repro.allocate("heavy", m, n, seed=args.seed, mode="engine")
    print(
        f"\nfull run via repro.allocate(..., mode='engine'): "
        f"max load {full.max_load} (gap {full.gap:+.1f}) in "
        f"{full.rounds} rounds"
    )


if __name__ == "__main__":
    main()
