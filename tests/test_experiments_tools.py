"""Tests for plotting, export, and the CLI."""

import math

import pytest

from repro.experiments.export import (
    build_experiments_document,
    report_to_csv,
    report_to_markdown,
)
from repro.experiments.plotting import ascii_chart, ascii_histogram
from repro.experiments.report import ExperimentReport


@pytest.fixture
def sample_report():
    r = ExperimentReport(
        "X1", "Sample", "Thm 0", columns=["n", "gap"]
    )
    r.add_row(256, 3.5)
    r.add_row(1024, 4.0)
    r.passed = True
    r.notes.append("a note")
    return r


class TestAsciiChart:
    def test_basic_render(self):
        chart = ascii_chart(
            [0, 1, 2, 3],
            {"decay": [1000, 100, 10, 1]},
            title="decay",
            log_y=True,
        )
        assert "decay" in chart
        assert "legend" in chart
        assert "[log y]" in chart
        assert "*" in chart

    def test_two_series_distinct_markers(self):
        chart = ascii_chart(
            [0, 1, 2],
            {"a": [1, 2, 3], "b": [3, 2, 1]},
        )
        assert "*" in chart and "o" in chart
        assert "* a" in chart and "o b" in chart

    def test_nan_skipped(self):
        chart = ascii_chart(
            [0, 1, 2],
            {"a": [1.0, float("nan"), 3.0]},
        )
        assert "a" in chart

    def test_monotone_series_monotone_rows(self):
        """An increasing series must place later markers on higher rows."""
        chart = ascii_chart([0, 1, 2, 3], {"up": [1, 2, 3, 4]}, height=8)
        rows = [
            i for i, line in enumerate(chart.splitlines()) if "*" in line
        ]
        assert rows == sorted(rows)  # top-to-bottom = later first? no:
        # increasing values render from bottom-left to top-right; the
        # first marker row (top) must correspond to the largest value.

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {})
        with pytest.raises(ValueError):
            ascii_chart([0], {"a": [1]})
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {"a": [1, 2, 3]})
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {"a": [float("nan"), float("nan")]})

    def test_log_axis_requires_positive_somewhere(self):
        with pytest.raises(ValueError):
            ascii_chart([0, 1], {"a": [-1, 0]}, log_y=True)


class TestAsciiHistogram:
    def test_bars_scale(self):
        out = ascii_histogram({"load 0": 10, "load 1": 20, "load 2": 5})
        lines = out.splitlines()
        assert lines[1].count("#") > lines[0].count("#")
        assert "20" in lines[1]

    def test_title(self):
        out = ascii_histogram({"a": 1}, title="loads")
        assert out.startswith("loads")

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_histogram({})
        with pytest.raises(ValueError):
            ascii_histogram({"a": -1})


class TestExport:
    def test_csv_roundtrip(self, sample_report):
        csv_text = report_to_csv(sample_report)
        lines = csv_text.strip().splitlines()
        assert lines[0] == "n,gap"
        assert lines[1].startswith("256")
        assert len(lines) == 3

    def test_markdown_structure(self, sample_report):
        md = report_to_markdown(sample_report)
        assert md.startswith("### [X1] Sample")
        assert "| n | gap |" in md
        assert "**PASS**" in md
        assert "> a note" in md

    def test_document_builder_quick_subset(self):
        doc = build_experiments_document(
            scale="quick", experiment_ids=["T7"], preamble="Preamble here."
        )
        assert "# EXPERIMENTS" in doc
        assert "Preamble here." in doc
        assert "[T7]" in doc
        assert "All self-checks passed." in doc


class TestCli:
    def test_heavy_subcommand(self, capsys):
        from repro.__main__ import main

        assert main(["heavy", "--m", "5000", "--n", "50", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "max load" in out
        assert "wall time" in out

    def test_trivial_subcommand(self, capsys):
        from repro.__main__ import main

        assert main(["trivial", "--m", "100", "--n", "7", "--seed", "1"]) == 0
        assert "trivial" in capsys.readouterr().out

    def test_greedy_subcommand(self, capsys):
        from repro.__main__ import main

        code = main(["greedy", "--m", "5000", "--n", "50", "--d", "3", "--seed", "2"])
        assert code == 0
        assert "greedy[3]" in capsys.readouterr().out

    def test_compare_subcommand(self, capsys):
        from repro.__main__ import main

        assert main(["compare", "--m", "20000", "--n", "64", "--seed", "1"]) == 0
        out = capsys.readouterr().out
        assert "single-choice" in out
        assert "heavy (Thm 1)" in out

    def test_experiments_passthrough(self, capsys):
        from repro.__main__ import main

        assert main(["experiments"]) == 0
        assert "available experiments" in capsys.readouterr().out


class TestReportCharts:
    def test_render_includes_charts(self):
        r = ExperimentReport("X", "t", "c", columns=["a"])
        r.add_row(1)
        r.charts.append("CHART-CONTENT-HERE")
        assert "CHART-CONTENT-HERE" in r.render()

    def test_markdown_fences_charts(self):
        r = ExperimentReport("X", "t", "c", columns=["a"])
        r.add_row(1)
        r.charts.append("ascii art")
        md = report_to_markdown(r)
        assert "```\nascii art\n```" in md

    def test_figure_experiments_emit_charts(self):
        from repro.experiments import run_experiment

        for exp_id in ("F1", "F2"):
            report = run_experiment(exp_id, scale="quick")
            assert report.charts, f"{exp_id} should render a chart"
            assert "legend" in report.charts[0]
