"""Benchmark + table regeneration for experiment W1 (workload skew).

See the experiment registry (``python -m repro.experiments`` with no
argument) for the experiment's claim and parameters; the quick-scale
table is printed under -s, the full-scale run is archived in
EXPERIMENTS.md.
"""

from conftest import bench_experiment


def test_experiment_w1(benchmark):
    bench_experiment(benchmark, "W1")
