"""The unified entry point: ``repro.allocate(algorithm, m, n, ...)``.

One function runs every registered algorithm through one code path:

>>> import repro
>>> res = repro.allocate("heavy", 100_000, 256, seed=7)
>>> res.algorithm
'heavy'

``allocate`` resolves the algorithm name (aliases included) against the
registry, validates every keyword option against the spec derived from
the runner's actual signature, normalizes config construction (config
dataclass fields may be passed flat), picks the fastest eligible
execution mode when asked for ``"auto"``, and returns the runner's
:class:`~repro.result.AllocationResult` unchanged except for a
``result.extra["api"]`` record of the dispatch decision.

Because the registered runners *are* the public ``run_*`` functions,
``allocate`` adds nothing between you and the algorithm: with
``mode=None`` (or whenever the resolved mode equals the runner's
default — always true below ``AGGREGATE_THRESHOLD``),
``repro.allocate("heavy", m, n, seed=s)`` is bitwise-identical to
``repro.run_heavy(m, n, seed=s)``.  At or above the threshold,
``mode="auto"`` upgrades to the aggregate fast path — identical in
distribution, not bitwise, and without per-ball message counters.
"""

from __future__ import annotations

from typing import Any, Optional

from repro.api.spec import AllocatorSpec, capability_note, get_spec

__all__ = ["allocate", "AGGREGATE_THRESHOLD", "resolve_mode"]

#: Above this many balls, ``mode="auto"`` prefers the O(n)-per-round
#: aggregate path (exact in distribution) over per-ball simulation.
#: The value matches the CLI ``compare`` heuristic: below it, per-ball
#: runs take well under a second and keep full message accounting.
AGGREGATE_THRESHOLD = 4_000_000


def resolve_mode(
    spec: AllocatorSpec, m: int, mode: Optional[str]
) -> Optional[str]:
    """Map a requested mode (possibly ``"auto"``) to a concrete one.

    Returns ``None`` for allocators without execution modes.  ``None``
    requests the algorithm's own default mode with no instance-size
    upgrade — exactly what a direct ``run_*`` call does.  Explicit
    requests are validated against the spec so an unsupported mode
    fails with the supported list instead of deep inside the runner.
    """
    if not spec.modes:
        if mode not in ("auto", None):
            raise ValueError(
                f"algorithm {spec.name!r} does not take an execution "
                f"mode (got mode={mode!r})"
            )
        return None
    if mode is None:
        return spec.default_mode or spec.modes[0]
    if mode == "auto":
        # The kernel backend (shared RoundState round kernels) is what
        # makes the aggregate path exact-in-distribution; only specs
        # declaring it are eligible for the instance-size upgrade.
        if (
            spec.kernel_backed
            and "aggregate" in spec.modes
            and m >= AGGREGATE_THRESHOLD
        ):
            return "aggregate"
        return spec.default_mode or spec.modes[0]
    if mode not in spec.modes:
        raise ValueError(
            f"algorithm {spec.name!r} does not support mode {mode!r}; "
            f"supported: {', '.join(spec.modes)}"
        )
    return mode


def _split_options(
    spec: AllocatorSpec, options: dict[str, Any]
) -> dict[str, Any]:
    """Validate options against the spec and assemble the config.

    Runner keywords pass through; fields of ``spec.config_type`` may be
    given flat and are collected into a config instance.  Anything else
    is rejected with the full list of valid options.
    """
    runner_kwargs: dict[str, Any] = {}
    config_kwargs: dict[str, Any] = {}
    unknown = []
    for key, value in options.items():
        if key == "config" and spec.config_type is not None:
            runner_kwargs["config"] = value
        elif key in spec.options:
            runner_kwargs[key] = value
        elif key in spec.config_fields:
            config_kwargs[key] = value
        else:
            unknown.append(key)
    if unknown:
        valid = spec.valid_options
        raise ValueError(
            f"unknown option(s) {', '.join(repr(u) for u in sorted(unknown))} "
            f"for algorithm {spec.name!r}; valid options: "
            + (", ".join(valid) if valid else "(none)")
        )
    if config_kwargs:
        if "config" in runner_kwargs:
            raise ValueError(
                f"pass either config= or flat config fields "
                f"({', '.join(sorted(config_kwargs))}), not both"
            )
        runner_kwargs["config"] = spec.config_type(**config_kwargs)
    return runner_kwargs


def _resolve_workload(spec: AllocatorSpec, workload, resolved_mode):
    """Parse/validate the ``workload=`` argument against the spec.

    Returns the bound-ready :class:`~repro.workloads.Workload` or
    ``None`` for the uniform scenario.  Uniform workloads (including
    the explicit string ``"uniform"``) are never forwarded to the
    runner, which is what keeps the default path bitwise-identical to
    a direct ``run_*`` call.
    """
    from repro.workloads import as_workload

    wl = as_workload(workload)
    if wl is None:
        return None
    if not spec.workload_capable:
        raise ValueError(
            f"algorithm {spec.name!r} supports the uniform workload only "
            f"(got workload {wl.describe()!r}); "
            + capability_note("workload_capable")
        )
    if resolved_mode == "engine":
        raise ValueError(
            f"mode 'engine' supports the uniform workload only (got "
            f"workload {wl.describe()!r}); use mode='perball' or "
            f"'aggregate'"
        )
    return wl


def allocate(
    algorithm: str,
    m: int,
    n: int,
    *,
    seed=None,
    mode: Optional[str] = "auto",
    workload=None,
    backend: Optional[str] = None,
    **options: Any,
):
    """Allocate ``m`` balls into ``n`` bins with any registered algorithm.

    Parameters
    ----------
    algorithm:
        Registry name or alias (see ``python -m repro list`` or
        :func:`repro.api.allocator_names`).  Case-insensitive;
        hyphens and underscores are interchangeable.
    m, n:
        Instance size.
    seed:
        Reproducibility seed (int, SeedSequence, Generator, or None),
        forwarded verbatim to the runner — so results are bitwise
        identical to calling the ``run_*`` function directly.
    mode:
        Execution mode.  ``"auto"`` (default) picks the fastest
        eligible mode: the aggregate fast path for huge instances
        (``m >= AGGREGATE_THRESHOLD``) when the algorithm supports it,
        otherwise the algorithm's default.  ``None`` requests the
        algorithm's own default with no instance-size upgrade — the
        exact behavior of calling the ``run_*`` function directly.
        Explicit values are validated against the spec's supported
        modes.
    workload:
        Optional :class:`repro.workloads.Workload` or spec string
        (``"zipf:1.1"``, ``"hotset:0.1:0.5+geomw:0.5+propcap"``, ...)
        describing a non-uniform scenario: skewed choice distribution,
        weighted balls, heterogeneous bin capacities.  Only
        ``workload_capable`` allocators accept a non-uniform workload
        (others raise with the capable list), and engine modes accept
        only the uniform one.  The uniform workload — ``None`` or
        ``"uniform"`` — is never forwarded, keeping the default path
        bitwise-identical to the direct ``run_*`` call.
    backend:
        Kernel backend name (``"fused"``/``"reference"``, see
        :mod:`repro.fastpath.backend`) pinned for the whole run;
        ``None`` keeps the ambient selection (the
        ``REPRO_KERNEL_BACKEND`` environment variable or the
        ``"fused"`` default).  Backends are bitwise-identical by
        contract, so this changes wall clock only.
    options:
        Algorithm-specific keywords, validated against the registered
        signature (e.g. ``d=3`` for ``greedy``, ``crash_prob=0.05``
        for ``faulty``).  Fields of the algorithm's config dataclass
        may be passed flat (e.g. ``stop_factor=1.5`` for ``heavy``)
        and are assembled into the config automatically.

    Returns
    -------
    AllocationResult
        The runner's result; ``extra["api"]`` records the resolved
        spec name, mode, and kernel backend.
    """
    from repro.fastpath.backend import use_backend
    from repro.telemetry import current_telemetry

    spec = get_spec(algorithm)
    resolved_mode = resolve_mode(spec, m, mode)
    wl = _resolve_workload(spec, workload, resolved_mode)
    kwargs = _split_options(spec, options)
    if resolved_mode is not None:
        kwargs["mode"] = resolved_mode
    if wl is not None:
        kwargs["workload"] = wl
    tele = current_telemetry()
    alloc_start = tele.begin() if tele is not None else 0.0
    with use_backend(backend) as kernel_backend:
        result = spec.runner(m, n, seed=seed, **kwargs)
    if tele is not None:
        seconds = tele.complete(
            "allocate",
            alloc_start,
            cat="api",
            algorithm=spec.name,
            m=m,
            n=n,
        )
        tele.observe("api.allocate.seconds", seconds, algorithm=spec.name)
    result.extra["api"] = {
        "algorithm": spec.name,
        "mode": resolved_mode,
        "workload": wl.describe() if wl is not None else None,
        "backend": kernel_backend.name,
    }
    return result
