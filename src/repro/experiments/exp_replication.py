"""Experiment R1 — high-replication distributional check of Theorem 1.

The paper's claims are w.h.p. statements: the gap of ``A_heavy`` is
``O(1)`` *with probability* ``1 - n^{-c}``, not merely on average.  A
few repetitions per instance (what the T-series experiments run) can
show the mean; only hundreds can show the tail quantiles those claims
actually constrain.  The trial-batched replication engine makes that
cheap: this experiment runs 256 seeded replications per instance in
one vectorized pass and reports the gap/round quantiles against the
closed-form envelope of :mod:`repro.analysis.theory`.
"""

from __future__ import annotations

import math

from repro.analysis.theory import (
    expected_max_load_single_choice,
    predicted_rounds,
)
from repro.api import replicate
from repro.experiments.report import ExperimentReport
from repro.light.virtual import VirtualBinMap

__all__ = ["exp_r1", "heavy_gap_envelope"]


def heavy_gap_envelope(n: int, stop_factor: float = 2.0) -> float:
    """Closed-form upper envelope for ``A_heavy``'s gap.

    Phase 1 never exceeds its final threshold, which undershoots
    ``m/n`` (thresholds are ``m/n - (m̃_i/n)^{2/3}`` rounded down, so
    the phase-1 contribution to the gap is at most 0); phase 2 adds at
    most ``2 g`` balls per real bin, where ``g`` is the virtual-bin
    factor for the ``<= stop_factor * n`` stragglers phase 1 leaves
    w.h.p. (Claims 3-4), plus one rounding unit.  The envelope is a
    *bound*, not an estimate: every gap quantile of a healthy run sits
    below it, and the statistical-acceptance suite pins exactly that.
    """
    vmap = VirtualBinMap.for_balls(math.ceil(stop_factor * n) + n, n)
    return 2.0 * vmap.factor + 1.0


def exp_r1(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """R1 — gap/round quantiles over 256 replications vs theory."""
    report = ExperimentReport(
        exp_id="R1",
        title="Replication statistics: gap and round quantiles vs theory",
        claim="Thm 1 (w.h.p. form): gap <= O(1) envelope and rounds <= "
        "loglog(m/n) + log* n + O(1) hold at the p99 quantile, not "
        "just on average; naive single-choice p50 tracks its "
        "sqrt((m/n) log n) excess",
        columns=[
            "n",
            "m/n",
            "trials",
            "gap p50",
            "gap p99",
            "envelope",
            "rounds p99",
            "rounds bound",
            "naive p50",
            "naive pred",
        ],
    )
    if scale == "quick":
        points = [(256, 64), (256, 512)]
        trials = 128
    else:
        points = [(256, 64), (1024, 64), (1024, 1024)]
        trials = 256
    ok = True
    for n, ratio in points:
        m = n * ratio
        heavy = replicate("heavy", m, n, trials=trials, seed=seed)
        naive = replicate("single", m, n, trials=trials, seed=seed)
        gq = heavy.quantiles("gap", (0.5, 0.99))
        rq = heavy.quantiles("rounds", (0.99,))
        envelope = heavy_gap_envelope(n)
        rounds_bound = predicted_rounds(m, n) + 2
        naive_p50 = naive.quantiles("gap", (0.5,))[0.5]
        naive_pred = expected_max_load_single_choice(m, n) - m / n
        report.add_row(
            n,
            ratio,
            trials,
            gq[0.5],
            gq[0.99],
            envelope,
            rq[0.99],
            rounds_bound,
            naive_p50,
            naive_pred,
        )
        ok = ok and heavy.all_complete
        ok = ok and gq[0.99] <= envelope
        ok = ok and rq[0.99] <= rounds_bound
        # The naive tail must dominate heavy's by a wide margin once
        # m/n is large — the separation the paper's Table 1 claims.
        ok = ok and naive_p50 >= 4 * gq[0.99]
    report.notes.append(
        f"{trials} replications per instance via the trial-batched "
        "engine (repro.replicate); quantiles are empirical, the "
        "envelope is the closed-form 2g+1 bound of the virtual-bin "
        "handoff and the round bound is predicted_rounds(m, n) + 2."
    )
    report.passed = ok
    return report
