"""Tests for repro.simulation.messages."""

import pytest

from repro.simulation.messages import Message, MessageKind


class TestMessage:
    def test_request_direction(self):
        msg = Message(MessageKind.REQUEST, ball=1, bin=2, round_no=0)
        assert msg.from_ball and not msg.from_bin

    def test_commit_direction(self):
        msg = Message(MessageKind.COMMIT, ball=1, bin=2, round_no=0)
        assert msg.from_ball

    def test_accept_direction(self):
        msg = Message(MessageKind.ACCEPT, ball=1, bin=2, round_no=0)
        assert msg.from_bin and not msg.from_ball

    def test_reject_direction(self):
        msg = Message(MessageKind.REJECT, ball=1, bin=2, round_no=0)
        assert msg.from_bin

    @pytest.mark.parametrize(
        "kwargs",
        [
            dict(ball=-1, bin=0, round_no=0),
            dict(ball=0, bin=-1, round_no=0),
            dict(ball=0, bin=0, round_no=-1),
        ],
    )
    def test_invalid_fields(self, kwargs):
        with pytest.raises(ValueError):
            Message(MessageKind.REQUEST, **kwargs)

    def test_frozen(self):
        msg = Message(MessageKind.REQUEST, 0, 0, 0)
        with pytest.raises(AttributeError):
            msg.ball = 5  # type: ignore[misc]

    def test_payload_not_compared(self):
        a = Message(MessageKind.ACCEPT, 1, 2, 3, payload="x")
        b = Message(MessageKind.ACCEPT, 1, 2, 3, payload="y")
        assert a == b

    def test_describe_contains_direction(self):
        msg = Message(MessageKind.REQUEST, ball=7, bin=3, round_no=2)
        text = msg.describe()
        assert "ball 7 -> bin 3" in text
        assert "r2" in text

    def test_describe_bin_to_ball(self):
        msg = Message(MessageKind.ACCEPT, ball=7, bin=3, round_no=2)
        assert "bin 3 -> ball 7" in msg.describe()
