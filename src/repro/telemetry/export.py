"""Exporters: Prometheus text exposition and JSON dumps.

Three consumers, three formats:

* :func:`prometheus_text` renders a :class:`MetricsRegistry` in the
  Prometheus text exposition format (``# TYPE`` headers, label sets,
  cumulative ``_bucket{le=...}`` histogram series) — what a scrape
  endpoint or ``repro serve --metrics-out`` writes;
* :func:`stats_to_prometheus` does the same for one
  :class:`~repro.service.server.ServiceStats` snapshot, so a service
  exports production-style metrics even when it ran with telemetry
  off (the snapshot is always maintained);
* :func:`telemetry_to_dict` / :func:`write_telemetry_json` bundle the
  metrics snapshot with the span tracer's Chrome trace events into
  one JSON object.  The object keeps the trace-event contract
  (``traceEvents`` at the top level, extra keys ignored by viewers),
  so **the same file** loads in Perfetto and feeds the JSON-reading
  tooling.
"""

from __future__ import annotations

import json
import math
from typing import TYPE_CHECKING

from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.telemetry import Telemetry

__all__ = [
    "prometheus_text",
    "stats_to_prometheus",
    "telemetry_to_dict",
    "write_telemetry_json",
]


def _prom_name(name: str) -> str:
    """``kernel.primitive.seconds`` → ``repro_kernel_primitive_seconds``."""
    cleaned = "".join(
        c if c.isalnum() or c == "_" else "_" for c in name
    )
    return cleaned if cleaned.startswith("repro_") else f"repro_{cleaned}"


def _labels(pairs, extra: str = "") -> str:
    parts = [f'{k}="{v}"' for k, v in pairs]
    if extra:
        parts.append(extra)
    return "{" + ",".join(parts) + "}" if parts else ""


def _fmt(value: float) -> str:
    if value != value:  # NaN
        return "NaN"
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer():
        return str(int(value))
    return repr(float(value))


def prometheus_text(metrics: MetricsRegistry) -> str:
    """Render every instrument in the Prometheus text format.

    Counters get ``_total``, gauges export value and ``_max``,
    histograms export cumulative ``_bucket{le=...}`` series plus
    ``_sum``/``_count`` — the standard shapes, so the output scrapes
    cleanly into a real Prometheus.
    """
    lines: list[str] = []
    seen_types: set[str] = set()

    def header(name: str, kind: str) -> None:
        if name not in seen_types:
            lines.append(f"# TYPE {name} {kind}")
            seen_types.add(name)

    for inst in metrics:
        base = _prom_name(inst.name)
        if isinstance(inst, Counter):
            header(f"{base}_total", "counter")
            lines.append(
                f"{base}_total{_labels(inst.labels)} {_fmt(inst.value)}"
            )
        elif isinstance(inst, Gauge):
            header(base, "gauge")
            lines.append(f"{base}{_labels(inst.labels)} {_fmt(inst.value)}")
            header(f"{base}_max", "gauge")
            lines.append(
                f"{base}_max{_labels(inst.labels)} {_fmt(inst.max_value)}"
            )
        elif isinstance(inst, Histogram):
            header(base, "histogram")
            cumulative = 0
            for i, count in enumerate(inst.bucket_counts):
                if count == 0:
                    continue
                cumulative += count
                le = 'le="%s"' % _fmt(inst.bucket_upper_bound(i))
                lines.append(
                    f"{base}_bucket{_labels(inst.labels, le)} {cumulative}"
                )
            inf = 'le="+Inf"'
            lines.append(
                f"{base}_bucket{_labels(inst.labels, inf)} {inst.count}"
            )
            lines.append(
                f"{base}_sum{_labels(inst.labels)} {_fmt(inst.sum)}"
            )
            lines.append(
                f"{base}_count{_labels(inst.labels)} {inst.count}"
            )
    return "\n".join(lines) + "\n" if lines else ""


def stats_to_prometheus(stats) -> str:
    """Render a :class:`ServiceStats` snapshot as Prometheus text.

    Cumulative totals export as counters, point-in-time readings as
    gauges, and the latency percentile dicts as ``quantile``-labeled
    summary series — the exposition a ``/metrics`` endpoint in front
    of :meth:`AllocatorService.stats` would serve.
    """
    counters = (
        "batches", "accepted", "deferred", "shed", "dropped_releases",
        "processed_places", "processed_releases", "messages", "rounds",
        "lost_acks",
    )
    gauges = (
        "population", "gap", "gap_worst", "queue_pending", "widen",
        "busy_seconds", "elapsed", "ops_per_sec", "latency_mean",
        "latency_max", "failed_bins",
    )
    payload = stats.to_dict()
    lines = [
        f'# HELP repro_service_info service snapshot '
        f'(algorithm={payload["algorithm"]}, n={payload["n"]})',
        "# TYPE repro_service_info gauge",
        f'repro_service_info{{algorithm="{payload["algorithm"]}",'
        f'n="{payload["n"]}"}} 1',
    ]
    for field in counters:
        name = f"repro_service_{field}_total"
        lines.append(f"# TYPE {name} counter")
        lines.append(f"{name} {_fmt(payload[field])}")
    for field in gauges:
        name = f"repro_service_{field}"
        lines.append(f"# TYPE {name} gauge")
        lines.append(f"{name} {_fmt(payload[field])}")
    lines.append("# TYPE repro_service_complete gauge")
    lines.append(f"repro_service_complete {int(payload['complete'])}")
    for source, metric in (
        ("latency", "repro_service_latency_seconds"),
        ("flush_latency", "repro_service_flush_seconds"),
    ):
        quantiles = payload.get(source)
        if not quantiles:
            continue
        lines.append(f"# TYPE {metric} summary")
        for key, value in sorted(quantiles.items()):
            q = float(key.lstrip("p")) / 100.0
            lines.append(f'{metric}{{quantile="{q}"}} {_fmt(value)}')
    hwm = payload.get("queue_depth_hwm")
    if hwm is not None:
        lines.append("# TYPE repro_service_queue_depth_hwm gauge")
        lines.append(f"repro_service_queue_depth_hwm {_fmt(hwm)}")
    return "\n".join(lines) + "\n"


def telemetry_to_dict(telemetry: "Telemetry") -> dict:
    """One JSON object: Chrome trace events + metrics snapshot.

    ``traceEvents`` sits at the top level (the Chrome trace-event
    object form), so the dict round-trips through ``json`` and loads
    directly in Perfetto; ``metrics`` and ``schema`` ride along as
    the extra keys the format permits.
    """
    out = telemetry.tracer.to_chrome_trace()
    out["schema"] = 1
    out["metrics"] = telemetry.metrics.to_dict()
    return out


def write_telemetry_json(telemetry: "Telemetry", path: str) -> dict:
    """Serialize :func:`telemetry_to_dict` to ``path``; returns it."""
    payload = telemetry_to_dict(telemetry)
    with open(path, "w") as fh:
        json.dump(payload, fh, indent=2, sort_keys=False)
        fh.write("\n")
    return payload
