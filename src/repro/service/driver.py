"""Open-loop simulated driver: a `DynamicSpec` regime as a stream.

:func:`simulate_service` replays a churn regime against a live
:class:`~repro.service.server.AllocatorService` as an **open-loop
arrival process**: cohorts are not handed over as closed epochs —
individual ``release``/``place`` events arrive spread across each
simulated interval, and the *service's own watermarks* decide the
micro-batch boundaries.  With the default sizing (micro-batches large
enough to hold an interval's burst, age watermark = one interval) the
service converges on exactly one batch per interval — and because the
service spawns epoch seeds in ``run_dynamic`` order, the whole run is
then **bitwise-identical to ``run_dynamic`` on the same root seed**,
epoch for epoch (the acceptance pin).  Tighter watermarks, shedding
policies, or extra traffic split batches and diverge — by design;
that is the service behaving like a server.

Timeline: the fill burst lands at ``t = 0`` and each churn interval
occupies one simulated second, its ``count`` releases arriving
uniformly over the first half and its ``count`` places over the
second (deterministic spacing — no RNG in the driver, so event
latency percentiles replay bitwise too).  Wall-clock time is measured
only around batch processing; **sustained throughput** is processed
operations per busy wall second, the figure ``BENCH_service.json``
enforces a floor on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.dynamic.spec import DynamicSpec
from repro.service.admission import AdmissionPolicy
from repro.service.events import SimulatedClock
from repro.service.server import AllocatorService, BatchRecord, ServiceStats

__all__ = ["ServiceReport", "simulate_service"]


@dataclass
class ServiceReport:
    """Outcome of one simulated open-loop service run."""

    algorithm: str
    m: int
    n: int
    spec: DynamicSpec
    stats: ServiceStats
    records: list[BatchRecord]
    #: End-to-end wall seconds of the simulation (incl. driver loop).
    wall_seconds: float
    seed_entropy: tuple = ()
    extra: dict = field(default_factory=dict)

    @property
    def ops_per_sec(self) -> float:
        """Sustained throughput: processed ops per busy wall second."""
        return self.stats.ops_per_sec

    @property
    def gaps(self) -> list[float]:
        return [r.gap for r in self.records]

    def describe(self) -> str:
        s = self.stats
        lat = s.latency
        lines = [
            f"service       : {self.algorithm} [micro-batched incremental]",
            f"instance      : m={self.m}, n={self.n} "
            f"(m/n={self.m / self.n:.4g})",
            f"regime        : {self.spec.describe()}",
            f"batches       : {s.batches} flushed "
            f"({s.processed_places:,} places + "
            f"{s.processed_releases:,} releases)",
            f"throughput    : {s.ops_per_sec:,.0f} ops/s sustained "
            f"({s.busy_seconds:.3f}s busy of {self.wall_seconds:.3f}s wall)",
            f"latency (sim) : p50 {lat['p50']:.3f}  p95 {lat['p95']:.3f}  "
            f"p99 {lat['p99']:.3f}  max {s.latency_max:.3f}",
            f"admission     : {s.shed:,} shed "
            f"({100 * s.shed_rate:.2f}%), {s.deferred:,} deferred, "
            f"widen x{s.widen}",
            f"gap           : final {s.gap:+.2f}, worst {s.gap_worst:+.2f}",
            f"population    : {s.population:,} final, queue "
            f"{s.queue_pending} pending",
            f"complete      : {s.complete}",
        ]
        return "\n".join(lines)

    def to_dict(self) -> dict:
        return {
            "schema": 1,
            "algorithm": self.algorithm,
            "m": int(self.m),
            "n": int(self.n),
            "spec": self.spec.to_dict(),
            "stats": self.stats.to_dict(),
            "records": [r.to_dict() for r in self.records],
            "wall_seconds": self.wall_seconds,
            "seed_entropy": [int(e) for e in self.seed_entropy],
            "extra": dict(self.extra),
        }

    def __str__(self) -> str:
        return (
            f"ServiceReport({self.algorithm}: m={self.m}, n={self.n}, "
            f"{self.stats.batches} batches, "
            f"{self.stats.ops_per_sec:,.0f} ops/s)"
        )


def simulate_service(
    algorithm: str,
    m: int,
    n: int,
    *,
    seed=None,
    spec: Optional[DynamicSpec] = None,
    epochs: int = 16,
    churn: float = 0.1,
    arrivals: str = "bursty",
    burst_every: int = 4,
    burst_factor: float = 4.0,
    departures: str = "uniform",
    hot_frac: float = 0.1,
    max_batch: Optional[int] = None,
    max_wait: float = 1.0,
    max_queue: Optional[int] = None,
    policy: Optional[AdmissionPolicy] = None,
    workload=None,
    fault_model=None,
    **options: Any,
) -> ServiceReport:
    """Drive a service with a ``DynamicSpec``-derived open-loop stream.

    Parameters mirror :func:`repro.run_dynamic` (regime keywords or a
    complete ``spec``) plus the service knobs (watermarks, queue
    capacity, admission policy).  ``max_batch=None`` sizes the count
    watermark to the regime's largest burst, so batch boundaries fall
    on the age watermark — the one-batch-per-interval arrangement the
    bitwise pin against ``run_dynamic`` requires.  The arrival process
    must be deterministic (``fixed``/``bursty``): a Poisson count is
    drawn *inside* a ``run_dynamic`` epoch from the control stream,
    which an open-loop driver cannot consult before submitting.
    ``fault_model`` threads a :class:`~repro.core.faulty.FaultModel`
    to the service (bin failures quarantined per batch, ack loss with
    ghost retries — see ``docs/service.md``).

    Returns a :class:`ServiceReport`; ``report.extra["service"]``
    holds the trace length and final queue state.
    """
    if m < 1 or n < 1:
        raise ValueError(f"need m >= 1 and n >= 1, got m={m}, n={n}")
    if spec is None:
        spec = DynamicSpec(
            epochs=epochs,
            churn=churn,
            arrivals=arrivals,
            burst_every=burst_every,
            burst_factor=burst_factor,
            departures=departures,
            hot_frac=hot_frac,
        )
    if spec.arrivals == "poisson":
        raise ValueError(
            "the open-loop driver supports deterministic arrival "
            "processes only (fixed/bursty): a Poisson cohort size is "
            "drawn from the epoch's control stream inside run_dynamic, "
            "which a driver cannot consult before submitting events"
        )
    if spec.arrivals == "hotset_adversary":
        raise ValueError(
            "the open-loop driver cannot run hotset_adversary "
            "arrivals: the attack's per-epoch contact distribution is "
            "built from the resident loads inside run_dynamic; use "
            "repro.run_dynamic(arrivals='hotset_adversary') — the "
            "service still degrades under attack via "
            "departures='greedy_adversary' and fault_model="
        )
    if spec.rebalance != "incremental":
        raise ValueError(
            "the service runs incremental rebalancing only (the "
            f"full_rerun oracle is a batch-mode tool), got "
            f"{spec.rebalance!r}"
        )
    counts = [spec.arrival_count(e, m) for e in range(1, spec.epochs + 1)]
    if max_batch is None:
        max_batch = max([m] + [2 * c for c in counts])
    clock = SimulatedClock()
    service = AllocatorService(
        algorithm,
        n,
        seed=seed,
        max_batch=max_batch,
        max_wait=max_wait,
        max_queue=max_queue if max_queue is not None else max(
            2 * max_batch, m
        ),
        policy=policy,
        clock=clock,
        departures=spec.departures,
        hot_frac=spec.hot_frac,
        workload=workload,
        fault_model=fault_model,
        **options,
    )
    wall_start = time.perf_counter()
    # t = 0: the fill burst — flushed immediately by the count
    # watermark when max_batch == m, else by the age watermark at the
    # first tick; either way batch 0 is exactly the fill epoch.
    service.place(m)
    for epoch, count in enumerate(counts, start=1):
        service.tick(float(epoch))
        count = min(count, service.population + service.queue.pending_places)
        if count == 0:
            continue
        # Open-loop interval: releases over the first half-second,
        # places over the second — deterministic spacing, no RNG.
        for i in range(count):
            clock.advance_to(epoch + i / (2.0 * count))
            service.release(1)
        for i in range(count):
            clock.advance_to(epoch + 0.5 + i / (2.0 * count))
            service.place(1)
    clock.advance_to(float(spec.epochs + 1))
    service.drain()
    wall = time.perf_counter() - wall_start
    from repro.utils.seeding import RngFactory

    return ServiceReport(
        algorithm=service.algorithm,
        m=m,
        n=n,
        spec=spec,
        stats=service.stats(),
        records=list(service.records),
        wall_seconds=wall,
        seed_entropy=tuple(RngFactory(service._root).root_entropy),
        extra={
            "service": {
                "max_batch": max_batch,
                "max_wait": max_wait,
                "trace_ops": len(service.trace),
                "queue_pending": service.queue.pending,
            }
        },
    )
