"""Unified observability: metrics, spans, kernel profiling, exporters.

One object — :class:`Telemetry` — bundles a
:class:`~repro.telemetry.registry.MetricsRegistry` and a
:class:`~repro.telemetry.spans.SpanTracer`, and an ambient contextvar
(:func:`use_telemetry` / :func:`current_telemetry`) makes it visible
to every instrumentation point without threading a parameter through
forty signatures — the same selection pattern the kernel-backend seam
uses (:func:`repro.fastpath.backend.use_backend`).

Quickstart::

    from repro.telemetry import Telemetry, use_telemetry

    tele = Telemetry()
    with use_telemetry(tele):
        result = repro.allocate("heavy", 1_000_000, 1024, seed=7)
    tele.write("run.trace.json")   # open in ui.perfetto.dev

Two hard guarantees (pinned by ``tests/test_telemetry.py`` and the
``BENCH_telemetry.json`` artifact):

* **Default-off is a no-op.**  Every hook in the library is exactly
  ``tele = current_telemetry()`` + one ``is not None`` branch; with no
  telemetry installed, nothing is allocated and no timestamp is read.
* **Telemetry never consumes RNG.**  Hooks read ``perf_counter`` and
  write into the registry/tracer; no code path touches a Generator or
  SeedSequence.  Results with telemetry fully on — including kernel
  profiling, which wraps the resolved backend — are bitwise-identical
  to telemetry off on every axis (granularities, trials, dynamic,
  service, adversarial, faults, both backends, workers).
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from contextvars import ContextVar
from typing import Iterator, Optional

from repro.telemetry.export import (
    prometheus_text,
    stats_to_prometheus,
    telemetry_to_dict,
    write_telemetry_json,
)
from repro.telemetry.log import configure_logging, get_logger
from repro.telemetry.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.telemetry.spans import SpanTracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "SpanTracer",
    "Telemetry",
    "configure_logging",
    "current_telemetry",
    "get_logger",
    "prometheus_text",
    "stats_to_prometheus",
    "telemetry_to_dict",
    "use_telemetry",
    "write_telemetry_json",
]


class Telemetry:
    """A metrics registry plus a span tracer, with hook-facing helpers.

    ``profile_kernels`` controls whether :func:`resolve_backend` wraps
    the active kernel backend in the per-primitive profiler
    (:class:`~repro.fastpath.backend.ProfilingBackend`); everything
    else records unconditionally while the object is installed.
    """

    def __init__(self, *, profile_kernels: bool = True) -> None:
        self.metrics = MetricsRegistry()
        self.tracer = SpanTracer()
        self.profile_kernels = profile_kernels

    # -- hook-facing shorthand ------------------------------------------

    def count(self, name: str, amount: int = 1, **labels) -> None:
        self.metrics.counter(name, **labels).inc(amount)

    def gauge(self, name: str, value: float, **labels) -> None:
        self.metrics.gauge(name, **labels).set(value)

    def observe(self, name: str, value: float, **labels) -> None:
        self.metrics.histogram(name, **labels).observe(value)

    @staticmethod
    def begin() -> float:
        """Hot-path span start: just a ``perf_counter`` read."""
        return time.perf_counter()

    def complete(
        self, name: str, start: float, *, cat: str = "repro", **args
    ) -> float:
        """Hot-path span end (records an ``X`` trace event); returns
        the span duration in seconds."""
        return self.tracer.complete(name, start, cat=cat, **args)

    def span(self, name: str, *, cat: str = "repro", **args):
        """Context-manager span for cold paths."""
        return self.tracer.span(name, cat=cat, **args)

    def event(self, name: str, *, cat: str = "repro", **args) -> None:
        """Instant marker on the trace timeline."""
        self.tracer.instant(name, cat=cat, **args)

    # -- export ---------------------------------------------------------

    def to_dict(self) -> dict:
        return telemetry_to_dict(self)

    def prometheus(self) -> str:
        return prometheus_text(self.metrics)

    def write(self, path: str) -> dict:
        """Dump the combined Chrome-trace/metrics JSON to ``path``."""
        return write_telemetry_json(self, path)


_ACTIVE: ContextVar[Optional[Telemetry]] = ContextVar(
    "repro_telemetry", default=None
)


def current_telemetry() -> Optional[Telemetry]:
    """The ambient :class:`Telemetry`, or None (telemetry off).

    This is the whole cost of a disabled hook: one contextvar read and
    one ``is not None`` branch.
    """
    return _ACTIVE.get()


@contextmanager
def use_telemetry(
    telemetry: Optional[Telemetry],
) -> Iterator[Optional[Telemetry]]:
    """Install ``telemetry`` as the ambient sink within the block.

    ``None`` explicitly disables recording inside the block (useful
    for excluding a warmup from an instrumented run).  Nesting works
    the way contextvars nest: innermost wins, and the previous value
    is restored on exit even when the block raises.
    """
    token = _ACTIVE.set(telemetry)
    try:
        yield telemetry
    finally:
        _ACTIVE.reset(token)
