"""Vectorized sampling kernels shared by every fast-path protocol.

Three primitives cover all the paper's protocols:

* :func:`sample_uniform_choices` — each of ``k`` requests picks a bin
  uniformly and independently at random (step 1 of every round);
* :func:`multinomial_occupancy` — the aggregate equivalent: per-bin
  request *counts* for ``k`` exchangeable requests, ``O(n)`` memory;
* :func:`grouped_accept` — step 2: given flat request targets and
  per-bin residual capacities, select which requests are accepted, each
  bin choosing uniformly at random among its requesters (equivalently:
  arbitrarily under the adversarial port model — uniform is one valid
  adversary, and the protocols' guarantees must and do hold for it).
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "grouped_accept",
    "multinomial_occupancy",
    "sample_uniform_choices",
]


def sample_uniform_choices(
    k: int, n_bins: int, rng: np.random.Generator
) -> np.ndarray:
    """``k`` i.i.d. uniform bin indices in ``[0, n_bins)`` as int64."""
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    return rng.integers(0, n_bins, size=k, dtype=np.int64)


def multinomial_occupancy(
    k: int, n_bins: int, rng: np.random.Generator
) -> np.ndarray:
    """Per-bin request counts for ``k`` uniform exchangeable requests.

    Exactly the distribution of ``np.bincount(sample_uniform_choices(k,
    n, rng), minlength=n)`` at a fraction of the cost for ``k >> n``.
    Uses the conditional binomial decomposition internally via numpy's
    ``multinomial``, which accepts 64-bit ``k``.
    """
    if k < 0:
        raise ValueError(f"k must be >= 0, got {k}")
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    if k == 0:
        return np.zeros(n_bins, dtype=np.int64)
    pvals = np.full(n_bins, 1.0 / n_bins)
    return rng.multinomial(k, pvals).astype(np.int64)


def grouped_accept(
    choices: np.ndarray,
    capacity: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Boolean mask: which flat requests are accepted.

    Each bin ``b`` accepts ``min(capacity[b], #requests to b)`` of its
    requests, selected uniformly at random.

    Implementation: draw an i.i.d. priority per request, lexsort by
    (bin, priority), and accept the first ``capacity[b]`` entries of
    each bin's contiguous block.  ``O(k log k)`` with no Python loop.

    Parameters
    ----------
    choices:
        int64 array of request targets (flat; multiple requests by one
        ball appear as multiple entries).
    capacity:
        int array of per-bin residual capacities (negative values are
        treated as 0).
    rng:
        Random stream for the within-bin selection.
    """
    choices = np.asarray(choices)
    capacity = np.atleast_1d(np.asarray(capacity))
    k = choices.size
    if k == 0:
        # Empty request round (e.g. a schedule running past the last
        # active ball with ``stop_when_empty=False``): nothing to
        # group, no RNG consumed.
        return np.zeros(0, dtype=bool)
    if not np.issubdtype(choices.dtype, np.integer):
        raise ValueError(
            f"choices must be an integer array, got dtype {choices.dtype}"
        )
    if choices.min() < 0 or choices.max() >= capacity.size:
        raise ValueError("request target out of range for capacity array")
    cap = np.maximum(capacity, 0)
    if int(cap.max(initial=0)) == 0:
        # Every bin saturated (zero-capacity round): all requests are
        # rejected; skip the O(k log k) sort and its priority draws.
        return np.zeros(k, dtype=bool)
    order = np.lexsort((rng.random(k), choices))
    sorted_bins = choices[order]
    change = np.flatnonzero(np.diff(sorted_bins)) + 1
    starts = np.concatenate(([0], change))
    block_lengths = np.diff(np.concatenate((starts, [k])))
    group_start = np.repeat(starts, block_lengths)
    rank_within_bin = np.arange(k) - group_start
    accepted_sorted = rank_within_bin < cap[sorted_bins]
    mask = np.zeros(k, dtype=bool)
    mask[order[accepted_sorted]] = True
    return mask
