"""Tests for the threshold schedules."""

import math

import pytest

from repro.core.thresholds import (
    ExponentSchedule,
    FixedSchedule,
    PaperSchedule,
)


class TestPaperSchedule:
    def test_estimate_recursion(self):
        s = PaperSchedule(10**6, 1000)
        assert s.estimate(0) == pytest.approx(10**6)
        assert s.estimate(1) == pytest.approx(
            (10**6) ** (2 / 3) * 1000 ** (1 / 3), rel=1e-9
        )

    def test_raw_threshold_formula(self):
        m, n = 10**6, 1000
        s = PaperSchedule(m, n)
        assert s.raw_threshold(0) == pytest.approx(
            m / n - (m / n) ** (2 / 3)
        )

    def test_thresholds_integral_and_monotone(self):
        s = PaperSchedule(2**26, 2**10)
        values = [s.threshold(i) for i in range(s.phase1_rounds())]
        assert all(isinstance(v, int) for v in values)
        assert values == sorted(values)
        assert all(v >= 0 for v in values)

    def test_capacity_sums_to_last_threshold(self):
        s = PaperSchedule(2**20, 2**8)
        rounds = s.phase1_rounds()
        total = sum(s.capacity(i) for i in range(rounds))
        assert total == s.threshold(rounds - 1)

    def test_phase1_rounds_endpoint(self):
        s = PaperSchedule(10**9, 1000)
        r = s.phase1_rounds()
        assert s.estimate(r) <= 2000
        assert s.estimate(r - 1) > 2000

    def test_phase1_rounds_loglog_growth(self):
        n = 1024
        r_small = PaperSchedule(n * 2**4, n).phase1_rounds()
        r_large = PaperSchedule(n * 2**32, n).phase1_rounds()
        assert r_small < r_large <= r_small + 10

    def test_thresholds_below_mean(self):
        m, n = 2**24, 2**8
        s = PaperSchedule(m, n)
        for i in range(s.phase1_rounds()):
            assert s.threshold(i) <= m // n

    def test_huge_m_numerically_stable(self):
        s = PaperSchedule(2**200, 1024)
        assert s.estimate(0) == pytest.approx(float(2**200), rel=1e-6)
        assert s.phase1_rounds() < 100

    def test_stop_factor_validation(self):
        with pytest.raises(ValueError):
            PaperSchedule(100, 10, stop_factor=0.5)

    def test_requires_heavy(self):
        with pytest.raises(ValueError):
            PaperSchedule(5, 10)

    def test_negative_round_raises(self):
        s = PaperSchedule(1000, 10)
        with pytest.raises(ValueError):
            s.estimate(-1)
        with pytest.raises(ValueError):
            s.threshold(-1)


class TestFixedSchedule:
    def test_constant(self):
        s = FixedSchedule(1000, 10, slack=2)
        assert s.threshold(0) == s.threshold(5) == 102

    def test_ceil_of_mean(self):
        s = FixedSchedule(1001, 10, slack=0)
        assert s.threshold(0) == 101

    def test_no_phase1_endpoint(self):
        assert FixedSchedule(1000, 10).phase1_rounds() is None

    def test_capacity_zero_after_first(self):
        s = FixedSchedule(1000, 10, slack=1)
        assert s.capacity(0) == 101
        assert s.capacity(1) == 0

    def test_negative_slack(self):
        with pytest.raises(ValueError):
            FixedSchedule(100, 10, slack=-1)


class TestExponentSchedule:
    def test_matches_paper_at_two_thirds(self):
        m, n = 2**22, 2**8
        paper = PaperSchedule(m, n)
        exp = ExponentSchedule(m, n, alpha=2.0 / 3.0)
        for i in range(paper.phase1_rounds()):
            assert exp.threshold(i) == paper.threshold(i)
        assert exp.phase1_rounds() == paper.phase1_rounds()

    def test_smaller_alpha_fewer_rounds(self):
        m, n = 2**24, 2**8
        r_half = ExponentSchedule(m, n, alpha=0.5).phase1_rounds()
        r_paper = ExponentSchedule(m, n, alpha=2 / 3).phase1_rounds()
        r_big = ExponentSchedule(m, n, alpha=0.9).phase1_rounds()
        assert r_half <= r_paper <= r_big

    @pytest.mark.parametrize("alpha", [0.0, 1.0, -0.2, 1.5])
    def test_alpha_validation(self, alpha):
        with pytest.raises(ValueError):
            ExponentSchedule(100, 10, alpha=alpha)

    def test_estimate_recursion(self):
        s = ExponentSchedule(10**6, 100, alpha=0.5)
        assert s.estimate(1) == pytest.approx(
            math.sqrt(10**6) * math.sqrt(100), rel=1e-9
        )
