"""The naive single-choice process: every ball picks one uniform bin.

This is the paper's stated point of comparison: for ``m >= n log n``
the max load is ``m/n + Theta(sqrt((m/n) log n))`` w.h.p. — the
``sqrt``-excess that ``A_heavy`` eliminates.  One round, one message per
ball.

Modes mirror the main algorithm: ``"perball"`` samples explicit choices
(and can return the assignment); ``"aggregate"`` samples the occupancy
vector directly from the multinomial distribution — identical in law,
``O(n)`` memory.
"""

from __future__ import annotations

from typing import Literal

from repro.api.spec import register_allocator
from repro.fastpath.roundstate import RoundState
from repro.result import AllocationResult
from repro.utils.seeding import RngFactory
from repro.utils.validation import ensure_m_n

__all__ = ["run_single_choice"]


@register_allocator(
    "single",
    summary="naive one-shot uniform random allocation",
    paper_ref="baseline",
    aliases=("single_choice", "one_choice"),
    modes=("perball", "aggregate"),
    kernel_backed=True,
)
def run_single_choice(
    m: int,
    n: int,
    *,
    seed=None,
    mode: Literal["perball", "aggregate"] = "perball",
) -> AllocationResult:
    """One-shot uniform random allocation.

    Parameters
    ----------
    m, n:
        Instance size (no heaviness requirement).
    seed:
        Reproducibility seed.
    mode:
        ``"perball"`` (explicit choices, per-ball accounting) or
        ``"aggregate"`` (multinomial occupancy, ``O(n)`` memory).
    """
    m, n = ensure_m_n(m, n)
    if mode not in ("perball", "aggregate"):
        raise ValueError(f"mode must be 'perball' or 'aggregate', got {mode!r}")
    factory = RngFactory(seed)
    rng = factory.stream("single", "choices")

    # One kernel round with unbounded capacity: every request is
    # accepted, and accepts are implicit (the ball's single message is
    # the commitment), hence accept_cost=0 / no bin->ball records.
    state = RoundState(
        m, n, granularity=mode, track_messages=(mode == "perball")
    )
    batch = state.sample_contacts(rng)
    decision = state.group_and_accept(batch, None)
    state.commit_and_revoke(
        batch, decision, accept_cost=0, record_accepts=False
    )

    return AllocationResult(
        algorithm="single-choice",
        m=m,
        n=n,
        loads=state.loads,
        rounds=1,
        metrics=state.metrics,
        messages=state.counter,
        total_messages=state.total_messages,
        seed_entropy=factory.root_entropy,
    )
