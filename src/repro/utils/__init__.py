"""Shared low-level utilities for the :mod:`repro` package.

This subpackage hosts the small, dependency-free helpers used throughout
the reproduction: iterated logarithms and tower functions (the round
complexities of the paper are stated in terms of ``log log(m/n)`` and
``log* n``), parameter validation, and seeding helpers that turn a single
user-facing seed into independent per-component random streams.
"""

from repro.utils.logstar import (
    ilog2,
    iterated_log2,
    log_star,
    loglog2,
    tower,
)
from repro.utils.seeding import RngFactory, spawn_generators
from repro.utils.validation import (
    check_positive_int,
    check_probability,
    check_seed,
    ensure_m_n,
)

__all__ = [
    "RngFactory",
    "check_positive_int",
    "check_probability",
    "check_seed",
    "ensure_m_n",
    "ilog2",
    "iterated_log2",
    "log_star",
    "loglog2",
    "spawn_generators",
    "tower",
]
