"""The continuous-time allocation service.

Where :mod:`repro.dynamic` runs churn as a closed-loop epoch script,
this subsystem runs it as a **server**: a long-lived
:class:`AllocatorService` ingests ``place``/``release`` events through
a bounded queue, micro-batches them by count/age watermarks, and
flushes each batch onto the incremental-rebalance path — one dynamic
epoch per batch, seeds spawned in ``run_dynamic`` order so a
count-matched stream reproduces ``run_dynamic`` bitwise, epoch for
epoch.  An admission policy (:class:`AdmissionPolicy`) guards the
queue: accept, defer (micro-batches widen while the gap SLO or
per-epoch message budget is threatened), or shed.

Entry points: :class:`AllocatorService` (programmatic, sync or via
:func:`serve_queue` asyncio ingest), :func:`simulate_service` /
``python -m repro serve --simulate`` (deterministic open-loop driver
over a :class:`~repro.dynamic.DynamicSpec` regime), and
``benchmark_service`` in :mod:`repro.api.bench` backing the
checked-in ``BENCH_service.json``.  ``docs/service.md`` documents the
architecture and the bitwise-replay guarantee.
"""

from repro.service.admission import (
    ACCEPT,
    DEFER,
    SHED,
    AdmissionPolicy,
    GapSloController,
)
from repro.service.driver import ServiceReport, simulate_service
from repro.service.events import (
    Clock,
    Event,
    EventQueue,
    Place,
    Query,
    Release,
    SimulatedClock,
    WallClock,
)
from repro.service.server import (
    AllocatorService,
    BatchRecord,
    ServiceStats,
    replay_trace,
    serve_queue,
)

__all__ = [
    "ACCEPT",
    "DEFER",
    "SHED",
    "AdmissionPolicy",
    "AllocatorService",
    "BatchRecord",
    "Clock",
    "Event",
    "EventQueue",
    "GapSloController",
    "Place",
    "Query",
    "Release",
    "ServiceReport",
    "ServiceStats",
    "SimulatedClock",
    "WallClock",
    "replay_trace",
    "serve_queue",
    "simulate_service",
]
