"""Tests for the experiment harness and registry."""

import pytest

from repro.experiments import EXPERIMENTS, get_experiment, run_experiment
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import repeat_gaps, repeat_metric, seed_list
from repro.baselines import run_single_choice


class TestRegistry:
    def test_all_registered_ids_present(self):
        expected = {
            "T1", "T2", "T3", "T4", "T5", "T6", "T7", "T8", "T9",
            "F1", "F2", "F3", "F4", "F5", "A1", "A2", "A3", "A4",
            "W1", "R1", "D1", "D2",
        }
        assert set(EXPERIMENTS) == expected

    def test_every_experiment_has_a_docstring(self):
        """The registry is the experiment table; the no-argument CLI
        listing renders each id with the first docstring line, so a
        registered experiment without a docstring is doc rot."""
        for exp_id, fn in EXPERIMENTS.items():
            doc = (fn.__doc__ or "").strip()
            assert doc, f"experiment {exp_id} has no docstring"
            first_line = doc.splitlines()[0]
            assert exp_id in first_line, (
                f"experiment {exp_id}'s docstring should lead with its "
                f"id, got {first_line!r}"
            )

    def test_cli_listing_shows_every_id(self, capsys):
        """``python -m repro.experiments`` (no argument) must list the
        whole registry with docstring summaries."""
        from repro.experiments.__main__ import main

        assert main([]) == 0
        out = capsys.readouterr().out
        for exp_id in EXPERIMENTS:
            assert exp_id in out

    def test_lookup_case_insensitive(self):
        assert get_experiment("t1") is EXPERIMENTS["T1"]

    def test_unknown_id(self):
        with pytest.raises(KeyError):
            get_experiment("T99")

    def test_bad_scale(self):
        with pytest.raises(ValueError):
            run_experiment("T2", scale="huge")


class TestReport:
    def test_add_row_validates_width(self):
        r = ExperimentReport("X", "t", "c", columns=["a", "b"])
        r.add_row(1, 2)
        with pytest.raises(ValueError):
            r.add_row(1, 2, 3)

    def test_render_contains_everything(self):
        r = ExperimentReport("X1", "My title", "Thm 9", columns=["a", "b"])
        r.add_row(1, 2.5)
        r.notes.append("a note")
        r.passed = True
        text = r.render()
        assert "[X1] My title" in text
        assert "Thm 9" in text
        assert "2.5" in text
        assert "PASS" in text
        assert "a note" in text

    def test_render_fail_verdict(self):
        r = ExperimentReport("X", "t", "c", columns=["a"])
        r.add_row(1)
        r.passed = False
        assert "FAIL" in r.render()

    def test_float_formatting(self):
        assert ExperimentReport._fmt(0.123456) == "0.123"
        assert ExperimentReport._fmt(1234567.0) == "1.23e+06"
        assert ExperimentReport._fmt(True) == "yes"
        assert ExperimentReport._fmt(0) == "0"

    def test_empty_report_renders(self):
        r = ExperimentReport("X", "t", "c", columns=["a"])
        assert "[X]" in r.render()


class TestRunnerHelpers:
    def test_seed_list_distinct(self):
        seeds = seed_list(5, 10)
        assert len(set(seeds)) == 10

    def test_seed_list_validates(self):
        with pytest.raises(ValueError):
            seed_list(1, 0)

    def test_repeat_metric(self):
        ci = repeat_metric(
            lambda s: run_single_choice(10_000, 64, seed=s),
            metric=lambda r: r.gap,
            seeds=seed_list(1, 4),
        )
        assert ci.mean > 0

    def test_repeat_gaps(self):
        ci, worst = repeat_gaps(
            lambda s: run_single_choice(10_000, 64, seed=s),
            seeds=seed_list(1, 4),
        )
        assert worst >= ci.mean


@pytest.mark.parametrize("exp_id", sorted(EXPERIMENTS))
def test_every_experiment_passes_quick(exp_id):
    """Each experiment's own acceptance check must hold at quick scale.

    This is the repo's claim-by-claim regression net: a change that
    breaks a theorem-level behaviour fails here with the experiment id.
    """
    report = run_experiment(exp_id, scale="quick")
    assert report.rows, f"{exp_id} produced no rows"
    assert report.passed is True, f"{exp_id} self-check failed"
