"""Stemann's collision protocol [Ste96] adapted to ``m > n``.

Footnote 2 of the paper: Stemann considered ``m > n`` but achieves load
``O(m/n)`` only (a multiplicative constant above the average, versus the
paper's additive ``O(1)``).  The protocol's signature move is the
*collision threshold*: a bin accepts **all** requests it receives in a
round iff their number (plus its load) stays below the collision bound,
else it rejects **all** of them.

Implementation, per round with collision bound ``L``:

* every unallocated ball contacts one uniformly random bin;
* a bin with load ``ℓ`` receiving ``X`` requests accepts all of them if
  ``ℓ + X <= L``, else none;
* accepted balls commit immediately.

With ``L = collision_factor * ceil(m/n)`` the protocol terminates in
``O(log n)`` rounds w.h.p. with max load ``<= L = O(m/n)`` — the
behaviour experiments T1/T2 contrast against ``A_heavy``'s
``m/n + O(1)`` in ``O(log log(m/n))`` rounds.

The round loop is the shared
:class:`~repro.fastpath.roundstate.RoundState` kernels with the
``all_or_nothing`` accept policy.  Because that rule depends only on
the per-bin request *count*, the protocol also has an exact
``"aggregate"`` mode (``O(n)`` per round, multinomial counts) —
identical in distribution to the per-ball run for every per-bin
statistic.
"""

from __future__ import annotations

import math
from typing import Literal

import numpy as np

from repro.api.spec import (
    register_allocator,
    register_dynamic,
    register_replicator,
)
from repro.dynamic.placement import DynamicPlacement
from repro.fastpath.roundstate import RoundState
from repro.result import AllocationResult
from repro.utils.seeding import RngFactory
from repro.utils.validation import ensure_m_n
from repro.workloads import bind_workload

__all__ = ["dynamic_stemann", "replicate_stemann", "run_stemann"]


@register_allocator(
    "stemann",
    summary="collision protocol with a fixed load bound",
    paper_ref="baseline [Ste96]",
    modes=("perball", "aggregate"),
    kernel_backed=True,
    workload_capable=True,
)
def run_stemann(
    m: int,
    n: int,
    *,
    seed=None,
    mode: Literal["perball", "aggregate"] = "perball",
    collision_factor: float = 2.0,
    max_rounds: int = 100_000,
    workload=None,
) -> AllocationResult:
    """Collision-threshold protocol with bound
    ``L = ceil(collision_factor * ceil(m/n))``.

    Parameters
    ----------
    m, n:
        Instance size.
    seed:
        Reproducibility seed.
    mode:
        ``"perball"`` (explicit choices) or ``"aggregate"`` (per-bin
        multinomial request counts, ``O(n)`` per round; the
        all-or-nothing rule is count-determined, so the two modes are
        identical in law).
    collision_factor:
        Multiplicative headroom above the average load; must be > 1 for
        termination (capacity must exceed ``m``).
    max_rounds:
        Abort bound; result marked incomplete if hit.
    workload:
        Optional :class:`repro.workloads.Workload` (or spec string):
        skewed choice distribution, per-bin collision bounds scaled by
        the capacity profile, weighted-load tracking.  Note that under
        heavy choice skew the all-or-nothing rule can strand balls at
        the hot bins — the measured pathology, not a bug; raise
        ``collision_factor`` or use a proportional capacity profile.
        Uniform workloads are bitwise-identical to the historical run.
    """
    m, n = ensure_m_n(m, n)
    if mode not in ("perball", "aggregate"):
        raise ValueError(f"mode must be 'perball' or 'aggregate', got {mode!r}")
    if collision_factor <= 1.0:
        raise ValueError(
            f"collision_factor must be > 1, got {collision_factor}"
        )
    bound = math.ceil(collision_factor * math.ceil(m / n))
    factory = RngFactory(seed)
    wl = bind_workload(workload, m, n, factory, granularity=mode)
    bounds = wl.capacities(bound)
    rng = factory.stream("stemann", "choices")

    state = RoundState(
        m,
        n,
        granularity=mode,
        weights=wl.weights,
        weight_sum_sampler=wl.weight_sum_sampler,
    )
    while state.active_count > 0 and state.rounds < max_rounds:
        batch = state.sample_contacts(rng, pvals=wl.pvals)
        decision = state.group_and_accept(
            batch, bounds - state.loads, policy="all_or_nothing"
        )
        state.commit_and_revoke(batch, decision, threshold=bound)

    remaining = state.active_count
    extra: dict = {"collision_bound": bound}
    workload_record = wl.extra_record(state.weighted_loads)
    if workload_record is not None:
        extra["workload"] = workload_record
    return AllocationResult(
        algorithm="stemann",
        m=m,
        n=n,
        loads=state.loads,
        rounds=state.rounds,
        metrics=state.metrics,
        total_messages=state.total_messages,
        complete=remaining == 0,
        unallocated=remaining,
        seed_entropy=factory.root_entropy,
        extra=extra,
    )


@register_replicator("stemann", equivalent_mode="aggregate")
def replicate_stemann(
    m: int,
    n: int,
    *,
    trials: int,
    seed_seqs,
    workload=None,
    collision_factor: float = 2.0,
    max_rounds: int = 100_000,
) -> list[AllocationResult]:
    """Run ``trials`` seeded collision-protocol replications in lock-step.

    The all-or-nothing rule is count-determined, so every round is one
    trial-batched kernel call over the ``(T, n)`` occupancy matrix;
    trial ``t`` is bitwise-identical to ``run_stemann(m, n,
    seed=seed_seqs[t], mode="aggregate", ...)``.
    """
    m, n = ensure_m_n(m, n)
    if collision_factor <= 1.0:
        raise ValueError(
            f"collision_factor must be > 1, got {collision_factor}"
        )
    if len(seed_seqs) != trials:
        raise ValueError(f"need {trials} seed sequences, got {len(seed_seqs)}")
    bound = math.ceil(collision_factor * math.ceil(m / n))
    factories = [RngFactory(s) for s in seed_seqs]
    wls = [
        bind_workload(workload, m, n, f, granularity="aggregate")
        for f in factories
    ]
    bounds = wls[0].capacities(bound)
    rngs = [f.stream("stemann", "choices") for f in factories]
    samplers = [w.weight_sum_sampler for w in wls]
    weighted = any(s is not None for s in samplers)

    state = RoundState(
        m,
        n,
        granularity="aggregate",
        trials=trials,
        weight_sum_sampler=samplers if weighted else None,
    )
    while state.any_active and state.rounds < max_rounds:
        batch = state.sample_contacts(rngs, pvals=wls[0].pvals)
        decision = state.group_and_accept(
            batch, bounds - state.loads, policy="all_or_nothing"
        )
        state.commit_and_revoke(batch, decision, threshold=bound)

    results = []
    for t, (factory, wl) in enumerate(zip(factories, wls)):
        remaining = int(state.active_counts[t])
        extra: dict = {"collision_bound": bound}
        workload_record = wl.extra_record(
            state.weighted_loads[t]
            if state.weighted_loads is not None
            else None
        )
        if workload_record is not None:
            extra["workload"] = workload_record
        results.append(
            AllocationResult(
                algorithm="stemann",
                m=m,
                n=n,
                loads=state.loads[t],
                rounds=int(state.trial_rounds[t]),
                metrics=state.trial_metrics[t],
                total_messages=int(state.total_messages[t]),
                complete=remaining == 0,
                unallocated=remaining,
                seed_entropy=factory.root_entropy,
                extra=extra,
            )
        )
    return results


@register_dynamic("stemann")
def dynamic_stemann(
    m: int,
    n: int,
    *,
    initial_loads: np.ndarray,
    seed=None,
    workload=None,
    mode: Literal["perball", "aggregate"] = "aggregate",
    collision_factor: float = 2.0,
    max_rounds: int = 100_000,
) -> DynamicPlacement:
    """Place a cohort of ``m`` new balls under the collision rule.

    The collision bound is computed for the *population* (residents
    plus cohort) — ``L = ceil(collision_factor * ceil(total/n))`` —
    and the cohort runs the all-or-nothing rounds against the
    residents' loads.  A state whose bins are all at or above the
    bound terminates immediately, stranding the cohort, without
    drawing from the stream (the all-saturated guard).  With all-zero
    ``initial_loads`` this is exactly :func:`run_stemann` on the
    cohort, stream for stream.
    """
    initial = np.asarray(initial_loads, dtype=np.int64)
    if initial.shape != (n,):
        raise ValueError(
            f"initial_loads must have shape ({n},), got {initial.shape}"
        )
    if m == 0:
        return DynamicPlacement(
            loads=initial.copy(),
            placed=0,
            unplaced=0,
            rounds=0,
            total_messages=0,
        )
    m, n = ensure_m_n(m, n)
    if collision_factor <= 1.0:
        raise ValueError(
            f"collision_factor must be > 1, got {collision_factor}"
        )
    total = m + int(initial.sum())
    bound = math.ceil(collision_factor * math.ceil(total / n))
    factory = RngFactory(seed)
    wl = bind_workload(workload, m, n, factory, granularity=mode)
    bounds = wl.capacities(bound)
    rng = factory.stream("stemann", "choices")
    state = RoundState(
        m,
        n,
        granularity=mode,
        weights=wl.weights,
        weight_sum_sampler=wl.weight_sum_sampler,
        initial_loads=initial,
    )
    while state.active_count > 0 and state.rounds < max_rounds:
        capacity = bounds - state.loads
        if not np.any(capacity > 0):
            break  # every bin saturated: no draw could ever land
        batch = state.sample_contacts(rng, pvals=wl.pvals)
        decision = state.group_and_accept(
            batch, capacity, policy="all_or_nothing"
        )
        state.commit_and_revoke(batch, decision, threshold=bound)
    remaining = state.active_count
    extra: dict = {"collision_bound": bound}
    workload_record = wl.extra_record(state.weighted_loads)
    if workload_record is not None:
        extra["workload"] = workload_record
    return DynamicPlacement(
        loads=state.loads,
        placed=m - remaining,
        unplaced=remaining,
        rounds=state.rounds,
        total_messages=int(state.total_messages),
        extra=extra,
    )
