"""Lower-bound machinery (Section 4, Theorems 2 and 7, Lemmas 2-3).

The paper's lower bound says: *any* threshold algorithm whose balls
contact ``O(1)`` uniformly random bins per round either runs for
``Omega(min{log log(m/n), 2^{n^{Omega(1)}}})`` rounds or exceeds load
``m/n + omega(1)``.  The engine of the proof is a single-round statement
(Theorem 7): for any oblivious thresholds ``L_i`` with
``sum L_i = M + O(n)``, at least ``Omega(sqrt(Mn)/t)`` balls are
rejected w.h.p.

This subpackage makes every moving part executable:

* :mod:`repro.lowerbound.rejection` — measure single-round rejections
  under arbitrary threshold vectors, and compute the proof's dyadic
  class decomposition (``S_i`` values, classes ``I_k``, the heaviest
  class) for inspection;
* :mod:`repro.lowerbound.adversary` — representative and adversarial
  members of the oblivious-threshold family (uniform slack, two-tier,
  dyadic spread, hoarding, random);
* :mod:`repro.lowerbound.recursion` — iterate the optimal-threshold
  round experiment to trace the ``M_i`` trajectory and compare against
  the ``M_i = (m/n)^{3^{-i}} n^{1-3^{-i}}`` induction of Theorem 2;
* :mod:`repro.lowerbound.simulate_degree` — the degree-``d`` to
  degree-1 simulation of Lemmas 2-3, realized so exactly that the
  simulated run produces bitwise identical loads.
"""

from repro.lowerbound.adversary import (
    ThresholdAdversary,
    dyadic_adversary,
    hoarding_adversary,
    random_split_adversary,
    two_tier_adversary,
    uniform_adversary,
)
from repro.lowerbound.recursion import RecursionTrace, trace_recursion
from repro.lowerbound.rejection import (
    DyadicClasses,
    RejectionOutcome,
    dyadic_class_decomposition,
    measure_rejections,
)
from repro.lowerbound.simulate_degree import (
    DegreeDOutcome,
    run_degree_d_direct,
    run_degree_d_simulated,
)

__all__ = [
    "DegreeDOutcome",
    "DyadicClasses",
    "RecursionTrace",
    "RejectionOutcome",
    "ThresholdAdversary",
    "dyadic_adversary",
    "dyadic_class_decomposition",
    "hoarding_adversary",
    "measure_rejections",
    "random_split_adversary",
    "run_degree_d_direct",
    "run_degree_d_simulated",
    "trace_recursion",
    "two_tier_adversary",
    "uniform_adversary",
]
