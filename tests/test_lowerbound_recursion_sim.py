"""Tests for the M_i recursion trace and the degree-d simulation."""

import numpy as np
import pytest

from repro.lowerbound.recursion import trace_recursion
from repro.lowerbound.simulate_degree import (
    run_degree_d_direct,
    run_degree_d_simulated,
)


class TestTraceRecursion:
    def test_trajectory_starts_at_m(self):
        trace = trace_recursion(2**20, 1024, seed=1)
        assert trace.measured[0] == 2**20

    def test_trajectory_decreasing(self):
        trace = trace_recursion(2**20, 1024, seed=1)
        assert all(
            a > b for a, b in zip(trace.measured, trace.measured[1:])
        )

    def test_stops_at_On(self):
        trace = trace_recursion(2**20, 1024, seed=1, stop_factor=4.0)
        assert trace.measured[-1] <= 4.0 * 1024 or trace.measured[-1] == 0

    def test_measured_dominates_floor(self):
        """Theorem 2: the measured best-case trajectory must stay above
        the induction floor wherever the floor is meaningful."""
        trace = trace_recursion(2**24, 4096, seed=2)
        for i in range(1, min(len(trace.measured), len(trace.theoretical))):
            if trace.theoretical[i] > 8 * 4096:
                assert trace.measured[i] >= 0.9 * trace.theoretical[i]

    def test_rounds_at_least_predicted(self):
        trace = trace_recursion(2**24, 4096, seed=2)
        assert trace.rounds_to_On >= trace.predicted_rounds

    def test_rounds_grow_like_loglog(self):
        n = 1024
        r_small = trace_recursion(n * 2**6, n, seed=3).rounds_to_On
        r_large = trace_recursion(n * 2**24, n, seed=3).rounds_to_On
        assert r_small <= r_large <= r_small + 8

    def test_deterministic(self):
        a = trace_recursion(2**18, 512, seed=9)
        b = trace_recursion(2**18, 512, seed=9)
        assert a.measured == b.measured

    def test_requires_heavy(self):
        with pytest.raises(ValueError):
            trace_recursion(10, 100, seed=1)


class TestDegreeSimulation:
    THRESHOLDS = [10, 14, 15, 16, 18]

    def test_lemma2_bitwise_equality(self):
        """The core of Lemmas 2/3: identical randomness => identical
        loads, for several degrees and seeds."""
        for d in (1, 2, 3):
            for seed in (0, 1, 2):
                direct = run_degree_d_direct(
                    4096, 256, d, self.THRESHOLDS, seed=seed
                )
                sim = run_degree_d_simulated(
                    4096, 256, d, self.THRESHOLDS, seed=seed
                )
                assert np.array_equal(direct.loads, sim.loads)
                assert np.array_equal(direct.assignment, sim.assignment)

    def test_round_accounting(self):
        d = 3
        direct = run_degree_d_direct(2048, 128, d, self.THRESHOLDS, seed=1)
        sim = run_degree_d_simulated(2048, 128, d, self.THRESHOLDS, seed=1)
        assert sim.rounds == d * direct.rounds
        assert sim.phases == direct.phases

    def test_loads_respect_thresholds(self):
        direct = run_degree_d_direct(4096, 256, 2, self.THRESHOLDS, seed=4)
        assert direct.loads.max() <= self.THRESHOLDS[-1]

    def test_conservation(self):
        out = run_degree_d_direct(4096, 256, 2, self.THRESHOLDS, seed=4)
        assert out.loads.sum() + out.remaining == 4096
        allocated = (out.assignment >= 0).sum()
        assert allocated == out.loads.sum()

    def test_degree_wastes_capacity_under_saturation(self):
        """Protocol-family semantics (steps 3-5): accepts consume
        capacity for the whole phase even when the ball commits
        elsewhere and revokes at phase end.  With d > 1 and thresholds
        below the *request* rate d*m/n, a large share of accepts lands
        on multi-accepted balls and is wasted — higher degree then
        allocates strictly fewer balls per phase.  (This is the paper's
        remark that collecting over phases 'is not a good strategy for
        algorithms' made quantitative.)"""
        t = [20]  # request rate: d=1 -> 16/bin, d=3 -> 48/bin
        d1 = run_degree_d_direct(4096, 256, 1, t, seed=5)
        d3 = run_degree_d_direct(4096, 256, 3, t, seed=5)
        assert d3.remaining > d1.remaining

    def test_assignment_matches_loads(self):
        out = run_degree_d_direct(2048, 128, 2, self.THRESHOLDS, seed=6)
        assigned = out.assignment[out.assignment >= 0]
        recomputed = np.bincount(assigned, minlength=128)
        assert np.array_equal(recomputed, out.loads)

    def test_empty_thresholds_no_phases(self):
        out = run_degree_d_direct(100, 10, 2, [], seed=1)
        assert out.phases == 0
        assert out.remaining == 100
