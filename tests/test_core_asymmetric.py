"""Tests for the asymmetric superbin algorithm (Theorem 3)."""

import math

import numpy as np
import pytest

from repro.core.asymmetric import (
    AsymmetricConfig,
    run_asymmetric,
    superbin_blocks,
)


class TestSuperbinBlocks:
    def test_partition_covers_all_bins(self):
        blocks = superbin_blocks(100, 7)
        assert blocks[0] == 0 and blocks[-1] == 100
        sizes = np.diff(blocks)
        assert sizes.sum() == 100

    def test_sizes_within_one(self):
        sizes = np.diff(superbin_blocks(100, 7))
        assert sizes.max() - sizes.min() <= 1

    def test_divisible_case_equal(self):
        sizes = np.diff(superbin_blocks(100, 10))
        assert (sizes == 10).all()

    def test_single_superbin(self):
        blocks = superbin_blocks(10, 1)
        assert list(blocks) == [0, 10]

    def test_one_bin_per_superbin(self):
        blocks = superbin_blocks(5, 5)
        assert list(np.diff(blocks)) == [1, 1, 1, 1, 1]

    def test_invalid(self):
        with pytest.raises(ValueError):
            superbin_blocks(10, 0)
        with pytest.raises(ValueError):
            superbin_blocks(10, 11)


class TestRunAsymmetric:
    @pytest.mark.parametrize(
        "m,n",
        [(10**5, 100), (10**6, 1000), (2**14, 2**10), (4096, 4096)],
    )
    def test_complete_and_conserves(self, m, n):
        res = run_asymmetric(m, n, seed=1)
        assert res.complete
        assert res.loads.sum() == m

    @pytest.mark.parametrize("m,n", [(10**6, 1000), (10**5, 256), (2**22, 64)])
    def test_gap_constant(self, m, n):
        """Theorem 3: max load m/n + O(1)."""
        res = run_asymmetric(m, n, seed=1)
        assert res.gap <= 8.0

    def test_constant_rounds_across_scales(self):
        """Theorem 3: O(1) rounds — the count must not grow with m."""
        n = 256
        rounds = [
            run_asymmetric(n * ratio, n, seed=2).rounds
            for ratio in (16, 256, 4096, 65536)
        ]
        assert max(rounds) <= 8
        # and no growth trend: largest instance within +2 of smallest
        assert rounds[-1] <= rounds[0] + 4

    def test_presymmetric_auto(self):
        n = 128
        heavy = run_asymmetric(n * n, n, seed=3)  # m >> n log n
        light = run_asymmetric(n * 2, n, seed=3)  # m < n log n
        assert heavy.extra["presymmetric_used"]
        assert not light.extra["presymmetric_used"]

    def test_presymmetric_forced_off(self):
        n = 128
        res = run_asymmetric(n * n, n, seed=3, presymmetric=False)
        assert not res.extra["presymmetric_used"]
        assert res.complete
        assert res.gap <= 10.0

    def test_per_bin_messages_scale(self):
        """Cor 2 (relaxed): max per-bin messages O((m/n) + log n) up to
        the moderate-regime leader factor (see DESIGN.md)."""
        m, n = 10**6, 1000
        res = run_asymmetric(m, n, seed=1)
        s = res.messages.summary()
        assert s["per_bin_received_max"] <= 2.5 * (m / n) + 50 * math.log(n)

    def test_total_messages_linear(self):
        m, n = 10**6, 1000
        res = run_asymmetric(m, n, seed=1)
        # request + response + allocation notice per ball, geometric tail
        assert res.total_messages <= 5 * m

    def test_deterministic(self):
        a = run_asymmetric(10**5, 128, seed=11)
        b = run_asymmetric(10**5, 128, seed=11)
        assert np.array_equal(a.loads, b.loads)
        assert a.rounds == b.rounds

    def test_schedule_recorded(self):
        res = run_asymmetric(10**5, 128, seed=1)
        sched = res.extra["schedule"]
        assert len(sched) == res.rounds - int(res.extra["presymmetric_used"])
        for n_r, l_r in sched:
            assert 1 <= n_r <= 128
            assert l_r >= 1

    def test_cleanup_rare(self):
        cleanups = [
            run_asymmetric(10**5, 256, seed=s).extra["cleanup_rounds"]
            for s in range(10)
        ]
        assert np.mean(cleanups) <= 0.5

    def test_custom_c(self):
        res = run_asymmetric(10**5, 128, seed=1, config=AsymmetricConfig(c=2.5))
        assert res.complete
        assert res.gap <= 10.0

    def test_requires_heavy(self):
        with pytest.raises(ValueError):
            run_asymmetric(10, 100, seed=1)

    def test_track_per_ball_off(self):
        res = run_asymmetric(
            10**5, 128, seed=1, config=AsymmetricConfig(track_per_ball=False)
        )
        assert res.messages is None
        assert res.complete


class TestAggregateMode:
    def test_conserves_and_completes(self):
        res = run_asymmetric(2**22, 512, seed=1, mode="aggregate")
        assert res.complete
        assert res.loads.sum() == 2**22

    def test_huge_instance(self):
        res = run_asymmetric(10**10, 1024, seed=1, mode="aggregate")
        assert res.complete
        assert res.gap <= 8.0
        assert res.rounds <= 8

    def test_no_per_ball_counter(self):
        res = run_asymmetric(2**20, 256, seed=1, mode="aggregate")
        assert res.messages is None
        assert res.extra["bin_received_max"] > 0

    def test_statistically_matches_perball(self):
        import numpy as np

        m, n = 2**18, 256
        g_a = np.mean(
            [
                run_asymmetric(m, n, seed=s, mode="aggregate").gap
                for s in range(6)
            ]
        )
        g_p = np.mean(
            [run_asymmetric(m, n, seed=s + 60).gap for s in range(6)]
        )
        assert abs(g_a - g_p) <= 2.0

    def test_round_structure_matches_perball(self):
        m, n = 2**18, 256
        a = run_asymmetric(m, n, seed=4, mode="aggregate")
        p = run_asymmetric(m, n, seed=4)
        assert a.extra["scheduled_rounds"] == p.extra["scheduled_rounds"]
        assert [x for x, _ in a.extra["schedule"]] == [
            x for x, _ in p.extra["schedule"]
        ]

    def test_invalid_mode(self):
        import pytest as _pytest

        with _pytest.raises(ValueError):
            run_asymmetric(1000, 10, mode="warp")
