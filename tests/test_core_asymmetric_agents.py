"""Tests for the engine-mode asymmetric agents."""

import numpy as np
import pytest

from repro.core.asymmetric import run_asymmetric
from repro.core.asymmetric_agents import run_asymmetric_engine


class TestAsymmetricEngine:
    def test_completes_and_conserves(self):
        res = run_asymmetric_engine(3000, 16, seed=1)
        assert res.complete
        assert res.loads.sum() == 3000

    def test_gap_constant(self):
        res = run_asymmetric_engine(3000, 16, seed=1)
        assert res.gap <= 8.0

    def test_constant_rounds(self):
        rounds = [
            run_asymmetric_engine(500 * 2**e, 16, seed=2).rounds
            for e in range(3)
        ]
        assert max(rounds) <= 8

    def test_deterministic(self):
        a = run_asymmetric_engine(2000, 16, seed=5)
        b = run_asymmetric_engine(2000, 16, seed=5)
        assert np.array_equal(a.loads, b.loads)

    def test_cross_validates_vectorized(self):
        """Engine and vectorized asymmetric implementations must agree
        on gap statistics over seeds (same protocol family)."""
        m, n = 3000, 16
        g_e = np.mean(
            [run_asymmetric_engine(m, n, seed=s).gap for s in range(5)]
        )
        g_v = np.mean(
            [
                run_asymmetric(m, n, seed=s + 50, presymmetric=False).gap
                for s in range(5)
            ]
        )
        assert abs(g_e - g_v) <= 3.0

    def test_round_counts_comparable(self):
        m, n = 3000, 16
        r_e = run_asymmetric_engine(m, n, seed=1).rounds
        r_v = run_asymmetric(m, n, seed=1, presymmetric=False).rounds
        assert abs(r_e - r_v) <= 3

    def test_requires_heavy(self):
        with pytest.raises(ValueError):
            run_asymmetric_engine(5, 10, seed=1)
