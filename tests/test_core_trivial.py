"""Tests for the deterministic n-round trivial algorithm."""

import math

import numpy as np
import pytest

from repro.core.trivial import run_trivial


class TestRunTrivial:
    @pytest.mark.parametrize("m,n", [(100, 7), (1000, 13), (64, 64), (5, 3)])
    def test_completes_within_n_rounds(self, m, n):
        res = run_trivial(m, n, seed=1)
        assert res.complete
        assert res.rounds <= n

    @pytest.mark.parametrize("m,n", [(100, 7), (10**6, 5), (999, 10)])
    def test_perfect_balance(self, m, n):
        """Max load is exactly ceil(m/n) — the deterministic guarantee."""
        res = run_trivial(m, n, seed=1)
        assert res.max_load == math.ceil(m / n)

    def test_min_load_floor(self):
        res = run_trivial(1000, 7, seed=2)
        # All bins fill to ceil or floor of the mean.
        assert res.loads.min() >= math.floor(1000 / 7)

    def test_conservation(self):
        res = run_trivial(12345, 17, seed=3)
        assert res.loads.sum() == 12345

    def test_deterministic_load_profile(self):
        """The load guarantee is seed-independent (only tie-breaks vary)."""
        a = run_trivial(500, 9, seed=1)
        b = run_trivial(500, 9, seed=999)
        assert a.max_load == b.max_load == math.ceil(500 / 9)

    def test_single_bin(self):
        res = run_trivial(50, 1, seed=1)
        assert res.rounds == 1
        assert res.loads[0] == 50

    def test_m_less_than_n(self):
        res = run_trivial(3, 10, seed=1)
        assert res.complete
        assert res.max_load == 1

    def test_custom_threshold(self):
        res = run_trivial(100, 10, seed=1, threshold=20)
        assert res.complete
        assert res.max_load <= 20

    def test_insufficient_threshold_rejected(self):
        with pytest.raises(ValueError, match="capacity"):
            run_trivial(100, 10, seed=1, threshold=9)

    def test_messages_bounded(self):
        # Each ball sends <= n requests: total <= m * n (loose); in
        # practice staggered starts allocate most balls in round 1.
        m, n = 1000, 10
        res = run_trivial(m, n, seed=1)
        assert res.total_messages <= 2 * m * n
        first_round = res.metrics.rounds[0]
        assert first_round.commits >= m // 2

    def test_round_metrics_monotone(self):
        res = run_trivial(5000, 11, seed=1)
        hist = res.metrics.unallocated_history
        assert all(a >= b for a, b in zip(hist, hist[1:]))

    def test_algorithm_name(self):
        assert run_trivial(10, 2, seed=1).algorithm == "trivial"
