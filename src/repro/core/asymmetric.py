"""The asymmetric superbin algorithm (Section 5, Theorem 3).

With globally known bin IDs, the algorithm groups bins into *superbins*
controlled by leader bins and allocates round-robin inside each
superbin, achieving max load ``m/n + O(1)`` within a **constant** number
of rounds w.h.p. while every bin receives only
``(1+o(1)) m/n + O(log n)`` messages.

Per round ``r`` (Section 5's numbered steps):

1. ``n_r = m_r * min(n/m, 1/log n)`` superbins, each with a leader;
   ``delta_r = c * sqrt((m_r/n_r) * log n)``;
   ``L_r = ceil(m_r/n_r - delta_r)`` if that exceeds ``2 c^2 log n``,
   else ``L_r = 4 c^2 log n`` (the terminal round).
2. Each active ball contacts the leader of a uniformly random superbin.
3. Leaders accept up to ``L_r`` requests and reply round-robin with
   member offsets ``j``.
4. A ball answered ``j`` by leader ``i`` informs member bin ``i - j``
   that it is allocated there.
5. If the terminal branch was taken, stop; else
   ``m_{r+1} = m_r - L_r n_r``.

Divisibility: the paper assumes ``n_r | n`` w.l.o.g. (footnote 6: one
superbin may be up to a factor 2 larger).  We partition the bins into
``n_r`` contiguous blocks whose sizes differ by at most one, which
realizes the same relaxation.

The parameters use the *scheduled* ``m_r`` (bins cannot observe the true
count), exactly as in the paper.  On the ``n^{-c}``-probability event
that balls remain after the terminal round, the implementation repeats
the terminal round until done (counted in ``rounds`` and reported via
``extra["cleanup_rounds"]``); Claim 10 guarantees this path is w.h.p.
never taken, and experiment T4 reports its observed frequency.

When ``m > n log n``, Theorem 3 prepends **one round of the symmetric
algorithm** to cut the active count to ``o(m)`` so that leader bins stay
within the message bound; ``run_asymmetric`` does this automatically
(disable with ``presymmetric=False``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.api.spec import register_allocator
from repro.fastpath.roundstate import RoundState
from repro.result import AllocationResult
from repro.utils.seeding import RngFactory
from repro.utils.validation import ensure_m_n
from repro.workloads import bind_workload

__all__ = ["AsymmetricConfig", "run_asymmetric", "superbin_blocks"]


@dataclass(frozen=True)
class AsymmetricConfig:
    """Tunables of the asymmetric algorithm.

    Attributes
    ----------
    c:
        The "sufficiently large constant" of Section 5.  It controls the
        concentration slack ``delta_r`` and the terminal threshold
        ``4 c^2 log n``.  The default 1.5 keeps terminal-round loads
        modest while making cleanup rounds (< 1 in 10^4 runs) rare.
    max_rounds:
        Safety cap (Claim 9 proves termination within 3 scheduled
        rounds; cleanup repeats add at most a few more).
    track_per_ball:
        Maintain the full per-ball/per-bin message counter.
    """

    c: float = 1.5
    max_rounds: int = 64
    track_per_ball: bool = True


def superbin_blocks(n: int, n_r: int) -> np.ndarray:
    """Block boundaries: ``n_r + 1`` offsets splitting ``n`` bins into
    ``n_r`` contiguous superbins with sizes differing by at most 1.

    ``blocks[s]`` is the leader (first bin) of superbin ``s``.
    """
    if not 1 <= n_r <= n:
        raise ValueError(f"need 1 <= n_r <= n, got n_r={n_r}, n={n}")
    return np.linspace(0, n, n_r + 1, dtype=np.int64)


def _schedule_params(
    m_sched: int, m_invoked: int, n: int, c: float
) -> tuple[int, float, int, bool]:
    """Round parameters ``(n_r, delta_r, L_r, terminal)`` from the
    scheduled ball count ``m_sched`` (paper step 2).

    Superbin count: ``n_r = m_r * min(n/m, 1/log n)`` with ``m`` the
    count at invocation — Section 5's design invariant that every leader
    expects ``~m/n`` messages in each non-terminal round.  The terminal
    branch triggers when either

    * ``ceil(m_r/n_r - delta_r) <= 2 c^2 log n`` (Claim 8's test), or
    * ``m_r <= n log n`` — the point where ``n/m_r = 1/log n`` makes the
      two branches of the ``min`` coincide; Claim 9's proof terminates
      exactly here (``m_3 = n log n``, ``m_3/n_3 = log n``).  Without
      this trigger the constant-mean recursion would test Claim 8
      against a round-independent mean and run ``omega(1)`` tail rounds.

    In the terminal round ``n_r = m_r / log n`` (each leader expects
    ``log n`` requests) and ``L_r = 4 c^2 log n``, whose slack absorbs
    the upper deviation (Claim 10).
    """
    log_n = math.log(max(n, 2))
    two_c2_logn = 2 * c * c * log_n
    ratio = min(n / m_invoked, 1.0 / log_n)
    n_r = max(1, min(n, int(round(m_sched * ratio))))
    mean = m_sched / n_r
    delta = c * math.sqrt(max(mean, 1.0) * log_n)
    candidate = math.ceil(mean - delta)
    if candidate > two_c2_logn and m_sched > n:
        return n_r, delta, candidate, False
    # Terminal round: superbins of ~log n expected requests each, with
    # block size clamped to >= log n so the per-member intake cap
    # L_r / block_size = 4 c^2 stays O(1) (the premise Claim 10 needs).
    n_term_cap = max(1, int(n // max(1.0, math.ceil(log_n))))
    n_term = max(1, min(n_term_cap, int(round(m_sched / log_n))))
    mean_term = m_sched / n_term
    delta_term = c * math.sqrt(max(mean_term, 1.0) * log_n)
    # The terminal intake bound must absorb the whole remainder in one
    # round w.h.p.: mean + 2 delta covers the upper deviation (Claim 10
    # uses 4 c^2 log n for the paper's mean of log n; the max() keeps
    # that form when m_sched/n_term ~ log n and scales it when the
    # estimate is still above n, where the paper's analysis is loose).
    l_term = max(
        math.ceil(4 * c * c * log_n),
        math.ceil(mean_term + 2 * delta_term),
    )
    return n_term, delta_term, l_term, True


def _waterfill_members(
    loads: np.ndarray,
    accepted_per_super: np.ndarray,
    blocks: np.ndarray,
    rng: np.random.Generator,
) -> np.ndarray:
    """Distribute each superbin's accepted count over its members:
    ``floor(a_s / b_s)`` each plus the remainder to the lowest-loaded
    members (random tie-break).  Returns the per-bin intake vector.

    This water-filling is the paper's round-robin relaxed to unequal
    block sizes and loads (the equal-size round-robin is the special
    case of equal loads and equal blocks); it is the one protocol
    policy the asymmetric algorithm layers on top of the shared round
    kernels, used identically by the per-ball and aggregate modes.
    """
    n = loads.size
    n_r = len(blocks) - 1
    block_sizes = np.diff(blocks)
    base = accepted_per_super // block_sizes
    remainder = accepted_per_super % block_sizes
    block_of_bin = np.repeat(np.arange(n_r), block_sizes)
    # Bins grouped by block, lowest current load first (random
    # tie-break); contiguous blocks keep the grouping exact.
    sorted_bins = np.lexsort((rng.random(n), loads, block_of_bin))
    starts_b = np.concatenate(([0], np.cumsum(block_sizes)[:-1]))
    rank_in_block = np.arange(n) - np.repeat(starts_b, block_sizes)
    intake_sorted = base[block_of_bin] + (
        rank_in_block < remainder[block_of_bin]
    ).astype(np.int64)
    intake = np.zeros(n, dtype=np.int64)
    intake[sorted_bins] = intake_sorted
    return intake


@register_allocator(
    "asymmetric",
    summary="constant-round superbin algorithm for labelled bins",
    paper_ref="Theorem 3",
    aliases=("superbin", "asym"),
    modes=("perball", "aggregate"),
    kernel_backed=True,
    workload_capable=True,
    config_type=AsymmetricConfig,
)
def run_asymmetric(
    m: int,
    n: int,
    *,
    seed=None,
    config: AsymmetricConfig = AsymmetricConfig(),
    presymmetric: Optional[bool] = None,
    mode: str = "perball",
    workload=None,
) -> AllocationResult:
    """Allocate ``m`` balls into ``n`` labelled bins (Theorem 3).

    Parameters
    ----------
    m, n:
        Instance size, ``m >= n`` (use ``run_light`` below that).
    seed:
        Reproducibility seed.
    config:
        Algorithm constants.
    presymmetric:
        Prepend one symmetric threshold round when ``m > n log n``
        (default: auto per Theorem 3's proof).
    mode:
        ``"perball"`` (exact per-ball accounting, ``m`` up to ~10^7) or
        ``"aggregate"`` (``O(n)`` per round via multinomial request
        counts — identical in distribution for loads/rounds/per-bin
        statistics; no per-ball counters).

    Both modes drive the same loop over the shared
    :class:`~repro.fastpath.roundstate.RoundState` kernels; the only
    protocol policies are the superbin schedule
    (:func:`_schedule_params`) and the member water-filling
    (:func:`_waterfill_members`).

    ``workload`` (optional :class:`repro.workloads.Workload` or spec
    string): balls pick a *bin* from the choice distribution and
    contact its superbin's leader, so skew concentrates requests on the
    superbins owning hot bins; the capacity profile scales each
    superbin's leader cap by its members' mean capacity factor; ball
    weights feed the weighted-load statistics (water-filling still
    balances ball *counts* — the leader's round-robin rule).  Uniform
    workloads are bitwise-identical to the historical run.

    Returns
    -------
    AllocationResult
        ``extra`` records ``scheduled_rounds``, ``cleanup_rounds``,
        ``presymmetric_used`` and the per-round ``(n_r, L_r)`` schedule
        (plus ``bin_received_max`` in aggregate mode).
    """
    if mode not in ("perball", "aggregate"):
        raise ValueError(f"mode must be 'perball' or 'aggregate', got {mode!r}")
    m, n = ensure_m_n(m, n, require_heavy=True)
    perball = mode == "perball"
    factory = RngFactory(seed)
    wl = bind_workload(workload, m, n, factory, granularity=mode)
    label = "asym" if perball else "asym-agg"
    rng = factory.stream(label, "choices")
    accept_rng = factory.stream(label, "accept")

    state = RoundState(
        m,
        n,
        granularity=mode,
        track_messages=perball and config.track_per_ball,
        weights=wl.weights,
        weight_sum_sampler=wl.weight_sum_sampler,
    )
    # Aggregate mode has no per-ball counter; per-bin receives are the
    # statistic Theorem 3 bounds, so track them directly.
    bin_received = None if perball else np.zeros(n, dtype=np.int64)
    schedule_log: list[tuple[int, int]] = []

    log_n = math.log(max(n, 2))
    use_pre = presymmetric if presymmetric is not None else (m > n * log_n)
    presym_t0 = 0

    if use_pre and m > n:
        # One round of the symmetric algorithm: threshold
        # T_0 = m/n - (m/n)^(2/3); w.h.p. every bin fills to exactly T_0.
        t0 = max(0, math.floor(m / n - (m / n) ** (2.0 / 3.0)))
        presym_t0 = t0
        batch = state.sample_contacts(rng, pvals=wl.pvals)
        if wl.capacity_scale is None:
            presym_caps = np.full(n, t0, dtype=np.int64)
        else:
            presym_caps = wl.capacities(t0)
        decision = state.group_and_accept(batch, presym_caps, accept_rng)
        if bin_received is not None:
            bin_received += batch.counts
        state.commit_and_revoke(batch, decision, threshold=t0)

    # Scheduled superbin rounds.  m_sched follows the paper's recursion —
    # bins cannot observe the true active count.  After the presymmetric
    # round the schedule value is m - T_0 * n (= m̃_1, exact w.h.p. by
    # Claim 2); the true count may deviate on low-probability events,
    # which the terminal round's delta-margin absorbs.
    if use_pre and m > n:
        m_sched = max(state.active_count, m - presym_t0 * n)
    else:
        m_sched = state.active_count
    m_invoked = max(m_sched, 1)  # the asymmetric instance's own "m"
    scheduled_rounds = 0
    cleanup_rounds = 0
    terminal_seen = False

    while state.active_count > 0 and state.rounds < config.max_rounds:
        n_r, _delta, l_r, terminal = _schedule_params(
            max(m_sched, 1), m_invoked, n, config.c
        )
        if terminal_seen:
            # Cleanup repeat of the terminal round (off-schedule).
            cleanup_rounds += 1
        else:
            scheduled_rounds += 1
        schedule_log.append((n_r, l_r))
        blocks = superbin_blocks(n, n_r)
        leaders = blocks[:-1]
        block_sizes = np.diff(blocks)
        # Step 4: leaders accept up to L_r scaled by block size (the
        # factor-2 relaxation of footnote 6: per-member intake stays
        # uniform when blocks differ in size) and, under a workload
        # capacity profile, by the block's mean capacity factor.
        avg_block = n / n_r
        if wl.capacity_scale is None:
            caps = np.ceil(l_r * block_sizes / avg_block).astype(np.int64)
        else:
            block_scale = (
                np.add.reduceat(wl.capacity_scale, blocks[:-1]) / block_sizes
            )
            caps = np.ceil(
                l_r * block_sizes / avg_block * block_scale
            ).astype(np.int64)

        if perball:
            # Step 3: each active ball samples a *bin* (uniform, or the
            # workload's choice distribution) and contacts the leader of
            # that bin's superbin.  With bin IDs globally known
            # (asymmetric model) this is computable locally, makes the
            # per-superbin request rate proportional to block size (or
            # traffic share), and degenerates to the paper's
            # uniform-superbin choice in the divisible case n_r | n.
            bin_pick = state.sample_contacts(rng, pvals=wl.pvals)
            superbin_choice = (
                np.searchsorted(blocks, bin_pick.choices, side="right") - 1
            )
            batch = state.sample_contacts(targets=superbin_choice, n_targets=n_r)
            decision = state.group_and_accept(batch, caps, accept_rng)
            accepted = decision.accepted
            k = decision.accepts_sent
            if k:
                acc_super = superbin_choice[accepted]
                a_per_super = np.bincount(acc_super, minlength=n_r)
                intake = _waterfill_members(
                    state.loads, a_per_super, blocks, accept_rng
                )
                # Member slots sorted by bin index are also grouped by
                # superbin (blocks are contiguous); hand each accepted
                # ball a slot of *its own* superbin by grouping the
                # accepted balls the same way, then restoring ball
                # order — commit_and_revoke pairs ``target_bins``
                # positionally with the committed balls (weighted-load
                # and assignment accounting rely on that alignment).
                slots = np.repeat(np.arange(n), intake)
                by_super = np.argsort(acc_super, kind="stable")
                member_bins = np.empty(k, dtype=np.int64)
                member_bins[by_super] = slots
            else:
                member_bins = np.zeros(0, dtype=np.int64)
            if state.counter is not None:
                # Messages: request (ball->leader), response
                # (leader->ball), allocation notice (ball->member bin;
                # sent even when member is the leader itself, matching
                # step 5's unconditional inform).  Contacts live in
                # superbin space, so the protocol records these itself.
                balls = state.active
                leader_of_ball = leaders[superbin_choice]
                accepted_ball_ids = balls[accepted]
                state.counter.record_bulk_ball_to_bin(leader_of_ball, balls)
                state.counter.record_bulk_bin_to_ball(
                    leader_of_ball[accepted], accepted_ball_ids
                )
                state.counter.record_bulk_ball_to_bin(
                    member_bins, accepted_ball_ids
                )
            state.commit_and_revoke(
                batch,
                decision,
                threshold=l_r,
                target_bins=member_bins,
                accept_cost=2,
                record_counter=False,
            )
        else:
            # Requests per superbin: balls pick a bin (uniform or
            # workload-skewed), hence a superbin with probability equal
            # to its members' total traffic share (block_size/n when
            # uniform).
            if wl.pvals is None:
                super_pvals = block_sizes / n
            else:
                super_pvals = np.add.reduceat(wl.pvals, blocks[:-1])
            batch = state.sample_contacts(rng, n_targets=n_r, pvals=super_pvals)
            decision = state.group_and_accept(batch, caps)
            intake = _waterfill_members(
                state.loads, decision.accepted_per_bin, blocks, accept_rng
            )
            # Message accounting: requests land at leaders; responses
            # and allocation notices at members.
            np.add.at(bin_received, leaders, batch.counts)
            bin_received += intake
            state.commit_and_revoke(
                batch,
                decision,
                threshold=l_r,
                target_counts=intake,
                accept_cost=2,
            )

        if terminal:
            terminal_seen = True
            # Scheduled recursion ends here; leftover balls trigger
            # cleanup repeats.  The schedule keeps decrementing so the
            # cleanup superbin count tracks the shrinking estimate; if
            # the estimate bottoms out while balls remain (probability
            # n^{-c} events), fall back to the true count — modeled as
            # leaders reporting their rejection totals upward, one extra
            # round already counted in the loop.
            m_sched = max(0, m_sched - l_r * n_r)
            if m_sched == 0 and state.active_count > 0:
                m_sched = state.active_count
        else:
            m_sched = max(0, m_sched - l_r * n_r)

    if state.active_count > 0:
        raise RuntimeError(
            f"asymmetric algorithm exceeded max_rounds={config.max_rounds} "
            f"with {state.active_count} balls left"
        )

    extra: dict = {
        "scheduled_rounds": scheduled_rounds,
        "cleanup_rounds": cleanup_rounds,
        "presymmetric_used": bool(use_pre),
        "schedule": schedule_log,
    }
    if bin_received is not None:
        extra["bin_received_max"] = int(bin_received.max(initial=0))
    workload_record = wl.extra_record(state.weighted_loads)
    if workload_record is not None:
        extra["workload"] = workload_record

    return AllocationResult(
        algorithm="asymmetric",
        m=m,
        n=n,
        loads=state.loads,
        rounds=state.rounds,
        metrics=state.metrics,
        messages=state.counter,
        total_messages=state.total_messages,
        seed_entropy=factory.root_entropy,
        extra=extra,
    )
