"""Report object produced by every experiment."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Sequence

__all__ = ["ExperimentReport"]


@dataclass
class ExperimentReport:
    """A rendered experiment: header, rows, and commentary.

    Attributes
    ----------
    exp_id:
        Registry identifier (``"T1"``, ``"F3"``, ...).
    title:
        One-line description.
    claim:
        The paper statement being reproduced (theorem/claim/section).
    columns:
        Column names.
    rows:
        Row values (any mix of numbers and strings; formatted on
        render).
    notes:
        Free-text commentary appended below the table (substitutions,
        caveats, expected shape).
    charts:
        Pre-rendered ASCII charts (see
        :mod:`repro.experiments.plotting`) appended after the table —
        the "figure" part of figure experiments.
    passed:
        Optional self-check verdict: did the measured shape match the
        paper's prediction under the experiment's own acceptance rule?
        ``None`` when the experiment is purely descriptive.
    """

    exp_id: str
    title: str
    claim: str
    columns: Sequence[str]
    rows: list[Sequence[Any]] = field(default_factory=list)
    notes: list[str] = field(default_factory=list)
    charts: list[str] = field(default_factory=list)
    passed: bool | None = None

    def add_row(self, *values: Any) -> None:
        if len(values) != len(self.columns):
            raise ValueError(
                f"row has {len(values)} values, expected {len(self.columns)}"
            )
        self.rows.append(values)

    @staticmethod
    def _fmt(value: Any) -> str:
        if isinstance(value, bool):
            return "yes" if value else "no"
        if isinstance(value, float):
            if value == 0:
                return "0"
            if abs(value) >= 1e5 or abs(value) < 1e-3:
                return f"{value:.3g}"
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return str(value)

    def render(self) -> str:
        """Aligned plain-text table with title, claim and notes."""
        header = [str(c) for c in self.columns]
        body = [[self._fmt(v) for v in row] for row in self.rows]
        widths = [
            max(len(header[j]), *(len(r[j]) for r in body)) if body else len(header[j])
            for j in range(len(header))
        ]
        sep = "-+-".join("-" * w for w in widths)
        lines = [
            f"[{self.exp_id}] {self.title}",
            f"reproduces: {self.claim}",
            "",
            " | ".join(h.ljust(w) for h, w in zip(header, widths)),
            sep,
        ]
        for r in body:
            lines.append(" | ".join(v.rjust(w) for v, w in zip(r, widths)))
        for chart in self.charts:
            lines.append("")
            lines.append(chart)
        if self.passed is not None:
            lines.append("")
            lines.append(f"self-check: {'PASS' if self.passed else 'FAIL'}")
        for note in self.notes:
            lines.append(f"note: {note}")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.render()
