"""Workload specifications: what arrives, how big it is, who can hold it.

The paper states its protocols for the canonical scenario — uniform
i.i.d. unit balls into homogeneous-capacity bins — and until this
module that scenario was hardwired at every layer of the package.  A
:class:`Workload` makes the scenario an explicit, validated object with
three independent axes:

* **choice distribution** — where a ball's uniformly random contact
  goes: ``uniform`` (the paper), ``zipf`` (power-law popularity, the
  classic web/cache skew), ``hotset`` (a fraction of bins receives a
  fixed share of traffic), or ``explicit`` per-bin probabilities;
* **ball weights** — how much work a ball carries: ``unit`` (the
  paper), ``geometric`` (i.i.d. integer job sizes with mean ``1/p``),
  or ``explicit`` per-ball weights;
* **capacity profile** — how bin capacity varies: ``homogeneous``
  (the paper), ``proportional`` (capacity follows the choice
  distribution, the provisioned-for-popularity regime), or
  ``explicit`` relative capacities.

Semantics shared by every kernel-backed protocol (see
``docs/workloads.md`` for the full contract):

* the choice distribution replaces the uniform contact draw in both
  granularities (per-ball inverse-CDF sampling; aggregate multinomial
  with the same ``pvals``) — identical in law between the two;
* the capacity profile scales each bin's threshold/capacity by a
  mean-1 per-bin factor, so total round capacity is preserved while
  individual bins shrink or grow;
* weights are *observational*: admission control stays count-based
  (a bin accepts up to its capacity in requests, exactly as in the
  unit protocol — the slot-based admission real schedulers use), and
  the package additionally tracks the per-bin **weighted** load, which
  is what the weighted max-load/gap statistics report.  Because a
  ball's weight never influences its acceptance, per-ball and
  aggregate granularities remain identical in law for i.i.d. weight
  distributions (aggregate draws per-bin weight *sums* from the exact
  closed form).

The default workload (all three axes at their paper settings) is
recognized by :attr:`Workload.is_uniform`; every dispatch and kernel
path treats it as "no workload at all", which is what makes the
uniform path bitwise seed-compatible with the pre-workload code.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np

from repro.fastpath.sampling import validate_pvals

__all__ = [
    "BoundWorkload",
    "Workload",
    "WorkloadError",
    "as_workload",
    "bind_workload",
    "parse_workload",
]

#: Accepted choice-distribution kinds.
CHOICE_KINDS = ("uniform", "zipf", "hotset", "explicit")
#: Accepted ball-weight kinds.
WEIGHT_KINDS = ("unit", "geometric", "explicit")
#: Accepted capacity-profile kinds.
CAPACITY_KINDS = ("homogeneous", "proportional", "explicit")


class WorkloadError(ValueError):
    """A workload spec is malformed or unusable in the requested mode."""


def _as_float_array(values, name: str) -> np.ndarray:
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 1 or arr.size == 0:
        raise WorkloadError(f"{name} must be a non-empty 1-D array")
    if not np.all(np.isfinite(arr)):
        raise WorkloadError(f"{name} must be finite")
    return arr


@dataclass(frozen=True, eq=False)
class Workload:
    """One allocation scenario: choices x weights x capacities.

    Construct directly, via the named constructors (:meth:`zipf`,
    :meth:`hotset`, ...), or from the CLI string grammar with
    :func:`parse_workload`.  Instances are immutable; derived arrays
    (``pvals``, capacity scales) are recomputed per ``n`` because one
    spec is routinely applied across a sweep of instance sizes.

    Attributes
    ----------
    choice:
        Choice-distribution kind (``uniform``/``zipf``/``hotset``/
        ``explicit``).
    choice_params:
        ``zipf``: ``(s,)`` with exponent ``s > 0``; ``hotset``:
        ``(frac, share)`` — the hottest ``frac`` of bins receives
        ``share`` of the traffic.
    choice_pvals:
        Explicit per-bin probabilities (kind ``explicit`` only).
    weight:
        Ball-weight kind (``unit``/``geometric``/``explicit``).
    weight_param:
        ``geometric``: success probability ``p`` in (0, 1]; mean ball
        weight is ``1/p``.
    weight_values:
        Explicit per-ball weights (kind ``explicit`` only; length must
        equal ``m`` at run time).
    capacity:
        Capacity-profile kind (``homogeneous``/``proportional``/
        ``explicit``).
    capacity_values:
        Explicit per-bin *relative* capacities (kind ``explicit``
        only; normalized to mean 1 at run time).
    """

    choice: str = "uniform"
    choice_params: tuple = ()
    choice_pvals: Optional[np.ndarray] = None
    weight: str = "unit"
    weight_param: float = 0.5
    weight_values: Optional[np.ndarray] = None
    capacity: str = "homogeneous"
    capacity_values: Optional[np.ndarray] = None

    def __post_init__(self) -> None:
        if self.choice not in CHOICE_KINDS:
            raise WorkloadError(
                f"unknown choice kind {self.choice!r}; "
                f"expected one of {', '.join(CHOICE_KINDS)}"
            )
        if self.weight not in WEIGHT_KINDS:
            raise WorkloadError(
                f"unknown weight kind {self.weight!r}; "
                f"expected one of {', '.join(WEIGHT_KINDS)}"
            )
        if self.capacity not in CAPACITY_KINDS:
            raise WorkloadError(
                f"unknown capacity kind {self.capacity!r}; "
                f"expected one of {', '.join(CAPACITY_KINDS)}"
            )
        if self.choice == "zipf":
            if len(self.choice_params) != 1 or self.choice_params[0] <= 0:
                raise WorkloadError(
                    "zipf choice distribution needs one exponent s > 0"
                )
        if self.choice == "hotset":
            if len(self.choice_params) != 2:
                raise WorkloadError(
                    "hotset choice distribution needs (frac, share)"
                )
            frac, share = self.choice_params
            if not (0 < frac < 1 and 0 < share < 1):
                raise WorkloadError(
                    "hotset frac and share must lie strictly in (0, 1)"
                )
        if self.choice == "explicit" and self.choice_pvals is None:
            raise WorkloadError("explicit choice kind needs choice_pvals")
        if self.weight == "geometric" and not (0 < self.weight_param <= 1):
            raise WorkloadError(
                f"geometric weight parameter must be in (0, 1], "
                f"got {self.weight_param}"
            )
        if self.weight == "explicit":
            if self.weight_values is None:
                raise WorkloadError("explicit weight kind needs weight_values")
            w = _as_float_array(self.weight_values, "weight_values")
            if w.min() <= 0:
                raise WorkloadError("explicit weights must be positive")
            object.__setattr__(self, "weight_values", w)
        if self.capacity == "explicit":
            if self.capacity_values is None:
                raise WorkloadError(
                    "explicit capacity kind needs capacity_values"
                )
            c = _as_float_array(self.capacity_values, "capacity_values")
            if c.min() < 0 or c.sum() <= 0:
                raise WorkloadError(
                    "explicit capacities must be non-negative with "
                    "positive total"
                )
            object.__setattr__(self, "capacity_values", c)

    # -- named constructors ---------------------------------------------

    @classmethod
    def uniform(cls) -> "Workload":
        """The paper's scenario (the default)."""
        return cls()

    @classmethod
    def zipf(cls, s: float, **kwargs) -> "Workload":
        """Power-law choice skew: bin ``i`` drawn with p ∝ 1/(i+1)^s."""
        return cls(choice="zipf", choice_params=(float(s),), **kwargs)

    @classmethod
    def hotset(cls, frac: float, share: float, **kwargs) -> "Workload":
        """The hottest ``frac`` of bins receives ``share`` of traffic."""
        return cls(
            choice="hotset",
            choice_params=(float(frac), float(share)),
            **kwargs,
        )

    @classmethod
    def explicit(cls, pvals, **kwargs) -> "Workload":
        """Explicit per-bin choice probabilities."""
        return cls(
            choice="explicit", choice_pvals=np.asarray(pvals), **kwargs
        )

    # -- derived spec views ---------------------------------------------

    @property
    def is_uniform(self) -> bool:
        """True when every axis is at the paper's default setting."""
        return (
            self.choice == "uniform"
            and self.weight == "unit"
            and self.capacity == "homogeneous"
        )

    def describe(self) -> str:
        """Compact spec string, the same grammar :func:`parse_workload`
        accepts (``zipf:1.1+geomw:0.5+propcap``)."""
        parts = []
        if self.choice == "zipf":
            parts.append(f"zipf:{self.choice_params[0]:g}")
        elif self.choice == "hotset":
            frac, share = self.choice_params
            parts.append(f"hotset:{frac:g}:{share:g}")
        elif self.choice == "explicit":
            parts.append(f"explicit[{self.choice_pvals.size} bins]")
        if self.weight == "geometric":
            parts.append(f"geomw:{self.weight_param:g}")
        elif self.weight == "explicit":
            parts.append(f"explicitw[{self.weight_values.size} balls]")
        if self.capacity == "proportional":
            parts.append("propcap")
        elif self.capacity == "explicit":
            parts.append(f"explicitcap[{self.capacity_values.size} bins]")
        return "+".join(parts) if parts else "uniform"

    def pvals(self, n: int) -> Optional[np.ndarray]:
        """Per-bin choice probabilities for ``n`` bins (None = uniform)."""
        if self.choice == "uniform":
            return None
        if self.choice == "zipf":
            (s,) = self.choice_params
            raw = 1.0 / np.power(np.arange(1, n + 1, dtype=np.float64), s)
            return raw / raw.sum()
        if self.choice == "hotset":
            frac, share = self.choice_params
            hot = max(1, min(n - 1, math.ceil(frac * n))) if n > 1 else n
            p = np.empty(n, dtype=np.float64)
            if hot >= n:
                p.fill(1.0 / n)
                return p
            p[:hot] = share / hot
            p[hot:] = (1.0 - share) / (n - hot)
            return p / p.sum()
        return validate_pvals(self.choice_pvals, n)

    def capacity_scale(self, n: int) -> Optional[np.ndarray]:
        """Mean-1 per-bin capacity factors (None = homogeneous).

        ``proportional`` follows the choice distribution — bin ``b``'s
        capacity share equals its traffic share (``pvals[b] * n``), the
        provisioned-for-popularity regime.  ``explicit`` normalizes the
        given relative capacities to mean 1.
        """
        if self.capacity == "homogeneous":
            return None
        if self.capacity == "proportional":
            p = self.pvals(n)
            if p is None:
                return None  # proportional to uniform is homogeneous
            return p * n
        c = self.capacity_values
        if c.size != n:
            raise WorkloadError(
                f"explicit capacities have {c.size} entries, need n={n}"
            )
        return c * (n / c.sum())

    # -- weights ---------------------------------------------------------

    def sample_weights(
        self, m: int, rng: np.random.Generator
    ) -> Optional[np.ndarray]:
        """Per-ball weights for ``m`` balls (None = unit weights)."""
        if self.weight == "unit":
            return None
        if self.weight == "geometric":
            return rng.geometric(self.weight_param, size=m).astype(np.float64)
        w = self.weight_values
        if w.size != m:
            raise WorkloadError(
                f"explicit weights have {w.size} entries, need m={m}"
            )
        return w.copy()

    def weight_sum_sampler(
        self, rng: np.random.Generator
    ) -> Optional[Callable[[np.ndarray], np.ndarray]]:
        """Sampler of per-bin weight *sums* for aggregate granularity.

        Given the per-bin accepted counts ``c``, returns one draw of
        ``sum of c_b i.i.d. ball weights`` per bin — the exact law of
        the weighted intake, in ``O(n)`` (geometric weights: the sum of
        ``c`` i.i.d. Geometric(p) variables is ``c + NegBin(c, p)``).
        ``None`` for unit weights; explicit per-ball weights have no
        exchangeable aggregate form and raise.
        """
        if self.weight == "unit":
            return None
        if self.weight == "explicit":
            raise WorkloadError(
                "explicit per-ball weights require granularity='perball' "
                "(aggregate mode needs an i.i.d. weight distribution)"
            )
        p = self.weight_param

        def sampler(counts: np.ndarray) -> np.ndarray:
            counts = np.asarray(counts, dtype=np.int64)
            sums = counts.astype(np.float64)
            positive = counts > 0
            if p < 1.0 and positive.any():
                sums[positive] += rng.negative_binomial(
                    counts[positive], p
                ).astype(np.float64)
            return sums

        return sampler

    def mean_weight(self) -> float:
        """Expected ball weight (realized mean for explicit weights)."""
        if self.weight == "unit":
            return 1.0
        if self.weight == "geometric":
            return 1.0 / self.weight_param
        return float(self.weight_values.mean())


def parse_workload(text: str) -> Workload:
    """Parse the CLI workload grammar into a :class:`Workload`.

    Components are joined with ``+``; each is one of::

        uniform               the paper's scenario (no-op component)
        zipf:<s>              power-law choice skew with exponent s
        hotset:<frac>:<share> frac of bins receives share of traffic
        geomw:<p>             geometric ball weights, mean 1/p
        unitw                 unit ball weights (no-op component)
        propcap               bin capacity proportional to traffic share
        homcap                homogeneous capacities (no-op component)

    Examples: ``zipf:1.1``, ``zipf:1.2+geomw:0.5``,
    ``hotset:0.1:0.5+propcap``.
    """
    if not isinstance(text, str) or not text.strip():
        raise WorkloadError("workload spec must be a non-empty string")
    choice = "uniform"
    choice_params: tuple = ()
    weight = "unit"
    weight_param = 0.5
    capacity = "homogeneous"
    seen_axes: set[str] = set()

    def claim(axis: str, token: str) -> None:
        if axis in seen_axes:
            raise WorkloadError(
                f"workload spec {text!r} sets the {axis} axis twice "
                f"(at {token!r})"
            )
        seen_axes.add(axis)

    for token in text.strip().split("+"):
        token = token.strip()
        head, _, tail = token.partition(":")
        head = head.lower()
        try:
            if head == "uniform":
                claim("choice", token)
            elif head == "zipf":
                claim("choice", token)
                choice, choice_params = "zipf", (float(tail),)
            elif head == "hotset":
                claim("choice", token)
                frac_s, _, share_s = tail.partition(":")
                choice = "hotset"
                choice_params = (float(frac_s), float(share_s))
            elif head == "geomw":
                claim("weight", token)
                weight, weight_param = "geometric", float(tail)
            elif head == "unitw":
                claim("weight", token)
            elif head == "propcap":
                claim("capacity", token)
                capacity = "proportional"
            elif head == "homcap":
                claim("capacity", token)
            else:
                raise WorkloadError(
                    f"unknown workload component {token!r}; expected "
                    "uniform, zipf:<s>, hotset:<frac>:<share>, "
                    "geomw:<p>, unitw, propcap, or homcap"
                )
        except (TypeError, ValueError) as exc:
            if isinstance(exc, WorkloadError):
                raise
            raise WorkloadError(
                f"malformed workload component {token!r}: {exc}"
            ) from exc
    return Workload(
        choice=choice,
        choice_params=choice_params,
        weight=weight,
        weight_param=weight_param,
        capacity=capacity,
    )


def as_workload(
    value: Union[None, str, Workload]
) -> Optional[Workload]:
    """Coerce the public ``workload=`` forms to a spec (or None).

    ``None`` and uniform specs both come back as ``None`` so callers
    have a single "no workload" fast path — the one that is bitwise
    seed-compatible with the pre-workload code.
    """
    if value is None:
        return None
    if isinstance(value, str):
        value = parse_workload(value)
    if not isinstance(value, Workload):
        raise WorkloadError(
            f"workload must be a Workload, spec string, or None; "
            f"got {type(value).__name__}"
        )
    return None if value.is_uniform else value


@dataclass
class BoundWorkload:
    """A workload resolved against one instance ``(m, n)`` and seed.

    Protocols bind once at entry (:func:`bind_workload`) and then read
    plain arrays, so the per-round kernel code never touches spec
    logic.  The all-``None`` binding (uniform workload) is what every
    pre-workload call site effectively used.

    Attributes
    ----------
    spec:
        The source :class:`Workload` (None for the uniform binding).
    pvals:
        Per-bin choice probabilities, or None for uniform contacts.
    capacity_scale:
        Mean-1 per-bin capacity factors, or None for homogeneous.
    weights:
        Per-ball weights (perball granularity), or None for unit.
    weight_sum_sampler:
        Per-bin weight-sum sampler (aggregate granularity), or None.
    """

    spec: Optional[Workload] = None
    pvals: Optional[np.ndarray] = None
    capacity_scale: Optional[np.ndarray] = None
    weights: Optional[np.ndarray] = None
    weight_sum_sampler: Optional[Callable[[np.ndarray], np.ndarray]] = None
    _capacity_cache: dict = field(default_factory=dict, repr=False)

    @property
    def active(self) -> bool:
        return self.spec is not None

    @property
    def weighted(self) -> bool:
        return self.weights is not None or self.weight_sum_sampler is not None

    def capacities(self, base: Union[int, float]):
        """Scalar-or-array capacity for a scalar base threshold.

        Homogeneous profiles return ``base`` unchanged (scalar fast
        path); heterogeneous ones return the rounded int64 array.
        Repeated thresholds are cached — schedules revisit the same
        few values round after round.
        """
        if self.capacity_scale is None:
            return base
        key = float(base)
        caps = self._capacity_cache.get(key)
        if caps is None:
            caps = np.maximum(
                np.rint(base * self.capacity_scale), 0
            ).astype(np.int64)
            self._capacity_cache[key] = caps
        return caps

    def extra_record(
        self,
        weighted_loads: Optional[np.ndarray] = None,
        *,
        inapplicable: tuple = (),
    ) -> Optional[dict]:
        """The ``result.extra["workload"]`` payload for a finished run.

        ``weighted_loads`` is the final per-bin weighted intake (when
        the run tracked weights); ``inapplicable`` names workload axes
        the protocol structurally cannot honor (e.g. the choice
        distribution for a deterministic-contact protocol), recorded so
        a caller is never silently surprised.
        """
        if not self.active:
            return None
        record: dict = {"spec": self.spec.describe()}
        if weighted_loads is not None:
            total = float(weighted_loads.sum())
            n = weighted_loads.size
            peak = float(weighted_loads.max(initial=0.0))
            record["weighted_max_load"] = peak
            record["weighted_gap"] = peak - total / n
            record["total_weight"] = total
        if inapplicable:
            record["inapplicable"] = list(inapplicable)
        return record


def bind_workload(
    workload: Union[None, str, Workload],
    m: int,
    n: int,
    factory,
    *,
    granularity: str = "perball",
) -> BoundWorkload:
    """Resolve a workload for one run.

    ``factory`` is the protocol's :class:`repro.utils.seeding.RngFactory`;
    weights draw from the dedicated ``("workload", "weights")`` stream,
    so a workload-bearing run perturbs no other stream — the uniform
    binding draws nothing at all, preserving bitwise seed
    compatibility.  An already-bound workload passes through unchanged
    (protocols composed of phases bind once and share the binding).
    """
    if isinstance(workload, BoundWorkload):
        return workload
    wl = as_workload(workload)
    if wl is None:
        return BoundWorkload()
    bound = BoundWorkload(
        spec=wl,
        pvals=wl.pvals(n),
        capacity_scale=wl.capacity_scale(n),
    )
    if wl.weight != "unit":
        weight_rng = factory.stream("workload", "weights")
        if granularity == "aggregate":
            bound.weight_sum_sampler = wl.weight_sum_sampler(weight_rng)
        else:
            bound.weights = wl.sample_weights(m, weight_rng)
    return bound
