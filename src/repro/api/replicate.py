"""High-replication execution: hundreds of seeds in one batched pass.

The paper's guarantees are *distributional* — max-load gap, round, and
message bounds that hold w.h.p. — so checking them means repeating an
instance across many seeds and looking at the sample's quantiles, not
at one run.  :func:`replicate` is that operation as a first-class API:

>>> import repro
>>> rep = repro.replicate("heavy", 100_000, 256, trials=32, seed=7)
>>> rep.trials, rep.all_complete
(32, True)
>>> bool(rep.ci("gap").half_width >= 0)
True

Execution: when the algorithm's spec carries the ``trial_batched``
capability (heavy, combined, trivial, single, stemann), all trials
advance through the trial-batched kernel engine in lock-step — one
vectorized pass instead of ``trials`` sequential runs, at identical
values: trial ``t`` is bitwise-equal to a sequential run seeded with
the ``t``-th spawned child of the root seed (the package-wide
``SeedSequence.spawn`` convention shared with
:func:`repro.api.batch.allocate_many`).  Other specs fall back to the
sequential per-seed loop transparently.

The result is a :class:`ReplicationResult`: the per-trial metric
vectors (gap, max load, rounds, messages), the ``(trials, n)`` load
matrix, empirical quantiles, and normal-approximation confidence
intervals from :mod:`repro.analysis.stats`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Optional, Sequence

import numpy as np

from repro.analysis.stats import (
    DEFAULT_QUANTILES,
    ConfidenceInterval,
    mean_confidence_interval,
    sample_quantiles,
)
from repro.api.dispatch import _split_options, allocate, resolve_mode
from repro.api.spec import AllocatorSpec, get_replicator, get_spec
from repro.result import AllocationResult
from repro.utils.seeding import as_seed_sequence

__all__ = ["ReplicationResult", "replicate"]

#: Metric name -> AllocationResult accessor, for quantile/CI queries.
_METRICS = {
    "gap": lambda r: float(r.gap),
    "max_load": lambda r: float(r.max_load),
    "rounds": lambda r: float(r.rounds),
    "messages": lambda r: float(r.total_messages),
}


@dataclass
class ReplicationResult:
    """Outcome of ``trials`` independent replications of one instance.

    Attributes
    ----------
    algorithm, m, n:
        The replicated instance (canonical spec name).
    trials:
        Number of independent replications.
    mode:
        Execution mode each trial ran in (``None`` for modeless
        allocators).
    batched:
        True when the trial-batched kernel engine ran the batch; False
        for the sequential per-seed fallback.  Values are identical
        either way — this records only how the work was executed.
    workload:
        Workload spec string (``None`` = uniform).
    loads:
        ``(trials, n)`` int64 matrix; row ``t`` is trial ``t``'s final
        per-bin loads.
    gaps, max_loads, rounds, total_messages, unallocated:
        Per-trial metric vectors, aligned with ``loads`` rows.
    weighted_gaps:
        Per-trial weighted max-load gaps, for weighted workloads only.
    complete:
        Per-trial completion flags.
    results:
        The underlying per-trial :class:`~repro.result.AllocationResult`
        objects (same objects ``allocate_many`` would return).
    """

    algorithm: str
    m: int
    n: int
    trials: int
    mode: Optional[str]
    batched: bool
    workload: Optional[str]
    loads: np.ndarray
    gaps: np.ndarray
    max_loads: np.ndarray
    rounds: np.ndarray
    total_messages: np.ndarray
    unallocated: np.ndarray
    complete: np.ndarray
    weighted_gaps: Optional[np.ndarray] = None
    results: list[AllocationResult] = field(default_factory=list, repr=False)

    @classmethod
    def from_results(
        cls,
        results: Sequence[AllocationResult],
        *,
        algorithm: str,
        mode: Optional[str],
        batched: bool,
        workload: Optional[str],
    ) -> "ReplicationResult":
        """Assemble the per-trial vectors from allocation results."""
        if not results:
            raise ValueError("need at least one trial result")
        first = results[0]
        weighted = [
            r.extra.get("workload", {}).get("weighted_gap") for r in results
        ]
        return cls(
            algorithm=algorithm,
            m=first.m,
            n=first.n,
            trials=len(results),
            mode=mode,
            batched=batched,
            workload=workload,
            loads=np.stack([r.loads for r in results]),
            gaps=np.array([r.gap for r in results], dtype=np.float64),
            max_loads=np.array([r.max_load for r in results], dtype=np.int64),
            rounds=np.array([r.rounds for r in results], dtype=np.int64),
            total_messages=np.array(
                [r.total_messages for r in results], dtype=np.int64
            ),
            unallocated=np.array(
                [r.unallocated for r in results], dtype=np.int64
            ),
            complete=np.array([r.complete for r in results], dtype=bool),
            weighted_gaps=(
                np.array(weighted, dtype=np.float64)
                if all(w is not None for w in weighted)
                else None
            ),
            results=list(results),
        )

    # -- derived statistics ----------------------------------------------

    @property
    def all_complete(self) -> bool:
        """True when every trial allocated every ball."""
        return bool(self.complete.all())

    def metric(self, name: str) -> np.ndarray:
        """Per-trial vector for a metric name (``gap``, ``max_load``,
        ``rounds``, ``messages``)."""
        if name == "gap":
            return self.gaps
        if name == "max_load":
            return self.max_loads.astype(np.float64)
        if name == "rounds":
            return self.rounds.astype(np.float64)
        if name == "messages":
            return self.total_messages.astype(np.float64)
        raise ValueError(
            f"unknown metric {name!r}; expected one of {sorted(_METRICS)}"
        )

    def quantiles(
        self,
        name: str = "gap",
        qs: Sequence[float] = DEFAULT_QUANTILES,
    ) -> dict[float, float]:
        """Empirical quantiles of a per-trial metric."""
        return sample_quantiles(self.metric(name), qs)

    def ci(self, name: str = "gap", *, level: float = 0.95) -> ConfidenceInterval:
        """Normal-approximation CI for the mean of a per-trial metric."""
        return mean_confidence_interval(self.metric(name), level=level)

    def summary(self) -> dict[str, dict[str, Any]]:
        """Mean, CI half-width, and quantiles for every metric."""
        out: dict[str, dict[str, Any]] = {}
        for name in _METRICS:
            ci = self.ci(name)
            out[name] = {
                "mean": ci.mean,
                "ci_half_width": ci.half_width,
                "quantiles": self.quantiles(name),
            }
        return out

    def describe(self) -> str:
        """Multi-line human-readable replication report."""
        gap_ci = self.ci("gap")
        gq = self.quantiles("gap", (0.5, 0.95, 0.99))
        rounds_ci = self.ci("rounds")
        msg_ci = self.ci("messages")
        lines = [
            f"algorithm     : {self.algorithm}"
            + (f" [{self.mode}]" if self.mode else ""),
            f"instance      : m={self.m}, n={self.n} "
            f"(m/n={self.m / self.n:.4g})",
            f"trials        : {self.trials} "
            + ("(trial-batched)" if self.batched else "(sequential)"),
            f"gap           : {gap_ci} "
            f"[p50 {gq[0.5]:.3g}, p95 {gq[0.95]:.3g}, p99 {gq[0.99]:.3g}]",
            f"rounds        : {rounds_ci}",
            f"messages      : {msg_ci}",
            f"complete      : {int(self.complete.sum())}/{self.trials}",
        ]
        if self.workload:
            lines.insert(2, f"workload      : {self.workload}")
        if self.weighted_gaps is not None:
            lines.append(
                f"weighted gap  : "
                f"{mean_confidence_interval(self.weighted_gaps)}"
            )
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-safe export: vectors, summary statistics, and metadata
        (the load matrix is included row-per-trial)."""
        payload = {
            "schema": 1,
            "algorithm": self.algorithm,
            "m": int(self.m),
            "n": int(self.n),
            "trials": int(self.trials),
            "mode": self.mode,
            "batched": bool(self.batched),
            "workload": self.workload,
            "gaps": self.gaps.tolist(),
            "max_loads": self.max_loads.tolist(),
            "rounds": self.rounds.tolist(),
            "total_messages": self.total_messages.tolist(),
            "unallocated": self.unallocated.tolist(),
            "complete": self.complete.tolist(),
            "loads": self.loads.tolist(),
            "summary": {
                name: {
                    "mean": stats["mean"],
                    "ci_half_width": stats["ci_half_width"],
                    "quantiles": {
                        str(q): v for q, v in stats["quantiles"].items()
                    },
                }
                for name, stats in self.summary().items()
            },
        }
        if self.weighted_gaps is not None:
            payload["weighted_gaps"] = self.weighted_gaps.tolist()
        return payload

    def __str__(self) -> str:
        gap_ci = self.ci("gap")
        return (
            f"ReplicationResult({self.algorithm}: m={self.m}, n={self.n}, "
            f"trials={self.trials}, gap={gap_ci})"
        )


def batched_eligible(
    spec: AllocatorSpec,
    m: int,
    mode: Optional[str],
    workload,
    runner_kwargs: dict[str, Any],
) -> bool:
    """Can this request run on the trial-batched engine at *identical*
    values?

    Requires a registered adapter, a compatible execution mode
    (``"auto"`` opts in; anything else must resolve to the adapter's
    ``equivalent_mode``), adapter support for every requested option,
    and — for non-uniform workloads — an adapter that takes them.
    """
    entry = get_replicator(spec.name) if spec.trial_batched else None
    if entry is None:
        return False
    if mode != "auto":
        if resolve_mode(spec, m, mode) != entry.equivalent_mode:
            return False
    if workload is not None and not entry.workload_capable:
        return False
    return set(runner_kwargs) <= set(entry.options)


def run_batched(
    spec: AllocatorSpec,
    m: int,
    n: int,
    seed_seqs: Sequence[np.random.SeedSequence],
    workload,
    runner_kwargs: dict[str, Any],
) -> list[AllocationResult]:
    """Invoke the registered adapter and annotate the dispatch record."""
    entry = get_replicator(spec.name)
    kwargs = dict(runner_kwargs)
    if entry.workload_capable:
        kwargs["workload"] = workload
    from repro.fastpath.backend import resolve_backend

    results = entry.runner(
        m, n, trials=len(seed_seqs), seed_seqs=list(seed_seqs), **kwargs
    )
    for result in results:
        result.extra["api"] = {
            "algorithm": spec.name,
            "mode": entry.equivalent_mode,
            "workload": workload.describe() if workload is not None else None,
            "trial_batched": True,
            "backend": resolve_backend().name,
        }
    return results


def replicate(
    algorithm: str,
    m: int,
    n: int,
    *,
    trials: int,
    seed=None,
    mode: Optional[str] = "auto",
    workload=None,
    trial_batched: Optional[bool] = None,
    workers: Optional[int] = None,
    backend: Optional[str] = None,
    **options: Any,
) -> ReplicationResult:
    """Run ``trials`` independent seeded replications of one instance.

    Parameters
    ----------
    algorithm, m, n:
        As for :func:`repro.api.dispatch.allocate`.
    trials:
        Number of independent replications (>= 1).
    seed:
        Root seed; trial ``t`` runs on the ``t``-th spawned child
        stream (the same convention as
        :func:`~repro.api.batch.allocate_many`, so
        ``replicate(trials=T, seed=s)`` and ``allocate_many(repeats=T,
        seed=s)`` see identical per-trial randomness).
    mode:
        ``"auto"`` (default) prefers the trial-batched engine for
        ``trial_batched`` specs — each trial then executes in the
        adapter's equivalent mode (aggregate for the kernel-backed
        protocols).  An explicit mode is honored: it batches only when
        it matches the adapter's mode, else every trial runs
        sequentially in that mode.
    workload:
        Optional workload spec (:class:`repro.workloads.Workload` or
        string), applied to every trial.
    trial_batched:
        ``None`` (default) auto-selects; ``False`` forces the
        sequential per-seed loop (same values, for
        verification/debugging); ``True`` requires the batched engine
        and raises if the request cannot batch.
    workers:
        Process fan-out.  On the batched path, ``workers >= 2`` shards
        the trial axis across processes (contiguous shards of the
        pre-spawned children, loads returned through one
        ``multiprocessing.shared_memory`` block) — per-trial
        bitwise-identical to ``workers=1``, only the wall clock
        changes.  On the sequential path it fans the per-seed loop
        over a process pool as before.
    backend:
        Kernel backend name pinned for every trial — including shard
        worker processes, which re-pin it explicitly (the ambient
        :func:`~repro.fastpath.backend.use_backend` context does not
        cross process boundaries).  ``None`` keeps the ambient
        selection.  Value-identical either way.
    options:
        Algorithm-specific keywords, validated against the registered
        spec exactly as in :func:`~repro.api.dispatch.allocate`.

    Returns
    -------
    ReplicationResult
        Per-trial metric vectors, the load matrix, quantiles and CIs.
    """
    if trials < 1:
        raise ValueError(f"trials must be >= 1, got {trials}")
    spec = get_spec(algorithm)
    runner_kwargs = _split_options(spec, options)
    from repro.workloads import as_workload

    wl = as_workload(workload)
    eligible = trial_batched is not False and batched_eligible(
        spec, m, mode, wl, runner_kwargs
    )
    if trial_batched is True and not eligible:
        raise ValueError(
            f"algorithm {spec.name!r} cannot run this request on the "
            f"trial-batched engine (mode={mode!r}, options="
            f"{sorted(runner_kwargs)}); drop trial_batched=True to use "
            f"the sequential path"
        )
    from repro.fastpath.backend import use_backend

    children = as_seed_sequence(seed).spawn(trials)
    entry = get_replicator(spec.name)
    if eligible:
        if workers is not None and workers > 1 and trials > 1:
            from repro.experiments.parallel import replicate_sharded

            results = replicate_sharded(
                spec.name, m, n, children, wl, runner_kwargs,
                workers=workers, backend=backend,
            )
        else:
            with use_backend(backend):
                results = run_batched(spec, m, n, children, wl, runner_kwargs)
        resolved_mode = entry.equivalent_mode
        batched = True
    else:
        # Sequential fallback.  For trial-batched specs under
        # mode="auto" the per-trial runs use the adapter's equivalent
        # mode, so forcing trial_batched=False changes nothing but the
        # wall clock.
        if mode == "auto" and entry is not None:
            resolved_mode = entry.equivalent_mode
        else:
            resolved_mode = resolve_mode(spec, m, mode)
        task_options = dict(options)
        if workload is not None:
            task_options["workload"] = workload
        if backend is not None:
            # Explicit pins must survive the process-pool path, where
            # the ambient context does not follow; allocate() takes the
            # backend as a first-class keyword.
            task_options["backend"] = backend
        tasks = [
            (spec.name, m, n, child, resolved_mode, task_options)
            for child in children
        ]
        if workers is not None and workers > 1 and len(tasks) > 1:
            from repro.experiments.parallel import allocate_batch

            results = allocate_batch(tasks, workers=workers)
        else:
            results = [
                allocate(a, mm, nn, seed=s, mode=md, **opt)
                for a, mm, nn, s, md, opt in tasks
            ]
        batched = False
    for i, result in enumerate(results):
        result.extra["api"]["repeat"] = i
    return ReplicationResult.from_results(
        results,
        algorithm=spec.name,
        mode=resolved_mode,
        batched=batched,
        workload=wl.describe() if wl is not None else None,
    )
