"""Experiments T1-T3, F1-F2: the symmetric algorithm's guarantees.

See DESIGN.md §4 for the experiment index.  Each function takes a
``scale`` ("quick" for CI/benchmarks, "full" for the archived
EXPERIMENTS.md run) and a base seed.
"""

from __future__ import annotations

import math

import numpy as np

from repro.analysis.theory import (
    expected_max_load_single_choice,
    mtilde_schedule,
    predicted_rounds,
)
from repro.baselines import (
    run_batched_dchoice,
    run_greedy_d,
    run_single_choice,
    run_stemann,
)
from repro.analysis.fitting import (
    PREDICTED_ROUNDS_SLOPE,
    fit_loglog_rounds,
)
from repro.core import FixedSchedule, run_heavy, run_threshold_protocol
from repro.experiments.plotting import ascii_chart
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import seed_list
from repro.utils.seeding import RngFactory

__all__ = ["exp_t1", "exp_t2", "exp_t3", "exp_f1", "exp_f2"]


def exp_t1(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """T1 — max-load gap comparison across algorithms (Theorem 1 vs
    Section 1 naive bound vs [BCSV06] vs prior parallel work)."""
    report = ExperimentReport(
        exp_id="T1",
        title="Max-load gap (max load - m/n) by algorithm",
        claim="Thm 1: A_heavy achieves m/n + O(1); naive pays "
        "Theta(sqrt((m/n) log n)); sequential greedy[2] pays "
        "O(log log n) [BCSV06]; Stemann pays Theta(m/n)",
        columns=[
            "n",
            "m/n",
            "heavy",
            "asym",
            "naive",
            "naive(pred)",
            "greedy2",
            "batched2",
            "stemann",
        ],
    )
    from repro.core import run_asymmetric

    if scale == "quick":
        grid = [(256, 64), (256, 1024), (1024, 256)]
        reps = 3
    else:
        grid = [
            (256, 16),
            (256, 256),
            (256, 4096),
            (1024, 64),
            (1024, 1024),
            (1024, 16384),
        ]
        reps = 5

    worst_heavy_gap = 0.0
    for n, ratio in grid:
        m = n * ratio
        seeds = seed_list(seed, reps)
        heavy = float(np.mean([run_heavy(m, n, seed=s).gap for s in seeds]))
        asym = float(np.mean([run_asymmetric(m, n, seed=s).gap for s in seeds]))
        naive = float(
            np.mean([run_single_choice(m, n, seed=s).gap for s in seeds])
        )
        greedy_m = min(m, 2_000_000)  # sequential loop cost cap
        greedy = float(
            np.mean([run_greedy_d(greedy_m, n, 2, seed=s).gap for s in seeds])
        )
        batched = float(
            np.mean([run_batched_dchoice(m, n, 2, seed=s).gap for s in seeds])
        )
        stemann = float(
            np.mean([run_stemann(m, n, seed=s).gap for s in seeds])
        )
        worst_heavy_gap = max(worst_heavy_gap, heavy)
        report.add_row(
            n,
            ratio,
            heavy,
            asym,
            naive,
            expected_max_load_single_choice(m, n) - m / n,
            greedy,
            batched,
            stemann,
        )
    report.passed = worst_heavy_gap <= 8.0  # O(1) with explicit constant
    report.notes.append(
        "greedy[2] is sequential; its m is capped at 2e6 for runtime "
        "(the gap is m-independent per [BCSV06], so the comparison stands)."
    )
    return report


def exp_t2(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """T2 — round complexity of A_heavy vs log log(m/n) + log* n."""
    report = ExperimentReport(
        exp_id="T2",
        title="Rounds of A_heavy vs the Theorem 1 bound",
        claim="Thm 1: O(log log(m/n) + log* n) rounds",
        columns=["m/n", "rounds", "phase1", "phase2", "predicted", "loglog(m/n)"],
    )
    n = 1024
    ratios = [4, 16, 256, 4096, 65536] if scale == "quick" else [
        4, 16, 64, 256, 1024, 4096, 16384, 65536, 2**18, 2**20,
    ]
    ok = True
    measured_rounds = []
    predictions = []
    for ratio in ratios:
        m = n * ratio
        mode = "aggregate" if m > 4_000_000 else "perball"
        res = run_heavy(m, n, seed=seed, mode=mode)  # type: ignore[arg-type]
        pred = predicted_rounds(m, n)
        loglog = math.log2(max(math.log2(ratio), 1.0)) if ratio > 2 else 0.0
        report.add_row(
            ratio,
            res.rounds,
            res.extra["phase1_rounds"],
            res.extra["phase2_rounds"],
            pred,
            loglog,
        )
        measured_rounds.append(res.rounds)
        predictions.append(pred)
        # acceptance: within prediction + slack, and grows sublinearly
        ok = ok and res.rounds <= pred + 4
    # Shape fit: rounds vs log2 log2 (m/n) must be near-linear with the
    # recursion's slope 1/log2(3/2) ~ 1.71.
    fit_ratios = [r for r in ratios if r > 4]
    if len(fit_ratios) >= 3:
        fit = fit_loglog_rounds(
            fit_ratios, measured_rounds[len(ratios) - len(fit_ratios):]
        )
        report.notes.append(
            f"shape fit: rounds = {fit.slope:.2f} * loglog(m/n) + "
            f"{fit.intercept:.2f} (R^2 {fit.r_squared:.3f}); predicted "
            f"slope {PREDICTED_ROUNDS_SLOPE:.2f}."
        )
        ok = ok and fit.r_squared > 0.7
        ok = ok and fit.slope < 2 * PREDICTED_ROUNDS_SLOPE + 1
    report.charts.append(
        ascii_chart(
            [math.log2(r) for r in ratios],
            {"measured": measured_rounds,
             "predicted": [float(p) for p in predictions]},
            title="rounds vs log2(m/n)  (doubly-logarithmic growth)",
            x_label="log2(m/n)",
        )
    )
    report.passed = ok
    report.notes.append(
        "predicted = exact phase-1 recursion length + log* n + 2; the "
        "measured value must track it (doubly-logarithmic growth in m/n)."
    )
    return report


def exp_t3(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """T3 — message complexity of A_heavy (Theorem 6)."""
    report = ExperimentReport(
        exp_id="T3",
        title="Message complexity of A_heavy",
        claim="Thm 6: O(m) total; per ball O(1) expected / O(log n) "
        "w.h.p.; per bin (1+o(1)) m/n + O(log n)",
        columns=[
            "n",
            "m/n",
            "total/m",
            "ball mean",
            "ball max",
            "ln(n)",
            "bin recv max",
            "m/n + 8ln(n)",
        ],
    )
    grid = (
        [(256, 64), (1024, 256)]
        if scale == "quick"
        else [(256, 16), (256, 256), (1024, 64), (4096, 64), (4096, 1024)]
    )
    ok = True
    for n, ratio in grid:
        m = n * ratio
        res = run_heavy(m, n, seed=seed)
        s = res.messages.summary()
        bin_bound = m / n + 8 * math.log(n)
        report.add_row(
            n,
            ratio,
            res.total_messages / m,
            s["per_ball_mean"],
            s["per_ball_max"],
            math.log(n),
            s["per_bin_received_max"],
            bin_bound,
        )
        ok = ok and res.total_messages <= 4 * m
        ok = ok and s["per_ball_mean"] <= 8
        ok = ok and s["per_ball_max"] <= 12 * math.log(n)
    report.passed = ok
    return report


def exp_f1(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """F1 — per-round decay of unallocated balls vs the m̃ recursion."""
    report = ExperimentReport(
        exp_id="F1",
        title="Unallocated balls per round vs m̃_i = m^(2/3^i) n^(1-2/3^i)",
        claim="Section 3 / Claim 2: m_i = m̃_i w.h.p. until n*polylog(n)",
        columns=["round i", "measured m_i", "schedule m̃_i", "ratio"],
    )
    n = 1024 if scale == "quick" else 4096
    ratio = 2**12 if scale == "quick" else 2**16
    m = n * ratio
    res = run_heavy(m, n, seed=seed, mode="aggregate")
    schedule = mtilde_schedule(m, n)
    measured = res.unallocated_history
    ok = True
    chart_measured, chart_schedule = [], []
    for i, mt in enumerate(schedule):
        if i >= len(measured):
            break
        mi = measured[i]
        rel = mi / mt if mt else float("nan")
        report.add_row(i, mi, mt, rel)
        chart_measured.append(float(mi))
        chart_schedule.append(float(mt))
        if mt > 16 * n:  # within the strong-concentration regime
            ok = ok and abs(rel - 1.0) < 0.05
    if len(chart_measured) >= 2:
        report.charts.append(
            ascii_chart(
                list(range(len(chart_measured))),
                {"measured m_i": chart_measured,
                 "schedule m̃_i": chart_schedule},
                title="unallocated balls per round (doubly-exponential decay)",
                x_label="round",
                log_y=True,
            )
        )
    report.passed = ok
    report.notes.append(
        "ratio must be ~1.0 while m̃_i >> n (Claim 2's exact-match regime) "
        "and may drift once m̃_i approaches n (Claims 3-4)."
    )
    return report


def exp_f2(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """F2 — the fixed-threshold negative example needs Omega(log n)."""
    report = ExperimentReport(
        exp_id="F2",
        title="Rounds to completion, fixed threshold T = m/n + 1",
        claim="Section 1.1: constant fraction of bins fill after round 1 "
        "=> Omega(log n) rounds",
        columns=["n", "rounds(fixed)", "log2 n", "rounds(paper schedule)"],
    )
    ns = [64, 256, 1024] if scale == "quick" else [64, 256, 1024, 4096, 16384]
    ratio = 64
    ok = True
    rounds_fixed = []
    rounds_paper = []
    for n in ns:
        m = n * ratio
        fixed = FixedSchedule(m, n, slack=1)
        outcome = run_threshold_protocol(
            m, n, fixed, rng_factory=RngFactory(seed), mode="perball",
            max_rounds=100_000, track_per_ball=False,
        )
        heavy = run_heavy(m, n, seed=seed)
        report.add_row(n, outcome.rounds, math.log2(n), heavy.rounds)
        rounds_fixed.append(float(outcome.rounds))
        rounds_paper.append(float(heavy.rounds))
        ok = ok and outcome.remaining == 0
        ok = ok and outcome.rounds >= 0.5 * math.log2(n)
    # Growth check: fixed-threshold rounds grow with n while the paper
    # schedule's do not.
    ok = ok and rounds_fixed[-1] > rounds_fixed[0]
    report.charts.append(
        ascii_chart(
            [math.log2(n) for n in ns],
            {"fixed T": rounds_fixed, "paper schedule": rounds_paper},
            title="rounds to completion vs log2(n): Omega(log n) vs flat",
            x_label="log2(n)",
        )
    )
    report.passed = ok
    return report
