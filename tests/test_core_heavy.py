"""Tests for Algorithm A_heavy — Theorem 1/6 behaviour."""

import math

import numpy as np
import pytest

from repro.analysis.theory import predicted_rounds
from repro.core import (
    FixedSchedule,
    HeavyConfig,
    PaperSchedule,
    run_heavy,
    run_threshold_protocol,
)
from repro.utils.seeding import RngFactory


class TestRunHeavyCore:
    def test_complete_and_conserves(self, heavy_instance):
        m, n = heavy_instance
        res = run_heavy(m, n, seed=1)
        assert res.complete
        assert res.loads.sum() == m

    def test_gap_constant(self, heavy_instance):
        """Theorem 1's headline: max load m/n + O(1)."""
        m, n = heavy_instance
        res = run_heavy(m, n, seed=1)
        assert res.gap <= 8.0

    def test_rounds_within_prediction(self, heavy_instance):
        m, n = heavy_instance
        res = run_heavy(m, n, seed=1)
        assert res.rounds <= predicted_rounds(m, n) + 4

    def test_rounds_loglog_scaling(self):
        n = 512
        r_small = run_heavy(n * 2**4, n, seed=2).rounds
        r_large = run_heavy(n * 2**16, n, seed=2, mode="aggregate").rounds
        assert r_large <= r_small + 8  # doubly logarithmic, not linear

    def test_messages_linear(self, heavy_instance):
        """Theorem 6: O(m) messages total."""
        m, n = heavy_instance
        res = run_heavy(m, n, seed=1)
        assert res.total_messages <= 4 * m

    def test_per_ball_messages(self, heavy_instance):
        m, n = heavy_instance
        res = run_heavy(m, n, seed=1)
        s = res.messages.summary()
        assert s["per_ball_mean"] <= 8.0  # O(1) expected
        assert s["per_ball_max"] <= 12 * math.log(n)  # O(log n) w.h.p.

    def test_per_bin_messages(self, heavy_instance):
        m, n = heavy_instance
        res = run_heavy(m, n, seed=1)
        s = res.messages.summary()
        assert s["per_bin_received_max"] <= 2.0 * (m / n) + 30 * math.log(n)

    def test_deterministic_under_seed(self):
        a = run_heavy(50_000, 128, seed=77)
        b = run_heavy(50_000, 128, seed=77)
        assert np.array_equal(a.loads, b.loads)
        assert a.rounds == b.rounds
        assert a.total_messages == b.total_messages

    def test_seeds_vary(self):
        a = run_heavy(50_000, 128, seed=1)
        b = run_heavy(50_000, 128, seed=2)
        assert not np.array_equal(a.loads, b.loads)

    def test_m_equals_n_boundary(self):
        res = run_heavy(256, 256, seed=3)
        assert res.complete
        assert res.max_load <= 5

    def test_extra_fields(self):
        res = run_heavy(10_000, 64, seed=3)
        assert res.extra["phase1_rounds"] >= 1
        assert res.extra["phase2_rounds"] >= 1
        assert res.extra["phase1_remaining"] >= 0
        assert "virtual_factor" in res.extra

    def test_phase1_remaining_is_On(self, heavy_instance):
        """Claims 2-4: O(n) stragglers enter phase 2."""
        m, n = heavy_instance
        res = run_heavy(m, n, seed=1)
        assert res.extra["phase1_remaining"] <= 8 * n

    def test_invalid_instance(self):
        with pytest.raises(ValueError):
            run_heavy(10, 100, seed=1)  # m < n

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            run_heavy(1000, 10, seed=1, mode="warp")  # type: ignore[arg-type]


class TestAggregateMode:
    def test_complete_and_conserves(self):
        res = run_heavy(2**22, 1024, seed=5, mode="aggregate")
        assert res.complete
        assert res.loads.sum() == 2**22

    def test_gap_constant(self):
        res = run_heavy(2**22, 1024, seed=5, mode="aggregate")
        assert res.gap <= 8.0

    def test_no_per_ball_counter(self):
        res = run_heavy(2**18, 256, seed=5, mode="aggregate")
        assert res.messages is None
        assert res.total_messages > 0

    def test_huge_ratio(self):
        res = run_heavy(2**36, 64, seed=5, mode="aggregate")
        assert res.complete
        assert res.gap <= 8.0
        assert res.rounds <= predicted_rounds(2**36, 64) + 4

    def test_statistically_matches_perball(self):
        """Gap distributions of both modes must be indistinguishable
        (same law): compare means over seeds."""
        m, n = 2**16, 256
        gaps_p = [run_heavy(m, n, seed=s, mode="perball").gap for s in range(8)]
        gaps_a = [
            run_heavy(m, n, seed=s + 100, mode="aggregate").gap
            for s in range(8)
        ]
        assert abs(np.mean(gaps_p) - np.mean(gaps_a)) <= 2.0


class TestHandoffAndConfig:
    def test_no_handoff_incomplete(self):
        res = run_heavy(2**16, 256, seed=4, handoff=False)
        assert not res.complete
        assert res.unallocated > 0
        assert res.loads.sum() == 2**16 - res.unallocated

    def test_custom_stop_factor(self):
        cfg = HeavyConfig(stop_factor=8.0)
        res = run_heavy(2**16, 256, seed=4, config=cfg)
        assert res.complete
        # Larger stop factor: fewer phase-1 rounds.
        base = run_heavy(2**16, 256, seed=4)
        assert res.extra["phase1_rounds"] <= base.extra["phase1_rounds"]

    def test_track_per_ball_off(self):
        cfg = HeavyConfig(track_per_ball=False)
        res = run_heavy(2**14, 128, seed=4, config=cfg)
        assert res.messages is None
        assert res.complete


class TestThresholdProtocolGeneric:
    def test_fixed_schedule_completes_slowly(self):
        m, n = 64 * 64, 64
        fixed = FixedSchedule(m, n, slack=1)
        out = run_threshold_protocol(
            m, n, fixed, rng_factory=RngFactory(3), max_rounds=10_000
        )
        assert out.remaining == 0
        # Section 1.1: needs at least ~log n rounds.
        assert out.rounds >= 0.5 * math.log2(n)

    def test_paper_schedule_stops_at_phase1(self):
        m, n = 2**18, 256
        sched = PaperSchedule(m, n)
        out = run_threshold_protocol(m, n, sched, rng_factory=RngFactory(3))
        assert out.rounds == sched.phase1_rounds()
        assert out.remaining > 0

    def test_thresholds_recorded(self):
        m, n = 2**14, 128
        sched = PaperSchedule(m, n)
        out = run_threshold_protocol(m, n, sched, rng_factory=RngFactory(3))
        assert out.thresholds == [
            sched.threshold(i) for i in range(out.rounds)
        ]

    def test_loads_never_exceed_threshold(self):
        m, n = 2**16, 128
        sched = PaperSchedule(m, n)
        out = run_threshold_protocol(m, n, sched, rng_factory=RngFactory(9))
        assert out.loads.max() <= out.thresholds[-1]

    def test_counter_optional(self):
        m, n = 2**12, 64
        out = run_threshold_protocol(
            m,
            n,
            PaperSchedule(m, n),
            rng_factory=RngFactory(1),
            track_per_ball=False,
        )
        assert out.counter is None

    def test_aggregate_mode_counts(self):
        m, n = 2**20, 256
        out = run_threshold_protocol(
            m, n, PaperSchedule(m, n), rng_factory=RngFactory(1),
            mode="aggregate",
        )
        assert out.remaining_ids is None
        assert out.loads.sum() + out.remaining == m


class TestMessageTailGeometric:
    def test_per_ball_message_tail_decays_geometrically(self):
        """Theorem 6's proof: Pr[ball sends > l messages] <= 2^-l — the
        per-ball send counts must have an (at most) geometric tail."""
        import numpy as np

        res = run_heavy(2**18, 256, seed=13)
        sent = res.messages.ball_sent
        m = sent.size
        # fraction of balls with > l sends, vs 2^-(l-1) (one slack
        # factor for the phase-2 multi-contact rounds)
        for level in (2, 4, 6, 8):
            frac = float((sent > level).mean())
            assert frac <= 2.0 ** (-(level - 2)), (level, frac)

    def test_mean_sends_constant(self):
        res = run_heavy(2**18, 256, seed=13)
        assert res.messages.ball_sent.mean() <= 4.0
