"""Batch execution on top of :func:`repro.api.dispatch.allocate`.

Two entry points:

* :func:`allocate_many` — repeat one instance across independent
  seed-spawned RNG streams (the numpy ``SeedSequence.spawn`` idiom, so
  repetitions are statistically independent yet exactly reproducible
  from one root seed);
* :func:`sweep` — run a grid of ``(m, n)`` points, each repeated, with
  per-run spawned streams.

Execution: when the algorithm's spec carries the ``trial_batched``
capability and the request is compatible (``mode="auto"`` or the
adapter's own mode, adapter-supported options), the repetitions run on
the trial-batched kernel engine — one lock-step vectorized pass whose
per-repeat results are *bitwise-identical* to the sequential loop run
in the same resolved mode (see :mod:`repro.api.replicate`).  The mode
resolution itself is the one place ``"auto"`` semantics move: for
trial-batched specs, ``mode="auto"`` here selects the adapter's
equivalent mode (aggregate for the kernel-backed protocols) at *any*
instance size, just as single-run ``allocate`` upgrades to aggregate
above ``AGGREGATE_THRESHOLD`` — identical in distribution, not
bitwise, and without per-ball message counters.  Callers who need the
runner's default mode bitwise say so exactly as they always have:
``mode=None`` (or an explicit mode), which is never silently batched.

Everything else runs the per-seed loop, optionally fanned out over
processes with ``workers=`` (the CPU-bound numpy simulations cannot
share a core under the GIL, so fan-out goes through
:mod:`repro.experiments.parallel`, imported lazily).  Results come
back in task order in every case: ``workers`` never changes values,
and batching never changes values relative to the same resolved mode.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Union

import numpy as np

from repro.api.dispatch import _split_options, allocate
from repro.api.replicate import batched_eligible, run_batched
from repro.api.spec import get_spec
from repro.utils.seeding import as_seed_sequence

__all__ = ["allocate_many", "spawn_seeds", "sweep"]

SweepPoint = Union[tuple[int, int], dict[str, Any]]


def spawn_seeds(seed, count: int) -> list[np.random.SeedSequence]:
    """``count`` independent child seeds from one root seed.

    Children are spawned from a :class:`numpy.random.SeedSequence`, so
    streams are independent even for adjacent root seeds, and the whole
    batch replays exactly.  Accepts the package-wide seed forms (int,
    None, SeedSequence, Generator) via
    :func:`repro.utils.seeding.as_seed_sequence` — the same root-seed
    idiom :class:`repro.utils.seeding.RngFactory` uses, so a Generator
    is frozen into a root entropy value identically everywhere.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    return as_seed_sequence(seed).spawn(count)


def _run_tasks(tasks: list[tuple], workers: Optional[int]) -> list:
    if workers is not None and workers > 1 and len(tasks) > 1:
        from repro.experiments.parallel import allocate_batch

        return allocate_batch(tasks, workers=workers)
    return [
        allocate(algorithm, m, n, seed=s, mode=mode, **options)
        for algorithm, m, n, s, mode, options in tasks
    ]


def _try_batched(
    algorithm: str,
    m: int,
    n: int,
    children: list[np.random.SeedSequence],
    mode: Optional[str],
    options: dict[str, Any],
    trial_batched: Optional[bool],
    workers: Optional[int] = None,
) -> Optional[list]:
    """Run the repeats on the trial-batched engine when that provably
    changes nothing but the wall clock; ``None`` means "use the loop".

    ``workers >= 2`` shards the engine's trial axis across processes
    (:func:`repro.experiments.parallel.replicate_sharded`) — per-trial
    bitwise-identical to the single-process batch.
    """
    if trial_batched is False:
        return None
    spec = get_spec(algorithm)
    if not spec.trial_batched:
        if trial_batched is True:
            raise ValueError(
                f"algorithm {spec.name!r} has no trial-batched engine"
            )
        return None
    from repro.workloads import as_workload

    opts = dict(options)
    wl = as_workload(opts.pop("workload", None))
    runner_kwargs = _split_options(spec, opts)
    if not batched_eligible(spec, m, mode, wl, runner_kwargs):
        if trial_batched is True:
            raise ValueError(
                f"algorithm {spec.name!r} cannot batch this request "
                f"(mode={mode!r}, options={sorted(opts)})"
            )
        return None
    if workers is not None and workers > 1 and len(children) > 1:
        from repro.experiments.parallel import replicate_sharded

        return replicate_sharded(
            spec.name, m, n, children, wl, runner_kwargs, workers=workers
        )
    return run_batched(spec, m, n, children, wl, runner_kwargs)


def allocate_many(
    algorithm: str,
    m: int,
    n: int,
    *,
    repeats: int,
    seed=None,
    mode: str = "auto",
    workers: Optional[int] = None,
    trial_batched: Optional[bool] = None,
    **options: Any,
):
    """Run ``algorithm`` ``repeats`` times with independent streams.

    Parameters
    ----------
    algorithm, m, n, mode, options:
        As for :func:`~repro.api.dispatch.allocate`.
    repeats:
        Number of independent runs (must be >= 1).
    seed:
        Root seed; each run gets its own spawned child stream, so runs
        are independent but the whole batch replays exactly.
    workers:
        ``None``/``1`` runs in-process; ``>= 2`` fans out over worker
        processes via :mod:`repro.experiments.parallel`.  When the
        batch runs on the trial-batched engine, the fan-out shards the
        engine's *trial axis* (contiguous shards of the spawned
        children, loads through shared memory) — per-repeat
        bitwise-identical to the single-process batch.
    trial_batched:
        ``None`` (default) routes through the trial-batched engine for
        specs with the ``trial_batched`` capability under
        ``mode="auto"`` — each repeat then executes in the adapter's
        equivalent mode (aggregate for the kernel-backed protocols),
        regardless of instance size — or under that mode explicitly.
        ``False`` forces the historical per-seed loop (note that under
        ``mode="auto"`` the loop resolves the mode per the single-run
        rules, i.e. the spec default below ``AGGREGATE_THRESHOLD``, so
        it reproduces the engine's values only at the adapter's mode;
        pass that mode explicitly to compare value-for-value).
        ``True`` requires batching and raises when the request cannot
        batch.

    Notes
    -----
    ``workload=`` (a :class:`repro.workloads.Workload` or spec string)
    passes through ``options`` into :func:`~repro.api.dispatch.allocate`
    per run; because each run's stream is spawned from the root seed,
    results are identical for any ``workers`` count, workload or not.

    Returns
    -------
    list[AllocationResult]
        In repeat order; ``extra["api"]["repeat"]`` records the index.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    children = spawn_seeds(seed, repeats)
    results = _try_batched(
        algorithm, m, n, children, mode, options, trial_batched, workers
    )
    if results is None:
        tasks = [
            (algorithm, m, n, child, mode, options) for child in children
        ]
        results = _run_tasks(tasks, workers)
    for i, result in enumerate(results):
        result.extra["api"]["repeat"] = i
    return results


def _point_to_task(
    algorithm: str,
    point: SweepPoint,
    child: np.random.SeedSequence,
    mode: str,
    common: dict[str, Any],
) -> tuple:
    if isinstance(point, dict):
        merged = dict(common)
        merged.update(point)
        try:
            m = merged.pop("m")
            n = merged.pop("n")
        except KeyError as exc:
            raise ValueError(
                f"sweep point {point!r} must provide 'm' and 'n'"
            ) from exc
        point_mode = merged.pop("mode", mode)
        return (algorithm, m, n, child, point_mode, merged)
    m, n = point
    return (algorithm, m, n, child, mode, dict(common))


def sweep(
    algorithm: str,
    points: Iterable[SweepPoint] | Sequence[SweepPoint],
    *,
    repeats: int = 1,
    seed=None,
    mode: str = "auto",
    workers: Optional[int] = None,
    trial_batched: Optional[bool] = None,
    **options: Any,
):
    """Run a parameter sweep: every point, ``repeats`` times each.

    Parameters
    ----------
    algorithm:
        Registry name or alias.
    points:
        Iterable of instance points: ``(m, n)`` tuples, or dicts with
        ``m``/``n`` plus per-point option overrides (a dict may also
        override ``mode``).
    repeats:
        Independent runs per point.
    seed:
        Root seed; every (point, repeat) cell gets its own spawned
        stream, so cells are mutually independent and the whole sweep
        replays from the root.
    workers:
        Optional process fan-out, as in :func:`allocate_many`.
    trial_batched:
        As in :func:`allocate_many`, applied point by point: each
        point's ``repeats`` runs batch together when eligible (its
        instance size and merged options decide), and fall back to the
        sequential loop otherwise — values are identical either way.
    options:
        Options common to every point (per-point dicts override).

    Returns
    -------
    list[AllocationResult]
        Flat, ordered point-major then repeat; each result's
        ``extra["api"]`` records ``point`` and ``repeat`` indices.
        Persist with :func:`repro.experiments.export.results_to_json`.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    point_list = list(points)
    if not point_list:
        raise ValueError("sweep needs at least one point")
    children = spawn_seeds(seed, len(point_list) * repeats)
    if trial_batched is not True and (
        trial_batched is False or not get_spec(algorithm).trial_batched
    ):
        # No batching possible for this spec: keep the historical
        # single submission so a worker pool spans the whole sweep.
        tasks = []
        for p_idx, point in enumerate(point_list):
            for r_idx in range(repeats):
                child = children[p_idx * repeats + r_idx]
                tasks.append(
                    _point_to_task(algorithm, point, child, mode, options)
                )
        results = _run_tasks(tasks, workers)
        for i, result in enumerate(results):
            result.extra["api"]["point"] = i // repeats
            result.extra["api"]["repeat"] = i % repeats
        return results
    # Two-phase submission: batch each eligible point's repeat block on
    # the engine, and collect every remaining cell into ONE task list
    # so a worker pool still spans the whole sweep (not one pool per
    # point), then stitch the results back in point-major order.
    blocks: list = [None] * len(point_list)
    pending_tasks: list[tuple] = []
    pending_slots: list[int] = []
    for p_idx, point in enumerate(point_list):
        cell = children[p_idx * repeats : (p_idx + 1) * repeats]
        # Per-point task shape (a dict point may override m/n/mode and
        # options), resolved once for the whole repeat block.
        task = _point_to_task(algorithm, point, cell[0], mode, options)
        _, p_m, p_n, _, p_mode, p_options = task
        block = _try_batched(
            algorithm, p_m, p_n, cell, p_mode, p_options, trial_batched,
            workers,
        )
        if block is None:
            for child in cell:
                pending_tasks.append(
                    (algorithm, p_m, p_n, child, p_mode, p_options)
                )
            pending_slots.append(p_idx)
        else:
            blocks[p_idx] = block
    if pending_tasks:
        sequential = _run_tasks(pending_tasks, workers)
        for i, p_idx in enumerate(pending_slots):
            blocks[p_idx] = sequential[i * repeats : (i + 1) * repeats]
    results = [result for block in blocks for result in block]
    for i, result in enumerate(results):
        result.extra["api"]["point"] = i // repeats
        result.extra["api"]["repeat"] = i % repeats
    return results
