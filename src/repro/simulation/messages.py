"""Message objects exchanged between ball and bin agents.

The protocols in the paper use four message types:

* ``REQUEST`` — a ball asks a bin for a slot (step 1 of each round);
* ``ACCEPT`` — a bin grants a slot (step 2);
* ``REJECT`` — a bin declines; the paper's algorithms treat silence and
  rejection identically, but an explicit message keeps accounting exact
  in the engine (rejects can be excluded from counts via configuration,
  matching protocols where declines are implicit);
* ``COMMIT`` — a ball informs an accepting bin that it is (or is not)
  taking the slot (step 3 / step 5 of the lower-bound family).

``payload`` is protocol-specific: the asymmetric algorithm's superbin
leaders, for instance, reply with a round-robin offset ``j`` that the
ball uses to address bin ``i - j`` (Section 5, step 4-5).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any

__all__ = ["Message", "MessageKind"]


class MessageKind(enum.Enum):
    """Protocol message types."""

    REQUEST = "request"
    ACCEPT = "accept"
    REJECT = "reject"
    COMMIT = "commit"

    def __str__(self) -> str:  # pragma: no cover - repr convenience
        return self.value


@dataclass(frozen=True)
class Message:
    """A single message in flight.

    Attributes
    ----------
    kind:
        One of :class:`MessageKind`.
    ball:
        Index of the ball endpoint (always present: every message in the
        paper's protocols travels between one ball and one bin).
    bin:
        Index of the bin endpoint.
    round_no:
        The round in which the message was sent.
    payload:
        Optional protocol-specific data.
    """

    kind: MessageKind
    ball: int
    bin: int
    round_no: int
    payload: Any = field(default=None, compare=False)

    def __post_init__(self) -> None:
        if self.ball < 0:
            raise ValueError(f"ball index must be >= 0, got {self.ball}")
        if self.bin < 0:
            raise ValueError(f"bin index must be >= 0, got {self.bin}")
        if self.round_no < 0:
            raise ValueError(f"round_no must be >= 0, got {self.round_no}")

    @property
    def from_ball(self) -> bool:
        """True for ball-to-bin messages (requests and commits)."""
        return self.kind in (MessageKind.REQUEST, MessageKind.COMMIT)

    @property
    def from_bin(self) -> bool:
        """True for bin-to-ball messages (accepts and rejects)."""
        return self.kind in (MessageKind.ACCEPT, MessageKind.REJECT)

    def describe(self) -> str:
        """Human-readable one-liner, used in engine traces."""
        arrow = (
            f"ball {self.ball} -> bin {self.bin}"
            if self.from_ball
            else f"bin {self.bin} -> ball {self.ball}"
        )
        extra = f" payload={self.payload!r}" if self.payload is not None else ""
        return f"[r{self.round_no}] {self.kind.value}: {arrow}{extra}"
