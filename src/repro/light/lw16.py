"""Vectorized collision protocol implementing Theorem 5's guarantees.

Protocol (per synchronous round ``r``, with tower schedule
``k_1 = 1, k_{r+1} = min(2^{k_r}, cap)``):

1. every unallocated ball sends requests to ``k_r`` bins chosen
   uniformly and independently at random;
2. every bin with residual capacity ``c > 0`` accepts up to ``c`` of the
   requests it received, chosen uniformly at random (adversarial port
   order is immaterial for a uniformly random choice);
3. every ball that received at least one accept commits to one acceptor
   (uniformly among them) and revokes the rest, freeing that capacity
   for the next round.

Why this meets Theorem 5's bounds (empirically verified in experiment
T7): the number of unallocated balls after a round with contact count
``k`` drops from ``u`` to roughly ``u * (u k / n)^k`` — iterating with a
tower-growing ``k`` empties the system in ``log* n + O(1)`` rounds, and
the total number of requests is dominated by the first round's ``n``
plus a geometrically decaying tail, i.e. ``O(n)``.

A deterministic *sweep* fallback guards liveness: if the randomized
rounds exceed their budget (probability ``n^{-c}``), remaining balls are
allocated by scanning bins in index order — the trivial ``n``-round
algorithm of Section 3's success-probability note.  The fallback
preserves the load cap whenever total residual capacity suffices.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.api.spec import register_allocator
from repro.fastpath.roundstate import RoundState
from repro.simulation.metrics import RoundMetrics, RunMetrics
from repro.utils.logstar import log_star
from repro.utils.seeding import RngFactory, as_generator
from repro.utils.validation import check_positive_int
from repro.workloads import BoundWorkload, as_workload

__all__ = [
    "LightConfig",
    "LightOutcome",
    "run_light",
    "run_light_allocation",
    "tower_schedule",
]


@dataclass(frozen=True)
class LightConfig:
    """Tunables of the light-load protocol.

    Attributes
    ----------
    capacity:
        Per-bin load cap (Theorem 5 guarantees 2).
    max_contacts:
        Upper clamp on the per-round contact count ``k_r`` (memory
        guard; the tower schedule reaches it only in the final round).
    round_budget_slack:
        Extra randomized rounds beyond ``log* n`` before the
        deterministic sweep fallback engages.
    """

    capacity: int = 2
    max_contacts: int = 64
    round_budget_slack: int = 6


@dataclass
class LightOutcome:
    """Result of a light-protocol run on its own bin space."""

    loads: np.ndarray
    assignment: np.ndarray  # ball -> bin
    rounds: int
    total_messages: int
    metrics: RunMetrics
    used_fallback: bool
    ball_messages: np.ndarray = field(default=None)  # type: ignore[assignment]
    #: Per-bin weighted intake (None for unit-weight workloads).
    weighted_loads: Optional[np.ndarray] = None

    @property
    def max_load(self) -> int:
        return int(self.loads.max(initial=0))


def tower_schedule(round_index: int, cap: int) -> int:
    """Contact count ``k_r`` for 0-based round ``r``:
    ``k_0 = 1`` and ``k_{r+1} = min(2^{k_r}, cap)``."""
    if round_index < 0:
        raise ValueError(f"round_index must be >= 0, got {round_index}")
    k = 1
    for _ in range(round_index):
        if k >= 30:  # 2**30 exceeds any practical cap
            return cap
        k = min(2**k, cap)
    return min(k, cap)


def run_light(
    n_balls: int,
    n_bins: int,
    *,
    seed=None,
    config: LightConfig = LightConfig(),
    ball_ids: Optional[np.ndarray] = None,
    workload=None,
) -> LightOutcome:
    """Allocate ``n_balls`` balls into ``n_bins`` bins, load <= capacity.

    Parameters
    ----------
    n_balls, n_bins:
        Instance size; requires ``n_balls <= total capacity`` (the
        protocol cannot exceed total capacity).
    seed:
        Anything accepted by :func:`numpy.random.default_rng`, or an
        existing Generator.
    config:
        Protocol tunables.
    ball_ids:
        Optional global ball identifiers of length ``n_balls``; accepted
        for validation symmetry with callers that maintain a global ball
        index space (``A_heavy`` phase 2).  The returned
        ``ball_messages`` is always indexed by local position
        ``0..n_balls-1``; callers map through their own ID arrays.
    workload:
        Optional :class:`repro.workloads.Workload` (or spec string):
        skewed contact distribution, per-bin capacities scaled by the
        capacity profile (total must still cover ``n_balls``), and
        weighted-load tracking.  ``run_light`` takes a single
        Generator, so workload weights draw from it up front — uniform
        workloads draw nothing and stay bitwise-identical.

    Returns
    -------
    LightOutcome
        Final loads over the ``n_bins`` bins, the ball-to-bin
        assignment, and accounting.
    """
    n_balls = check_positive_int(n_balls, "n_balls", minimum=0)
    n_bins = check_positive_int(n_bins, "n_bins")
    if config.capacity < 1:
        raise ValueError(f"capacity must be >= 1, got {config.capacity}")
    rng = as_generator(seed)
    wl_spec = as_workload(workload)
    if wl_spec is None:
        wl = BoundWorkload()
    else:
        wl = BoundWorkload(
            spec=wl_spec,
            pvals=wl_spec.pvals(n_bins),
            capacity_scale=wl_spec.capacity_scale(n_bins),
        )
        if wl_spec.weight != "unit":
            wl.weights = wl_spec.sample_weights(n_balls, rng)
    caps = wl.capacities(config.capacity)
    caps_arr = (
        caps
        if isinstance(caps, np.ndarray)
        else np.full(n_bins, config.capacity, dtype=np.int64)
    )
    total_capacity = int(caps_arr.sum())
    if n_balls > total_capacity:
        raise ValueError(
            f"{n_balls} balls exceed total capacity {total_capacity} "
            f"(capacity {config.capacity} over {n_bins} bins)"
        )
    state = RoundState(
        n_balls, n_bins, track_assignment=True, weights=wl.weights
    )
    ball_messages = np.zeros(n_balls, dtype=np.int64)
    used_fallback = False
    budget = log_star(n_bins) + config.round_budget_slack

    while state.active_count > 0 and state.rounds < budget:
        k_r = tower_schedule(state.rounds, min(config.max_contacts, n_bins))
        balls = state.active
        # Step 1: requests — ``k_r`` contacts per active ball, drawn
        # from the workload's choice distribution (flat layout: request
        # j belongs to ball active[j // k_r]).
        batch = state.sample_contacts(rng, d=k_r, pvals=wl.pvals)
        # Step 2: bins accept up to residual capacity, uniformly among
        # requesters.
        decision = state.group_and_accept(
            batch, (caps_arr - state.loads).astype(np.int64), rng
        )
        # Step 3: each accepted ball commits to one acceptor (uniform:
        # the accept pass already applied random priorities, so the
        # first accepted request per ball is uniform among acceptors)
        # and notifies every bin that accepted it (commit/revoke).
        out = state.commit_and_revoke(
            batch, decision, commit_notifications=True
        )
        # Per-ball accounting: k_r sends, one receive per accept, one
        # send per commit/revoke notice.
        ball_messages[balls] += k_r
        np.add.at(ball_messages, balls[out.accepted_positions], 1)
        np.add.at(ball_messages, balls[out.commit_notice_positions], 1)

    # Deterministic sweep fallback (probability n^{-c} path): scan bins
    # in index order, filling residual capacity.  Each sweep round lets a
    # ball contact one bin, exactly the trivial algorithm of Section 3.
    if state.active_count > 0:
        used_fallback = True
        active = state.active
        residual = np.maximum(caps_arr - state.loads, 0)
        slots = np.repeat(np.arange(n_bins), residual)
        if slots.size < active.size:  # unreachable given capacity check
            raise RuntimeError("fallback found insufficient capacity")
        chosen = slots[: active.size]
        state.assignment[active] = chosen
        np.add.at(state.loads, chosen, 1)
        if state.weighted_loads is not None:
            np.add.at(state.weighted_loads, chosen, state.weights[active])
        # Message cost of the sweep: ball b finds a free bin after at
        # most (chosen position + 1) contacts; we charge 1 per ball per
        # sweep round and fold the sweep into one reported round per
        # paper's trivial algorithm (n rounds worst case — recorded via
        # the metrics entry below).
        state.total_messages += int(active.size)
        ball_messages[active] += 2  # request + accept
        state.metrics.add_round(
            RoundMetrics(
                round_no=state.rounds,
                unallocated_start=int(active.size),
                requests_sent=int(active.size),
                accepts_sent=int(active.size),
                rejects_sent=0,
                commits=int(active.size),
                unallocated_end=0,
                max_load=int(state.loads.max(initial=0)),
            )
        )
        state.rounds += 1
        state.active = active[:0]

    if ball_ids is not None:
        if len(ball_ids) != n_balls:
            raise ValueError("ball_ids must have length n_balls")
    return LightOutcome(
        loads=state.loads,
        assignment=state.assignment,
        rounds=state.rounds,
        total_messages=state.total_messages,
        metrics=state.metrics,
        used_fallback=used_fallback,
        ball_messages=ball_messages,
        weighted_loads=state.weighted_loads,
    )


@register_allocator(
    "light",
    summary="A_light collision protocol (lightly loaded, cap 2)",
    paper_ref="Theorem 5",
    aliases=("a_light", "lw16"),
    kernel_backed=True,
    workload_capable=True,
    config_type=LightConfig,
)
def run_light_allocation(
    m: int,
    n: int,
    *,
    seed=None,
    config: LightConfig = LightConfig(),
    workload=None,
):
    """Run ``A_light`` standalone and return an ``AllocationResult``.

    The registry-facing wrapper around :func:`run_light`: same
    protocol, but the outcome is packaged in the package-wide result
    type so the light subroutine is comparable to every other
    allocator.  Requires ``m <=`` the workload-scaled total capacity
    (``config.capacity * n`` for the homogeneous profile).
    ``workload`` is forwarded to :func:`run_light`.

    The ball-to-bin assignment and the fallback flag are preserved in
    ``extra`` (keys ``assignment`` is omitted — loads carry the
    distributional content — and ``used_fallback``).
    """
    from repro.result import AllocationResult

    factory = RngFactory(seed)
    wl_spec = as_workload(workload)
    outcome = run_light(
        m, n, seed=factory.stream("light"), config=config, workload=wl_spec
    )
    extra: dict = {"used_fallback": outcome.used_fallback}
    workload_record = BoundWorkload(spec=wl_spec).extra_record(
        outcome.weighted_loads
    )
    if workload_record is not None:
        extra["workload"] = workload_record
    return AllocationResult(
        algorithm="light",
        m=m,
        n=n,
        loads=outcome.loads,
        rounds=outcome.rounds,
        metrics=outcome.metrics,
        total_messages=outcome.total_messages,
        seed_entropy=factory.root_entropy,
        extra=extra,
    )
