"""Tests for the vectorized sampling kernels."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.fastpath.sampling import (
    grouped_accept,
    multinomial_occupancy,
    sample_uniform_choices,
)


class TestSampleUniformChoices:
    def test_range_and_dtype(self, rng):
        out = sample_uniform_choices(1000, 7, rng)
        assert out.dtype == np.int64
        assert out.min() >= 0 and out.max() < 7

    def test_zero_k(self, rng):
        assert sample_uniform_choices(0, 5, rng).size == 0

    def test_uniformity_chi2(self, rng):
        n = 16
        out = sample_uniform_choices(160_000, n, rng)
        counts = np.bincount(out, minlength=n)
        chi2 = ((counts - 10_000) ** 2 / 10_000).sum()
        # chi2 with 15 dof: 99.9th percentile ~ 37.7
        assert chi2 < 37.7

    def test_invalid(self, rng):
        with pytest.raises(ValueError):
            sample_uniform_choices(-1, 5, rng)
        with pytest.raises(ValueError):
            sample_uniform_choices(5, 0, rng)


class TestMultinomialOccupancy:
    def test_sums_to_k(self, rng):
        counts = multinomial_occupancy(12345, 77, rng)
        assert counts.sum() == 12345
        assert counts.dtype == np.int64

    def test_zero_k(self, rng):
        counts = multinomial_occupancy(0, 5, rng)
        assert counts.sum() == 0
        assert counts.shape == (5,)

    def test_large_k_supported(self, rng):
        counts = multinomial_occupancy(10**12, 64, rng)
        assert counts.sum() == 10**12

    def test_same_distribution_as_bincount(self, rng):
        """The aggregate path must match the per-ball path in law: KS
        test on single-bin counts across trials."""
        k, n, trials = 5000, 10, 300
        agg = np.array(
            [multinomial_occupancy(k, n, rng)[0] for _ in range(trials)]
        )
        per = np.array(
            [
                np.bincount(sample_uniform_choices(k, n, rng), minlength=n)[0]
                for _ in range(trials)
            ]
        )
        _, pvalue = sps.ks_2samp(agg, per)
        assert pvalue > 1e-4

    def test_invalid(self, rng):
        with pytest.raises(ValueError):
            multinomial_occupancy(-1, 5, rng)
        with pytest.raises(ValueError):
            multinomial_occupancy(5, 0, rng)


class TestGroupedAccept:
    def test_respects_capacity(self, rng):
        choices = rng.integers(0, 8, size=1000)
        capacity = rng.integers(0, 50, size=8)
        mask = grouped_accept(choices, capacity, rng)
        accepted_per_bin = np.bincount(choices[mask], minlength=8)
        assert np.all(accepted_per_bin <= capacity)

    def test_accepts_all_when_capacity_huge(self, rng):
        choices = rng.integers(0, 4, size=100)
        mask = grouped_accept(choices, np.full(4, 1000), rng)
        assert mask.all()

    def test_accepts_exactly_capacity_when_saturated(self, rng):
        choices = np.zeros(100, dtype=np.int64)
        mask = grouped_accept(choices, np.array([7]), rng)
        assert mask.sum() == 7

    def test_negative_capacity_treated_as_zero(self, rng):
        choices = np.zeros(10, dtype=np.int64)
        mask = grouped_accept(choices, np.array([-3]), rng)
        assert mask.sum() == 0

    def test_empty_input(self, rng):
        mask = grouped_accept(np.zeros(0, dtype=np.int64), np.array([1]), rng)
        assert mask.size == 0

    def test_out_of_range_target(self, rng):
        with pytest.raises(ValueError):
            grouped_accept(np.array([5]), np.array([1, 1]), rng)

    def test_uniform_selection_within_bin(self, rng):
        """Each requester of a saturated bin must win equally often."""
        trials = 3000
        wins = np.zeros(4)
        choices = np.zeros(4, dtype=np.int64)  # 4 requests to bin 0
        capacity = np.array([1])
        for _ in range(trials):
            mask = grouped_accept(choices, capacity, rng)
            wins[np.flatnonzero(mask)[0]] += 1
        expected = trials / 4
        chi2 = ((wins - expected) ** 2 / expected).sum()
        assert chi2 < 16.3  # 99.9th percentile, 3 dof

    def test_multiple_bins_independent(self, rng):
        choices = np.array([0, 0, 1, 1, 2])
        capacity = np.array([1, 2, 0])
        mask = grouped_accept(choices, capacity, rng)
        assert mask[:2].sum() == 1
        assert mask[2:4].sum() == 2
        assert not mask[4]
