"""Tests of the dynamic allocation subsystem (churn + epochs).

Pins the subsystem's contracts:

* spec validation and the arrival processes' counts;
* resident bookkeeping: conservation under every departure policy,
  FIFO age order, hotset bin preference;
* the epoch runner's value anchors — a zero-churn epoch is a bitwise
  no-op, a 100%-departure epoch equals a fresh one-shot run, an
  incremental epoch equals the direct adapter call on the same child
  seed and residual loads;
* seed reproducibility across process fan-out (workers=1 vs 2);
* the adapters' placement semantics (capability flags, saturation,
  workload handling);
* the CLI subcommand and the dynamic benchmark harness.
"""

import json

import numpy as np
import pytest

import repro
from repro.api import get_dynamic, get_spec
from repro.core.combined import _waterfill, dynamic_combined
from repro.core.heavy import dynamic_heavy
from repro.dynamic import (
    DynamicPlacement,
    DynamicSpec,
    ResidentState,
    run_dynamic,
    run_dynamic_many,
)
from repro.workloads import WorkloadError

DYNAMIC_CAPABLE = ("heavy", "combined", "single", "stemann")


class TestDynamicSpec:
    def test_defaults_valid(self):
        spec = DynamicSpec()
        assert spec.rebalance == "incremental"
        assert "incremental" in spec.describe()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epochs": -1},
            {"churn": -0.1},
            {"churn": 1.5},
            {"arrivals": "storm"},
            {"departures": "lifo"},
            {"rebalance": "partial"},
            {"burst_every": 1},
            {"burst_factor": 0.5},
            {"hot_frac": 0.0},
            {"hot_frac": 1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            DynamicSpec(**kwargs)

    def test_fixed_arrivals(self):
        spec = DynamicSpec(churn=0.1)
        assert spec.arrival_count(1, 1000) == 100
        assert spec.arrival_count(7, 1000) == 100

    def test_bursty_long_run_mean(self):
        spec = DynamicSpec(
            churn=0.1, arrivals="bursty", burst_every=4, burst_factor=4.0
        )
        counts = [spec.arrival_count(e, 10_000) for e in range(1, 9)]
        # Two full cycles: mean stays at churn * m up to rounding.
        assert abs(sum(counts) / len(counts) - 1000) <= 2
        # The burst epochs (multiples of burst_every) carry the factor.
        assert counts[3] > 2 * counts[0]

    def test_poisson_needs_rng(self):
        spec = DynamicSpec(arrivals="poisson")
        with pytest.raises(ValueError, match="rng"):
            spec.arrival_count(1, 1000)
        rng = np.random.default_rng(0)
        assert spec.arrival_count(1, 1000, rng) >= 0

    def test_with_rebalance(self):
        spec = DynamicSpec(churn=0.2)
        other = spec.with_rebalance("full_rerun")
        assert other.rebalance == "full_rerun"
        assert other.churn == 0.2

    def test_to_dict_round_trip(self):
        spec = DynamicSpec(departures="hotset", hot_frac=0.25)
        assert DynamicSpec(**spec.to_dict()) == spec


class TestResidentState:
    def _populated(self, n=8, sizes=(40, 30, 20)):
        state = ResidentState(n)
        rng = np.random.default_rng(1)
        for epoch, size in enumerate(sizes):
            counts = rng.multinomial(size, np.full(n, 1 / n))
            state.add_cohort(epoch, counts)
        return state

    @pytest.mark.parametrize("policy", ["uniform", "fifo", "hotset"])
    def test_departure_conservation(self, policy):
        state = self._populated()
        before = state.population
        departed = state.depart(
            25, policy, np.random.default_rng(2), hot_frac=0.25
        )
        assert departed.sum() == 25
        assert state.population == before - 25
        assert np.all(state.loads >= 0)

    def test_zero_departures_no_rng(self):
        state = self._populated()
        before = state.loads
        departed = state.depart(0, "uniform", None)
        assert departed.sum() == 0
        assert np.array_equal(state.loads, before)

    def test_fifo_consumes_oldest_first(self):
        state = self._populated(sizes=(40, 30, 20))
        state.depart(45, "fifo", np.random.default_rng(3))
        epochs = [epoch for epoch, _ in state.cohorts]
        # Cohort 0 (40 balls) fully gone, cohort 1 split, cohort 2 whole.
        assert 0 not in epochs
        sizes = {e: int(c.sum()) for e, c in state.cohorts}
        assert sizes[1] == 25 and sizes[2] == 20

    def test_hotset_prefers_hottest_bins(self):
        state = ResidentState(4)
        state.add_cohort(0, np.array([100, 10, 10, 10], dtype=np.int64))
        departed = state.depart(
            50, "hotset", np.random.default_rng(4), hot_frac=0.25
        )
        # The hottest bin holds 100 >= 50, so everything leaves there.
        assert departed[0] == 50
        assert departed[1:].sum() == 0

    def test_hotset_falls_back_to_cold(self):
        state = ResidentState(4)
        state.add_cohort(0, np.array([5, 20, 20, 20], dtype=np.int64))
        departed = state.depart(
            30, "hotset", np.random.default_rng(4), hot_frac=0.25
        )
        # Hot set is the single hottest bin (bin 1, 20 balls): drained
        # fully, remainder from the cold bins.
        assert departed[np.argmax([5, 20, 20, 20])] == 20
        assert departed.sum() == 30

    def test_overdraw_rejected(self):
        state = self._populated()
        with pytest.raises(ValueError, match="population"):
            state.depart(1000, "uniform", np.random.default_rng(0))

    def test_unknown_policy(self):
        state = self._populated()
        with pytest.raises(ValueError, match="policy"):
            state.depart(1, "lifo", np.random.default_rng(0))

    def test_reshuffle_preserves_cohort_sizes(self):
        state = self._populated(sizes=(40, 30, 20))
        rng = np.random.default_rng(5)
        new_loads = rng.multinomial(90, np.full(8, 1 / 8)).astype(np.int64)
        state.reshuffle(new_loads, rng)
        assert np.array_equal(state.loads, new_loads)
        assert [int(c.sum()) for _, c in state.cohorts] == [40, 30, 20]

    def test_reshuffle_shortfall_evicts_newest(self):
        state = self._populated(sizes=(40, 30, 20))
        rng = np.random.default_rng(5)
        new_loads = rng.multinomial(65, np.full(8, 1 / 8)).astype(np.int64)
        state.reshuffle(new_loads, rng)
        assert [int(c.sum()) for _, c in state.cohorts] == [40, 25]


class TestRunDynamicInvariants:
    @pytest.mark.parametrize("algorithm", DYNAMIC_CAPABLE)
    def test_population_conserved(self, algorithm):
        res = run_dynamic(algorithm, 4000, 32, seed=1, epochs=4)
        assert res.loads.sum() == res.populations[-1]
        for e, record in enumerate(res.records):
            assert res.loads_history[e].sum() == record.population
        assert res.populations[-1] == 4000 - sum(
            r.unplaced for r in res.records
        )

    @pytest.mark.parametrize(
        "departures", ["uniform", "fifo", "hotset"]
    )
    @pytest.mark.parametrize("arrivals", ["fixed", "poisson", "bursty"])
    def test_policy_matrix_runs(self, departures, arrivals):
        res = run_dynamic(
            "heavy",
            2000,
            16,
            seed=2,
            epochs=3,
            departures=departures,
            arrivals=arrivals,
        )
        assert res.epochs == 3
        assert res.loads.sum() == res.populations[-1]

    def test_replay_bitwise(self):
        a = run_dynamic("heavy", 4000, 32, seed=5, epochs=4)
        b = run_dynamic("heavy", 4000, 32, seed=5, epochs=4)
        assert np.array_equal(a.loads, b.loads)
        assert np.array_equal(a.loads_history, b.loads_history)
        assert np.array_equal(a.messages, b.messages)

    def test_zero_churn_epochs_are_bitwise_noops(self):
        res = run_dynamic("heavy", 4000, 32, seed=9, epochs=5, churn=0.0)
        for e in range(1, 6):
            assert np.array_equal(
                res.loads_history[e], res.loads_history[0]
            )
            record = res.records[e]
            assert record.messages == 0
            assert record.moved == 0
            assert record.rounds == 0
            assert record.arrivals == 0 and record.departures == 0

    def test_poisson_full_churn_keeps_population_pinned(self):
        # A Poisson draw above the population is clamped on BOTH sides
        # (departures and arrivals are count-matched), so the
        # population never ratchets past m.
        res = run_dynamic(
            "heavy", 2000, 8, seed=13, epochs=6, churn=1.0,
            arrivals="poisson",
        )
        assert np.all(res.populations <= 2000)
        assert res.populations[-1] == 2000

    def test_full_rerun_moves_whole_population(self):
        res = run_dynamic(
            "heavy", 4000, 32, seed=3, epochs=3, rebalance="full_rerun"
        )
        for record in res.records[1:]:
            assert record.moved == record.population

    def test_incremental_moves_cohort_only(self):
        res = run_dynamic("heavy", 4000, 32, seed=3, epochs=3, churn=0.1)
        for record in res.records[1:]:
            assert record.moved == record.arrivals

    def test_steady_state_gap_stays_bounded(self):
        res = run_dynamic("heavy", 20_000, 64, seed=7, epochs=8)
        assert res.complete
        assert res.gaps.max() <= 10.0

    def test_fifo_departures_hold_oneshot_gap(self):
        res = run_dynamic(
            "heavy", 20_000, 64, seed=7, epochs=8, departures="fifo"
        )
        assert res.gaps.max() <= 10.0

    def test_hotset_gap_premium_is_bounded_and_oracle_free(self):
        """The documented hotset trade-off: load-correlated departures
        concentrate capacity where uniform contacts rarely land, so
        incremental pays a bounded gap premium the full-rerun oracle
        (which re-levels everything) does not."""
        inc = run_dynamic(
            "heavy", 20_000, 64, seed=3, epochs=8, churn=0.15,
            departures="hotset",
        )
        full = run_dynamic(
            "heavy", 20_000, 64, seed=3, epochs=8, churn=0.15,
            departures="hotset", rebalance="full_rerun",
        )
        assert full.gaps[1:].mean() <= 8.0
        # Bounded creep: well under the per-epoch cohort scale ...
        assert inc.gaps.max() <= 0.15 * 20_000 / 64
        # ... but a real premium over the oracle (the measured
        # pathology the docs describe; if this starts failing because
        # the gap *improved*, capacity-aware contacts landed — update
        # docs/dynamic.md).
        assert inc.gaps[1:].mean() > full.gaps[1:].mean()


class TestValueAnchors:
    """The bitwise contracts between dynamic epochs and one-shot runs."""

    def _epoch_seeds(self, seed, epochs):
        return np.random.SeedSequence(seed).spawn(2 * (epochs + 1))

    def test_full_departure_epoch_equals_fresh_heavy_run(self):
        # settle_rounds=0 makes the adapter literally run_heavy.
        res = run_dynamic(
            "heavy", 8000, 32, seed=11, epochs=2, churn=1.0,
            settle_rounds=0,
        )
        children = self._epoch_seeds(11, 2)
        for epoch in (1, 2):
            fresh = repro.run_heavy(
                8000, 32, seed=children[2 * epoch + 1], mode="aggregate"
            )
            assert np.array_equal(res.loads_history[epoch], fresh.loads)
            assert res.records[epoch].messages == fresh.total_messages
            assert res.records[epoch].rounds == fresh.rounds

    def test_full_departure_epoch_equals_fresh_single_run(self):
        res = run_dynamic("single", 5000, 32, seed=13, epochs=1, churn=1.0)
        children = self._epoch_seeds(13, 1)
        fresh = repro.run_single_choice(
            5000, 32, seed=children[3], mode="aggregate"
        )
        assert np.array_equal(res.loads_history[1], fresh.loads)

    def test_fill_epoch_equals_fresh_run(self):
        res = run_dynamic(
            "heavy", 8000, 32, seed=17, epochs=0, settle_rounds=0
        )
        fresh = repro.run_heavy(
            8000, 32, seed=self._epoch_seeds(17, 0)[1], mode="aggregate"
        )
        assert np.array_equal(res.loads, fresh.loads)

    def test_incremental_epoch_equals_direct_adapter_call(self):
        """An epoch's placement is the adapter on the epoch's child
        seed and post-departure loads — the value-identity contract."""
        from repro.utils.seeding import RngFactory

        res = run_dynamic("heavy", 8000, 32, seed=19, epochs=1, churn=0.1)
        children = self._epoch_seeds(19, 1)
        fill = dynamic_heavy(
            8000,
            32,
            initial_loads=np.zeros(32, dtype=np.int64),
            seed=children[1],
        )
        residents = ResidentState(32)
        residents.add_cohort(0, fill.loads)
        ctrl = RngFactory(children[2])
        residents.depart(
            800, "uniform", ctrl.stream("dynamic", "departures")
        )
        direct = dynamic_heavy(
            800, 32, initial_loads=residents.loads, seed=children[3]
        )
        assert np.array_equal(direct.loads, res.loads)
        assert direct.total_messages == res.records[1].messages

    def test_settle_zero_fresh_adapter_is_run_heavy_bitwise(self):
        for mode in ("perball", "aggregate"):
            p = dynamic_heavy(
                6000,
                32,
                initial_loads=np.zeros(32, dtype=np.int64),
                seed=123,
                mode=mode,
                settle_rounds=0,
            )
            h = repro.run_heavy(6000, 32, seed=123, mode=mode)
            assert np.array_equal(p.loads, h.loads), mode
            assert p.total_messages == h.total_messages
            assert p.rounds == h.rounds


class TestReproducibility:
    @pytest.mark.parametrize("departures", ["uniform", "fifo", "hotset"])
    def test_workers_never_change_values(self, departures):
        kwargs = dict(
            repeats=3, seed=4, epochs=3, churn=0.2, departures=departures
        )
        solo = run_dynamic_many("heavy", 2000, 16, workers=1, **kwargs)
        fan = run_dynamic_many("heavy", 2000, 16, workers=2, **kwargs)
        assert len(solo) == len(fan) == 3
        for a, b in zip(solo, fan):
            assert np.array_equal(a.loads, b.loads)
            assert np.array_equal(a.loads_history, b.loads_history)
            assert np.array_equal(a.messages, b.messages)
            assert np.array_equal(a.departures, b.departures)

    def test_repeats_are_independent(self):
        results = run_dynamic_many("heavy", 2000, 16, repeats=2, seed=4)
        assert not np.array_equal(results[0].loads, results[1].loads)

    def test_spec_object_wins_over_kwargs(self):
        spec = DynamicSpec(epochs=2, churn=0.5)
        res = run_dynamic_many(
            "heavy", 2000, 16, repeats=1, seed=0, spec=spec, epochs=9
        )[0]
        assert res.epochs == 2


class TestDispatchAndValidation:
    def test_capability_flags(self):
        for name in DYNAMIC_CAPABLE:
            spec = get_spec(name)
            assert spec.dynamic_capable, name
            assert "dynamic" in spec.capabilities(), name
            assert get_dynamic(name) is not None, name

    def test_non_capable_specs_unflagged(self):
        for name in ("light", "trivial", "greedy", "faulty", "dchoice"):
            assert not get_spec(name).dynamic_capable, name
            assert get_dynamic(name) is None, name

    def test_non_capable_rejected_with_capable_list(self):
        with pytest.raises(ValueError, match="dynamic-capable"):
            run_dynamic("greedy", 1000, 16, seed=0)

    def test_unknown_option_rejected(self):
        with pytest.raises(ValueError, match="valid options"):
            run_dynamic("heavy", 1000, 16, seed=0, bogus=1)

    def test_adapter_options_forwarded(self):
        res = run_dynamic(
            "stemann", 2000, 16, seed=0, epochs=2, collision_factor=3.0
        )
        assert res.records[0].placed == 2000

    def test_weighted_workload_rejected(self):
        with pytest.raises(WorkloadError, match="unit ball weights"):
            run_dynamic("heavy", 1000, 16, seed=0, workload="geomw:0.5")

    def test_choice_skew_workload_supported(self):
        res = run_dynamic(
            "heavy", 4000, 32, seed=1, epochs=2,
            workload="zipf:1.1+propcap",
        )
        assert res.workload == "zipf:1.1+propcap"
        assert res.complete

    def test_uniform_workload_string_is_none(self):
        res = run_dynamic(
            "heavy", 2000, 16, seed=1, epochs=1, workload="uniform"
        )
        assert res.workload is None


class TestAdapters:
    def test_empty_cohort_is_noop(self):
        initial = np.array([4, 2, 0, 1], dtype=np.int64)
        for adapter in (dynamic_heavy, dynamic_combined):
            p = adapter(0, 4, initial_loads=initial, seed=0)
            assert np.array_equal(p.loads, initial)
            assert p.placed == 0 and p.total_messages == 0

    def test_heavy_levels_imbalanced_residents(self):
        # Half the bins far above the population average: the cohort
        # must land in the cold bins (the hot ones are saturated at
        # every threshold and accept nothing).
        initial = np.zeros(16, dtype=np.int64)
        initial[:8] = 2000
        p = dynamic_heavy(4000, 16, initial_loads=initial, seed=0)
        assert p.unplaced == 0
        delta = p.loads - initial
        assert delta.sum() == 4000
        # Hot bins take at most the light handoff's +2g spillover; the
        # bulk of the cohort fills the valleys.
        assert delta[8:].sum() >= 3900

    def test_heavy_cohort_smaller_than_n_allowed(self):
        # Incremental cohorts may be tiny; the heavy-regime floor
        # applies to the population, not the cohort.
        initial = np.full(32, 100, dtype=np.int64)
        p = dynamic_heavy(5, 32, initial_loads=initial, seed=1)
        assert p.placed == 5
        assert p.loads.sum() == initial.sum() + 5

    def test_stemann_respects_population_bound(self):
        from repro.baselines.stemann import dynamic_stemann

        initial = np.full(8, 100, dtype=np.int64)
        p = dynamic_stemann(160, 8, initial_loads=initial, seed=0)
        assert p.unplaced == 0
        assert p.loads.max() <= p.extra["collision_bound"]
        assert p.loads.sum() == initial.sum() + 160

    def test_waterfill_levels_least_loaded(self):
        initial = np.array([5, 0, 2, 7], dtype=np.int64)
        loads, unplaced = _waterfill(initial, 8, cap=7)
        assert unplaced == 0
        assert loads.sum() == initial.sum() + 8
        assert loads.max() <= 7
        # The fill levels the valleys first.
        assert loads[1] >= 5

    def test_waterfill_overflow_reports_unplaced(self):
        initial = np.array([3, 3], dtype=np.int64)
        loads, unplaced = _waterfill(initial, 10, cap=4)
        assert unplaced == 8
        assert np.array_equal(loads, np.array([4, 4]))

    def test_waterfill_ignores_overfull_bins(self):
        initial = np.array([9, 0], dtype=np.int64)
        loads, unplaced = _waterfill(initial, 4, cap=4)
        assert np.array_equal(loads, np.array([9, 4]))
        assert unplaced == 0

    def test_combined_dispatches_trivial_for_tiny_n(self):
        p = dynamic_combined(
            100_000, 3,
            initial_loads=np.zeros(3, dtype=np.int64),
            seed=0,
        )
        assert p.extra["branch"] == "trivial"
        assert p.unplaced == 0
        assert p.loads.max() - p.loads.min() <= 1

    def test_combined_dispatches_heavy_otherwise(self):
        p = dynamic_combined(
            4000, 32, initial_loads=np.zeros(32, dtype=np.int64), seed=0
        )
        assert p.extra["branch"] == "heavy"

    def test_initial_loads_shape_validated(self):
        for adapter in (dynamic_heavy, dynamic_combined):
            with pytest.raises(ValueError, match="shape"):
                adapter(
                    10, 4, initial_loads=np.zeros(3, dtype=np.int64),
                    seed=0,
                )

    def test_placement_validation(self):
        with pytest.raises(ValueError, match=">= 0"):
            DynamicPlacement(
                loads=np.zeros(2),
                placed=-1,
                unplaced=0,
                rounds=0,
                total_messages=0,
            )


class TestDynamicResult:
    def _result(self):
        return run_dynamic("heavy", 4000, 32, seed=21, epochs=4)

    def test_vectors_aligned(self):
        res = self._result()
        assert res.gaps.shape == (5,)
        assert res.messages.shape == (5,)
        assert res.total_messages == int(res.messages.sum())
        assert res.churn_messages == int(res.messages[1:].sum())

    def test_describe_mentions_regime(self):
        res = self._result()
        text = res.describe()
        assert "heavy [dynamic]" in text
        assert "churn=0.1" in text

    def test_to_dict_json_safe(self):
        res = self._result()
        payload = json.loads(json.dumps(res.to_dict()))
        assert payload["schema"] == 1
        assert payload["spec"]["rebalance"] == "incremental"
        assert len(payload["records"]) == 5
        assert payload["records"][0]["epoch"] == 0

    def test_str(self):
        assert "DynamicResult(heavy" in str(self._result())


class TestCli:
    def test_dynamic_subcommand(self, capsys):
        from repro.__main__ import main

        assert (
            main(
                [
                    "dynamic", "heavy", "--m", "4000", "--n", "32",
                    "--epochs", "3", "--seed", "1",
                    "--departures", "fifo",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "heavy [dynamic]" in out
        assert "departures=fifo" in out

    def test_dynamic_json_export(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "dyn.json"
        assert (
            main(
                [
                    "dynamic", "single", "--m", "1000", "--n", "16",
                    "--epochs", "2", "--seed", "1", "--json", str(path),
                ]
            )
            == 0
        )
        payload = json.loads(path.read_text())
        assert payload["algorithm"] == "single"
        assert len(payload["records"]) == 3

    def test_list_shows_dynamic_column(self, capsys):
        from repro.__main__ import main

        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "dynamic" in out
        assert "workload" in out
        assert "trials" in out


class TestBenchmarkDynamic:
    def test_records_and_speedups(self):
        from repro.api.bench import (
            benchmark_dynamic,
            dynamic_speedups,
            render_dynamic_table,
        )

        records = benchmark_dynamic(
            2000, 16, epochs=3, churn=0.2, algorithms=("heavy",)
        )
        assert {r.rebalance for r in records} == {
            "incremental", "full_rerun"
        }
        ratios = dynamic_speedups(records)
        assert ratios["heavy"]["messages"] > 1.0
        table = render_dynamic_table(records)
        assert "incremental" in table and "full_rerun" in table

    def test_non_capable_algorithm_rejected(self):
        from repro.api.bench import benchmark_dynamic

        with pytest.raises(ValueError, match="dynamic"):
            benchmark_dynamic(
                1000, 16, epochs=2, algorithms=("greedy",)
            )


class TestExperimentD1:
    def test_registered_with_docstring(self):
        from repro.experiments.registry import EXPERIMENTS

        assert "D1" in EXPERIMENTS
        assert EXPERIMENTS["D1"].__doc__
