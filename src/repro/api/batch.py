"""Batch execution on top of :func:`repro.api.dispatch.allocate`.

Two entry points:

* :func:`allocate_many` — repeat one instance across independent
  seed-spawned RNG streams (the numpy ``SeedSequence.spawn`` idiom, so
  repetitions are statistically independent yet exactly reproducible
  from one root seed);
* :func:`sweep` — run a grid of ``(m, n)`` points, each repeated, with
  per-run spawned streams.

Both take ``workers=`` for optional process parallelism: the CPU-bound
numpy simulations cannot share a core under the GIL, so fan-out goes
through the process-pool machinery of
:mod:`repro.experiments.parallel` (imported lazily to keep the api
package import-light).  Results come back in task order either way, so
``workers`` never changes the values, only the wall clock.
"""

from __future__ import annotations

from typing import Any, Iterable, Optional, Sequence, Union

import numpy as np

from repro.api.dispatch import allocate

__all__ = ["allocate_many", "spawn_seeds", "sweep"]

SweepPoint = Union[tuple[int, int], dict[str, Any]]


def spawn_seeds(seed, count: int) -> list[np.random.SeedSequence]:
    """``count`` independent child seeds from one root seed.

    Children are spawned from a :class:`numpy.random.SeedSequence`, so
    streams are independent even for adjacent root seeds, and the whole
    batch replays exactly from the root.  Accepts the package-wide seed
    forms (int, None, SeedSequence, Generator); a Generator is frozen
    into a root entropy value, mirroring
    :class:`repro.utils.seeding.RngFactory`.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if isinstance(seed, np.random.Generator):
        seed = int(seed.integers(0, 2**63, dtype=np.int64))
    root = (
        seed
        if isinstance(seed, np.random.SeedSequence)
        else np.random.SeedSequence(seed)
    )
    return root.spawn(count)


def _run_tasks(tasks: list[tuple], workers: Optional[int]) -> list:
    if workers is not None and workers > 1 and len(tasks) > 1:
        from repro.experiments.parallel import allocate_batch

        return allocate_batch(tasks, workers=workers)
    return [
        allocate(algorithm, m, n, seed=s, mode=mode, **options)
        for algorithm, m, n, s, mode, options in tasks
    ]


def allocate_many(
    algorithm: str,
    m: int,
    n: int,
    *,
    repeats: int,
    seed=None,
    mode: str = "auto",
    workers: Optional[int] = None,
    **options: Any,
):
    """Run ``algorithm`` ``repeats`` times with independent streams.

    Parameters
    ----------
    algorithm, m, n, mode, options:
        As for :func:`~repro.api.dispatch.allocate`.
    repeats:
        Number of independent runs (must be >= 1).
    seed:
        Root seed; each run gets its own spawned child stream, so runs
        are independent but the whole batch replays exactly.
    workers:
        ``None``/``1`` runs in-process; ``>= 2`` fans out over worker
        processes via :mod:`repro.experiments.parallel`.

    Notes
    -----
    ``workload=`` (a :class:`repro.workloads.Workload` or spec string)
    passes through ``options`` into :func:`~repro.api.dispatch.allocate`
    per run; because each run's stream is spawned from the root seed,
    results are identical for any ``workers`` count, workload or not.

    Returns
    -------
    list[AllocationResult]
        In repeat order; ``extra["api"]["repeat"]`` records the index.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    children = spawn_seeds(seed, repeats)
    tasks = [
        (algorithm, m, n, child, mode, options) for child in children
    ]
    results = _run_tasks(tasks, workers)
    for i, result in enumerate(results):
        result.extra["api"]["repeat"] = i
    return results


def _point_to_task(
    algorithm: str,
    point: SweepPoint,
    child: np.random.SeedSequence,
    mode: str,
    common: dict[str, Any],
) -> tuple:
    if isinstance(point, dict):
        merged = dict(common)
        merged.update(point)
        try:
            m = merged.pop("m")
            n = merged.pop("n")
        except KeyError as exc:
            raise ValueError(
                f"sweep point {point!r} must provide 'm' and 'n'"
            ) from exc
        point_mode = merged.pop("mode", mode)
        return (algorithm, m, n, child, point_mode, merged)
    m, n = point
    return (algorithm, m, n, child, mode, dict(common))


def sweep(
    algorithm: str,
    points: Iterable[SweepPoint] | Sequence[SweepPoint],
    *,
    repeats: int = 1,
    seed=None,
    mode: str = "auto",
    workers: Optional[int] = None,
    **options: Any,
):
    """Run a parameter sweep: every point, ``repeats`` times each.

    Parameters
    ----------
    algorithm:
        Registry name or alias.
    points:
        Iterable of instance points: ``(m, n)`` tuples, or dicts with
        ``m``/``n`` plus per-point option overrides (a dict may also
        override ``mode``).
    repeats:
        Independent runs per point.
    seed:
        Root seed; every (point, repeat) cell gets its own spawned
        stream, so cells are mutually independent and the whole sweep
        replays from the root.
    workers:
        Optional process fan-out, as in :func:`allocate_many`.
    options:
        Options common to every point (per-point dicts override).

    Returns
    -------
    list[AllocationResult]
        Flat, ordered point-major then repeat; each result's
        ``extra["api"]`` records ``point`` and ``repeat`` indices.
        Persist with :func:`repro.experiments.export.results_to_json`.
    """
    if repeats < 1:
        raise ValueError(f"repeats must be >= 1, got {repeats}")
    point_list = list(points)
    if not point_list:
        raise ValueError("sweep needs at least one point")
    children = spawn_seeds(seed, len(point_list) * repeats)
    tasks = []
    for p_idx, point in enumerate(point_list):
        for r_idx in range(repeats):
            child = children[p_idx * repeats + r_idx]
            tasks.append(_point_to_task(algorithm, point, child, mode, options))
    results = _run_tasks(tasks, workers)
    for i, result in enumerate(results):
        result.extra["api"]["point"] = i // repeats
        result.extra["api"]["repeat"] = i % repeats
    return results
