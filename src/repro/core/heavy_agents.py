"""Object-level (engine-mode) implementation of ``A_heavy``.

This is the reference semantics: explicit :class:`BallAgent` /
:class:`BinAgent` subclasses running on
:class:`repro.simulation.engine.SyncEngine` with symmetric routing and
adversarial port numbering, exactly as the model of Section 3 demands.
The vectorized paths in :mod:`repro.core.heavy` are validated against
this implementation in the test suite.

Engine mode is ``O(m)`` Python objects per round; use for ``m`` up to
~10^5.
"""

from __future__ import annotations

from typing import Optional, Sequence

import numpy as np

from repro.core.thresholds import PaperSchedule, ThresholdSchedule
from repro.light.lw16 import tower_schedule
from repro.light.virtual import VirtualBinMap
from repro.result import AllocationResult
from repro.simulation.agents import BallAgent, BinAgent
from repro.simulation.engine import EngineConfig, SyncEngine
from repro.simulation.messages import Message, MessageKind
from repro.utils.logstar import log_star
from repro.utils.seeding import RngFactory
from repro.utils.validation import ensure_m_n

__all__ = [
    "ThresholdBallAgent",
    "ThresholdBinAgent",
    "LightBallAgent",
    "LightBinAgent",
    "run_heavy_engine",
    "run_light_engine",
]


class ThresholdBallAgent(BallAgent):
    """Phase-1 ball: one uniform request per round; commit on accept."""

    def choose_requests(self, round_no: int, n_bins: int) -> Sequence[int]:
        return [int(self.rng.integers(0, n_bins))]

    def receive_replies(
        self, round_no: int, replies: Sequence[Message]
    ) -> Optional[int]:
        for msg in replies:
            if msg.kind is MessageKind.ACCEPT:
                return msg.bin
        return None


class ThresholdBinAgent(BinAgent):
    """Phase-1 bin: accepts up to ``T_i - load`` requests in port order.

    Port order is adversarially shuffled by the engine, so accepting a
    prefix is the paper's "chosen arbitrarily among all received
    requests".
    """

    def __init__(
        self, index: int, rng: np.random.Generator, schedule: ThresholdSchedule
    ) -> None:
        super().__init__(index, rng)
        self.schedule = schedule
        self._current_threshold = 0

    def on_round_start(self, round_no: int) -> None:
        self._current_threshold = self.schedule.threshold(round_no)

    def respond(
        self, round_no: int, requests: Sequence[Message]
    ) -> Sequence[int]:
        capacity = max(0, self._current_threshold - self.load)
        return list(range(min(capacity, len(requests))))


class LightBallAgent(BallAgent):
    """Phase-2 ball: contacts ``k_r`` bins on the tower schedule.

    The round counter is local to the phase (the agent counts its own
    active rounds), so the agent works regardless of the engine's global
    round numbering.
    """

    def __init__(
        self, index: int, rng: np.random.Generator, *, max_contacts: int = 64
    ) -> None:
        super().__init__(index, rng)
        self.max_contacts = max_contacts
        self._phase_round = 0

    def choose_requests(self, round_no: int, n_bins: int) -> Sequence[int]:
        k = tower_schedule(self._phase_round, min(self.max_contacts, n_bins))
        self._phase_round += 1
        return [int(b) for b in self.rng.integers(0, n_bins, size=k)]

    def receive_replies(
        self, round_no: int, replies: Sequence[Message]
    ) -> Optional[int]:
        accepts = [m.bin for m in replies if m.kind is MessageKind.ACCEPT]
        if accepts:
            return int(accepts[int(self.rng.integers(0, len(accepts)))])
        return None


class LightBinAgent(BinAgent):
    """Phase-2 bin: residual capacity ``cap - load`` accepts per round."""

    def __init__(
        self, index: int, rng: np.random.Generator, capacity: int = 2
    ) -> None:
        super().__init__(index, rng)
        self.capacity = capacity

    def respond(
        self, round_no: int, requests: Sequence[Message]
    ) -> Sequence[int]:
        residual = max(0, self.capacity - self.load)
        return list(range(min(residual, len(requests))))


def _make_engine(
    n_balls: int,
    n_bins: int,
    factory: RngFactory,
    ball_ctor,
    bin_ctor,
    *,
    max_rounds: int,
) -> SyncEngine:
    balls = [ball_ctor(i, factory.stream("ball", i)) for i in range(n_balls)]
    bins = [bin_ctor(j, factory.stream("bin", j)) for j in range(n_bins)]
    return SyncEngine(
        balls,
        bins,
        config=EngineConfig(symmetric=True, max_rounds=max_rounds),
        rng_factory=factory.child_factory("engine"),
    )


def run_light_engine(
    n_balls: int,
    n_bins: int,
    *,
    seed=None,
    capacity: int = 2,
    max_rounds: Optional[int] = None,
):
    """Engine-mode ``A_light`` on its own bin space; returns the raw
    :class:`~repro.simulation.engine.EngineOutcome`."""
    factory = RngFactory(seed)
    budget = max_rounds if max_rounds is not None else log_star(n_bins) + 10
    engine = _make_engine(
        n_balls,
        n_bins,
        factory,
        lambda i, rng: LightBallAgent(i, rng),
        lambda j, rng: LightBinAgent(j, rng, capacity=capacity),
        max_rounds=budget,
    )
    return engine.run()


def run_heavy_engine(
    m: int,
    n: int,
    *,
    seed=None,
    config=None,
    schedule: Optional[ThresholdSchedule] = None,
    handoff: bool = True,
) -> AllocationResult:
    """Engine-mode ``A_heavy``: phase 1 threshold agents, then phase 2
    light agents over virtual bins, each on a fresh engine.

    The phase split mirrors the vectorized implementation so the two can
    be compared round-for-round.
    """
    from repro.core.heavy import HeavyConfig  # local import to avoid cycle

    m, n = ensure_m_n(m, n, require_heavy=True)
    cfg = config or HeavyConfig()
    factory = RngFactory(seed)
    sched = schedule or PaperSchedule(m, n, stop_factor=cfg.stop_factor)
    planned = sched.phase1_rounds()
    phase1_budget = planned if planned is not None else cfg.max_rounds

    engine = _make_engine(
        m,
        n,
        factory.child_factory("phase1"),
        lambda i, rng: ThresholdBallAgent(i, rng),
        lambda j, rng: ThresholdBinAgent(j, rng, sched),
        max_rounds=phase1_budget,
    )
    outcome1 = engine.run()
    loads = outcome1.loads.copy()
    rounds = outcome1.rounds
    total_messages = outcome1.counter.total
    remaining = outcome1.unallocated
    extra = {
        "phase1_rounds": outcome1.rounds,
        "phase1_remaining": remaining,
        "phase2_rounds": 0,
        "light_used_fallback": False,
    }

    unallocated = remaining
    if handoff and remaining > 0:
        vmap = VirtualBinMap.for_balls(remaining, n, cfg.light.capacity)
        light_budget = log_star(vmap.n_virtual) + cfg.light.round_budget_slack
        engine2 = _make_engine(
            remaining,
            vmap.n_virtual,
            factory.child_factory("phase2"),
            lambda i, rng: LightBallAgent(
                i, rng, max_contacts=cfg.light.max_contacts
            ),
            lambda j, rng: LightBinAgent(j, rng, capacity=cfg.light.capacity),
            max_rounds=light_budget,
        )
        outcome2 = engine2.run()
        virtual_loads = outcome2.loads
        if not outcome2.complete:
            # Deterministic sweep fallback, as in the vectorized path.
            residual = cfg.light.capacity - virtual_loads
            slots = np.repeat(np.arange(vmap.n_virtual), residual)
            need = outcome2.unallocated
            virtual_loads = virtual_loads.copy()
            np.add.at(virtual_loads, slots[:need], 1)
            total_messages += need
            extra["light_used_fallback"] = True
        loads += vmap.fold_loads(virtual_loads)
        rounds += outcome2.rounds
        total_messages += outcome2.counter.total
        extra["phase2_rounds"] = outcome2.rounds
        extra["virtual_factor"] = vmap.factor
        unallocated = 0

    return AllocationResult(
        algorithm="heavy[engine]",
        m=m,
        n=n,
        loads=loads,
        rounds=rounds,
        metrics=outcome1.metrics,
        messages=outcome1.counter,
        total_messages=total_messages,
        complete=unallocated == 0,
        unallocated=unallocated,
        seed_entropy=factory.root_entropy,
        extra=extra,
    )
