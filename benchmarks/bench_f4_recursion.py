"""Benchmark + table regeneration for experiment F4 (recursion).

See DESIGN.md §4 for the experiment's claim and parameters; the quick-
scale table is printed under -s, the full-scale run is archived in
EXPERIMENTS.md.
"""

from conftest import bench_experiment


def test_experiment_f4(benchmark):
    bench_experiment(benchmark, "F4")
