"""Virtual-bin reduction for ``A_heavy``'s phase 2.

Section 3 of the paper: after the threshold rounds, ``O(n)`` balls
remain; they are placed by running ``A_light`` where *each real bin
simulates g virtual bins*.  A virtual max load of 2 then adds at most
``2 g`` balls per real bin — the ``O(1)`` additive term of Theorem 1.

:class:`VirtualBinMap` is the index arithmetic (virtual bin ``v`` lives
in real bin ``v mod n``; using the residue rather than ``v // g`` keeps
the map correct when the last real bin simulates fewer virtual bins) and
:func:`run_light_on_virtual_bins` is the composed operation used by
``A_heavy``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.light.lw16 import LightConfig, LightOutcome, run_light
from repro.simulation.metrics import RunMetrics
from repro.utils.validation import check_positive_int

__all__ = ["VirtualBinMap", "run_light_on_virtual_bins"]


@dataclass(frozen=True)
class VirtualBinMap:
    """Mapping between ``n`` real bins and ``g * n`` virtual bins.

    Virtual bin ``v`` maps to real bin ``v % n``, so every real bin
    simulates exactly ``g`` virtual bins and messages addressed to a
    uniformly random virtual bin land at a uniformly random real bin —
    preserving the symmetric model (a real bin can demultiplex by
    virtual index carried in the message payload).
    """

    n_real: int
    factor: int

    def __post_init__(self) -> None:
        check_positive_int(self.n_real, "n_real")
        check_positive_int(self.factor, "factor")

    @property
    def n_virtual(self) -> int:
        return self.n_real * self.factor

    def to_real(self, virtual: np.ndarray) -> np.ndarray:
        """Vectorized virtual -> real index map."""
        virtual = np.asarray(virtual)
        if virtual.size and (virtual.min() < 0 or virtual.max() >= self.n_virtual):
            raise ValueError("virtual index out of range")
        return virtual % self.n_real

    def fold_loads(self, virtual_loads: np.ndarray) -> np.ndarray:
        """Sum virtual-bin loads into real-bin loads."""
        virtual_loads = np.asarray(virtual_loads)
        if virtual_loads.shape != (self.n_virtual,):
            raise ValueError(
                f"expected {self.n_virtual} virtual loads, got shape "
                f"{virtual_loads.shape}"
            )
        return virtual_loads.reshape(self.factor, self.n_real).sum(axis=0)

    @staticmethod
    def for_balls(n_balls: int, n_real: int, capacity: int = 2) -> "VirtualBinMap":
        """Smallest factor ``g`` such that ``capacity * g * n >= n_balls``
        with one unit of slack (the protocol needs headroom to finish in
        ``log* n`` rounds, matching the paper's ``g(c)`` constant)."""
        check_positive_int(n_real, "n_real")
        if n_balls <= 0:
            return VirtualBinMap(n_real=n_real, factor=1)
        needed = math.ceil(n_balls / (capacity * n_real))
        return VirtualBinMap(n_real=n_real, factor=max(1, needed) + 1)


def run_light_on_virtual_bins(
    n_balls: int,
    n_real_bins: int,
    *,
    seed=None,
    config: LightConfig = LightConfig(),
    factor: int | None = None,
) -> tuple[np.ndarray, LightOutcome, VirtualBinMap]:
    """Run ``A_light`` over virtual bins and fold the result.

    Returns ``(real_loads, light_outcome, vmap)`` where ``real_loads``
    has length ``n_real_bins`` and sums to ``n_balls``.  The outcome's
    ``assignment`` refers to *virtual* bins; use ``vmap.to_real`` for
    real indices.
    """
    n_real_bins = check_positive_int(n_real_bins, "n_real_bins")
    if n_balls < 0:
        raise ValueError(f"n_balls must be >= 0, got {n_balls}")
    if factor is None:
        vmap = VirtualBinMap.for_balls(n_balls, n_real_bins, config.capacity)
    else:
        vmap = VirtualBinMap(n_real=n_real_bins, factor=factor)
        if config.capacity * vmap.n_virtual < n_balls:
            raise ValueError(
                f"factor {factor} gives capacity "
                f"{config.capacity * vmap.n_virtual} < {n_balls} balls"
            )
    if n_balls == 0:
        outcome = LightOutcome(
            loads=np.zeros(vmap.n_virtual, dtype=np.int64),
            assignment=np.zeros(0, dtype=np.int64),
            rounds=0,
            total_messages=0,
            metrics=RunMetrics(0, vmap.n_virtual),
            used_fallback=False,
            ball_messages=np.zeros(0, dtype=np.int64),
        )
        return np.zeros(n_real_bins, dtype=np.int64), outcome, vmap
    outcome = run_light(n_balls, vmap.n_virtual, seed=seed, config=config)
    real_loads = vmap.fold_loads(outcome.loads)
    return real_loads, outcome, vmap
