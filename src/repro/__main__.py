"""Command-line interface: run any registered allocator from the shell.

Subcommands are generated from the allocator registry
(:mod:`repro.api`), so every algorithm — paper, baseline, extension —
gets a CLI entry with the same shape, ``--mode`` choices that exactly
match what the algorithm supports, and numeric option flags derived
from the function signature.  Usage::

    python -m repro list                             # registry + capabilities
    python -m repro heavy --m 1000000 --n 1000 --seed 7
    python -m repro heavy --m 1000000000000 --n 1024 --mode aggregate
    python -m repro heavy --m 1000000 --n 1000 --workload zipf:1.1
    python -m repro greedy --m 100000 --n 1000 --d 2
    python -m repro faulty --m 100000 --n 256 --crash-prob 0.01
    python -m repro replicate heavy --m 100000 --n 256 --trials 256
    python -m repro dynamic heavy --m 100000 --n 256 --epochs 32 --churn 0.1
    python -m repro serve heavy --m 100000 --n 256 --simulate --gap-slo 8
    python -m repro compare --m 1000000 --n 1000     # side-by-side table
    python -m repro bench --m 100000 --n 256 --trials 256  # replication bench
    python -m repro experiments T2                   # alias for
                                                     # python -m repro.experiments

Prints the :meth:`~repro.result.AllocationResult.describe` block (and
for ``compare`` a one-row-per-algorithm table).
"""

from __future__ import annotations

import argparse
import time

from repro.api import allocate, get_spec, list_allocators

__all__ = ["main"]


def _positive_int(text: str) -> int:
    value = int(text)
    if value < 1:
        raise argparse.ArgumentTypeError("must be >= 1")
    return value


def _add_common(parser: argparse.ArgumentParser) -> None:
    from repro.fastpath.backend import available_backends

    parser.add_argument("--m", type=int, required=True, help="number of balls")
    parser.add_argument("--n", type=int, required=True, help="number of bins")
    parser.add_argument("--seed", type=int, default=None)
    parser.add_argument(
        "--backend",
        choices=available_backends(),
        default=None,
        help="kernel backend (bitwise-identical; default: "
        "REPRO_KERNEL_BACKEND env or 'fused')",
    )
    parser.add_argument(
        "--telemetry",
        type=str,
        default=None,
        metavar="PATH",
        dest="telemetry_path",
        help="record spans + metrics and write them as Chrome-trace "
        "JSON to PATH (loads in Perfetto; bitwise-identical results, "
        "see docs/observability.md)",
    )


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Parallel balanced allocations (Lenzen-Parter-Yogev, "
        "SPAA 2019) — reproduction CLI.",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="enable repro.* structured logging on stderr "
        "(-v: INFO, -vv: DEBUG; default: silent)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser(
        "list", help="list registered allocators and their capabilities"
    )

    for spec in list_allocators():
        help_text = spec.summary
        if spec.paper_ref:
            help_text += f" ({spec.paper_ref})"
        p = sub.add_parser(spec.name, help=help_text)
        _add_common(p)
        if spec.modes:
            p.add_argument(
                "--mode",
                choices=("auto",) + spec.modes,
                default="auto",
                help="execution mode (auto picks the fastest eligible)",
            )
        if spec.workload_capable:
            p.add_argument(
                "--workload",
                type=str,
                default=None,
                help="workload spec, e.g. zipf:1.1, hotset:0.1:0.5, "
                "zipf:1.2+geomw:0.5+propcap (see docs/workloads.md)",
            )
        for option, (typ, default) in sorted(spec.cli_options.items()):
            p.add_argument(
                f"--{option.replace('_', '-')}",
                dest=option,
                type=typ,
                default=default,
                help=f"{spec.name} option (default: {default})",
            )

    p_rep = sub.add_parser(
        "replicate",
        help="run many seeded replications in one trial-batched pass "
        "and print the distributional summary",
    )
    p_rep.add_argument(
        "algorithm",
        type=str,
        help="registry name or alias (see 'list'); trial_batched specs "
        "run vectorized, others fall back to the sequential loop",
    )
    _add_common(p_rep)
    p_rep.add_argument(
        "--trials",
        type=_positive_int,
        default=256,
        help="independent replications (default: 256)",
    )
    p_rep.add_argument(
        "--workload",
        type=str,
        default=None,
        help="workload spec applied to every trial (e.g. zipf:1.1)",
    )
    p_rep.add_argument(
        "--sequential",
        action="store_true",
        help="force the sequential per-seed loop (identical values; "
        "for verification/timing)",
    )
    p_rep.add_argument(
        "--workers",
        type=_positive_int,
        default=None,
        help="shard the trial axis across this many processes "
        "(value-identical to --workers 1; default: single process)",
    )
    p_rep.add_argument(
        "--json",
        type=str,
        default=None,
        dest="json_path",
        help="also write the full per-trial record as JSON to this path",
    )

    p_dyn = sub.add_parser(
        "dynamic",
        help="run allocation under churn: epochs of departures and "
        "arrivals with incremental rebalancing",
    )
    p_dyn.add_argument(
        "algorithm",
        type=str,
        help="a dynamic-capable registry name or alias (see the "
        "'dynamic' column of 'list')",
    )
    _add_common(p_dyn)
    p_dyn.add_argument(
        "--epochs",
        type=_positive_int,
        default=16,
        help="churn epochs after the initial fill (default: 16)",
    )
    p_dyn.add_argument(
        "--churn",
        type=float,
        default=0.1,
        help="per-epoch turnover as a fraction of m (default: 0.1)",
    )
    p_dyn.add_argument(
        "--arrivals",
        choices=("fixed", "poisson", "bursty", "hotset_adversary"),
        default="fixed",
        help="arrival process (default: fixed); hotset_adversary "
        "targets every cohort at the currently hottest bins",
    )
    p_dyn.add_argument(
        "--departures",
        choices=("uniform", "fifo", "hotset", "greedy_adversary"),
        default="uniform",
        help="departure policy (default: uniform); greedy_adversary "
        "drains the lightest bins to maximize the gap",
    )
    p_dyn.add_argument(
        "--hot-frac",
        type=float,
        default=0.1,
        help="fraction of bins the hotset/hotset_adversary policies "
        "concentrate on (default: 0.1)",
    )
    p_dyn.add_argument(
        "--faults",
        type=str,
        default=None,
        help="fault model, e.g. 'bin_fail=0.05,recover=0.2,loss=0.01' "
        "(default: no faults)",
    )
    p_dyn.add_argument(
        "--time-workload",
        type=str,
        default=None,
        help="time-varying workload: 'drift:S0:S1' (Zipf skew drift) "
        "or 'flash:EVERY:FACTOR[:BIN]' (flash crowds); mutually "
        "exclusive with --workload",
    )
    p_dyn.add_argument(
        "--rebalance",
        choices=("incremental", "full_rerun"),
        default="incremental",
        help="rebalance strategy (default: incremental)",
    )
    p_dyn.add_argument(
        "--mode",
        choices=("perball", "aggregate"),
        default="aggregate",
        help="kernel granularity of every placement (default: aggregate)",
    )
    p_dyn.add_argument(
        "--workload",
        type=str,
        default=None,
        help="workload spec the arriving cohorts are drawn from "
        "(unit weights only, e.g. zipf:1.1+propcap)",
    )
    p_dyn.add_argument(
        "--json",
        type=str,
        default=None,
        dest="json_path",
        help="also write the full per-epoch record as JSON to this path",
    )

    p_srv = sub.add_parser(
        "serve",
        help="run the continuous allocation service against a "
        "simulated open-loop arrival stream (micro-batched "
        "incremental rebalancing, admission control)",
    )
    p_srv.add_argument(
        "algorithm",
        type=str,
        help="a dynamic-capable registry name or alias (see the "
        "'dynamic' column of 'list')",
    )
    _add_common(p_srv)
    p_srv.add_argument(
        "--simulate",
        action="store_true",
        help="drive the service with the deterministic simulated-clock "
        "open-loop driver (required: the only built-in driver; live "
        "asyncio ingest is available programmatically via "
        "repro.service.serve_queue)",
    )
    p_srv.add_argument(
        "--epochs",
        type=_positive_int,
        default=16,
        help="simulated churn intervals after the fill (default: 16)",
    )
    p_srv.add_argument(
        "--churn",
        type=float,
        default=0.1,
        help="per-interval turnover as a fraction of m (default: 0.1)",
    )
    p_srv.add_argument(
        "--arrivals",
        choices=("fixed", "bursty"),
        default="bursty",
        help="deterministic arrival process (default: bursty)",
    )
    p_srv.add_argument(
        "--burst-every",
        type=int,
        default=4,
        help="bursty arrivals: cycle length (default: 4)",
    )
    p_srv.add_argument(
        "--burst-factor",
        type=float,
        default=4.0,
        help="bursty arrivals: burst multiplier (default: 4.0)",
    )
    p_srv.add_argument(
        "--departures",
        choices=("uniform", "fifo", "hotset", "greedy_adversary"),
        default="uniform",
        help="departure policy (default: uniform); greedy_adversary "
        "drains the lightest bins to maximize the gap",
    )
    p_srv.add_argument(
        "--hot-frac",
        type=float,
        default=0.1,
        help="fraction of bins the hotset departure policy "
        "concentrates on (default: 0.1)",
    )
    p_srv.add_argument(
        "--faults",
        type=str,
        default=None,
        help="fault model, e.g. 'bin_fail=0.05,recover=0.2,loss=0.01' "
        "(default: no faults)",
    )
    p_srv.add_argument(
        "--max-batch",
        type=_positive_int,
        default=None,
        help="micro-batch count watermark in balls (default: sized to "
        "the largest burst — one batch per interval)",
    )
    p_srv.add_argument(
        "--max-wait",
        type=float,
        default=1.0,
        help="micro-batch age watermark in simulated seconds "
        "(default: 1.0)",
    )
    p_srv.add_argument(
        "--max-queue",
        type=_positive_int,
        default=None,
        help="ingest queue capacity in balls (default: fits the fill "
        "and two nominal batches)",
    )
    p_srv.add_argument(
        "--gap-slo",
        type=float,
        default=None,
        help="admission gap SLO: defer (widen batches) above it, shed "
        "past the headroom (default: no gap controller)",
    )
    p_srv.add_argument(
        "--workload",
        type=str,
        default=None,
        help="workload spec the arriving cohorts are drawn from "
        "(unit weights only, e.g. zipf:1.1+propcap)",
    )
    p_srv.add_argument(
        "--json",
        type=str,
        default=None,
        dest="json_path",
        help="also write the full per-batch record as JSON to this path",
    )
    p_srv.add_argument(
        "--metrics-out",
        type=str,
        default=None,
        dest="metrics_out",
        metavar="PATH",
        help="write the final ServiceStats snapshot in Prometheus text "
        "exposition format to PATH",
    )

    p_compare = sub.add_parser(
        "compare", help="run all parallel algorithms side by side"
    )
    _add_common(p_compare)

    p_bench = sub.add_parser(
        "bench",
        help="time every registered allocator (kernel backends) at one "
        "instance size",
    )
    _add_common(p_bench)
    p_bench.add_argument(
        "--seeds",
        type=_positive_int,
        default=1,
        help="number of pinned seeds per (algorithm, mode), counting up "
        "from --seed (default: 1 run of seed 0)",
    )
    p_bench.add_argument(
        "--algorithms",
        type=str,
        default=None,
        help="comma-separated registry names/aliases (default: all)",
    )
    p_bench.add_argument(
        "--include-engine",
        action="store_true",
        help="also time the object-level engine modes (slow)",
    )
    p_bench.add_argument(
        "--include-sequential",
        action="store_true",
        help="also time sequential baselines (greedy[d])",
    )
    p_bench.add_argument(
        "--kernel-only",
        action="store_true",
        help="restrict to kernel-backed allocators",
    )
    p_bench.add_argument(
        "--workload",
        type=str,
        default=None,
        help="bench under a workload spec (e.g. zipf:1.1); restricts "
        "to workload-capable allocators",
    )
    p_bench.add_argument(
        "--trials",
        type=_positive_int,
        default=None,
        help="switch to replication benchmarking: time trials-many "
        "seeded replications per trial_batched allocator, batched vs "
        "the sequential loop",
    )
    p_bench.add_argument(
        "--skip-sequential",
        action="store_true",
        help="with --trials: skip the (slow) sequential-loop baseline",
    )
    p_bench.add_argument(
        "--json",
        type=str,
        default=None,
        dest="json_path",
        help="also write the records as JSON to this path",
    )

    p_exp = sub.add_parser("experiments", help="experiment harness passthrough")
    p_exp.add_argument("args", nargs=argparse.REMAINDER)

    return parser


#: ``list`` capability columns: (header, spec flag attribute, the
#: ``AllocatorSpec.capabilities()`` string the column replaces — kept
#: here so the "other" column derives its exclusions from this table).
_CAPABILITY_COLUMNS = (
    ("kernel", "kernel_backed", "kernel"),
    ("workload", "workload_capable", "workload"),
    ("trials", "trial_batched", "trial_batched"),
    ("dynamic", "dynamic_capable", "dynamic"),
)


def _list_registry() -> None:
    specs = list_allocators()
    name_w = max(len(s.name) for s in specs)
    mode_w = max(len(",".join(s.modes)) or 1 for s in specs)
    # One yes/no column per engine capability (kernel backend, workload
    # scenarios, trial batching, dynamic placement); the remaining
    # behavioral flags stay a comma-joined column.
    columned = {cap for _, _, cap in _CAPABILITY_COLUMNS}
    other_caps = {
        s.name: [c for c in s.capabilities() if c not in columned]
        for s in specs
    }
    other_w = max(
        max((len(",".join(v)) for v in other_caps.values()), default=1), 5
    )
    ref_w = max(len(s.paper_ref) or 1 for s in specs)
    cap_headers = "  ".join(
        title for title, _, _ in _CAPABILITY_COLUMNS
    )
    header = (
        f"{'name':{name_w}s}  {'modes':{mode_w}s}  {cap_headers}  "
        f"{'other':{other_w}s}  {'reference':{ref_w}s}  summary"
    )
    print(header)
    print("-" * len(header))
    for spec in specs:
        modes = ",".join(spec.modes) or "-"
        marks = "  ".join(
            f"{('yes' if getattr(spec, attr) else '-'):>{len(title)}s}"
            for title, attr, _ in _CAPABILITY_COLUMNS
        )
        other = ",".join(other_caps[spec.name]) or "-"
        print(
            f"{spec.name:{name_w}s}  {modes:{mode_w}s}  {marks}  "
            f"{other:{other_w}s}  {spec.paper_ref:{ref_w}s}  {spec.summary}"
        )
        if spec.aliases:
            print(f"{'':{name_w}s}  aliases: {', '.join(spec.aliases)}")


def _run_allocator(args: argparse.Namespace):
    spec = get_spec(args.command)
    options = {
        option: getattr(args, option)
        for option in spec.cli_options
        if getattr(args, option) is not None
    }
    return allocate(
        spec.name,
        args.m,
        args.n,
        seed=args.seed,
        mode=getattr(args, "mode", "auto"),
        workload=getattr(args, "workload", None),
        backend=args.backend,
        **options,
    )


def _compare(args: argparse.Namespace) -> None:
    rows = (
        ("single-choice", "single", {}),
        ("stemann", "stemann", {}),
        ("batched[2]", "batched", {"d": 2}),
        ("heavy (Thm 1)", "heavy", {}),
        ("asymmetric (Thm 3)", "asymmetric", {}),
    )
    header = (
        f"{'algorithm':20s} {'max load':>10s} {'gap':>8s} "
        f"{'rounds':>7s} {'messages':>12s} {'time':>8s}"
    )
    print(header)
    print("-" * len(header))
    for label, name, options in rows:
        start = time.perf_counter()
        res = allocate(
            name,
            args.m,
            args.n,
            seed=args.seed,
            backend=args.backend,
            **options,
        )
        elapsed = time.perf_counter() - start
        print(
            f"{label:20s} {res.max_load:10,d} {res.gap:+8.1f} "
            f"{res.rounds:7d} {res.total_messages:12,d} {elapsed:7.2f}s"
        )


def _replicate(args: argparse.Namespace) -> None:
    import json

    from repro.api import replicate

    start = time.perf_counter()
    rep = replicate(
        args.algorithm,
        args.m,
        args.n,
        trials=args.trials,
        seed=args.seed,
        workload=args.workload,
        trial_batched=False if args.sequential else None,
        workers=args.workers,
        backend=args.backend,
    )
    elapsed = time.perf_counter() - start
    print(rep.describe())
    print(f"wall time     : {elapsed:.2f}s "
          f"({args.trials / elapsed:,.0f} trials/s)")
    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(rep.to_dict(), fh, indent=2)
        print(f"wrote {args.trials}-trial record to {args.json_path}")


def _dynamic(args: argparse.Namespace) -> None:
    import json

    from repro.core.faulty import parse_faults
    from repro.dynamic import run_dynamic

    try:
        fault_model = parse_faults(args.faults)
    except ValueError as exc:
        raise SystemExit(f"python -m repro dynamic: error: {exc}")
    start = time.perf_counter()
    res = run_dynamic(
        args.algorithm,
        args.m,
        args.n,
        seed=args.seed,
        epochs=args.epochs,
        churn=args.churn,
        arrivals=args.arrivals,
        departures=args.departures,
        hot_frac=args.hot_frac,
        rebalance=args.rebalance,
        workload=args.workload,
        time_workload=args.time_workload,
        fault_model=fault_model,
        mode=args.mode,
        backend=args.backend,
    )
    elapsed = time.perf_counter() - start
    print(res.describe())
    print(f"wall time     : {elapsed:.2f}s")
    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(res.to_dict(), fh, indent=2)
        print(
            f"wrote {res.epochs + 1}-epoch record to {args.json_path}"
        )


def _serve(args: argparse.Namespace) -> None:
    import json

    from repro.core.faulty import parse_faults
    from repro.service import AdmissionPolicy, simulate_service

    try:
        fault_model = parse_faults(args.faults)
    except ValueError as exc:
        raise SystemExit(f"python -m repro serve: error: {exc}")
    if not args.simulate:
        raise SystemExit(
            "python -m repro serve: error: --simulate is required (the "
            "CLI ships the deterministic open-loop driver only; live "
            "asyncio ingest is programmatic via repro.service.serve_queue)"
        )
    policy = (
        AdmissionPolicy(gap_slo=args.gap_slo)
        if args.gap_slo is not None
        else None
    )
    report = simulate_service(
        args.algorithm,
        args.m,
        args.n,
        seed=args.seed,
        epochs=args.epochs,
        churn=args.churn,
        arrivals=args.arrivals,
        burst_every=args.burst_every,
        burst_factor=args.burst_factor,
        departures=args.departures,
        hot_frac=args.hot_frac,
        max_batch=args.max_batch,
        max_wait=args.max_wait,
        max_queue=args.max_queue,
        policy=policy,
        workload=args.workload,
        fault_model=fault_model,
        backend=args.backend,
    )
    print(report.describe())
    print(f"wall time     : {report.wall_seconds:.2f}s")
    if args.json_path:
        with open(args.json_path, "w") as fh:
            json.dump(report.to_dict(), fh, indent=2)
        print(
            f"wrote {report.stats.batches}-batch record to {args.json_path}"
        )
    if args.metrics_out:
        from repro.telemetry import stats_to_prometheus

        with open(args.metrics_out, "w") as fh:
            fh.write(stats_to_prometheus(report.stats))
        print(f"wrote Prometheus metrics to {args.metrics_out}")


def _bench_replication(args: argparse.Namespace) -> None:
    from repro.api.bench import (
        benchmark_replication,
        render_replication_table,
    )

    algorithms = (
        [a.strip() for a in args.algorithms.split(",") if a.strip()]
        if args.algorithms
        else None
    )
    try:
        records = benchmark_replication(
            args.m,
            args.n,
            trials=args.trials,
            seed=args.seed if args.seed is not None else 0,
            algorithms=algorithms,
            include_sequential=not args.skip_sequential,
            workload=args.workload,
            backend=args.backend,
        )
    except ValueError as exc:
        raise SystemExit(f"python -m repro bench: error: {exc}")
    print(render_replication_table(records))
    if args.json_path:
        import json

        with open(args.json_path, "w") as fh:
            json.dump([r.to_dict() for r in records], fh, indent=2)
        print(f"wrote {len(records)} records to {args.json_path}")


def _bench(args: argparse.Namespace) -> None:
    from repro.api.bench import benchmark_registry, render_table

    if args.trials is not None:
        _bench_replication(args)
        return
    algorithms = (
        [a.strip() for a in args.algorithms.split(",") if a.strip()]
        if args.algorithms
        else None
    )
    base_seed = args.seed if args.seed is not None else 0
    try:
        records = benchmark_registry(
            args.m,
            args.n,
            seeds=tuple(range(base_seed, base_seed + args.seeds)),
            algorithms=algorithms,
            include_engine=args.include_engine,
            include_sequential=args.include_sequential,
            kernel_only=args.kernel_only,
            workload=args.workload,
            backend=args.backend,
        )
    except ValueError as exc:  # e.g. unknown --algorithms entry
        raise SystemExit(f"python -m repro bench: error: {exc}")
    print(render_table(records))
    if args.json_path:
        import json

        with open(args.json_path, "w") as fh:
            json.dump([r.to_dict() for r in records], fh, indent=2)
        print(f"wrote {len(records)} records to {args.json_path}")


def _dispatch(args: argparse.Namespace) -> int:
    if args.command == "list":
        _list_registry()
        return 0
    if args.command == "replicate":
        _replicate(args)
        return 0
    if args.command == "dynamic":
        _dynamic(args)
        return 0
    if args.command == "serve":
        _serve(args)
        return 0
    if args.command == "compare":
        _compare(args)
        return 0
    if args.command == "bench":
        _bench(args)
        return 0
    start = time.perf_counter()
    result = _run_allocator(args)
    elapsed = time.perf_counter() - start
    print(result.describe())
    print(f"wall time     : {elapsed:.2f}s")
    return 0


def main(argv: list[str] | None = None) -> int:
    args = _build_parser().parse_args(argv)
    from repro.telemetry import configure_logging

    configure_logging(args.verbose)
    if args.command == "experiments":
        from repro.experiments.__main__ import main as exp_main

        return exp_main(args.args)
    telemetry_path = getattr(args, "telemetry_path", None)
    if telemetry_path is None:
        return _dispatch(args)
    from repro.telemetry import Telemetry, use_telemetry

    telemetry = Telemetry()
    with use_telemetry(telemetry):
        code = _dispatch(args)
    telemetry.write(telemetry_path)
    print(
        f"wrote telemetry ({len(telemetry.tracer.events)} trace events, "
        f"{len(telemetry.metrics)} metric series) to {telemetry_path}"
    )
    return code


if __name__ == "__main__":
    raise SystemExit(main())
