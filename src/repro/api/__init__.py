"""Unified allocator API: registry, dispatch, and batch execution.

The package's algorithms register themselves here (see
:func:`register_allocator`); :func:`allocate` runs any of them through
one validated code path, :func:`allocate_many` / :func:`sweep` batch
over seeds and instance grids with independent RNG streams, and
:func:`replicate` runs hundreds of seeded replications of one instance
through the trial-batched kernel engine, returning the distributional
summary (:class:`ReplicationResult`) the paper's w.h.p. claims call
for.

>>> import repro
>>> sorted(s.name for s in repro.list_allocators())[:3]
['asymmetric', 'batched', 'combined']
"""

from repro.api.batch import allocate_many, spawn_seeds, sweep
from repro.api.bench import (
    BenchRecord,
    KernelBenchRecord,
    ReplicationBenchRecord,
    benchmark_engine_reference,
    benchmark_kernels,
    benchmark_registry,
    benchmark_replication,
)
from repro.api.dispatch import AGGREGATE_THRESHOLD, allocate, resolve_mode
from repro.api.replicate import ReplicationResult, replicate
from repro.api.spec import (
    AllocatorSpec,
    allocator_names,
    capability_note,
    capable_allocators,
    get_dynamic,
    get_replicator,
    get_spec,
    list_allocators,
    register_allocator,
    register_dynamic,
    register_replicator,
    resolve_name,
)

__all__ = [
    "AGGREGATE_THRESHOLD",
    "AllocatorSpec",
    "BenchRecord",
    "KernelBenchRecord",
    "ReplicationBenchRecord",
    "ReplicationResult",
    "allocate",
    "allocate_many",
    "allocator_names",
    "benchmark_engine_reference",
    "benchmark_kernels",
    "benchmark_registry",
    "benchmark_replication",
    "capability_note",
    "capable_allocators",
    "get_dynamic",
    "get_replicator",
    "get_spec",
    "list_allocators",
    "register_allocator",
    "register_dynamic",
    "register_replicator",
    "replicate",
    "resolve_mode",
    "resolve_name",
    "spawn_seeds",
    "sweep",
]
