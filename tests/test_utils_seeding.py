"""Tests for repro.utils.seeding."""

import numpy as np
import pytest

from repro.utils.seeding import RngFactory, as_generator, spawn_generators


class TestAsGenerator:
    def test_none_gives_generator(self):
        assert isinstance(as_generator(None), np.random.Generator)

    def test_int_deterministic(self):
        a = as_generator(5).integers(1 << 40)
        b = as_generator(5).integers(1 << 40)
        assert a == b

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen


class TestSpawnGenerators:
    def test_count(self):
        gens = spawn_generators(1, 5)
        assert len(gens) == 5

    def test_zero_count(self):
        assert spawn_generators(1, 0) == []

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            spawn_generators(1, -1)

    def test_deterministic(self):
        a = [g.integers(1 << 40) for g in spawn_generators(9, 3)]
        b = [g.integers(1 << 40) for g in spawn_generators(9, 3)]
        assert a == b

    def test_independent_streams(self):
        g1, g2 = spawn_generators(9, 2)
        x = g1.random(1000)
        y = g2.random(1000)
        assert abs(np.corrcoef(x, y)[0, 1]) < 0.15

    def test_from_generator(self):
        gens = spawn_generators(np.random.default_rng(3), 2)
        assert len(gens) == 2


class TestRngFactory:
    def test_same_key_same_stream(self):
        f1 = RngFactory(7)
        f2 = RngFactory(7)
        a = f1.stream("ball", 12).integers(1 << 40)
        b = f2.stream("ball", 12).integers(1 << 40)
        assert a == b

    def test_different_keys_differ(self):
        f = RngFactory(7)
        a = f.stream("ball", 12).random(100)
        b = f.stream("ball", 13).random(100)
        assert not np.allclose(a, b)

    def test_string_vs_int_keys_disjoint(self):
        f = RngFactory(7)
        a = f.stream("a", 1).random(50)
        b = f.stream("b", 1).random(50)
        assert not np.allclose(a, b)

    def test_child_factory_deterministic(self):
        a = RngFactory(1).child_factory("phase1").stream("x").random(10)
        b = RngFactory(1).child_factory("phase1").stream("x").random(10)
        assert np.allclose(a, b)

    def test_child_factory_independent_of_parent_stream(self):
        f = RngFactory(1)
        a = f.child_factory("sub").stream("x").random(10)
        _ = f.stream("unrelated").random(10)
        b = f.child_factory("sub").stream("x").random(10)
        assert np.allclose(a, b)

    def test_spawn(self):
        f = RngFactory(2)
        gens = f.spawn(3)
        assert len(gens) == 3

    def test_root_entropy_exposed(self):
        f = RngFactory(42)
        assert f.root_entropy == (42,)

    def test_invalid_key_type(self):
        f = RngFactory(1)
        with pytest.raises(TypeError):
            f.stream(3.14)

    def test_generator_seed_frozen(self):
        gen = np.random.default_rng(0)
        f1 = RngFactory(gen)
        # A factory from a generator must be internally deterministic.
        a = f1.stream("k").integers(1 << 30)
        b = f1.stream("k").integers(1 << 30)
        assert a == b


class TestAsSeedSequence:
    """The package-wide root-seed idiom (shared by RngFactory and
    repro.api.spawn_seeds — the fix for the once-duplicated Generator
    freezing in batch.py)."""

    def test_int_and_none_roundtrip(self):
        from repro.utils.seeding import as_seed_sequence

        assert as_seed_sequence(7).entropy == 7
        assert isinstance(
            as_seed_sequence(None), np.random.SeedSequence
        )

    def test_sequence_passthrough(self):
        from repro.utils.seeding import as_seed_sequence

        seq = np.random.SeedSequence(3)
        assert as_seed_sequence(seq) is seq

    def test_generator_freeze_replays_identically_across_calls(self):
        """Regression: a Generator root seed must replay identically —
        equal-state generators freeze to equal roots everywhere the
        idiom is used."""
        from repro.api import spawn_seeds
        from repro.utils.seeding import as_seed_sequence

        first = spawn_seeds(np.random.default_rng(5), 4)
        again = spawn_seeds(np.random.default_rng(5), 4)
        assert [s.generate_state(4).tolist() for s in first] == [
            s.generate_state(4).tolist() for s in again
        ]
        # The frozen root is the same one RngFactory derives: the
        # factory's streams replay bitwise from an equal-state
        # Generator root too.
        root_a = as_seed_sequence(np.random.default_rng(5))
        root_b = as_seed_sequence(np.random.default_rng(5))
        assert root_a.entropy == root_b.entropy
        fac_a = RngFactory(np.random.default_rng(5))
        fac_b = RngFactory(np.random.default_rng(5))
        assert fac_a.root_entropy == fac_b.root_entropy
        assert fac_a.stream("x").integers(1 << 40) == fac_b.stream(
            "x"
        ).integers(1 << 40)

    def test_generator_freeze_consumes_one_draw(self):
        """Freezing advances the generator exactly one integers() draw,
        so repeated freezes of one generator give distinct roots."""
        from repro.utils.seeding import as_seed_sequence

        gen = np.random.default_rng(9)
        a = as_seed_sequence(gen)
        b = as_seed_sequence(gen)
        assert a.entropy != b.entropy
        reference = np.random.default_rng(9)
        assert a.entropy == int(
            reference.integers(0, 2**63, dtype=np.int64)
        )

    def test_spawn_seeds_matches_manual_spawn(self):
        from repro.api import spawn_seeds

        manual = np.random.SeedSequence(11).spawn(3)
        viaapi = spawn_seeds(11, 3)
        assert [s.generate_state(2).tolist() for s in manual] == [
            s.generate_state(2).tolist() for s in viaapi
        ]
