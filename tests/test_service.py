"""Tests for the continuous-time allocation service (repro.service).

The acceptance pin lives in ``TestBitwisePin``: every service
micro-batch must be bitwise-identical to the corresponding
``run_dynamic`` epoch on the same root seed — the SeedSequence
children line up batch-for-epoch, so loads, messages, rounds, and the
departure draws all agree exactly.
"""

import asyncio
import json

import numpy as np
import pytest

from repro.dynamic import DynamicSpec, run_dynamic
from repro.service import (
    ACCEPT,
    DEFER,
    SHED,
    AdmissionPolicy,
    AllocatorService,
    EventQueue,
    GapSloController,
    Place,
    Query,
    Release,
    SimulatedClock,
    WallClock,
    replay_trace,
    serve_queue,
    simulate_service,
)


# ---------------------------------------------------------------------------
# ingest layer
# ---------------------------------------------------------------------------


class TestEvents:
    def test_kinds(self):
        assert Place(3, 0.0).kind == "place"
        assert Release(2, 1.0).kind == "release"
        assert Query(1, 2.0).kind == "query"

    def test_count_validated(self):
        with pytest.raises(ValueError, match="count"):
            Place(0, 0.0)
        with pytest.raises(ValueError, match="count"):
            Release(-1, 0.0)

    def test_frozen(self):
        with pytest.raises(Exception):
            Place(1, 0.0).count = 2


class TestClocks:
    def test_wall_clock_monotone(self):
        clock = WallClock()
        assert clock.now() <= clock.now()

    def test_simulated_clock(self):
        clock = SimulatedClock()
        assert clock.now() == 0.0
        assert clock.advance(1.5) == 1.5
        assert clock.advance_to(4.0) == 4.0
        assert clock.now() == 4.0

    def test_simulated_clock_never_backward(self):
        clock = SimulatedClock(start=2.0)
        with pytest.raises(ValueError, match="advance"):
            clock.advance(-1.0)
        with pytest.raises(ValueError, match="backward"):
            clock.advance_to(1.0)


class TestEventQueue:
    def test_capacity_in_balls(self):
        q = EventQueue(10)
        q.push(Place(6, 0.0))
        assert q.pending == 6 and q.pending_places == 6
        assert q.fits(Release(4, 0.0)) and not q.fits(Place(5, 0.0))
        with pytest.raises(OverflowError, match="capacity"):
            q.push(Place(5, 0.0))
        q.push(Release(4, 0.0))
        assert q.pending == 10 and q.pending_releases == 4
        assert q.depth == 1.0

    def test_query_events_never_queue(self):
        q = EventQueue(10)
        with pytest.raises(TypeError, match="place/release"):
            q.push(Query(1, 0.0))

    def test_invalid_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            EventQueue(0)

    def test_take_fifo_prefix(self):
        q = EventQueue(100)
        for i in range(5):
            q.push(Place(2, float(i)))
        batch = q.take(5)
        # 2 + 2 fit under 5; the third event would exceed it.
        assert [e.at for e in batch] == [0.0, 1.0]
        assert q.pending == 6
        assert q.take(None) and q.pending == 0

    def test_take_oversized_event_still_drains(self):
        q = EventQueue(100)
        q.push(Place(50, 0.0))
        batch = q.take(10)
        assert len(batch) == 1 and batch[0].count == 50
        assert q.pending == 0

    def test_oldest_age(self):
        q = EventQueue(10)
        assert q.oldest_age(5.0) == 0.0
        q.push(Place(1, 2.0))
        q.push(Place(1, 4.0))
        assert q.oldest_age(5.0) == 3.0


# ---------------------------------------------------------------------------
# admission control
# ---------------------------------------------------------------------------


class TestAdmissionPolicy:
    def test_defaults_valid(self):
        AdmissionPolicy()
        AdmissionPolicy(gap_slo=4.0, message_budget=50.0)

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"gap_slo": 0.0},
            {"gap_slo": -1.0},
            {"shed_headroom": -0.1},
            {"defer_depth": 0.0},
            {"defer_depth": 1.5},
            {"message_budget": 0.0},
            {"max_widen": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            AdmissionPolicy(**kwargs)


class TestGapSloController:
    def _queue(self, capacity=100, pending=0):
        q = EventQueue(capacity)
        if pending:
            q.push(Place(pending, 0.0))
        return q

    def test_overflow_sheds_places_only(self):
        ctrl = GapSloController(AdmissionPolicy())
        q = self._queue(capacity=10, pending=8)
        assert ctrl.decide("place", 5, q) == SHED
        # Releases spill past the bound: shedding one would leak
        # occupancy forever (the PR-9 overflow fix).
        assert ctrl.decide("release", 5, q) == ACCEPT
        # Fits under capacity, but at 80% depth the policy defers.
        assert ctrl.decide("place", 2, q) == DEFER

    def test_releases_never_gap_shed(self):
        ctrl = GapSloController(AdmissionPolicy(gap_slo=2.0))
        ctrl.observe(gap=99.0, messages=0, processed=1)
        q = self._queue()
        assert ctrl.decide("place", 1, q) == SHED
        assert ctrl.decide("release", 1, q) == ACCEPT

    def test_gap_slo_defer_then_shed(self):
        ctrl = GapSloController(
            AdmissionPolicy(gap_slo=4.0, shed_headroom=4.0)
        )
        q = self._queue()
        assert ctrl.decide("place", 1, q) == ACCEPT  # no observation yet
        ctrl.observe(gap=5.0, messages=10, processed=10)
        assert ctrl.decide("place", 1, q) == DEFER
        ctrl.observe(gap=9.0, messages=10, processed=10)
        assert ctrl.decide("place", 1, q) == SHED

    def test_widen_doubles_and_decays(self):
        policy = AdmissionPolicy(gap_slo=4.0, max_widen=4)
        ctrl = GapSloController(policy)
        ctrl.observe(gap=5.0, messages=0, processed=1)
        assert ctrl.widen == 2
        ctrl.observe(gap=5.0, messages=0, processed=1)
        assert ctrl.widen == 4
        ctrl.observe(gap=5.0, messages=0, processed=1)
        assert ctrl.widen == 4  # capped
        ctrl.observe(gap=1.0, messages=0, processed=1)
        assert ctrl.widen == 2
        ctrl.observe(gap=1.0, messages=0, processed=1)
        assert ctrl.widen == 1

    def test_message_budget_widens(self):
        ctrl = GapSloController(AdmissionPolicy(message_budget=10.0))
        ctrl.observe(gap=0.0, messages=1000, processed=10)
        assert ctrl.widen == 2
        assert ctrl.last_cost == 100.0

    def test_queue_depth_defers(self):
        ctrl = GapSloController(AdmissionPolicy(defer_depth=0.5))
        assert ctrl.decide("place", 1, self._queue(100, 60)) == DEFER
        assert ctrl.decide("place", 1, self._queue(100, 10)) == ACCEPT


# ---------------------------------------------------------------------------
# the acceptance pin: micro-batches == run_dynamic epochs, bitwise
# ---------------------------------------------------------------------------


class TestBitwisePin:
    """Each flushed micro-batch is bitwise-identical to the matching
    ``run_dynamic`` epoch on the same root seed."""

    M, N, SEED = 6000, 32, 21
    SPEC = DynamicSpec(epochs=5, churn=0.1, arrivals="bursty")

    def _pin(self, algorithm, **service_kwargs):
        dyn = run_dynamic(
            algorithm, self.M, self.N, seed=self.SEED, spec=self.SPEC
        )
        svc = AllocatorService(
            algorithm,
            self.N,
            seed=self.SEED,
            max_batch=10**9,  # no count watermark: flush() sets bounds
            clock=SimulatedClock(),
            **service_kwargs,
        )
        svc.place(self.M)
        records = [svc.flush()]
        loads_ok = [
            np.array_equal(svc.residents.loads, dyn.loads_history[0])
        ]
        for epoch in range(1, self.SPEC.epochs + 1):
            count = min(
                self.SPEC.arrival_count(epoch, self.M), svc.population
            )
            svc.release(count)
            svc.place(count)
            records.append(svc.flush())
            loads_ok.append(
                np.array_equal(
                    svc.residents.loads, dyn.loads_history[epoch]
                )
            )
        assert all(loads_ok)
        assert np.array_equal(svc.residents.loads, dyn.loads)
        for batch, epoch in zip(records, dyn.records):
            assert batch.places == epoch.arrivals
            assert batch.released == epoch.departures
            assert batch.placed == epoch.placed
            assert batch.moved == epoch.moved
            assert batch.rounds == epoch.rounds
            assert batch.messages == epoch.messages
            assert batch.population == epoch.population
            assert batch.max_load == epoch.max_load
            assert batch.gap == epoch.gap

    def test_heavy_batches_match_epochs(self):
        self._pin("heavy")

    def test_single_batches_match_epochs(self):
        self._pin("single")

    def test_stemann_batches_match_epochs(self):
        self._pin("stemann")

    def test_workload_cohorts_match(self):
        dyn = run_dynamic(
            "heavy",
            4000,
            32,
            seed=3,
            spec=DynamicSpec(epochs=3, churn=0.1),
            workload="zipf:1.2",
        )
        svc = AllocatorService(
            "heavy",
            32,
            seed=3,
            max_batch=10**9,
            clock=SimulatedClock(),
            workload="zipf:1.2",
        )
        svc.place(4000)
        svc.flush()
        for epoch in range(1, 4):
            count = DynamicSpec(epochs=3, churn=0.1).arrival_count(
                epoch, 4000
            )
            svc.release(count)
            svc.place(count)
            svc.flush()
        assert np.array_equal(svc.residents.loads, dyn.loads)

    def test_driver_report_matches_run_dynamic(self):
        """The open-loop driver at default sizing converges on one
        batch per interval and reproduces run_dynamic exactly."""
        report = simulate_service(
            "heavy", 4000, 32, seed=7, spec=self.SPEC
        )
        dyn = run_dynamic("heavy", 4000, 32, seed=7, spec=self.SPEC)
        assert report.stats.batches == self.SPEC.epochs + 1
        assert [r.messages for r in report.records] == [
            e.messages for e in dyn.records
        ]
        assert report.gaps == [e.gap for e in dyn.records]
        assert [r.population for r in report.records] == [
            e.population for e in dyn.records
        ]


# ---------------------------------------------------------------------------
# service behavior and edge cases
# ---------------------------------------------------------------------------


class TestServiceEdgeCases:
    def _service(self, **kwargs):
        kwargs.setdefault("seed", 5)
        kwargs.setdefault("clock", SimulatedClock())
        return AllocatorService("heavy", 16, **kwargs)

    def test_constructor_validation(self):
        with pytest.raises(ValueError, match="n >= 1"):
            AllocatorService("heavy", 0)
        with pytest.raises(ValueError, match="max_batch"):
            AllocatorService("heavy", 16, max_batch=0)
        with pytest.raises(ValueError, match="max_wait"):
            AllocatorService("heavy", 16, max_wait=-1.0)
        with pytest.raises(ValueError, match="departure"):
            AllocatorService("heavy", 16, departures="nope")
        with pytest.raises(ValueError, match="dynamic-capable"):
            AllocatorService("greedy", 16)

    def test_queue_overflow_sheds(self):
        svc = self._service(max_batch=1000, max_queue=100, auto_flush=False)
        assert svc.place(80) == ACCEPT
        assert svc.place(50) == SHED
        assert svc.queue.pending == 80
        stats = svc.stats()
        assert stats.shed == 50 and stats.accepted == 80
        assert stats.shed_rate == pytest.approx(50 / 130)

    def test_idle_ticks_are_strict_noops(self):
        svc = self._service()
        before = svc._root.n_children_spawned
        for t in (1.0, 2.0, 3.0):
            assert svc.tick(t) is None
        assert svc._root.n_children_spawned == before == 0
        assert svc.records == []
        assert svc.queue.pending == 0

    def test_idle_ticks_do_not_perturb_results(self):
        def run(idle):
            svc = self._service(max_batch=10**9)
            svc.place(500)
            svc.flush()
            if idle:
                for t in (1.0, 2.0, 3.0):
                    svc.tick(t)
            svc.release(50)
            svc.place(50)
            svc.flush()
            return svc

        quiet, busy = run(idle=False), run(idle=True)
        assert np.array_equal(
            quiet.residents.loads, busy.residents.loads
        )
        assert [r.messages for r in quiet.records] == [
            r.messages for r in busy.records
        ]

    def test_age_watermark_flushes_on_tick(self):
        svc = self._service(max_batch=10**9, max_wait=1.0)
        svc.place(100)
        assert svc.tick(0.5) is None  # too young
        record = svc.tick(1.5)
        assert record is not None and record.places == 100

    def test_count_watermark_auto_flushes(self):
        svc = self._service(max_batch=50)
        svc.place(30)
        assert svc.records == []
        svc.place(30)
        # Pending hit the watermark; the batch is the FIFO prefix that
        # fits (events are never split), the rest stays queued.
        assert len(svc.records) == 1
        assert svc.records[0].places == 30
        assert svc.queue.pending == 30

    def test_drain_equals_eager_bitwise(self):
        def submit(svc):
            for _ in range(8):
                svc.place(25)

        eager = self._service(max_batch=50)
        submit(eager)  # auto-flush: one batch per 50 balls
        deferred = self._service(max_batch=50, auto_flush=False)
        submit(deferred)
        assert deferred.records == []
        deferred.drain()
        assert len(eager.records) == len(deferred.records) == 4
        assert np.array_equal(
            eager.residents.loads, deferred.residents.loads
        )
        for a, b in zip(eager.records, deferred.records):
            assert a.messages == b.messages
            assert a.places == b.places
            assert a.max_load == b.max_load

    def test_release_clamped_to_population(self):
        svc = self._service(max_batch=10**9)
        svc.place(100)
        svc.flush()
        svc.release(500)
        record = svc.flush()
        assert record.released == 100 and record.population == 0
        assert svc.stats().dropped_releases == 400

    def test_flush_empty_queue_returns_none(self):
        svc = self._service()
        assert svc.flush() is None
        assert svc._root.n_children_spawned == 0

    def test_query_never_flushes(self):
        svc = self._service(max_batch=10**9)
        svc.place(10)
        snap = svc.query()
        assert snap["queue_pending"] == 10
        assert snap["population"] == 0 and snap["batches"] == 0
        assert svc._root.n_children_spawned == 0

    def test_latency_accounting(self):
        clock = SimulatedClock()
        svc = self._service(clock=clock, max_batch=10**9)
        svc.place(10)
        clock.advance_to(2.0)
        svc.place(10)
        clock.advance_to(3.0)
        record = svc.flush()
        assert record.latency_max == pytest.approx(3.0)
        assert record.latency_mean == pytest.approx(2.0)
        stats = svc.stats()
        assert stats.latency["p50"] <= stats.latency["p95"]
        assert stats.latency_max == pytest.approx(3.0)

    def test_gap_shedding_under_slo_pressure(self):
        # n=16, gap_slo tiny: after the fill the observed gap exceeds
        # slo + headroom, so subsequent places shed while releases pass.
        svc = self._service(
            max_batch=10**9,
            policy=AdmissionPolicy(gap_slo=0.01, shed_headroom=0.0),
        )
        svc.place(1000)
        svc.flush()
        assert svc.gap > 0.01
        assert svc.place(10) == SHED
        assert svc.release(10) == ACCEPT
        assert svc.stats().shed == 10

    def test_widened_batches_defer_and_amortize(self):
        svc = self._service(
            max_batch=20,
            policy=AdmissionPolicy(gap_slo=0.01, shed_headroom=100.0),
        )
        svc.place(20)  # fill; gap now exceeds the (absurd) SLO
        assert svc.controller.widen == 2
        assert svc.batch_limit == 40
        decision = svc.place(10)
        assert decision == DEFER
        assert svc.stats().deferred == 10


class TestReplayDeterminism:
    def _drive(self):
        clock = SimulatedClock()
        svc = AllocatorService(
            "heavy", 16, seed=11, max_batch=64, clock=clock,
            max_wait=1.0,
        )
        svc.place(200)
        svc.tick(1.5)
        for i in range(10):
            clock.advance_to(2.0 + i * 0.1)
            svc.release(3)
            svc.place(3)
        svc.tick(4.0)
        svc.flush(all_pending=True)
        svc.place(40)
        svc.drain()
        return svc

    def test_replay_trace_bitwise(self):
        original = self._drive()
        replays = [
            replay_trace(
                original.trace, "heavy", 16, seed=11, max_batch=64,
                max_wait=1.0,
            )
            for _ in range(2)
        ]
        def comparable(service):
            # Everything but the wall-clock processing time replays
            # bitwise (``seconds`` measures this machine, not the run).
            return [
                {k: v for k, v in r.to_dict().items() if k != "seconds"}
                for r in service.records
            ]

        for replay in replays:
            assert np.array_equal(
                replay.residents.loads, original.residents.loads
            )
            assert comparable(replay) == comparable(original)
            assert replay._latencies == original._latencies
            assert replay.trace == original.trace

    def test_replay_rejects_caller_clock(self):
        with pytest.raises(ValueError, match="clock"):
            replay_trace([], "heavy", 16, clock=SimulatedClock())

    def test_replay_rejects_corrupt_trace(self):
        with pytest.raises(ValueError, match="unknown trace op"):
            replay_trace([("warp", 1, 0.0)], "heavy", 16, seed=1)


class TestServeQueue:
    def test_asyncio_ingest_matches_sync(self):
        async def drive():
            # max_batch=300: the fill flushes on arrival, so the later
            # releases depart from a populated system.
            svc = AllocatorService("heavy", 16, seed=9, max_batch=300)
            queue = asyncio.Queue()
            for item in [("place", 300), ("release", 30), ("place", 30)]:
                queue.put_nowait(item)
            queue.put_nowait(None)
            return svc, await serve_queue(svc, queue)

        svc, stats = asyncio.run(drive())
        assert stats.processed_places == 330
        assert stats.processed_releases == 30
        sync = AllocatorService("heavy", 16, seed=9, max_batch=300)
        sync.place(300)
        sync.release(30)
        sync.place(30)
        sync.drain()
        assert np.array_equal(svc.residents.loads, sync.residents.loads)

    def test_idle_polls_tick_then_sentinel_drains(self):
        async def drive():
            svc = AllocatorService("heavy", 16, seed=9, max_batch=10**9)
            queue = asyncio.Queue()
            svc.place(50)

            async def stop_later():
                await asyncio.sleep(0.05)
                queue.put_nowait(None)

            task = asyncio.ensure_future(stop_later())
            stats = await serve_queue(svc, queue, poll=0.005)
            await task
            return stats

        stats = asyncio.run(drive())
        assert stats.processed_places == 50
        assert stats.queue_pending == 0

    def test_unknown_item_kind_rejected(self):
        async def drive():
            svc = AllocatorService("heavy", 16, seed=9)
            queue = asyncio.Queue()
            queue.put_nowait(("teleport", 1))
            return await serve_queue(svc, queue)

        with pytest.raises(ValueError, match="unknown event kind"):
            asyncio.run(drive())


# ---------------------------------------------------------------------------
# open-loop driver + report
# ---------------------------------------------------------------------------


class TestSimulateService:
    def test_report_shape_and_stats(self):
        report = simulate_service(
            "heavy", 2000, 16, seed=4, epochs=3, churn=0.1
        )
        stats = report.stats
        assert stats.batches == 4
        assert stats.complete
        assert stats.population == 2000
        assert stats.ops_per_sec > 0
        assert stats.shed == 0
        assert report.ops_per_sec == stats.ops_per_sec
        assert len(report.gaps) == 4
        assert "m/n=" in report.describe()
        assert "ops/s" in str(report)

    def test_to_dict_round_trips_json(self):
        report = simulate_service(
            "single", 500, 8, seed=2, epochs=2, churn=0.2
        )
        payload = json.loads(json.dumps(report.to_dict()))
        assert payload["schema"] == 1
        assert payload["algorithm"] == "single"
        assert len(payload["records"]) == 3
        assert payload["stats"]["processed_ops"] > 0
        assert payload["extra"]["service"]["queue_pending"] == 0

    def test_poisson_rejected(self):
        with pytest.raises(ValueError, match="deterministic"):
            simulate_service(
                "heavy", 1000, 16, seed=1, arrivals="poisson"
            )

    def test_full_rerun_rejected(self):
        spec = DynamicSpec(epochs=2, churn=0.1, rebalance="full_rerun")
        with pytest.raises(ValueError, match="incremental"):
            simulate_service("heavy", 1000, 16, seed=1, spec=spec)

    def test_instance_validated(self):
        with pytest.raises(ValueError, match="m >= 1"):
            simulate_service("heavy", 0, 16, seed=1)

    def test_deterministic_replay(self):
        kwargs = dict(seed=13, epochs=3, churn=0.2, arrivals="bursty")
        a = simulate_service("heavy", 1500, 16, **kwargs)
        b = simulate_service("heavy", 1500, 16, **kwargs)
        assert [r.messages for r in a.records] == [
            r.messages for r in b.records
        ]
        assert a.gaps == b.gaps
        assert a.stats.latency == b.stats.latency
        assert a.seed_entropy == b.seed_entropy


class TestServiceBenchmark:
    def test_records_and_table(self):
        from repro.api.bench import (
            benchmark_service,
            render_service_table,
        )

        records = benchmark_service(
            2000, 16, epochs=3, churn=0.2, algorithms=("heavy",),
            gap_slo=50.0,
        )
        assert len(records) == 1
        r = records[0]
        assert r.algorithm == "heavy"
        assert r.ops_per_sec > 0
        assert r.complete
        assert r.latency_p50 <= r.latency_p95 <= r.latency_p99
        assert "ops/s" in render_service_table(records)
        assert r.to_dict()["batches"] == r.batches

    def test_non_capable_algorithm_rejected(self):
        from repro.api.bench import benchmark_service

        with pytest.raises(ValueError, match="dynamic"):
            benchmark_service(1000, 16, epochs=2, algorithms=("greedy",))


class TestCli:
    def test_serve_subcommand(self, capsys):
        from repro.__main__ import main

        assert (
            main(
                [
                    "serve", "heavy", "--m", "2000", "--n", "16",
                    "--seed", "1", "--epochs", "3", "--simulate",
                    "--gap-slo", "50",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "micro-batched incremental" in out
        assert "ops/s sustained" in out

    def test_serve_requires_simulate(self, capsys):
        from repro.__main__ import main

        with pytest.raises(SystemExit, match="--simulate"):
            main(
                ["serve", "heavy", "--m", "100", "--n", "8", "--seed", "1"]
            )

    def test_serve_json_export(self, tmp_path, capsys):
        from repro.__main__ import main

        path = tmp_path / "serve.json"
        assert (
            main(
                [
                    "serve", "single", "--m", "500", "--n", "8",
                    "--seed", "1", "--epochs", "2", "--simulate",
                    "--json", str(path),
                ]
            )
            == 0
        )
        payload = json.loads(path.read_text())
        assert payload["algorithm"] == "single"
        assert payload["stats"]["batches"] == 3
