"""Single-round rejection measurement and the proof's class decomposition.

Theorem 7's setting: ``M`` balls each contact one of ``n`` bins
uniformly at random; bin ``i`` accepts up to ``L_i``.  The number of
rejected balls is ``sum_i max(X_i - L_i, 0)`` with
``X ~ Multinomial(M, 1/n)`` — computable in ``O(n)`` without per-ball
sampling (balls are exchangeable).

The proof machinery is exposed for inspection and experiment F3's
diagnostic columns:

* ``S_i = mu + 2 sqrt(mu) - L_i`` — the per-bin overload margin of
  Claim 5 (bins with ``S_i > 0`` reject ``>= S_i`` balls whenever the
  constant-probability overload event fires);
* dyadic classes ``I_k = {i : S_i in [2^k, 2^{k+1})}`` and ``I_*``
  (``S_i in (0, 1)``), Claim 6's partition;
* the heaviest class and its expected-rejection mass
  ``p0 * sum_{i in I_k} S_i``, the quantity the pigeonhole step lower
  bounds by ``p0 sqrt(Mn) / (2 (t+1))``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.analysis.theory import rejection_floor, theorem7_t
from repro.fastpath.sampling import multinomial_occupancy
from repro.utils.seeding import as_generator
from repro.utils.validation import ensure_m_n

__all__ = [
    "RejectionOutcome",
    "DyadicClasses",
    "measure_rejections",
    "dyadic_class_decomposition",
]


@dataclass(frozen=True)
class RejectionOutcome:
    """One trial of the single-round rejection experiment."""

    m_balls: int
    n: int
    rejected: int
    overloaded_bins: int  # bins with X_i > L_i
    floor: float  # the paper's Omega(sqrt(Mn)/t) reference value
    t: int

    @property
    def rejected_over_floor(self) -> float:
        """Measured rejections relative to the theoretical floor; the
        lower bound predicts this stays bounded away from 0."""
        return self.rejected / self.floor if self.floor > 0 else math.inf


def measure_rejections(
    m_balls: int,
    n: int,
    thresholds: np.ndarray,
    *,
    seed=None,
    trials: int = 1,
) -> list[RejectionOutcome]:
    """Run the single-round experiment ``trials`` times.

    Parameters
    ----------
    m_balls, n:
        Round size: ``m_balls`` requests to ``n`` bins.
    thresholds:
        Oblivious acceptance vector ``L`` (length ``n``).
    seed:
        Reproducibility seed (one stream; trials draw sequentially).
    trials:
        Number of independent repetitions.
    """
    m_balls, n = ensure_m_n(m_balls, n)
    thresholds = np.asarray(thresholds, dtype=np.int64)
    if thresholds.shape != (n,):
        raise ValueError(
            f"thresholds must have shape ({n},), got {thresholds.shape}"
        )
    if thresholds.min() < 0:
        raise ValueError("thresholds must be non-negative")
    rng = as_generator(seed)
    t = theorem7_t(m_balls, n)
    floor = rejection_floor(m_balls, n)
    out = []
    for _ in range(trials):
        counts = multinomial_occupancy(m_balls, n, rng)
        excess = counts - thresholds
        rejected = int(np.maximum(excess, 0).sum())
        out.append(
            RejectionOutcome(
                m_balls=m_balls,
                n=n,
                rejected=rejected,
                overloaded_bins=int((excess > 0).sum()),
                floor=floor,
                t=t,
            )
        )
    return out


@dataclass(frozen=True)
class DyadicClasses:
    """Claim 6's decomposition of the threshold vector.

    Attributes
    ----------
    s_values:
        ``S_i = mu + 2 sqrt(mu) - L_i`` per bin.
    class_of_bin:
        ``k`` for bins in ``I_k`` (``S_i in [2^k, 2^{k+1})``), ``-1``
        for ``I_*`` (``S_i in (0,1)``), ``-2`` for ``S_i <= 0``.
    class_mass:
        ``sum_{i in I_k} S_i`` per class index ``k``.
    heaviest_class:
        The ``k`` maximizing ``class_mass`` within
        ``[k_min, k_max]`` (Claim 6's window), or ``None`` when no bin
        has positive margin.
    k_min, k_max:
        Claim 6's window bounds.
    t:
        Theorem 7's ``t``.
    expected_rejections_bound:
        ``p0 sqrt(Mn)`` with ``p0 = 1`` (the structural value
        ``sum_i max(S_i, 0)`` actually realized by this vector — the
        proof lower bounds it by ``sqrt(Mn)`` when
        ``sum L <= M + O(n)``).
    """

    s_values: np.ndarray
    class_of_bin: np.ndarray
    class_mass: dict[int, float]
    heaviest_class: Optional[int]
    k_min: int
    k_max: int
    t: int
    expected_rejections_bound: float


def dyadic_class_decomposition(
    m_balls: int, n: int, thresholds: np.ndarray
) -> DyadicClasses:
    """Compute Claim 6's classes for a threshold vector."""
    m_balls, n = ensure_m_n(m_balls, n)
    thresholds = np.asarray(thresholds, dtype=np.float64)
    if thresholds.shape != (n,):
        raise ValueError(
            f"thresholds must have shape ({n},), got {thresholds.shape}"
        )
    mu = m_balls / n
    s = mu + 2.0 * math.sqrt(mu) - thresholds
    class_of_bin = np.full(n, -2, dtype=np.int64)
    star = (s > 0) & (s < 1)
    class_of_bin[star] = -1
    positive = s >= 1
    class_of_bin[positive] = np.floor(np.log2(s[positive])).astype(np.int64)

    t = theorem7_t(m_balls, n)
    mass: dict[int, float] = {}
    for k in np.unique(class_of_bin[positive]):
        mass[int(k)] = float(s[class_of_bin == k].sum())
    if mass:
        k_max = max(mass)
        k_min = max(k_max - math.ceil(math.log2(max(n, 2))) + 1, 0)
        window = {k: v for k, v in mass.items() if k_min <= k <= k_max}
        heaviest = max(window, key=window.get) if window else None
    else:
        k_max = 0
        k_min = 0
        heaviest = None
    return DyadicClasses(
        s_values=s,
        class_of_bin=class_of_bin,
        class_mass=mass,
        heaviest_class=heaviest,
        k_min=k_min,
        k_max=k_max,
        t=t,
        expected_rejections_bound=float(np.maximum(s, 0.0).sum()),
    )
