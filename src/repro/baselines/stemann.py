"""Stemann's collision protocol [Ste96] adapted to ``m > n``.

Footnote 2 of the paper: Stemann considered ``m > n`` but achieves load
``O(m/n)`` only (a multiplicative constant above the average, versus the
paper's additive ``O(1)``).  The protocol's signature move is the
*collision threshold*: a bin accepts **all** requests it receives in a
round iff their number (plus its load) stays below the collision bound,
else it rejects **all** of them.

Implementation, per round with collision bound ``L``:

* every unallocated ball contacts one uniformly random bin;
* a bin with load ``ℓ`` receiving ``X`` requests accepts all of them if
  ``ℓ + X <= L``, else none;
* accepted balls commit immediately.

With ``L = collision_factor * ceil(m/n)`` the protocol terminates in
``O(log n)`` rounds w.h.p. with max load ``<= L = O(m/n)`` — the
behaviour experiments T1/T2 contrast against ``A_heavy``'s
``m/n + O(1)`` in ``O(log log(m/n))`` rounds.
"""

from __future__ import annotations

import math

import numpy as np

from repro.api.spec import register_allocator
from repro.fastpath.sampling import sample_uniform_choices
from repro.result import AllocationResult
from repro.simulation.metrics import RoundMetrics, RunMetrics
from repro.utils.seeding import RngFactory
from repro.utils.validation import ensure_m_n

__all__ = ["run_stemann"]


@register_allocator(
    "stemann",
    summary="collision protocol with a fixed load bound",
    paper_ref="baseline [Ste96]",
)
def run_stemann(
    m: int,
    n: int,
    *,
    seed=None,
    collision_factor: float = 2.0,
    max_rounds: int = 100_000,
) -> AllocationResult:
    """Collision-threshold protocol with bound
    ``L = ceil(collision_factor * ceil(m/n))``.

    Parameters
    ----------
    m, n:
        Instance size.
    seed:
        Reproducibility seed.
    collision_factor:
        Multiplicative headroom above the average load; must be > 1 for
        termination (capacity must exceed ``m``).
    max_rounds:
        Abort bound; result marked incomplete if hit.
    """
    m, n = ensure_m_n(m, n)
    if collision_factor <= 1.0:
        raise ValueError(
            f"collision_factor must be > 1, got {collision_factor}"
        )
    bound = math.ceil(collision_factor * math.ceil(m / n))
    factory = RngFactory(seed)
    rng = factory.stream("stemann", "choices")

    loads = np.zeros(n, dtype=np.int64)
    active = np.arange(m, dtype=np.int64)
    metrics = RunMetrics(m, n)
    total_messages = 0
    round_no = 0

    while active.size > 0 and round_no < max_rounds:
        u = active.size
        choices = sample_uniform_choices(u, n, rng)
        counts = np.bincount(choices, minlength=n)
        # All-or-nothing: bin accepts its entire batch iff it fits.
        accept_bin = (loads + counts <= bound) & (counts > 0)
        accepted_mask = accept_bin[choices]
        accepted_bins = choices[accepted_mask]
        loads += np.where(accept_bin, counts, 0)
        accepts = int(accepted_mask.sum())
        total_messages += u + accepts
        metrics.add_round(
            RoundMetrics(
                round_no=round_no,
                unallocated_start=u,
                requests_sent=u,
                accepts_sent=accepts,
                rejects_sent=0,
                commits=accepts,
                unallocated_end=u - accepts,
                max_load=int(loads.max(initial=0)),
                threshold=float(bound),
            )
        )
        active = active[~accepted_mask]
        round_no += 1

    complete = active.size == 0
    return AllocationResult(
        algorithm="stemann",
        m=m,
        n=n,
        loads=loads,
        rounds=round_no,
        metrics=metrics,
        total_messages=total_messages,
        complete=complete,
        unallocated=int(active.size),
        seed_entropy=factory.root_entropy,
        extra={"collision_bound": bound},
    )
