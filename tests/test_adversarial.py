"""Adversarial & degraded regimes: attack policies, fault injection,
graceful degradation — plus the edge-path bugfix pins.

Covers the PR-9 surface:

* the gap-maximizing greedy departure adversary and the hotset-
  targeting arrival adversary (``DynamicSpec`` extensions);
* ``FaultModel``/``parse_faults``/``FaultState``/``place_with_loss``
  — bin quarantine and ghost-slot ack loss under churn, through both
  ``run_dynamic`` and ``AllocatorService``;
* time-varying workloads (skew drift, flash crowds);
* the determinism matrix: every new policy/fault regime replays
  bitwise from the seed, ``workers=1`` ≡ ``workers=2``, and the
  all-zero ``FaultModel`` is bitwise-identical to ``None``;
* regression pins for the edge-path fixes: the Poisson churn=1
  population clamp, the release-spill queue-overflow fix, and the
  kernel-backend env validation reached through the dynamic/service
  call paths.
"""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro import (
    AllocatorService,
    FaultModel,
    TimeVaryingWorkload,
    parse_faults,
    parse_time_varying,
    run_dynamic,
    run_dynamic_many,
    simulate_service,
)
from repro.api.bench import (
    adversarial_degradation,
    benchmark_adversarial,
    render_adversarial_table,
)
from repro.dynamic.faults import FaultState, place_with_loss
from repro.dynamic.runner import _attack_workload
from repro.dynamic.state import ResidentState
from repro.fastpath.backend import BACKEND_ENV_VAR
from repro.service.events import EventQueue, Place, Release, SimulatedClock
from repro.workloads import Workload, WorkloadError

DYNAMIC_CAPABLE = ("heavy", "combined", "single", "stemann")

FAULTY = FaultModel(bin_fail_prob=0.1, bin_recover_prob=0.3, loss_prob=0.05)


def _result_key(res):
    """Everything bitwise-comparable about a DynamicResult (wall time
    excluded: ``seconds`` differs between identical runs)."""
    records = [
        {k: v for k, v in r.to_dict().items() if k != "seconds"}
        for r in res.records
    ]
    return records, res.loads_history.tolist()


def _fill(state: ResidentState, loads):
    state.add_cohort(0, np.asarray(loads, dtype=np.int64))
    return state


# ---------------------------------------------------------------------------
# The greedy departure adversary
# ---------------------------------------------------------------------------


class TestGreedyAdversaryDepartures:
    def test_drains_lightest_levels_first(self, rng):
        state = _fill(ResidentState(5), [10, 1, 3, 3, 7])
        gone = state.depart(4, "greedy_adversary", rng)
        # 1 from the level-1 bin, then 3 of the 6 balls at level 3 —
        # the heavy bins (7, 10) are untouched.
        assert int(gone.sum()) == 4
        assert gone[1] == 1
        assert gone[0] == 0 and gone[4] == 0
        assert state.loads[0] == 10 and state.loads[4] == 7

    def test_max_bin_survives_partial_drain(self, rng):
        state = _fill(ResidentState(4), [20, 5, 5, 5])
        gone = state.depart(15, "greedy_adversary", rng)
        # The three light bins are emptied; the maximum is untouched.
        assert gone[0] == 0 and int(gone.sum()) == 15
        assert state.loads[0] == 20
        assert state.population == 20

    def test_tied_boundary_level_spread(self, rng):
        # Four bins tied at load 6; budget 10 cannot empty the level,
        # so spread_budget apportions it across the tied bins.
        state = _fill(ResidentState(4), [6, 6, 6, 6])
        gone = state.depart(10, "greedy_adversary", rng)
        assert int(gone.sum()) == 10
        assert gone.max() - gone.min() <= 1

    def test_full_population_drain(self, rng):
        state = _fill(ResidentState(3), [4, 2, 9])
        gone = state.depart(15, "greedy_adversary", rng)
        assert int(gone.sum()) == 15
        assert state.population == 0

    def test_zero_is_noop_without_draw(self):
        state = _fill(ResidentState(3), [1, 2, 3])
        gone = state.depart(0, "greedy_adversary", None)
        assert not gone.any()
        assert state.population == 6

    def test_per_bin_drain_deterministic_in_loads(self):
        loads = [8, 1, 5, 5, 12, 0, 3]
        outs = []
        for seed in (0, 1):
            state = _fill(ResidentState(7), list(loads))
            rng = np.random.default_rng(seed)
            outs.append(state.depart(9, "greedy_adversary", rng))
        # Which cohort's balls leave a bin is random, but the per-bin
        # totals are a pure function of the loads.
        np.testing.assert_array_equal(outs[0], outs[1])

    @pytest.mark.parametrize("algo", DYNAMIC_CAPABLE)
    def test_run_dynamic_completes(self, algo):
        res = run_dynamic(
            algo, 2_000, 16, seed=3, epochs=3, churn=0.2,
            departures="greedy_adversary",
        )
        assert res.complete
        assert res.records[-1].population == 2_000


# ---------------------------------------------------------------------------
# The hotset-targeting arrival adversary
# ---------------------------------------------------------------------------


class TestHotsetAdversaryArrivals:
    def test_attack_workload_targets_hottest_bins(self):
        loads = np.array([5, 9, 1, 7, 3, 2, 0, 4], dtype=np.int64)
        wl = _attack_workload(loads, hot_frac=0.25)
        p = wl.pvals(8)
        hot = np.argsort(-loads, kind="stable")[:2]
        assert set(np.flatnonzero(p > 0)) == set(hot.tolist())
        np.testing.assert_allclose(p[hot], 0.5)

    def test_attack_workload_tie_break_stable(self):
        loads = np.zeros(6, dtype=np.int64)
        p = _attack_workload(loads, hot_frac=0.3).pvals(6)
        # All tied: the stable argsort picks the lowest indices.
        assert set(np.flatnonzero(p > 0)) == {0, 1}

    def test_run_dynamic_completes(self):
        res = run_dynamic(
            "heavy", 2_000, 16, seed=5, epochs=3, churn=0.2,
            arrivals="hotset_adversary", hot_frac=0.2,
        )
        assert res.complete
        assert res.spec.arrivals == "hotset_adversary"

    def test_rejects_explicit_workload(self):
        with pytest.raises(ValueError, match="hotset_adversary"):
            run_dynamic(
                "heavy", 1_000, 16, seed=0, epochs=2,
                arrivals="hotset_adversary",
                workload=Workload.zipf(1.2),
            )

    def test_rejects_time_workload(self):
        with pytest.raises(ValueError, match="hotset_adversary"):
            run_dynamic(
                "heavy", 1_000, 16, seed=0, epochs=2,
                arrivals="hotset_adversary",
                time_workload="drift:1.0:2.0",
            )

    def test_simulate_service_rejects(self):
        with pytest.raises(ValueError, match="hotset_adversary"):
            simulate_service(
                "heavy", 1_000, 16, seed=0, epochs=2,
                arrivals="hotset_adversary",
            )


# ---------------------------------------------------------------------------
# FaultModel / parse_faults
# ---------------------------------------------------------------------------


class TestFaultModel:
    def test_defaults_are_null(self):
        assert FaultModel().is_null
        assert FaultModel().describe() == "none"

    def test_nonzero_not_null(self):
        assert not FAULTY.is_null

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"bin_fail_prob": -0.1},
            {"bin_fail_prob": 1.5},
            {"loss_prob": 2.0},
            {"max_failed_frac": 1.0},
            {"max_failed_frac": -0.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultModel(**kwargs)

    def test_to_dict_round_trip(self):
        assert FaultModel(**FAULTY.to_dict()) == FAULTY


class TestParseFaults:
    @pytest.mark.parametrize("text", [None, "", "  ", "none", "NONE"])
    def test_empty_means_none(self, text):
        assert parse_faults(text) is None

    def test_aliases(self):
        model = parse_faults("bin_fail=0.1,recover=0.3,loss=0.05")
        assert model == FAULTY
        assert parse_faults("fail=0.1,bin_recover=0.3,loss_prob=0.05") == (
            FAULTY
        )

    def test_max_failed(self):
        model = parse_faults("fail=0.2,max_failed=0.25")
        assert model.max_failed_frac == 0.25

    def test_unknown_key(self):
        with pytest.raises(ValueError, match="unknown fault key"):
            parse_faults("bogus=1")

    def test_missing_equals(self):
        with pytest.raises(ValueError, match="key=value"):
            parse_faults("loss")

    def test_bad_value(self):
        with pytest.raises(ValueError, match="bad fault value"):
            parse_faults("loss=often")

    def test_out_of_range_propagates(self):
        with pytest.raises(ValueError, match="loss_prob"):
            parse_faults("loss=1.5")


# ---------------------------------------------------------------------------
# FaultState: quarantine bookkeeping
# ---------------------------------------------------------------------------


class TestFaultState:
    def test_requires_fault_model(self):
        with pytest.raises(TypeError, match="FaultModel"):
            FaultState(8, {"loss_prob": 0.1})

    def test_step_deterministic(self):
        masks = []
        for _ in range(2):
            state = FaultState(32, FAULTY)
            rng = np.random.default_rng(7)
            for _ in range(10):
                state.step(rng)
            masks.append(state.failed.copy())
        np.testing.assert_array_equal(masks[0], masks[1])

    def test_failed_limit_cap(self):
        model = FaultModel(bin_fail_prob=1.0, max_failed_frac=0.5)
        state = FaultState(8, model)
        rng = np.random.default_rng(0)
        for _ in range(20):
            state.step(rng)
        assert state.failed_count <= state.failed_limit == 4

    def test_at_least_one_bin_survives(self):
        model = FaultModel(bin_fail_prob=1.0, max_failed_frac=0.99)
        state = FaultState(4, model)
        rng = np.random.default_rng(1)
        for _ in range(10):
            state.step(rng)
        assert state.failed_count <= 3

    def test_null_step_consumes_no_randomness(self):
        state = FaultState(16, FaultModel())
        rng = np.random.default_rng(42)
        state.step(rng)
        assert rng.integers(0, 100) == np.random.default_rng(42).integers(
            0, 100
        )

    def test_quarantined_passthrough_when_healthy(self):
        state = FaultState(8, FAULTY)
        wl = Workload.zipf(1.3)
        assert state.quarantined(wl, 8) is wl
        assert state.quarantined(None, 8) is None

    def test_quarantined_zeros_and_renormalizes(self):
        state = FaultState(4, FAULTY)
        state.failed[1] = True
        wl = state.quarantined(None, 4)
        p = wl.pvals(4)
        assert p[1] == 0.0
        np.testing.assert_allclose(p.sum(), 1.0)
        np.testing.assert_allclose(p[[0, 2, 3]], 1.0 / 3.0)

    def test_quarantined_preserves_workload_shape(self):
        state = FaultState(4, FAULTY)
        state.failed[0] = True
        wl = Workload.explicit(np.array([0.4, 0.3, 0.2, 0.1]))
        p = state.quarantined(wl, 4).pvals(4)
        assert p[0] == 0.0
        np.testing.assert_allclose(p[1:], np.array([0.3, 0.2, 0.1]) / 0.6)


# ---------------------------------------------------------------------------
# place_with_loss: ghost-slot ack loss
# ---------------------------------------------------------------------------


def _uniform_place_fn(n):
    """A deterministic stand-in placement: round-robin, one round."""

    class _Placement:
        def __init__(self, loads, placed):
            self.loads = loads
            self.placed = placed
            self.unplaced = 0
            self.rounds = 1
            self.total_messages = placed

    def place(count, initial, seed):
        loads = np.asarray(initial, dtype=np.int64).copy()
        base, extra = divmod(count, n)
        loads += base
        if extra:
            order = np.argsort(loads, kind="stable")[:extra]
            loads[order] += 1
        return _Placement(loads, count)

    return place


class TestPlaceWithLoss:
    def test_zero_loss_is_verbatim(self):
        n = 8
        initial = np.zeros(n, dtype=np.int64)
        seed = np.random.SeedSequence(5)
        rng = np.random.default_rng(0)
        out = place_with_loss(
            _uniform_place_fn(n), 40, initial, seed, 0.0, rng
        )
        assert out.lost_acks == 0
        assert not out.ghosts.any()
        assert int(out.cohort.sum()) == 40
        # Zero loss draws nothing from the fault stream.
        assert rng.integers(0, 100) == np.random.default_rng(0).integers(
            0, 100
        )

    def test_loss_conserves_counts(self):
        n = 8
        initial = np.full(n, 3, dtype=np.int64)
        out = place_with_loss(
            _uniform_place_fn(n),
            100,
            initial,
            np.random.SeedSequence(9),
            0.2,
            np.random.default_rng(11),
        )
        assert out.lost_acks > 0
        assert (out.ghosts >= 0).all() and (out.cohort >= 0).all()
        assert int(out.ghosts.sum()) == out.lost_acks
        assert int(out.cohort.sum()) == out.placed == 100 - out.unplaced

    def test_deterministic(self):
        n = 8
        args = (
            _uniform_place_fn(n),
            64,
            np.zeros(n, dtype=np.int64),
        )
        outs = [
            place_with_loss(
                *args,
                np.random.SeedSequence(3),
                0.3,
                np.random.default_rng(21),
            )
            for _ in range(2)
        ]
        np.testing.assert_array_equal(outs[0].cohort, outs[1].cohort)
        np.testing.assert_array_equal(outs[0].ghosts, outs[1].ghosts)
        assert outs[0].lost_acks == outs[1].lost_acks

    def test_max_retries_gives_up(self):
        n = 4
        out = place_with_loss(
            _uniform_place_fn(n),
            50,
            np.zeros(n, dtype=np.int64),
            np.random.SeedSequence(1),
            0.9,
            np.random.default_rng(2),
            max_retries=1,
        )
        assert out.unplaced > 0
        assert out.placed + out.unplaced == 50


# ---------------------------------------------------------------------------
# Time-varying workloads
# ---------------------------------------------------------------------------


class TestTimeVarying:
    def test_parse_drift_round_trip(self):
        tv = parse_time_varying("drift:1.0:2.5")
        assert tv.kind == "drift"
        assert tv.start_skew == 1.0 and tv.end_skew == 2.5
        assert parse_time_varying(tv.describe()) == tv

    def test_parse_flash_round_trip(self):
        tv = parse_time_varying("flash:4:50:3")
        assert (tv.flash_every, tv.flash_factor, tv.flash_bin) == (4, 50, 3)
        assert parse_time_varying(tv.describe()) == tv

    def test_drift_endpoints(self):
        tv = TimeVaryingWorkload(
            kind="drift", start_skew=1.0, end_skew=3.0
        )
        assert tv.workload_at(0, 10, 16).choice_params == (1.0,)
        assert tv.workload_at(10, 10, 16).choice_params == (3.0,)
        assert tv.workload_at(5, 10, 16).choice_params == (2.0,)

    def test_flash_epochs_spike_one_bin(self):
        tv = TimeVaryingWorkload(
            kind="flash", flash_every=3, flash_factor=10.0, flash_bin=2
        )
        assert tv.workload_at(0, 9, 8) is None
        assert tv.workload_at(1, 9, 8) is None
        p = tv.workload_at(3, 9, 8).pvals(8)
        assert p[2] == pytest.approx(10.0 / 17.0)

    @pytest.mark.parametrize(
        "text", ["drift:0:2", "flash:1:10", "flash:3:0.5", "sawtooth:1:2"]
    )
    def test_bad_specs_raise(self, text):
        with pytest.raises(WorkloadError):
            parse_time_varying(text)

    def test_mutually_exclusive_with_workload(self):
        with pytest.raises(ValueError, match="mutually exclusive"):
            run_dynamic(
                "heavy", 1_000, 16, seed=0, epochs=2,
                workload=Workload.zipf(1.2),
                time_workload="drift:1.0:2.0",
            )

    @pytest.mark.parametrize(
        "tw", ["drift:1.0:2.0", "flash:2:40"]
    )
    def test_run_dynamic_completes(self, tw):
        res = run_dynamic(
            "heavy", 2_000, 16, seed=4, epochs=4, churn=0.2,
            time_workload=tw,
        )
        assert res.complete


# ---------------------------------------------------------------------------
# run_dynamic under faults
# ---------------------------------------------------------------------------


class TestDynamicFaults:
    def test_faulted_run_records_quarantine(self):
        res = run_dynamic(
            "heavy", 2_000, 16, seed=13, epochs=6, churn=0.2,
            fault_model=FAULTY,
        )
        assert res.complete
        assert res.records[-1].population == 2_000
        assert res.failed_bins.max() >= 1
        assert res.lost_acks > 0
        assert res.lost_acks == sum(r.lost_acks for r in res.records)

    def test_fault_model_requires_incremental(self):
        with pytest.raises(ValueError, match="incremental"):
            run_dynamic(
                "heavy", 1_000, 16, seed=0, epochs=2,
                rebalance="full_rerun", fault_model=FAULTY,
            )

    def test_adversary_plus_faults_completes(self):
        res = run_dynamic(
            "heavy", 2_000, 16, seed=8, epochs=5, churn=0.2,
            arrivals="hotset_adversary",
            departures="greedy_adversary",
            fault_model=FAULTY,
        )
        assert res.complete


# ---------------------------------------------------------------------------
# The determinism matrix (satellite: adversarial determinism tests)
# ---------------------------------------------------------------------------

REGIMES = {
    "hotset_arrivals": dict(arrivals="hotset_adversary", hot_frac=0.2),
    "greedy_departures": dict(departures="greedy_adversary"),
    "faults": dict(fault_model=FAULTY),
    "drift": dict(time_workload="drift:1.0:2.0"),
    "flash": dict(time_workload="flash:2:30"),
    "combined_attack": dict(
        arrivals="hotset_adversary",
        departures="greedy_adversary",
        fault_model=FAULTY,
    ),
}


class TestAdversarialDeterminism:
    @pytest.mark.parametrize("regime", sorted(REGIMES))
    def test_same_seed_bitwise(self, regime):
        runs = [
            run_dynamic(
                "heavy", 2_000, 16, seed=17, epochs=4, churn=0.2,
                **REGIMES[regime],
            )
            for _ in range(2)
        ]
        assert _result_key(runs[0]) == _result_key(runs[1])

    def test_workers_do_not_change_values(self):
        kwargs = dict(
            repeats=3, seed=23, epochs=3, churn=0.2,
            departures="greedy_adversary", fault_model=FAULTY,
        )
        serial = run_dynamic_many("heavy", 2_000, 16, workers=1, **kwargs)
        fanned = run_dynamic_many("heavy", 2_000, 16, workers=2, **kwargs)
        assert [_result_key(r) for r in serial] == [
            _result_key(r) for r in fanned
        ]

    def test_null_fault_model_is_bitwise_none(self):
        base = run_dynamic(
            "heavy", 2_000, 16, seed=29, epochs=4, churn=0.2
        )
        nulled = run_dynamic(
            "heavy", 2_000, 16, seed=29, epochs=4, churn=0.2,
            fault_model=FaultModel(),
        )
        assert _result_key(base) == _result_key(nulled)

    def test_null_fault_model_is_bitwise_none_service(self):
        def drive(fault_model):
            svc = AllocatorService(
                "heavy", 16, seed=31, max_batch=500,
                auto_flush=False, clock=SimulatedClock(),
                fault_model=fault_model,
            )
            for _ in range(4):
                svc.place(400)
                svc.release(80)
                svc.flush(all_pending=True)
            return [
                {k: v for k, v in r.to_dict().items() if k != "seconds"}
                for r in svc.records
            ], svc.residents.loads.tolist()

        assert drive(None) == drive(FaultModel())

    def test_benign_unaffected_by_new_streams(self):
        # The spec round-trips through describe/to_dict with the new
        # fields without perturbing a benign run's draws.
        res = run_dynamic("heavy", 2_000, 16, seed=37, epochs=3, churn=0.1)
        assert res.spec.to_dict()["hot_frac"] == 0.1
        assert res.failed_bins.max() == 0
        assert res.lost_acks == 0


# ---------------------------------------------------------------------------
# Graceful degradation: the drain_settle escalation
# ---------------------------------------------------------------------------


class TestDrainSettle:
    def test_auto_enabled_under_attack(self):
        attacked = run_dynamic(
            "heavy", 10_000, 32, seed=41, epochs=6, churn=0.2,
            departures="greedy_adversary",
        )
        oblivious = run_dynamic(
            "heavy", 10_000, 32, seed=41, epochs=6, churn=0.2,
            departures="greedy_adversary", drain_settle=False,
        )
        assert attacked.complete
        # Without the escalation the load-oblivious phase-2 handoff
        # ratchets the maximum up every epoch; the escalation must do
        # no worse and (at this scale) strictly better.
        assert attacked.gaps.max() <= oblivious.gaps.max()

    def test_benign_default_off(self):
        benign = run_dynamic(
            "heavy", 2_000, 16, seed=43, epochs=3, churn=0.1
        )
        explicit = run_dynamic(
            "heavy", 2_000, 16, seed=43, epochs=3, churn=0.1,
            drain_settle=False,
        )
        assert _result_key(benign) == _result_key(explicit)


# ---------------------------------------------------------------------------
# Service under attack and faults
# ---------------------------------------------------------------------------


class TestServiceDegraded:
    def test_greedy_departures_complete(self):
        report = simulate_service(
            "heavy", 4_000, 16, seed=47, epochs=4, churn=0.2,
            arrivals="fixed", departures="greedy_adversary",
        )
        assert all(r.unplaced == 0 for r in report.records)

    def test_fault_stats_surface(self):
        svc = AllocatorService(
            "heavy", 16, seed=53, max_batch=2_000,
            auto_flush=False, fault_model=FAULTY,
        )
        for _ in range(6):
            svc.place(1_000)
            svc.release(200)
            svc.flush(all_pending=True)
        stats = svc.stats()
        assert stats.lost_acks > 0
        assert stats.lost_acks == sum(r.lost_acks for r in svc.records)
        assert max(r.failed_bins for r in svc.records) >= 1

    def test_service_matches_run_dynamic_under_attack(self):
        # The flush ≡ epoch bitwise pin must survive the greedy
        # departure policy (control stream alignment).
        m, n, epochs, churn = 2_000, 16, 3, 0.2
        dyn = run_dynamic(
            "heavy", m, n, seed=59, epochs=epochs, churn=churn,
            arrivals="fixed", departures="greedy_adversary",
        )
        svc = AllocatorService(
            "heavy", n, seed=59, max_batch=10**9,
            clock=SimulatedClock(), departures="greedy_adversary",
        )
        svc.place(m)
        svc.flush()
        np.testing.assert_array_equal(
            svc.residents.loads, dyn.loads_history[0]
        )
        count = round(churn * m)
        for epoch in range(1, epochs + 1):
            svc.release(count)
            svc.place(count)
            svc.flush()
            np.testing.assert_array_equal(
                svc.residents.loads, dyn.loads_history[epoch]
            )


# ---------------------------------------------------------------------------
# Edge-path regression pins
# ---------------------------------------------------------------------------


class TestPoissonFullChurnClamp:
    """Satellite pin: Poisson departures at churn=1 are clamped to the
    live population (``count = min(count, residents.population)``)."""

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_population_never_negative(self, seed):
        res = run_dynamic(
            "heavy", 1_000, 16, seed=seed, epochs=6, churn=1.0,
            arrivals="poisson",
        )
        assert res.complete
        for rec in res.records:
            assert rec.population >= 0
            assert rec.departures <= 1_000
        assert (res.loads_history >= 0).all()

    def test_departures_clamped_consistent(self):
        res = run_dynamic(
            "heavy", 500, 8, seed=7, epochs=8, churn=1.0,
            arrivals="poisson",
        )
        pop = 0
        for rec in res.records:
            assert rec.departures <= pop
            pop = pop - rec.departures + rec.placed
            assert rec.population == pop


class TestReleaseSpillFix:
    """Satellite pin: releases spill past the queue bound (shedding a
    departure would leak its balls' occupancy forever)."""

    def test_queue_release_spills_place_overflows(self):
        q = EventQueue(10)
        q.push(Place(count=10, at=0.0))
        with pytest.raises(OverflowError):
            q.push(Place(count=1, at=0.0))
        q.push(Release(count=5, at=0.0))
        assert q.pending == 15
        assert q.pending_releases == 5

    def test_service_never_drops_releases_at_capacity(self):
        svc = AllocatorService(
            "heavy", 16, seed=61, max_batch=100, max_queue=100,
            auto_flush=False,
        )
        svc.place(100)
        svc.flush(all_pending=True)
        assert svc.population == 100
        # Queue full of places; the release must still be admitted.
        svc.place(100)
        assert svc.queue.pending == 100
        assert svc.release(40) == "accept"
        assert svc.queue.pending == 140
        svc.flush(all_pending=True)
        assert svc.population == 160
        assert svc.stats().dropped_releases == 0


class TestBackendEnvThroughEdgePaths:
    """Satellite pin: garbage in REPRO_KERNEL_BACKEND is a clear
    ValueError through the dynamic and service call paths too (fixed
    upstream at backend resolution; these pin the integration)."""

    def test_run_dynamic_rejects_garbage_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "turbo")
        with pytest.raises(ValueError, match="unknown kernel backend"):
            run_dynamic("heavy", 1_000, 16, seed=0, epochs=1)

    def test_service_rejects_garbage_env(self, monkeypatch):
        monkeypatch.setenv(BACKEND_ENV_VAR, "warp-drive")
        svc = AllocatorService(
            "heavy", 16, seed=0, max_batch=100, auto_flush=False
        )
        svc.place(50)
        with pytest.raises(ValueError, match="unknown kernel backend"):
            svc.flush(all_pending=True)


# ---------------------------------------------------------------------------
# The adversarial benchmark harness
# ---------------------------------------------------------------------------


class TestBenchmarkAdversarial:
    def test_smoke(self):
        records = benchmark_adversarial(
            2_000, 16, epochs=3, churn=0.2, seed=0,
            algorithms=("heavy", "single"),
        )
        assert len(records) == 4
        assert {r.regime for r in records} == {"benign", "adversarial"}
        degraded = adversarial_degradation(records)
        assert set(degraded) == {"heavy", "single"}
        assert all(v > 0 for v in degraded.values())

    def test_rejects_static_algorithm(self):
        with pytest.raises(ValueError):
            benchmark_adversarial(
                1_000, 16, epochs=2, algorithms=("always_go_left",)
            )

    def test_record_dict_and_table(self):
        records = benchmark_adversarial(
            1_000, 16, epochs=2, churn=0.2, seed=1, algorithms=("heavy",),
            fault_model=FAULTY,
        )
        payload = records[0].to_dict()
        assert payload["algorithm"] == "heavy"
        assert "gap_worst" in payload
        table = render_adversarial_table(records)
        assert "degrade" in table
        assert "adversarial" in table
