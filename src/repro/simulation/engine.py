"""The synchronous round engine — reference semantics of the model.

The engine owns delivery, accounting, and the model's information
constraints; protocol logic lives entirely in the agent subclasses.
Execution of one round:

1. **Requests** — for every unallocated ball, :meth:`BallAgent.choose_requests`
   names the bins to contact.  In symmetric mode the returned indices are
   translated through the ball's private uniformly-random bin
   permutation, so protocols cannot exploit global bin IDs.
2. **Responses** — requests are grouped per bin; each bin's request list
   is shuffled (the adversarial port numbering: a bin must not be able to
   correlate positions with ball identity), and
   :meth:`BinAgent.respond` picks positions to accept.  The engine sends
   ACCEPTs (and, if configured, explicit REJECTs) and increments the
   bin's outstanding load.
3. **Commits** — each ball with new replies or pending accepts gets
   :meth:`BallAgent.receive_replies`; a returned bin commits the ball.
   The engine then notifies *all* bins holding an outstanding accept for
   the ball (payload ``True`` for the chosen bin, ``False`` — a
   revocation that decrements load — for the rest), exactly as in step 5
   of the lower-bound protocol family.

The engine is deliberately object-level and unoptimized: it is the
executable specification against which the numpy fast paths are tested.
Use it for ``m`` up to ~10^5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.simulation.agents import BallAgent, BinAgent
from repro.simulation.messages import Message, MessageKind
from repro.simulation.metrics import MessageCounter, RoundMetrics, RunMetrics
from repro.utils.seeding import RngFactory

__all__ = ["EngineConfig", "SyncEngine", "EngineOutcome"]


@dataclass(frozen=True)
class EngineConfig:
    """Engine behaviour switches.

    Attributes
    ----------
    symmetric:
        Route ball requests through private per-ball bin permutations
        (bins anonymous to balls).  The asymmetric algorithm of Section 5
        sets this to False.
    adversarial_ports:
        Shuffle each bin's incoming request list before ``respond`` (the
        adversarial port numbering of Section 4).  Disabling it makes
        request order deterministic — useful only for debugging.
    explicit_rejects:
        Send REJECT messages for declined requests.  The paper's
        algorithms treat silence as rejection; explicit rejects are
        counted separately and excluded from the paper-facing totals.
    max_rounds:
        Safety cap; exceeding it aborts the run (incomplete result).
    count_commits:
        Whether COMMIT messages count toward message totals.  The
        paper's accounting includes them (balls "inform" bins); on by
        default.
    """

    symmetric: bool = True
    adversarial_ports: bool = True
    explicit_rejects: bool = False
    max_rounds: int = 10_000
    count_commits: bool = True


@dataclass
class EngineOutcome:
    """Raw engine output; algorithm wrappers convert to AllocationResult."""

    loads: np.ndarray
    rounds: int
    metrics: RunMetrics
    counter: MessageCounter
    complete: bool
    unallocated: int
    commitments: np.ndarray  # ball -> bin (or -1)


class SyncEngine:
    """Executes a protocol over explicit agents.

    Parameters
    ----------
    balls, bins:
        Agent instances (their ``index`` attributes must equal their
        positions).
    config:
        Engine switches; defaults follow the paper's symmetric model.
    rng_factory:
        Source of independent streams for permutations and shuffles.
    """

    def __init__(
        self,
        balls: Sequence[BallAgent],
        bins: Sequence[BinAgent],
        *,
        config: EngineConfig = EngineConfig(),
        rng_factory: Optional[RngFactory] = None,
    ) -> None:
        for i, ball in enumerate(balls):
            if ball.index != i:
                raise ValueError(f"ball at position {i} has index {ball.index}")
        for j, bin_ in enumerate(bins):
            if bin_.index != j:
                raise ValueError(f"bin at position {j} has index {bin_.index}")
        self.balls = list(balls)
        self.bins = list(bins)
        self.config = config
        self.factory = rng_factory or RngFactory()
        self.m = len(self.balls)
        self.n = len(self.bins)
        if self.n == 0:
            raise ValueError("need at least one bin")
        self.counter = MessageCounter(self.m, self.n)
        self.metrics = RunMetrics(self.m, self.n)
        self.round_no = 0
        # Ball-local bin permutations for symmetric mode (lazy).
        self._ball_perm: dict[int, np.ndarray] = {}
        self._ball_inv_perm: dict[int, np.ndarray] = {}
        self._shuffle_rng = self.factory.stream("engine", "shuffle")
        # Outstanding accepts: ball -> list of (bin index, round accepted).
        self._pending_accepts: dict[int, list[int]] = {}
        self._commitments = np.full(self.m, -1, dtype=np.int64)

    # -- symmetric-mode port translation ----------------------------------

    def _perm_for_ball(self, ball_index: int) -> np.ndarray:
        perm = self._ball_perm.get(ball_index)
        if perm is None:
            rng = self.factory.stream("ballperm", ball_index)
            perm = rng.permutation(self.n)
            self._ball_perm[ball_index] = perm
        return perm

    def _translate(self, ball_index: int, local_bins: Sequence[int]) -> list[int]:
        for b in local_bins:
            if not 0 <= int(b) < self.n:
                raise ValueError(
                    f"ball {ball_index} requested invalid bin {int(b)}"
                )
        if not self.config.symmetric:
            return [int(b) for b in local_bins]
        perm = self._perm_for_ball(ball_index)
        return [int(perm[int(b)]) for b in local_bins]

    def _untranslate(self, ball_index: int, global_bin: int) -> int:
        """Map a global bin index back into the ball's local port space."""
        if not self.config.symmetric:
            return global_bin
        inv = self._ball_inv_perm.get(ball_index)
        if inv is None:
            perm = self._perm_for_ball(ball_index)
            inv = np.empty_like(perm)
            inv[perm] = np.arange(self.n)
            self._ball_inv_perm[ball_index] = inv
        return int(inv[global_bin])

    # -- main loop ---------------------------------------------------------

    def run(self) -> EngineOutcome:
        """Run rounds until all balls commit or ``max_rounds`` is hit."""
        while not self._all_allocated():
            if self.round_no >= self.config.max_rounds:
                break
            self.step()
        loads = np.zeros(self.n, dtype=np.int64)
        for ball in self.balls:
            if ball.committed_bin is not None:
                loads[ball.committed_bin] += 1
        unallocated = int(sum(1 for b in self.balls if not b.allocated))
        return EngineOutcome(
            loads=loads,
            rounds=self.round_no,
            metrics=self.metrics,
            counter=self.counter,
            complete=unallocated == 0,
            unallocated=unallocated,
            commitments=self._commitments.copy(),
        )

    def _all_allocated(self) -> bool:
        return all(ball.allocated for ball in self.balls)

    def step(self) -> RoundMetrics:
        """Execute one synchronous round and return its metrics."""
        round_no = self.round_no
        unallocated_start = sum(1 for b in self.balls if not b.allocated)

        for bin_ in self.bins:
            bin_.on_round_start(round_no)

        # Step 1: balls send requests.
        requests_by_bin: dict[int, list[Message]] = {}
        requests_sent = 0
        for ball in self.balls:
            if ball.allocated:
                continue
            local = ball.choose_requests(round_no, self.n)
            for g in self._translate(ball.index, local):
                if not 0 <= g < self.n:
                    raise ValueError(
                        f"ball {ball.index} requested invalid bin {g}"
                    )
                msg = Message(MessageKind.REQUEST, ball.index, g, round_no)
                requests_by_bin.setdefault(g, []).append(msg)
                self.counter.record_ball_to_bin(ball.index, g)
                requests_sent += 1

        # Step 2: bins respond.
        replies_by_ball: dict[int, list[Message]] = {}
        accepts_sent = 0
        rejects_sent = 0
        for bin_index, incoming in requests_by_bin.items():
            bin_ = self.bins[bin_index]
            if self.config.adversarial_ports and len(incoming) > 1:
                order = self._shuffle_rng.permutation(len(incoming))
                incoming = [incoming[k] for k in order]
            accepted_positions = list(bin_.respond(round_no, incoming))
            seen: set[int] = set()
            for pos in accepted_positions:
                if not 0 <= pos < len(incoming):
                    raise ValueError(
                        f"bin {bin_index} accepted invalid position {pos}"
                    )
                if pos in seen:
                    raise ValueError(
                        f"bin {bin_index} accepted position {pos} twice"
                    )
                seen.add(pos)
            for pos, msg in enumerate(incoming):
                # Replies are delivered with the *ball-local* bin port so
                # symmetric protocols never observe global bin IDs.
                local_bin = self._untranslate(msg.ball, bin_index)
                if pos in seen:
                    reply = Message(
                        MessageKind.ACCEPT, msg.ball, local_bin, round_no
                    )
                    replies_by_ball.setdefault(msg.ball, []).append(reply)
                    self.counter.record_bin_to_ball(bin_index, msg.ball)
                    accepts_sent += 1
                    bin_.load += 1
                    self._pending_accepts.setdefault(msg.ball, []).append(
                        bin_index
                    )
                elif self.config.explicit_rejects:
                    reply = Message(
                        MessageKind.REJECT, msg.ball, local_bin, round_no
                    )
                    replies_by_ball.setdefault(msg.ball, []).append(reply)
                    self.counter.record_bin_to_ball(bin_index, msg.ball)
                    rejects_sent += 1

        # Step 3: balls receive replies and possibly commit.  Balls with
        # accepts pending from earlier rounds are also polled (the
        # lower-bound family allows deferred commitment).
        commits = 0
        poll = set(replies_by_ball) | {
            b for b, acc in self._pending_accepts.items() if acc
        }
        for ball_index in sorted(poll):
            ball = self.balls[ball_index]
            if ball.allocated:
                continue
            replies = replies_by_ball.get(ball_index, [])
            chosen_local = ball.receive_replies(round_no, replies)
            if chosen_local is None:
                continue
            chosen = (
                int(self._perm_for_ball(ball_index)[int(chosen_local)])
                if self.config.symmetric
                else int(chosen_local)
            )
            pending = self._pending_accepts.get(ball_index, [])
            if chosen not in pending:
                raise ValueError(
                    f"ball {ball_index} committed to bin {chosen} without an "
                    "outstanding accept from it"
                )
            # Step 5: inform every accepting bin of the decision.
            for bin_index in pending:
                is_chosen = bin_index == chosen
                msg = Message(
                    MessageKind.COMMIT,
                    ball_index,
                    bin_index,
                    round_no,
                    payload=is_chosen,
                )
                if self.config.count_commits:
                    self.counter.record_ball_to_bin(ball_index, bin_index)
                if not is_chosen:
                    self.bins[bin_index].load -= 1
                self.bins[bin_index].on_commit(round_no, msg)
            self._pending_accepts[ball_index] = []
            ball.committed_bin = chosen
            self._commitments[ball_index] = chosen
            ball.on_terminate(round_no)
            commits += 1

        unallocated_end = sum(1 for b in self.balls if not b.allocated)
        max_load = max((b.load for b in self.bins), default=0)
        metrics = RoundMetrics(
            round_no=round_no,
            unallocated_start=unallocated_start,
            requests_sent=requests_sent,
            accepts_sent=accepts_sent,
            rejects_sent=rejects_sent,
            commits=commits,
            unallocated_end=unallocated_end,
            max_load=int(max_load),
        )
        self.metrics.add_round(metrics)
        self.round_no += 1
        return metrics
