"""Tests for AllocationResult."""

import numpy as np
import pytest

from repro.result import AllocationResult


def mk(loads, m=None, **kw):
    loads = np.asarray(loads)
    if m is None:
        m = int(loads.sum())
    return AllocationResult(
        algorithm="test",
        m=m,
        n=loads.size,
        loads=loads,
        rounds=1,
        **kw,
    )


class TestValidation:
    def test_conservation_enforced(self):
        with pytest.raises(ValueError, match="loads sum"):
            mk([1, 2], m=5)

    def test_unallocated_accounting(self):
        res = mk([1, 2], m=5, complete=False, unallocated=2)
        assert res.unallocated == 2

    def test_complete_with_unallocated_rejected(self):
        with pytest.raises(ValueError):
            mk([1, 2], m=5, complete=True, unallocated=2)

    def test_wrong_shape(self):
        with pytest.raises(ValueError):
            AllocationResult(
                algorithm="x", m=4, n=3, loads=np.array([2, 2]), rounds=0
            )


class TestDerived:
    def test_max_load_and_gap(self):
        res = mk([3, 5, 4])
        assert res.max_load == 5
        assert res.gap == pytest.approx(5 - 12 / 3)

    def test_average_load(self):
        assert mk([2, 2]).average_load == 2.0

    def test_statistics_roundtrip(self):
        res = mk([2, 3, 4])
        stats = res.statistics()
        assert stats.max_load == 4
        assert stats.m == 9

    def test_statistics_requires_complete(self):
        res = mk([1, 1], m=4, complete=False, unallocated=2)
        with pytest.raises(ValueError):
            res.statistics()

    def test_unallocated_history_empty_without_metrics(self):
        assert mk([1, 1]).unallocated_history == []


class TestRendering:
    def test_describe_mentions_key_fields(self):
        text = mk([3, 5, 4]).describe()
        assert "max load" in text
        assert "rounds" in text
        assert "test" in text

    def test_str_compact(self):
        s = str(mk([3, 5, 4]))
        assert "max_load=5" in s

    def test_incomplete_describe(self):
        res = mk([1, 1], m=4, complete=False, unallocated=2)
        assert "2 left" in res.describe()


class TestSerialization:
    def test_to_dict_is_json_safe(self):
        import json

        res = mk([3, 5, 4], seed_entropy=(7,), extra={"x": np.int64(2)})
        text = json.dumps(res.to_dict())
        assert '"x": 2' in text

    def test_round_trip_preserves_fields(self):
        res = mk(
            [1, 1],
            m=4,
            complete=False,
            unallocated=2,
            sequential=True,
            seed_entropy=(5, 1),
        )
        back = AllocationResult.from_dict(res.to_dict())
        assert np.array_equal(back.loads, res.loads)
        assert back.m == res.m and back.n == res.n
        assert back.unallocated == 2 and not back.complete
        assert back.sequential
        assert back.seed_entropy == (5, 1)
        assert back.to_dict() == res.to_dict()

    def test_numpy_extras_normalized(self):
        res = mk([2, 2], extra={"arr": np.array([1, 2]), "tup": (1, 2)})
        data = res.to_dict()
        assert data["extra"]["arr"] == [1, 2]
        assert data["extra"]["tup"] == [1, 2]

    def test_unknown_schema_rejected(self):
        res = mk([2, 2])
        data = res.to_dict()
        data["schema"] = 99
        with pytest.raises(ValueError, match="schema"):
            AllocationResult.from_dict(data)
