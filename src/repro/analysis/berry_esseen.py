"""Berry-Esseen machinery (Theorem 4, used in Claim 5 of the lower bound).

Claim 5 of the paper shows that when ``M >= Cn`` balls contact uniform
bins, *any* bin receives at least ``mu + 2 sqrt(mu)`` requests with
constant probability ``p0`` — the engine of the rejection lower bound.
The proof normalizes the load of one bin and applies the Berry-Esseen
inequality: the CDF of the normalized load is within
``c * rho / (sigma^3 sqrt(M))`` of the standard normal CDF.

This module provides:

* :func:`berry_esseen_bound` — the CDF-distance bound for i.i.d.
  Bernoulli(p) summands (the exact random variables of Claim 5);
* :func:`overload_probability_lower_bound` — the resulting *lower* bound
  on ``P[X >= mu + a sqrt(mu)]``, which experiments compare against the
  empirical overload frequency;
* :func:`binomial_upper_deviation_probability` — the exact binomial tail
  via the regularized incomplete beta function (scipy), used as ground
  truth in tests.

The Berry-Esseen constant ``c`` is not pinned down by the theorem; the
best published value is 0.4690 (Shevtsova 2011) for i.i.d. summands,
which we adopt as the default.
"""

from __future__ import annotations

import math

from scipy import stats as _sps

__all__ = [
    "BERRY_ESSEEN_CONSTANT",
    "berry_esseen_bound",
    "binomial_upper_deviation_probability",
    "overload_probability_lower_bound",
]

#: Best known universal constant for i.i.d. summands (Shevtsova 2011).
BERRY_ESSEEN_CONSTANT: float = 0.4690


def berry_esseen_bound(
    m_balls: int, p: float, *, constant: float = BERRY_ESSEEN_CONSTANT
) -> float:
    """The Berry-Esseen CDF-distance bound for a Binomial(M, p) load.

    For centered Bernoulli summands ``Y_j = X_j - p``:
    ``sigma^2 = p (1 - p)`` and ``rho = E|Y_j|^3
    = p (1 - p) (p^2 + (1-p)^2) <= p (1 - p) (1 - 2 p (1 - p))``.
    The theorem then bounds ``sup_s |F(s) - Phi(s)|`` by
    ``constant * rho / (sigma^3 sqrt(M))``.

    Parameters
    ----------
    m_balls:
        Number of summands ``M`` (balls contacting bins this round).
    p:
        Success probability of each summand (``1/n`` for uniform choice).
    constant:
        The universal constant ``c``.
    """
    if m_balls < 1:
        raise ValueError(f"m_balls must be >= 1, got {m_balls}")
    if not 0.0 < p < 1.0:
        raise ValueError(f"p must be in (0, 1), got {p}")
    sigma2 = p * (1.0 - p)
    # Exact third absolute moment of a centered Bernoulli(p):
    # E|X - p|^3 = p(1-p) * ((1-p)^2 + p^2).
    rho = sigma2 * ((1.0 - p) ** 2 + p**2)
    return constant * rho / (sigma2**1.5 * math.sqrt(m_balls))


def overload_probability_lower_bound(
    m_balls: int,
    n_bins: int,
    a: float = 2.0,
    *,
    constant: float = BERRY_ESSEEN_CONSTANT,
) -> float:
    """Lower bound on ``P[X >= mu + a * sqrt(mu)]`` for one bin's load.

    Follows the computation in Claim 5: with ``mu = M/n``,
    ``P[Y >= x sigma sqrt(M)] >= 1 - Phi(x) - BE`` where
    ``x sigma sqrt(M) = a sqrt(mu)`` requires
    ``x = a sqrt(mu) / (sigma sqrt(M)) = a / sqrt(1 - p)`` with
    ``p = 1/n``.  The returned value is clamped at 0 (the bound is vacuous
    when the Berry-Esseen error exceeds the normal tail, i.e. when
    ``M/n`` is too small — exactly the ``M >= Cn`` prerequisite).

    Returns
    -------
    float
        A number in ``[0, 1)``; positive iff the paper's constant-
        probability overload event is certified at these parameters.
    """
    if n_bins < 2:
        raise ValueError(f"n_bins must be >= 2, got {n_bins}")
    p = 1.0 / n_bins
    x = a / math.sqrt(1.0 - p)
    tail = 1.0 - _sps.norm.cdf(x)
    be = berry_esseen_bound(m_balls, p, constant=constant)
    return max(0.0, tail - be)


def binomial_upper_deviation_probability(
    m_balls: int, n_bins: int, a: float = 2.0
) -> float:
    """Exact ``P[X >= mu + a sqrt(mu)]`` for ``X ~ Binomial(M, 1/n)``.

    Used as the ground-truth comparator for
    :func:`overload_probability_lower_bound` in tests and experiment F3's
    sanity columns.  Computed via the survival function of the binomial
    distribution at the smallest integer ``>= mu + a sqrt(mu)``.
    """
    if n_bins < 1:
        raise ValueError(f"n_bins must be >= 1, got {n_bins}")
    if m_balls < 0:
        raise ValueError(f"m_balls must be >= 0, got {m_balls}")
    p = 1.0 / n_bins
    mu = m_balls * p
    threshold = math.ceil(mu + a * math.sqrt(mu))
    # sf(k-1) = P[X >= k]
    return float(_sps.binom.sf(threshold - 1, m_balls, p))
