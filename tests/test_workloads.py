"""Tests for the workload subsystem: spec, binding, and end-to-end runs."""

import numpy as np
import pytest

import repro
from repro.utils.seeding import RngFactory
from repro.workloads import (
    BoundWorkload,
    Workload,
    WorkloadError,
    as_workload,
    bind_workload,
    parse_workload,
)


class TestWorkloadSpec:
    def test_default_is_uniform(self):
        assert Workload().is_uniform
        assert Workload.uniform().describe() == "uniform"

    def test_zipf_pvals_shape_and_skew(self):
        p = Workload.zipf(1.0).pvals(8)
        assert p.shape == (8,)
        assert abs(p.sum() - 1.0) < 1e-12
        assert np.all(np.diff(p) < 0)  # strictly decreasing
        assert p[0] / p[7] == pytest.approx(8.0)

    def test_hotset_pvals_mass_split(self):
        p = Workload.hotset(0.1, 0.5).pvals(100)
        assert p[:10].sum() == pytest.approx(0.5)
        assert p[10:].sum() == pytest.approx(0.5)

    def test_hotset_tiny_n(self):
        # hot-set count is clamped to [1, n-1] so both sides exist.
        p = Workload.hotset(0.01, 0.5).pvals(2)
        assert p.shape == (2,)
        assert abs(p.sum() - 1.0) < 1e-12

    def test_explicit_pvals_validated_at_use(self):
        wl = Workload.explicit([0.25, 0.25, 0.5])
        assert wl.pvals(3)[2] == 0.5
        with pytest.raises(ValueError):
            wl.pvals(4)  # wrong length for this n

    def test_capacity_proportional_tracks_traffic(self):
        wl = Workload.zipf(1.0, capacity="proportional")
        scale = wl.capacity_scale(8)
        assert scale.mean() == pytest.approx(1.0)
        assert np.array_equal(np.argsort(scale), np.argsort(wl.pvals(8)))

    def test_capacity_proportional_to_uniform_is_homogeneous(self):
        assert Workload(capacity="proportional").capacity_scale(8) is None

    def test_explicit_capacity_normalized_to_mean_one(self):
        wl = Workload(capacity="explicit", capacity_values=[1, 1, 2])
        assert wl.capacity_scale(3).mean() == pytest.approx(1.0)
        with pytest.raises(WorkloadError):
            wl.capacity_scale(4)

    def test_bound_capacities_round_and_clip(self):
        wl = Workload(capacity="explicit", capacity_values=[0, 1, 3])
        bound = bind_workload(wl, 10, 3, RngFactory(0))
        caps = bound.capacities(10)
        assert caps.dtype == np.int64
        assert caps.min() >= 0
        assert caps.sum() == pytest.approx(30, abs=2)

    def test_geometric_weights_mean(self):
        wl = Workload(weight="geometric", weight_param=0.25)
        w = wl.sample_weights(200_000, np.random.default_rng(0))
        assert w.min() >= 1
        assert w.mean() == pytest.approx(4.0, rel=0.05)
        assert wl.mean_weight() == 4.0

    def test_weight_sum_sampler_matches_perball_sums_in_law(self):
        wl = Workload(weight="geometric", weight_param=0.5)
        rng = np.random.default_rng(1)
        sampler = wl.weight_sum_sampler(rng)
        counts = np.array([0, 1, 1000, 0])
        sums = sampler(counts)
        assert sums[0] == 0 and sums[3] == 0
        assert sums[1] >= 1
        assert sums[2] == pytest.approx(2000, rel=0.1)

    def test_explicit_weights_require_perball(self):
        wl = Workload(weight="explicit", weight_values=[1.0, 2.0])
        with pytest.raises(WorkloadError, match="perball"):
            wl.weight_sum_sampler(np.random.default_rng(0))
        with pytest.raises(WorkloadError):
            wl.sample_weights(3, np.random.default_rng(0))  # wrong m

    def test_invalid_specs_rejected(self):
        with pytest.raises(WorkloadError):
            Workload(choice="nope")
        with pytest.raises(WorkloadError):
            Workload.zipf(-1.0)
        with pytest.raises(WorkloadError):
            Workload.hotset(0.0, 0.5)
        with pytest.raises(WorkloadError):
            Workload(weight="geometric", weight_param=1.5)
        with pytest.raises(WorkloadError):
            Workload(weight="explicit", weight_values=[0.0, 1.0])
        with pytest.raises(WorkloadError):
            Workload(capacity="explicit", capacity_values=[0.0, 0.0])


class TestParseWorkload:
    def test_grammar_round_trips(self):
        for text in (
            "zipf:1.1",
            "hotset:0.1:0.5",
            "zipf:1.2+geomw:0.5",
            "zipf:1.1+geomw:0.25+propcap",
        ):
            assert parse_workload(text).describe() == text

    def test_noop_components(self):
        assert parse_workload("uniform").is_uniform
        assert parse_workload("unitw+homcap").is_uniform

    def test_axis_set_twice_rejected(self):
        with pytest.raises(WorkloadError, match="twice"):
            parse_workload("zipf:1.0+hotset:0.1:0.5")

    def test_unknown_component_rejected(self):
        with pytest.raises(WorkloadError, match="unknown workload component"):
            parse_workload("pareto:1.5")

    def test_malformed_number_rejected(self):
        with pytest.raises(WorkloadError, match="malformed"):
            parse_workload("zipf:abc")

    def test_as_workload_forms(self):
        assert as_workload(None) is None
        assert as_workload("uniform") is None
        assert as_workload(Workload()) is None
        wl = as_workload("zipf:1.1")
        assert isinstance(wl, Workload)
        assert as_workload(wl) is wl
        with pytest.raises(WorkloadError, match="Workload"):
            as_workload(42)


class TestBinding:
    def test_uniform_binding_is_inert(self):
        bound = bind_workload(None, 100, 8, RngFactory(0))
        assert not bound.active and not bound.weighted
        assert bound.pvals is None and bound.capacity_scale is None
        assert bound.capacities(7) == 7
        assert bound.extra_record() is None

    def test_bound_workload_passes_through(self):
        bound = bind_workload("zipf:1.1", 100, 8, RngFactory(0))
        assert bind_workload(bound, 100, 8, RngFactory(99)) is bound

    def test_weights_come_from_dedicated_stream(self):
        # Same root seed: the protocol streams are untouched by the
        # weight draw (dedicated ("workload", "weights") stream).
        f1, f2 = RngFactory(7), RngFactory(7)
        bound = bind_workload("geomw:0.5", 1000, 8, f1)
        assert bound.weights.shape == (1000,)
        a = f1.stream("threshold", "choices").integers(0, 1 << 30, 10)
        b = f2.stream("threshold", "choices").integers(0, 1 << 30, 10)
        assert np.array_equal(a, b)

    def test_aggregate_binding_uses_sampler(self):
        bound = bind_workload(
            "geomw:0.5", 1000, 8, RngFactory(7), granularity="aggregate"
        )
        assert bound.weights is None
        assert bound.weight_sum_sampler is not None

    def test_capacity_cache_returns_same_array(self):
        bound = bind_workload("zipf:1.0+propcap", 100, 8, RngFactory(0))
        assert bound.capacities(5) is bound.capacities(5)
        assert bound.capacities(5.0).sum() > 0


class TestRoundStateWorkload:
    def test_weights_validate_shape_and_granularity(self):
        from repro.fastpath.roundstate import RoundState

        with pytest.raises(ValueError, match="shape"):
            RoundState(10, 4, weights=np.ones(5))
        with pytest.raises(ValueError, match="perball"):
            RoundState(10, 4, granularity="aggregate", weights=np.ones(10))
        with pytest.raises(ValueError, match="aggregate"):
            RoundState(10, 4, weight_sum_sampler=lambda c: c)

    def test_perball_weighted_loads_conserve_total(self):
        from repro.fastpath.roundstate import RoundState

        rng = np.random.default_rng(0)
        w = rng.geometric(0.5, size=500).astype(np.float64)
        state = RoundState(500, 16, weights=w)
        while state.active_count:
            batch = state.sample_contacts(rng)
            decision = state.group_and_accept(batch, None)
            state.commit_and_revoke(batch, decision)
        assert state.weighted_loads.sum() == pytest.approx(w.sum())
        assert state.loads.sum() == 500


class TestEndToEnd:
    """The acceptance scenarios: Zipf skew, weighted balls,
    heterogeneous capacities — through ``repro.allocate`` at both
    granularities."""

    M, N = 30_000, 64

    @pytest.mark.parametrize(
        "workload",
        ["zipf:1.1", "geomw:0.5", "hotset:0.1:0.5+propcap"],
    )
    @pytest.mark.parametrize("mode", ["perball", "aggregate"])
    def test_heavy_scenarios_complete(self, workload, mode):
        res = repro.allocate(
            "heavy", self.M, self.N, seed=11, mode=mode, workload=workload
        )
        assert res.complete
        assert res.loads.sum() == self.M
        assert res.extra["api"]["workload"] == workload
        record = res.extra["workload"]
        assert record["spec"] == workload
        if "geomw" in workload:
            # geometric mean weight 2: realized total within 5%.
            assert record["total_weight"] == pytest.approx(
                2 * self.M, rel=0.05
            )

    def test_perball_vs_aggregate_same_law_under_skew(self):
        p = repro.allocate(
            "heavy", self.M, self.N, seed=3, mode="perball",
            workload="zipf:1.1",
        )
        a = repro.allocate(
            "heavy", self.M, self.N, seed=3, mode="aggregate",
            workload="zipf:1.1",
        )
        assert p.complete and a.complete
        # Thresholds are oblivious: phase-1 structure matches exactly.
        assert p.extra["phase1_rounds"] == a.extra["phase1_rounds"]
        # Under skew a sizable straggler population rides the phase-2
        # handoff, so per-bin loads agree within its binomial noise
        # (straggler count / n balls per bin on average), not the
        # tight uniform-phase-1 tolerance.
        stragglers = max(
            p.extra["phase1_remaining"], a.extra["phase1_remaining"]
        )
        noise = 6 * np.sqrt(stragglers / self.N) + 6
        assert np.abs(np.sort(p.loads) - np.sort(a.loads)).max() <= noise
        assert (
            abs(p.extra["phase1_remaining"] - a.extra["phase1_remaining"])
            <= 0.1 * stragglers + 50
        )

    def test_weighted_totals_agree_across_granularities(self):
        wl = "zipf:1.1+geomw:0.5"
        p = repro.allocate(
            "heavy", self.M, self.N, seed=5, mode="perball", workload=wl
        )
        a = repro.allocate(
            "heavy", self.M, self.N, seed=5, mode="aggregate", workload=wl
        )
        tp = p.extra["workload"]["total_weight"]
        ta = a.extra["workload"]["total_weight"]
        assert tp == pytest.approx(2 * self.M, rel=0.05)
        assert ta == pytest.approx(tp, rel=0.05)

    def test_heterogeneous_capacities_shape_loads(self):
        # Proportional provisioning under a hot-set: hot bins must end
        # up holding more than cold bins, tracking their capacity.
        res = repro.allocate(
            "heavy", self.M, self.N, seed=9,
            workload="hotset:0.25:0.75+propcap",
        )
        hot = self.N // 4
        hot_mean = res.loads[:hot].mean()
        cold_mean = res.loads[hot:].mean()
        assert res.complete
        assert hot_mean > 2 * cold_mean

    def test_explicit_weights_perball_only(self):
        w = np.linspace(1, 3, self.M)
        wl = Workload(weight="explicit", weight_values=w)
        res = repro.allocate(
            "heavy", self.M, self.N, seed=2, mode="perball", workload=wl
        )
        assert res.extra["workload"]["total_weight"] == pytest.approx(w.sum())
        with pytest.raises(WorkloadError, match="perball"):
            repro.allocate(
                "heavy", self.M, self.N, seed=2, mode="aggregate", workload=wl
            )

    def test_single_and_stemann_skew_cross_granularity(self):
        for name, opts in (("single", {}), ("stemann", {"collision_factor": 3.0})):
            p = repro.allocate(
                name, self.M, self.N, seed=7, mode="perball",
                workload="zipf:1.1", **opts,
            )
            a = repro.allocate(
                name, self.M, self.N, seed=7, mode="aggregate",
                workload="zipf:1.1", **opts,
            )
            assert p.loads.sum() == a.loads.sum() == self.M
            scale = np.sqrt(self.M / self.N)
            assert abs(p.max_load - a.max_load) <= 8 * scale, name

    def test_inapplicable_axes_recorded(self):
        triv = repro.allocate(
            "trivial", 1000, 16, seed=1, workload="zipf:1.1"
        )
        assert triv.extra["workload"]["inapplicable"] == ["choice"]
        single = repro.allocate(
            "single", 1000, 16, seed=1, workload="zipf:1.0+propcap"
        )
        assert single.extra["workload"]["inapplicable"] == ["capacity"]

    def test_workload_capability_flags(self):
        capable = {
            s.name for s in repro.list_allocators() if s.workload_capable
        }
        assert capable == {
            "heavy", "combined", "asymmetric", "faulty", "multicontact",
            "trivial", "light", "single", "stemann", "dchoice",
        }
        for name in capable:
            assert "workload" in repro.get_spec(name).capabilities()

    def test_non_capable_allocators_reject_with_capable_list(self):
        with pytest.raises(ValueError, match="workload-capable"):
            repro.allocate("greedy", 1000, 16, seed=1, workload="zipf:1.1")
        with pytest.raises(ValueError, match="workload-capable"):
            repro.allocate("batched", 1000, 16, seed=1, workload="zipf:1.1")

    def test_engine_mode_rejects_non_uniform(self):
        with pytest.raises(ValueError, match="engine"):
            repro.allocate(
                "heavy", 1000, 16, seed=1, mode="engine", workload="zipf:1.1"
            )
        # ... but accepts the explicit uniform spec.
        res = repro.allocate(
            "heavy", 1000, 16, seed=1, mode="engine", workload="uniform"
        )
        assert res.complete

    def test_uniform_workload_never_forwarded(self):
        a = repro.allocate("greedy", 2000, 16, seed=4, workload="uniform")
        b = repro.allocate("greedy", 2000, 16, seed=4)
        assert np.array_equal(a.loads, b.loads)


class TestWorkloadBench:
    def test_bench_restricts_to_capable_and_records_spec(self):
        from repro.api import benchmark_registry

        records = benchmark_registry(
            4000, 16, seeds=(0,), workload="zipf:1.1"
        )
        assert records, "workload bench produced no records"
        names = {r.algorithm for r in records}
        assert "greedy" not in names and "batched" not in names
        assert {"heavy", "single"} <= names
        assert all(r.workload == "zipf:1.1" for r in records)
        assert all(r.mode != "engine" for r in records)

    def test_bench_explicit_non_capable_selection_errors(self):
        from repro.api import benchmark_registry

        with pytest.raises(ValueError, match="uniform workload only"):
            benchmark_registry(
                1000, 16, seeds=(0,), algorithms=("greedy",),
                workload="zipf:1.1",
            )

    def test_cli_workload_flag(self, capsys):
        from repro.__main__ import main

        assert main(
            ["heavy", "--m", "20000", "--n", "64", "--seed", "1",
             "--workload", "zipf:1.1"]
        ) == 0
        assert "heavy" in capsys.readouterr().out

    def test_cli_bench_workload_flag(self, capsys):
        from repro.__main__ import main

        assert main(
            ["bench", "--m", "4000", "--n", "16",
             "--algorithms", "heavy,single", "--workload", "zipf:1.1"]
        ) == 0
        out = capsys.readouterr().out
        assert "zipf:1.1" in out

    def test_run_benchmarks_workload_payload(self, tmp_path):
        import json
        import subprocess
        import sys
        from pathlib import Path

        repo = Path(__file__).resolve().parent.parent
        out_k = tmp_path / "k.json"
        out_w = tmp_path / "w.json"
        out_r = tmp_path / "r.json"
        out_d = tmp_path / "d.json"
        out_s = tmp_path / "s.json"
        proc = subprocess.run(
            [
                sys.executable,
                str(repo / "benchmarks" / "run_benchmarks.py"),
                "--scale", "smoke",
                # Every artifact flag redirected: the runner's default
                # paths are the checked-in full-scale artifacts at the
                # repo root, which a test must never clobber with a
                # smoke payload (regression: PR 4's replication
                # artifact was silently overwritten this way).
                "--output", str(out_k),
                "--workloads-output", str(out_w),
                "--replication-output", str(out_r),
                "--dynamic-output", str(out_d),
                "--service-output", str(out_s),
            ],
            capture_output=True,
            text=True,
            timeout=600,
        )
        assert proc.returncode == 0, proc.stdout + proc.stderr
        kernels = json.loads(out_k.read_text())
        scaling = kernels["scaling"]
        assert scaling["schema"] == 1
        curve = scaling["workers_curve"]
        assert [r["workers"] for r in curve["records"]] == [1, 2, 4, 8]
        assert all(r["value_identical"] for r in curve["records"])
        assert scaling["chunked_perball"]["equivalent_to_unchunked"] is True
        assert scaling["chunked_perball"]["peak_rss_bytes"] > 0
        payload = json.loads(out_w.read_text())
        assert payload["workload"] == "zipf:1.1+geomw:0.5+propcap"
        agreement = payload["perball_vs_aggregate"]
        assert {"heavy", "single", "stemann"} <= set(agreement)
        for stats in agreement.values():
            assert stats["aggregate_speedup"] is None or (
                stats["aggregate_speedup"] > 0
            )
        dynamic = json.loads(out_d.read_text())
        assert dynamic["headline"] == "heavy"
        assert dynamic["headline_message_speedup"] > 1.0
        assert {r["rebalance"] for r in dynamic["records"]} == {
            "incremental", "full_rerun"
        }
