"""The shared vectorized round-kernel layer: one backend for all protocols.

Every allocation protocol in the package — the paper's algorithms in
:mod:`repro.core`, the baselines in :mod:`repro.baselines`, and the
light-load subroutine in :mod:`repro.light` — executes the same round
skeleton:

1. **sample contacts** — active balls pick target bins (uniformly, with
   fan-out ``d``, or by a protocol-supplied deterministic rule);
2. **group and accept** — bins group the requests addressed to them and
   accept a subset under a capacity rule;
3. **commit and revoke** — accepted balls commit (resolving multiple
   accepts to one), loads/active sets/metrics/message tallies update.

Historically each protocol carried its own copy of that loop; this
module centralizes it.  :class:`RoundState` owns the flat numpy state
(per-bin loads, active-ball ids or the aggregate active count, the
round metrics, and message accounting) and exposes the three kernel
steps as methods.  A protocol is reduced to a *policy*: a per-round
choice of targets, capacities, accept rule, and message-cost shape.

Two granularities share the API:

* ``"perball"`` — exact per-ball semantics over arrays of ball choices
  (``O(m_i log m_i)`` work per round; practical to ``m ≈ 10^7``);
* ``"aggregate"`` — per-bin request *counts* drawn directly from the
  multinomial distribution (``O(n)`` per round, ``m ≈ 10^12``),
  identical in law for every per-bin and global statistic because the
  balls of a uniform-contact round are exchangeable.

Accept policies (the ``policy`` argument of :meth:`RoundState.group_and_accept`):

``"uniform"``
    Each bin accepts up to its capacity, chosen uniformly among its
    requesters (:func:`repro.fastpath.sampling.grouped_accept`); the
    aggregate form is ``min(counts, capacity)``.
``"all_or_nothing"``
    Stemann's collision rule: a bin accepts its entire request batch
    iff it fits within capacity, else none of it.
``"priority_commit"``
    The degree-``d`` phase rule of Lemmas 2/3: bins accept the
    smallest-mark requests up to capacity, balls commit to their
    smallest-mark accept, and revoked accepts return capacity within
    the same resolution (capacity is consumed by *commits* only).

The RNG draw order of each kernel deliberately matches the historical
per-protocol loops, so refactored protocols remain seed-for-seed
reproducible with their pre-kernel implementations — with one scoped
exception: a round whose bins are all saturated (zero residual
capacity everywhere) now skips its vacuous priority draws entirely
(see :func:`repro.fastpath.sampling.grouped_accept`), which offsets
the accept stream relative to pre-kernel code from that round on.
Such rounds reject everything in both versions; only the stream
offset differs, never the distribution.

Trial batching (the replication engine's backend): constructing the
aggregate-granularity state with ``trials=T`` gives every owned array a
leading trial axis — ``loads`` becomes ``(T, n)``, the active count a
``(T,)`` vector, messages and round counters per-trial — and the three
kernel steps advance all ``T`` independent replications of the same
``(m, n)`` instance in lock-step.  Each trial draws from its *own*
generator (``sample_contacts`` takes a sequence of ``T`` generators),
and trials that saturate early drop out of the active mask: their rows
stop changing and their generators stop being consumed.  Together
those two properties make a batched trial bitwise-identical to running
that trial alone through the scalar aggregate state — the invariant
the property tests (T=1 equivalence, permutation invariance, masked
isolation) and the ``replicate``-vs-``allocate_many`` equivalence
suite pin down.

Residual loads (the dynamic subsystem's backend): constructing a state
with ``initial_loads=`` starts the per-bin load vector at a residual
occupancy instead of zero — the bins already hold balls from earlier
epochs, and only the ``m`` *new* (arriving or displaced) balls run
through the kernel steps.  Every capacity rule a protocol computes
from ``state.loads`` then respects the residents automatically, which
is what makes incremental rebalancing (see :mod:`repro.dynamic`) a
policy over the unchanged kernels rather than a new engine.  The axis
composes with ``trials=T``: a ``(n,)`` residual broadcasts across
trials and a ``(T, n)`` matrix gives each trial its own, so dynamic
epochs are trial-batchable like everything else.  ``initial_loads``
never consumes randomness; a state whose bins are all saturated
relative to a protocol's thresholds simply yields zero capacity
everywhere, and protocol loops are expected to terminate without
drawing from their streams (the zero-draw regression pinned by the
saturation tests).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Literal, Optional, Sequence

import numpy as np

from repro.fastpath.backend import BackendLike, resolve_backend
from repro.fastpath.buffers import DtypePolicy, RoundBuffers
from repro.telemetry import current_telemetry
from repro.fastpath.sampling import (
    fill_choices,
    grouped_accept,
    multinomial_occupancy,
    multinomial_occupancy_batched,
    sample_choices,
)
from repro.simulation.metrics import MessageCounter, RoundMetrics, RunMetrics

__all__ = [
    "AcceptDecision",
    "ContactBatch",
    "Granularity",
    "RoundOutcome",
    "RoundState",
    "priority_commit_accept",
]

Granularity = Literal["perball", "aggregate"]


@dataclass
class ContactBatch:
    """One round's worth of requests, at either granularity.

    Attributes
    ----------
    n_targets:
        Size of the target space.  Usually the bin count, but protocols
        may group requests over a coarser space (the asymmetric
        algorithm's superbins).
    d:
        Contacts per active ball.
    requests_sent:
        Request messages charged for this batch (an ``(T,)`` int64
        vector for trial-batched states).  Protocols that model
        message loss lower this to the delivered count before the
        commit step.
    choices:
        Per-ball granularity: flat int64 array of request targets
        (``u * d`` entries, ball-major).
    requester_pos:
        Flat-request index -> position into the active-ball array.
        ``None`` means the identity (``d == 1``).
    counts:
        Aggregate granularity: per-target request counts (``(T, n)``
        for trial-batched states).
    trial_mask:
        Trial-batched states only: boolean mask of the trials that were
        live when this batch was sampled — the rows this round is
        allowed to touch.
    """

    n_targets: int
    d: int
    requests_sent: Any
    choices: Optional[np.ndarray] = None
    requester_pos: Optional[np.ndarray] = None
    counts: Optional[np.ndarray] = None
    trial_mask: Optional[np.ndarray] = None

    def positions(self) -> np.ndarray:
        """Requester position of every flat request (identity for d=1)."""
        if self.requester_pos is not None:
            return self.requester_pos
        if self.choices is None:
            raise ValueError("aggregate batches have no per-request positions")
        return np.arange(self.choices.size, dtype=np.int64)


@dataclass
class AcceptDecision:
    """Outcome of the group-and-accept step.

    Exactly one representation is populated:

    * ``accepted`` — per-ball granularity, boolean over flat requests
      (``uniform`` / ``all_or_nothing`` policies);
    * ``accepted_per_bin`` — aggregate granularity, per-target counts;
    * ``committed_pos``/``committed_bin`` — ``priority_commit`` policy,
      where accept and commit resolve in one pass (``resolved=True``).

    ``accepts_sent`` is the number of accept messages the bins sent
    (for ``priority_commit`` that equals the commits: revoked accepts
    return capacity and are modeled as not consuming a message, the
    accounting used by the degree-d family).  Trial-batched states
    report it as a ``(T,)`` vector and populate ``accepted_per_bin``
    with the ``(T, n)`` accepted-count matrix.
    """

    accepts_sent: Any
    accepted: Optional[np.ndarray] = None
    accepted_per_bin: Optional[np.ndarray] = None
    committed_pos: Optional[np.ndarray] = None
    committed_bin: Optional[np.ndarray] = None
    resolved: bool = False


@dataclass(frozen=True)
class RoundOutcome:
    """What one kernel round did, for protocol-level accounting.

    Trial-batched rounds report the per-trial quantities
    (``unallocated_start`` through ``unallocated_end``) as ``(T,)``
    int64 vectors; ``round_no`` is then the lock-step round index.
    """

    round_no: int
    unallocated_start: Any
    requests_sent: Any
    accepts_sent: Any
    commits: Any
    commit_messages: int
    unallocated_end: Any
    #: Global ids of the balls that committed this round (perball only).
    committed_balls: Optional[np.ndarray] = None
    #: Their target bins, aligned with ``committed_balls``.
    committed_bins: Optional[np.ndarray] = None
    #: Requester positions of every accepted request (perball, multi-
    #: contact resolution only) — for per-ball receive accounting.
    accepted_positions: Optional[np.ndarray] = None
    #: Requester positions, one per accept held by a committing ball —
    #: the commit/revoke notifications of step 3.
    commit_notice_positions: Optional[np.ndarray] = None


def priority_commit_accept(
    choices: np.ndarray,
    marks: np.ndarray,
    requester_pos: np.ndarray,
    n_balls: int,
    capacity: np.ndarray,
    backend: BackendLike = None,
) -> tuple[np.ndarray, np.ndarray]:
    """Resolve one degree-``d`` phase (Lemmas 2/3 accept rule).

    Bin-side: accept the requests with the smallest tie-break marks, up
    to capacity (i.i.d. marks uniformize the adversarial port order).
    Ball-side: commit to the accepting bin with the smallest mark;
    revoked accepts return capacity within the same resolution, so
    capacity is consumed by commits only.

    Both passes execute on the kernel backend
    (:mod:`repro.fastpath.backend`) — the accept pass shares the one
    grouping primitive with :func:`~repro.fastpath.sampling.grouped_accept`,
    the commit pass is a lexsort (``reference``) or a segmented
    min-mark reduction (``fused``), bitwise-identical either way.

    Parameters
    ----------
    choices, marks, requester_pos:
        Flat per-request targets, priorities, and requester positions.
    n_balls:
        Number of active balls (the requester-position space).
    capacity:
        Per-bin residual capacities.
    backend:
        Kernel backend (name or instance); ``None`` resolves the
        ambient selection.

    Returns
    -------
    (committed_mask, committed_bin)
        Over the active-ball axis; ``committed_bin`` is -1 for balls
        that did not commit.
    """
    return resolve_backend(backend).priority_commit_accept(
        choices, marks, requester_pos, n_balls, capacity
    )


class RoundState:
    """Flat-array round state shared by every vectorized protocol.

    Owns the per-bin load vector, the active-ball set (ids at per-ball
    granularity, a count at aggregate granularity), the per-round
    :class:`~repro.simulation.metrics.RunMetrics`, the running message
    total, and — when ``track_messages`` — the full per-ball/per-bin
    :class:`~repro.simulation.metrics.MessageCounter`.

    Protocols drive it with the three kernel steps::

        state = RoundState(m, n, granularity=mode)
        while state.active_count and state.rounds < budget:
            capacity = np.maximum(threshold(state.rounds) - state.loads, 0)
            batch = state.sample_contacts(rng)
            decision = state.group_and_accept(batch, capacity, accept_rng)
            state.commit_and_revoke(batch, decision, threshold=threshold(...))

    ``active`` is a public array: protocols with ball-level policy
    outside the kernel steps (fault injection crashes, handoff of
    stragglers) may shrink it between rounds.

    Workload support: ``weights`` (per-ball granularity) or
    ``weight_sum_sampler`` (aggregate) switch on the parallel
    ``weighted_loads`` vector — the per-bin weighted intake tracked
    alongside the count-based ``loads`` that all capacity rules use.
    ``sample_contacts`` accepts workload choice ``pvals`` at both
    granularities.  With all workload arguments at their defaults the
    state is bitwise-identical to the pre-workload kernels.

    Trial batching: ``trials=T`` (aggregate granularity only) gives
    every array a leading trial axis and advances T independent
    replications in lock-step — see the module docstring.  In that
    layout ``weight_sum_sampler`` is a sequence of T per-trial
    samplers, ``metrics`` is unavailable (each trial accumulates its
    own :class:`RunMetrics` in ``trial_metrics``), and ``rounds``
    counts lock-step iterations while ``trial_rounds[t]`` counts the
    rounds trial ``t`` actually executed.

    Residual loads: ``initial_loads=`` starts ``loads`` at an existing
    per-bin occupancy (``(n,)``, or ``(T, n)`` / broadcast-``(n,)`` for
    trial-batched states); only the ``m`` new balls are active, and
    ``placed_loads`` reports their intake separately.  See the module
    docstring and :mod:`repro.dynamic`.

    Memory policy: ``buffers=`` (a
    :class:`~repro.fastpath.buffers.RoundBuffers` arena) makes the
    kernel steps draw choices and accept priorities into reused
    storage through a bounded sampling tile, and ``dtype_policy=`` (a
    :class:`~repro.fastpath.buffers.DtypePolicy`) narrows bin indices,
    ball ids, and per-bin counts to int32 where the instance fits.
    Neither changes a drawn value: draws stay at the historical widths
    and only storage narrows, so loads, messages, and metrics are
    bitwise-identical to the default run (the scaling-equivalence
    tests pin this).  Long-lived callers (the dynamic epoch loop, the
    allocator service) share one arena across epochs/flushes to stop
    churning the allocator.

    Kernel backend: ``backend=`` pins which implementation of the
    grouping/commit/scatter primitives the state runs on
    (``"reference"`` lexsort or the default ``"fused"`` counting-sort
    path — see :mod:`repro.fastpath.backend`); ``None`` resolves the
    ambient :func:`~repro.fastpath.backend.use_backend` context, the
    ``REPRO_KERNEL_BACKEND`` environment variable, or the default.
    Backends are bitwise-identical by contract.
    """

    def __init__(
        self,
        m: int,
        n: int,
        *,
        granularity: Granularity = "perball",
        trials: Optional[int] = None,
        track_messages: bool = False,
        track_assignment: bool = False,
        metrics: Optional[RunMetrics] = None,
        weights: Optional[np.ndarray] = None,
        weight_sum_sampler=None,
        initial_loads: Optional[np.ndarray] = None,
        buffers: Optional[RoundBuffers] = None,
        dtype_policy: Optional[DtypePolicy] = None,
        backend: BackendLike = None,
    ) -> None:
        if m < 0 or n < 1:
            raise ValueError(f"need m >= 0 and n >= 1, got m={m}, n={n}")
        if granularity not in ("perball", "aggregate"):
            raise ValueError(
                f"granularity must be 'perball' or 'aggregate', "
                f"got {granularity!r}"
            )
        if trials is not None:
            if granularity != "aggregate":
                raise ValueError(
                    "trial batching requires granularity='aggregate' "
                    "(per-ball trials have ragged active sets; protocols "
                    "batch them with composite-bin kernels instead)"
                )
            if trials < 1:
                raise ValueError(f"trials must be >= 1, got {trials}")
            if metrics is not None:
                raise ValueError(
                    "trial-batched states own one RunMetrics per trial; "
                    "the metrics= override is scalar-only"
                )
            if weight_sum_sampler is not None and (
                not isinstance(weight_sum_sampler, (list, tuple))
                or len(weight_sum_sampler) != trials
            ):
                raise ValueError(
                    "trial-batched weight_sum_sampler must be a sequence "
                    f"of {trials} per-trial samplers"
                )
        self.m = m
        self.n = n
        self.granularity: Granularity = granularity
        self.trials = trials
        # Memory policy: the arena (reused scratch across rounds and
        # across runs) and the array widths.  Both default to the
        # historical behavior — fresh allocations, int64/float64 — and
        # neither changes a single drawn value (see
        # :mod:`repro.fastpath.buffers`).
        self.buffers = buffers
        # Kernel backend: resolved once at construction (explicit arg >
        # use_backend context > REPRO_KERNEL_BACKEND env > "fused"), so
        # a state's whole lifetime runs on one value-identical
        # implementation of the grouping/commit/scatter primitives.
        self.backend = resolve_backend(backend)
        # Telemetry sink, captured once: every per-round hook below is
        # a single ``is not None`` branch when telemetry is off.
        self._telemetry = current_telemetry()
        self.dtype_policy = dtype_policy or DtypePolicy.wide()
        self._index_dtype = self.dtype_policy.index_dtype
        self._load_dtype = self.dtype_policy.load_dtype
        # Residual occupancy: ``loads`` starts at the residents' per-bin
        # counts (zero for the classic one-shot run).  Kept as its own
        # array so protocols can report the placement delta
        # (``loads - initial_loads``) for the balls they actually moved.
        if initial_loads is not None:
            base = np.asarray(initial_loads)
            if not np.issubdtype(base.dtype, np.integer):
                raise ValueError(
                    f"initial_loads must be an integer array, "
                    f"got dtype {base.dtype}"
                )
            if np.any(base < 0):
                raise ValueError("initial_loads must be non-negative")
            if trials is not None:
                if base.shape == (n,):
                    base = np.broadcast_to(base, (trials, n))
                elif base.shape != (trials, n):
                    raise ValueError(
                        f"trial-batched initial_loads must have shape "
                        f"({n},) or ({trials}, {n}), got {base.shape}"
                    )
            elif base.shape != (n,):
                raise ValueError(
                    f"initial_loads must have shape ({n},), "
                    f"got {base.shape}"
                )
            self.initial_loads: Optional[np.ndarray] = base.astype(
                self._load_dtype, copy=True
            )
        else:
            self.initial_loads = None
        if trials is not None:
            self.loads = (
                self.initial_loads.copy()
                if self.initial_loads is not None
                else np.zeros((trials, n), dtype=self._load_dtype)
            )
            self.metrics = None
            self.trial_metrics = [RunMetrics(m, n) for _ in range(trials)]
            self.total_messages = np.zeros(trials, dtype=np.int64)
            self.trial_rounds = np.zeros(trials, dtype=np.int64)
        else:
            self.loads = (
                self.initial_loads.copy()
                if self.initial_loads is not None
                else np.zeros(n, dtype=self._load_dtype)
            )
            self.metrics = metrics if metrics is not None else RunMetrics(m, n)
            self.trial_metrics = None
            self.total_messages = 0
            self.trial_rounds = None
        self.rounds = 0
        # Workload weights: ``loads`` stays the ball-count vector that
        # drives every capacity rule (bitwise-identical to the unit
        # protocol); ``weighted_loads`` additionally accumulates the
        # per-bin weighted intake.  Per-ball granularity indexes an
        # explicit per-ball weight array by global ball id; aggregate
        # granularity draws per-bin weight *sums* from a sampler (i.i.d.
        # weights are exchangeable, so the law matches per-ball runs).
        if weights is not None and granularity != "perball":
            raise ValueError(
                "per-ball weights require granularity='perball'; "
                "aggregate runs take weight_sum_sampler instead"
            )
        if weight_sum_sampler is not None and granularity != "aggregate":
            raise ValueError(
                "weight_sum_sampler requires granularity='aggregate'; "
                "per-ball runs take the weights array instead"
            )
        if weights is not None:
            weights = np.asarray(
                weights, dtype=self.dtype_policy.weight_dtype
            )
            if weights.shape != (m,):
                raise ValueError(
                    f"weights must have shape ({m},), got {weights.shape}"
                )
        self.weights = weights
        self.weight_sum_sampler = weight_sum_sampler
        if weights is not None or weight_sum_sampler is not None:
            shape = (trials, n) if trials is not None else (n,)
            self.weighted_loads: Optional[np.ndarray] = np.zeros(
                shape, dtype=self.dtype_policy.weight_dtype
            )
        else:
            self.weighted_loads = None
        if granularity == "perball":
            self.active: Optional[np.ndarray] = np.arange(
                m, dtype=self._index_dtype
            )
            self._active_count = m
            self.counter = MessageCounter(m, n) if track_messages else None
            self.assignment = (
                np.full(m, -1, dtype=np.int64) if track_assignment else None
            )
        else:
            if track_messages or track_assignment:
                raise ValueError(
                    "per-ball accounting requires granularity='perball'"
                )
            self.active = None
            self._active_count = (
                np.full(trials, m, dtype=np.int64)
                if trials is not None
                else m
            )
            self.counter = None
            self.assignment = None

    @property
    def active_count(self) -> int:
        """Unallocated balls right now (summed over trials if batched)."""
        if self.active is not None:
            return int(self.active.size)
        if self.trials is not None:
            return int(self._active_count.sum())
        return self._active_count

    @property
    def placed_loads(self) -> np.ndarray:
        """Per-bin intake of this run's own balls (loads minus residual).

        Identical to ``loads`` for states constructed without
        ``initial_loads``.
        """
        if self.initial_loads is None:
            return self.loads
        return self.loads - self.initial_loads

    @property
    def active_counts(self) -> np.ndarray:
        """Per-trial unallocated counts (trial-batched states only)."""
        if self.trials is None:
            raise ValueError("active_counts requires a trial-batched state")
        return self._active_count

    @property
    def active_trials(self) -> np.ndarray:
        """Boolean mask of trials that still have unallocated balls."""
        if self.trials is None:
            raise ValueError("active_trials requires a trial-batched state")
        return self._active_count > 0

    @property
    def any_active(self) -> bool:
        """True while at least one trial (or the scalar run) is live."""
        return self.active_count > 0

    # -- kernel step 1: sample contacts ---------------------------------

    def sample_contacts(
        self,
        rng: Optional[
            np.random.Generator | Sequence[np.random.Generator]
        ] = None,
        *,
        d: int = 1,
        targets: Optional[np.ndarray] = None,
        n_targets: Optional[int] = None,
        pvals: Optional[np.ndarray] = None,
    ) -> ContactBatch:
        """Draw (or adopt) this round's request targets.

        Parameters
        ----------
        rng:
            Random stream for uniform/multinomial sampling (unused when
            ``targets`` is given).
        d:
            Contacts per active ball (requests are laid out ball-major,
            matching ``rng.integers(..., size=(u, d))`` flattening).
        targets:
            Protocol-supplied flat targets (deterministic rules, derived
            spaces like superbins).  Length must be ``active_count * d``.
        n_targets:
            Size of the target space when it is not the bin count.
        pvals:
            Non-uniform target probabilities: workload choice skew, or
            derived spaces with unequal blocks (superbins).  Default
            uniform over the target space at both granularities; the
            uniform path consumes the RNG exactly as the historical
            samplers did.

        Trial-batched states take ``rng`` as a sequence of per-trial
        generators; each live trial draws its own multinomial row and
        finished trials consume nothing.
        """
        space = n_targets if n_targets is not None else self.n
        if self.trials is not None:
            if targets is not None:
                raise ValueError(
                    "trial-batched states draw counts; per-ball targets "
                    "have no batched aggregate form"
                )
            if d != 1:
                raise ValueError("aggregate granularity supports d=1 only")
            if rng is None or isinstance(rng, np.random.Generator):
                raise ValueError(
                    "trial-batched sample_contacts needs one generator "
                    "per trial (a sequence, not a single Generator)"
                )
            mask = self._active_count > 0
            counts = multinomial_occupancy_batched(
                self._active_count, space, rng, pvals, active=mask
            )
            requests = np.where(mask, self._active_count, 0)
            return ContactBatch(
                n_targets=space,
                d=1,
                requests_sent=requests,
                counts=counts,
                trial_mask=mask,
            )
        u = self.active_count
        if self.granularity == "aggregate":
            if targets is not None:
                raise ValueError(
                    "aggregate granularity draws counts; pass pvals, "
                    "not per-ball targets"
                )
            if d != 1:
                raise ValueError("aggregate granularity supports d=1 only")
            counts = multinomial_occupancy(u, space, rng, pvals)
            return ContactBatch(
                n_targets=space, d=1, requests_sent=u, counts=counts
            )
        if targets is not None:
            if pvals is not None:
                raise ValueError("pass either targets or pvals, not both")
            choices = np.asarray(targets, dtype=np.int64)
            if choices.ndim == 2:
                choices = choices.reshape(-1)
            if choices.size != u * d:
                raise ValueError(
                    f"targets has {choices.size} entries, expected "
                    f"active_count * d = {u} * {d}"
                )
        elif self.buffers is not None:
            # Arena path: the same draws land in reused storage (at the
            # policy's index width) through a bounded sampling tile —
            # the memory shape of a chunked 10^8-ball round.
            choices = fill_choices(
                self.buffers.take("choices", u * d, self._index_dtype),
                space,
                rng,
                pvals,
                chunk_size=self.buffers.chunk_size,
            )
        else:
            choices = sample_choices(u * d, space, rng, pvals)
            if choices.dtype != self._index_dtype:
                # Value-preserving narrowing: the draw happened at the
                # historical int64 width (identical stream); only the
                # storage narrows.
                choices = choices.astype(self._index_dtype)
        requester_pos = (
            np.repeat(np.arange(u, dtype=np.int64), d) if d > 1 else None
        )
        return ContactBatch(
            n_targets=space,
            d=d,
            requests_sent=u * d,
            choices=choices,
            requester_pos=requester_pos,
        )

    # -- kernel step 2: group and accept --------------------------------

    def group_and_accept(
        self,
        batch: ContactBatch,
        capacity: Optional[np.ndarray],
        rng: Optional[np.random.Generator] = None,
        *,
        policy: str = "uniform",
        delivered: Optional[np.ndarray] = None,
    ) -> AcceptDecision:
        """Group requests per target and accept under ``capacity``.

        Parameters
        ----------
        batch:
            The contact batch from :meth:`sample_contacts`.
        capacity:
            Per-target residual capacities; ``None`` accepts everything
            (one-shot processes).
        rng:
            Random stream for within-bin selection (``uniform``) or
            tie-break marks (``priority_commit``).
        policy:
            ``"uniform"``, ``"all_or_nothing"``, or ``"priority_commit"``
            (see module docstring).
        delivered:
            Optional boolean mask over flat requests: only delivered
            requests reach their bins (message-loss modeling).  The
            returned ``accepted`` mask still spans all requests.
        """
        if batch.counts is not None:
            return self._group_and_accept_aggregate(batch, capacity, policy)
        choices = batch.choices
        k = choices.size
        if capacity is None:
            if policy != "uniform":
                raise ValueError("capacity=None requires policy='uniform'")
            return AcceptDecision(
                accepts_sent=k, accepted=np.ones(k, dtype=bool)
            )
        if policy == "uniform":
            if delivered is not None:
                accepted = np.zeros(k, dtype=bool)
                if delivered.any():
                    sub = grouped_accept(
                        choices[delivered],
                        capacity,
                        rng,
                        self.buffers,
                        backend=self.backend,
                    )
                    accepted[np.flatnonzero(delivered)[sub]] = True
            else:
                accepted = grouped_accept(
                    choices, capacity, rng, self.buffers, backend=self.backend
                )
            return AcceptDecision(
                accepts_sent=int(accepted.sum()), accepted=accepted
            )
        if policy == "all_or_nothing":
            if delivered is not None:
                raise ValueError(
                    "delivered masks are not supported for all_or_nothing"
                )
            counts = np.bincount(choices, minlength=batch.n_targets)
            fits = (counts > 0) & (counts <= np.maximum(capacity, 0))
            accepted = fits[choices]
            return AcceptDecision(
                accepts_sent=int(accepted.sum()), accepted=accepted
            )
        if policy == "priority_commit":
            if delivered is not None:
                raise ValueError(
                    "delivered masks are not supported for priority_commit"
                )
            marks = rng.random(k)
            committed_mask, committed_bin = self.backend.priority_commit_accept(
                choices, marks, batch.positions(), self.active_count, capacity
            )
            commits = int(committed_mask.sum())
            return AcceptDecision(
                accepts_sent=commits,
                committed_pos=committed_mask,
                committed_bin=committed_bin,
                resolved=True,
            )
        raise ValueError(f"unknown accept policy {policy!r}")

    def _group_and_accept_aggregate(
        self,
        batch: ContactBatch,
        capacity: Optional[np.ndarray],
        policy: str,
    ) -> AcceptDecision:
        counts = batch.counts
        if capacity is None:
            accepted = counts.copy()
        elif policy == "uniform":
            accepted = np.minimum(counts, np.maximum(capacity, 0))
        elif policy == "all_or_nothing":
            fits = (counts > 0) & (counts <= np.maximum(capacity, 0))
            accepted = np.where(fits, counts, 0)
        else:
            raise ValueError(
                f"policy {policy!r} has no aggregate form "
                "(priority_commit needs per-ball identity)"
            )
        # Trial-batched counts are (T, n): accepts are per-trial sums.
        accepts = (
            accepted.sum(axis=1) if accepted.ndim == 2 else int(accepted.sum())
        )
        return AcceptDecision(
            accepts_sent=accepts, accepted_per_bin=accepted
        )

    # -- kernel step 3: commit and revoke -------------------------------

    def commit_and_revoke(
        self,
        batch: ContactBatch,
        decision: AcceptDecision,
        *,
        threshold: Optional[float] = None,
        target_bins: Optional[np.ndarray] = None,
        target_counts: Optional[np.ndarray] = None,
        accept_cost: int = 1,
        count_commits: bool = False,
        commit_notifications: bool = False,
        record_counter: bool = True,
        record_accepts: bool = True,
    ) -> RoundOutcome:
        """Commit accepted balls, update state, and close the round.

        Resolves multiple accepts per ball (first accepted request in
        ball order — uniform among acceptors, since the accept pass
        already applied random priorities), bumps loads, shrinks the
        active set, appends the
        :class:`~repro.simulation.metrics.RoundMetrics` row, and adds
        this round's messages.

        Parameters
        ----------
        threshold:
            Recorded in the metrics row (the round's capacity rule).
        target_bins / target_counts:
            Override where committed balls land (per-ball bins /
            aggregate per-bin intake) when commits go to a different
            space than the contacts — the asymmetric algorithm's
            leader-to-member redirection.
        accept_cost:
            Messages charged per accept (0: accepts are silent, as in
            the one-shot baseline; 2: accept plus allocation notice).
        count_commits:
            Charge one extra message per commit (collision protocols
            where the commit is a distinct message).
        commit_notifications:
            Charge one message per accept held by a committing ball
            (commit/revoke notices of the light protocol) and expose
            ``commit_notice_positions`` on the outcome.
        record_counter:
            Feed the per-ball/per-bin
            :class:`~repro.simulation.metrics.MessageCounter` (when the
            state tracks one) with the canonical request/accept pattern.
            Protocols whose contacts live in a derived space record
            their own messages instead.
        record_accepts:
            Within ``record_counter``: also record bin->ball accepts
            (off for one-shot processes whose accepts are implicit).
        """
        if self.trials is not None:
            return self._commit_and_revoke_trials(
                batch,
                decision,
                threshold=threshold,
                target_counts=target_counts,
                accept_cost=accept_cost,
                count_commits=count_commits,
            )
        u = self.active_count
        if self.granularity == "aggregate" or batch.counts is not None:
            accepted = decision.accepted_per_bin
            commits = accepts = int(accepted.sum())
            intake = target_counts if target_counts is not None else accepted
            self.loads += intake
            if self.weight_sum_sampler is not None:
                self.weighted_loads += self.weight_sum_sampler(intake)
            self._active_count = u - commits
            outcome = self._close_round(
                batch,
                decision,
                threshold=threshold,
                unallocated_start=u,
                commits=commits,
                commit_messages=0,
                accept_cost=accept_cost,
                count_commits=count_commits,
                commit_notifications=commit_notifications,
                committed_balls=None,
                committed_bins=None,
                accepted_positions=None,
                commit_notice_positions=None,
            )
            return outcome

        balls = self.active
        accepted_positions: Optional[np.ndarray] = None
        notice_positions: Optional[np.ndarray] = None
        commit_messages = 0
        if decision.resolved:
            committed_mask = decision.committed_pos
            commit_bins = decision.committed_bin[committed_mask]
        elif batch.requester_pos is None:
            committed_mask = decision.accepted
            commit_bins = batch.choices[committed_mask]
            if commit_notifications:
                # d == 1: every committing ball holds exactly one accept.
                accepted_positions = np.flatnonzero(committed_mask)
                notice_positions = accepted_positions
                commit_messages = int(accepted_positions.size)
        else:
            accepted = decision.accepted
            acc_positions = batch.requester_pos[accepted]
            acc_bins = batch.choices[accepted]
            accepted_positions = acc_positions
            committed_mask = np.zeros(u, dtype=bool)
            commit_bins = np.zeros(0, dtype=np.int64)
            notice_positions = np.zeros(0, dtype=np.int64)
            if acc_positions.size:
                sorted_positions, sorted_bins = (
                    self.backend.sort_accepts_by_position(
                        acc_positions, acc_bins
                    )
                )
                first = np.concatenate(
                    ([True], sorted_positions[1:] != sorted_positions[:-1])
                )
                winners_pos = sorted_positions[first]
                commit_bins = sorted_bins[first]
                committed_mask[winners_pos] = True
                if commit_notifications:
                    # Every ball holding an accept commits under this
                    # policy, so each accepted request gets a notice.
                    notice_positions = sorted_positions
                    commit_messages = int(sorted_positions.size)
        commits = int(committed_mask.sum())
        committed_balls = balls[committed_mask]
        bins_for_load = target_bins if target_bins is not None else commit_bins
        self.backend.scatter_counts(self.loads, bins_for_load)
        if self.weights is not None and commits:
            # ``bins_for_load`` is aligned with the committed set (its
            # pairing is the assignment the protocol chose), so the
            # committing balls' weights land where the balls did.
            self.backend.scatter_weights(
                self.weighted_loads,
                bins_for_load,
                self.weights[committed_balls],
            )
        if self.assignment is not None and target_bins is None:
            self.assignment[committed_balls] = commit_bins
        if (
            record_counter
            and self.counter is not None
            and not decision.resolved
            and batch.requester_pos is None
        ):
            self.counter.record_bulk_ball_to_bin(batch.choices, balls)
            if record_accepts:
                self.counter.record_bulk_bin_to_ball(
                    commit_bins, committed_balls
                )
        self.active = balls[~committed_mask]
        return self._close_round(
            batch,
            decision,
            threshold=threshold,
            unallocated_start=u,
            commits=commits,
            commit_messages=commit_messages,
            accept_cost=accept_cost,
            count_commits=count_commits,
            commit_notifications=commit_notifications,
            committed_balls=committed_balls,
            committed_bins=bins_for_load,
            accepted_positions=accepted_positions,
            commit_notice_positions=notice_positions,
        )

    def _commit_and_revoke_trials(
        self,
        batch: ContactBatch,
        decision: AcceptDecision,
        *,
        threshold: Optional[float],
        target_counts: Optional[np.ndarray],
        accept_cost: int,
        count_commits: bool,
    ) -> RoundOutcome:
        """Commit one lock-step round across all live trials.

        Row-for-row this is the scalar aggregate commit: live trials
        take their accepted intake, consume their own weight-sum
        sampler (in per-trial stream order), shrink their active
        counts, append their :class:`RoundMetrics` row, and advance
        their round counter.  Finished trials (outside
        ``batch.trial_mask``) are untouched — no load change, no
        metrics row, no message charge, no sampler draw — which is the
        masked-trial-isolation invariant.
        """
        accepted = decision.accepted_per_bin
        mask = (
            batch.trial_mask
            if batch.trial_mask is not None
            else np.ones(self.trials, dtype=bool)
        )
        commits = accepted.sum(axis=1)
        intake = target_counts if target_counts is not None else accepted
        self.loads += intake
        if self.weight_sum_sampler is not None:
            # One sampler call per live trial, in trial order: each
            # closure draws from its own trial's weights stream exactly
            # as the scalar loop would have on this round.
            for t in np.flatnonzero(mask):
                self.weighted_loads[t] += self.weight_sum_sampler[t](
                    intake[t]
                )
        start = self._active_count.copy()
        self._active_count = start - commits
        accepts = np.asarray(decision.accepts_sent, dtype=np.int64)
        messages = batch.requests_sent + accept_cost * accepts
        if count_commits:
            messages = messages + commits
        self.total_messages += np.where(mask, messages, 0)
        if self._telemetry is not None:
            self._telemetry.count("kernel.rounds", int(mask.sum()))
            self._telemetry.count("kernel.commits", int(commits[mask].sum()))
            self._telemetry.count(
                "kernel.messages", int(messages[mask].sum())
            )
        row_max = self.loads.max(axis=1, initial=0)
        for t in np.flatnonzero(mask):
            self.trial_metrics[t].add_round(
                RoundMetrics(
                    round_no=int(self.trial_rounds[t]),
                    unallocated_start=int(start[t]),
                    requests_sent=int(batch.requests_sent[t]),
                    accepts_sent=int(accepts[t]),
                    rejects_sent=0,
                    commits=int(commits[t]),
                    unallocated_end=int(self._active_count[t]),
                    max_load=int(row_max[t]),
                    threshold=None if threshold is None else float(threshold),
                )
            )
        self.trial_rounds[mask] += 1
        outcome = RoundOutcome(
            round_no=self.rounds,
            unallocated_start=start,
            requests_sent=batch.requests_sent,
            accepts_sent=accepts,
            commits=commits,
            commit_messages=0,
            unallocated_end=self._active_count,
        )
        self.rounds += 1
        return outcome

    def _close_round(
        self,
        batch: ContactBatch,
        decision: AcceptDecision,
        *,
        threshold: Optional[float],
        unallocated_start: int,
        commits: int,
        commit_messages: int,
        accept_cost: int,
        count_commits: bool,
        commit_notifications: bool,
        committed_balls: Optional[np.ndarray],
        committed_bins: Optional[np.ndarray],
        accepted_positions: Optional[np.ndarray],
        commit_notice_positions: Optional[np.ndarray],
    ) -> RoundOutcome:
        unallocated_end = self.active_count
        messages = batch.requests_sent + accept_cost * decision.accepts_sent
        if count_commits:
            messages += commits
        if commit_notifications:
            messages += commit_messages
        self.total_messages += messages
        if self._telemetry is not None:
            self._telemetry.count("kernel.rounds")
            self._telemetry.count("kernel.commits", commits)
            self._telemetry.count("kernel.messages", messages)
        self.metrics.add_round(
            RoundMetrics(
                round_no=self.rounds,
                unallocated_start=unallocated_start,
                requests_sent=batch.requests_sent,
                accepts_sent=decision.accepts_sent,
                rejects_sent=0,
                commits=commits,
                unallocated_end=unallocated_end,
                max_load=int(self.loads.max(initial=0)),
                threshold=None if threshold is None else float(threshold),
            )
        )
        outcome = RoundOutcome(
            round_no=self.rounds,
            unallocated_start=unallocated_start,
            requests_sent=batch.requests_sent,
            accepts_sent=decision.accepts_sent,
            commits=commits,
            commit_messages=commit_messages,
            unallocated_end=unallocated_end,
            committed_balls=committed_balls,
            committed_bins=committed_bins,
            accepted_positions=accepted_positions,
            commit_notice_positions=commit_notice_positions,
        )
        self.rounds += 1
        return outcome
