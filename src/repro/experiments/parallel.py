"""Process-pool execution of repeated runs.

The simulations are CPU-bound numpy code, so Python threads cannot
parallelize repetitions (the GIL serializes the interpreter between the
vectorized sections — the limitation the calibration notes flag).
Repetitions over seeds are embarrassingly parallel, though, and
``multiprocessing`` sidesteps the GIL entirely: this module fans a
seed list out over worker *processes*, following the message-passing
idiom of the HPC guides (each worker owns its instance; only small
result summaries cross process boundaries).

Workers re-import :mod:`repro` and dispatch by *algorithm name* through
the allocator registry (plain strings and kwargs are picklable where
closures are not), so the entry point works under the default ``fork``
and ``spawn`` start methods alike, and every registered algorithm —
including aliases like ``greedy_d`` — is runnable without touching
this module.

:func:`allocate_batch` is the lower-level primitive behind
:func:`repro.allocate_many` / :func:`repro.sweep`: it maps full
dispatch tasks (algorithm, instance, spawned seed, mode, options) over
a pool and returns complete :class:`~repro.result.AllocationResult`
objects instead of summaries.

:func:`replicate_sharded` parallelizes the *trial axis* of the
trial-batched replication engine: the ``trials=T`` pre-spawned seed
children are cut into contiguous shards, each worker process runs its
shard through :func:`repro.api.replicate.run_batched`, and the
``(T, n)`` load matrix crosses the process boundary through one
``multiprocessing.shared_memory`` block instead of ``T`` pickled
arrays.  Because trial ``t`` draws only from its own pre-spawned
child streams, a shard's outcome is per-trial bitwise-identical to
the full batch — ``workers=1`` vs ``workers=k`` is value-identical
(the sharded-equivalence tests pin this).
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Optional, Sequence

import numpy as np

__all__ = [
    "ALGORITHMS",
    "allocate_batch",
    "replicate_sharded",
    "run_one",
    "parallel_results",
    "parallel_gaps",
]


def _algorithm_names() -> tuple[str, ...]:
    from repro.api import allocator_names

    return allocator_names()


class _AlgorithmNames(tuple):
    """Registry-backed view kept for backward compatibility.

    Historically a hard-coded tuple; now resolved from the allocator
    registry so it can never drift.  Membership is alias-aware.
    """

    def __new__(cls, names=None):
        # The optional argument keeps tuple pickling/deepcopy working
        # (both reconstruct via cls(iterable)).
        return super().__new__(
            cls, _algorithm_names() if names is None else names
        )

    def __contains__(self, name: object) -> bool:
        if tuple.__contains__(self, name):
            return True
        try:
            from repro.api import resolve_name

            resolve_name(str(name))
            return True
        except ValueError:
            return False


#: Names accepted by :func:`run_one` (canonical registry names;
#: aliases such as ``greedy_d`` or ``single_choice`` also resolve).
ALGORITHMS: tuple[str, ...] = _AlgorithmNames()


def run_one(algorithm: str, m: int, n: int, seed: int, **kwargs: Any) -> dict:
    """Run one allocation in the current process; return a summary dict.

    Returns only small plain data (gap, max load, rounds, messages) so
    the inter-process payload stays negligible.
    """
    from repro.api import allocate

    # No explicit mode means the algorithm's own default (mode=None),
    # not "auto": the harness's historical numbers must reproduce
    # bitwise from the same seeds regardless of instance size.
    mode = kwargs.pop("mode", None)
    result = allocate(algorithm, m, n, seed=seed, mode=mode, **kwargs)
    return {
        "algorithm": result.algorithm,
        "seed": seed,
        "gap": result.gap,
        "max_load": result.max_load,
        "rounds": result.rounds,
        "total_messages": result.total_messages,
        "complete": result.complete,
    }


def _allocate_task(task: tuple):
    algorithm, m, n, seed, mode, options = task
    from repro.api import allocate

    return allocate(algorithm, m, n, seed=seed, mode=mode, **options)


def allocate_batch(
    tasks: Sequence[tuple], *, workers: Optional[int] = None
) -> list:
    """Run dispatch tasks, optionally across worker processes.

    Each task is ``(algorithm, m, n, seed, mode, options)`` — exactly
    the arguments of :func:`repro.allocate`.  Everything in a task must
    be picklable (spawned :class:`numpy.random.SeedSequence` objects
    are).  Results return in task order regardless of worker count, so
    parallelism never changes values, only wall clock.
    """
    task_list = list(tasks)
    if not task_list:
        return []
    max_workers = workers or min(len(task_list), os.cpu_count() or 1)
    if max_workers <= 1 or len(task_list) == 1:
        return [_allocate_task(t) for t in task_list]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        return list(pool.map(_allocate_task, task_list))


def _shard_bounds(total: int, shards: int) -> list[tuple[int, int]]:
    """Contiguous ``[start, stop)`` shard boundaries covering
    ``range(total)``, at most ``shards`` of them, never empty."""
    shards = max(1, min(shards, total))
    base, extra = divmod(total, shards)
    bounds = []
    start = 0
    for s in range(shards):
        stop = start + base + (1 if s < extra else 0)
        bounds.append((start, stop))
        start = stop
    return bounds


def _replicate_shard(task: tuple) -> list:
    """Worker: run one contiguous trial shard on the batched engine.

    Loads land in the parent's shared-memory block (row = global trial
    index) and are stripped from the pickled results; everything else
    on an :class:`~repro.result.AllocationResult` is small.
    """
    (
        algorithm,
        m,
        n,
        children,
        workload,
        runner_kwargs,
        backend,
        shm_name,
        start,
        total,
    ) = task
    from multiprocessing import shared_memory

    from repro.api.replicate import run_batched
    from repro.api.spec import get_spec
    from repro.fastpath.backend import use_backend

    # Re-pin the kernel backend inside the worker: the parent's
    # contextvar does not cross the process boundary (backend=None
    # resolves the worker's own env/default — value-identical anyway).
    with use_backend(backend):
        results = run_batched(
            get_spec(algorithm), m, n, children, workload, runner_kwargs
        )
    shm = shared_memory.SharedMemory(name=shm_name)
    try:
        block = np.ndarray((total, n), dtype=np.int64, buffer=shm.buf)
        for i, result in enumerate(results):
            block[start + i, :] = result.loads
            result.loads = None  # parent rehydrates from the block
    finally:
        shm.close()
    return results


def replicate_sharded(
    algorithm: str,
    m: int,
    n: int,
    children: Sequence,
    workload,
    runner_kwargs: dict[str, Any],
    *,
    workers: int,
    backend: Optional[str] = None,
) -> list:
    """Trial-axis fan-out of the batched replication engine.

    Splits the pre-spawned seed children into ``workers`` contiguous
    shards, runs each shard's :func:`repro.api.replicate.run_batched`
    in its own process, and returns the stitched results in trial
    order.  The ``(trials, n)`` int64 load matrix travels through one
    :mod:`multiprocessing.shared_memory` block — workers write their
    rows in place and strip ``result.loads`` before pickling, so the
    inter-process payload is metrics and metadata only.

    Value identity: trial ``t`` draws exclusively from its own child
    streams (``children[t]``), and the lock-step engine's per-trial
    outcome does not depend on which other trials share its batch —
    so any shard partition returns per-trial bitwise-identical
    results, and ``workers=k`` equals ``workers=1`` value-for-value.
    """
    total = len(children)
    bounds = _shard_bounds(total, workers)
    from repro.api.replicate import run_batched
    from repro.api.spec import get_spec

    if len(bounds) <= 1:
        from repro.fastpath.backend import use_backend

        with use_backend(backend):
            return run_batched(
                get_spec(algorithm),
                m,
                n,
                list(children),
                workload,
                runner_kwargs,
            )
    from multiprocessing import shared_memory

    shm = shared_memory.SharedMemory(create=True, size=total * n * 8)
    try:
        tasks = [
            (
                algorithm,
                m,
                n,
                list(children[start:stop]),
                workload,
                runner_kwargs,
                backend,
                shm.name,
                start,
                total,
            )
            for start, stop in bounds
        ]
        with ProcessPoolExecutor(max_workers=len(bounds)) as pool:
            shards = list(pool.map(_replicate_shard, tasks))
        block = np.ndarray((total, n), dtype=np.int64, buffer=shm.buf)
        results = [result for shard in shards for result in shard]
        for i, result in enumerate(results):
            result.loads = block[i].copy()
    finally:
        shm.close()
        shm.unlink()
    return results


def parallel_results(
    algorithm: str,
    m: int,
    n: int,
    seeds: Sequence[int],
    *,
    workers: Optional[int] = None,
    **kwargs: Any,
) -> list[dict]:
    """Run ``algorithm`` once per seed across worker processes.

    Parameters
    ----------
    algorithm:
        Any registered allocator name or alias (see :data:`ALGORITHMS`).
    m, n:
        Instance size.
    seeds:
        One run per seed; results come back in seed order.
    workers:
        Process count (default: ``min(len(seeds), cpu_count)``).
    kwargs:
        Forwarded to the algorithm (e.g. ``mode="aggregate"``, ``d=2``).
    """
    from repro.api import resolve_name

    resolve_name(algorithm)  # fail fast, before spinning up workers
    if not seeds:
        raise ValueError("need at least one seed")
    max_workers = workers or min(len(seeds), os.cpu_count() or 1)
    if max_workers == 1:
        return [run_one(algorithm, m, n, seed, **kwargs) for seed in seeds]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = [
            pool.submit(run_one, algorithm, m, n, seed, **kwargs)
            for seed in seeds
        ]
        return [f.result() for f in futures]


def parallel_gaps(
    algorithm: str,
    m: int,
    n: int,
    seeds: Sequence[int],
    *,
    workers: Optional[int] = None,
    **kwargs: Any,
) -> list[float]:
    """Convenience: just the max-load gaps, in seed order."""
    return [
        r["gap"]
        for r in parallel_results(
            algorithm, m, n, seeds, workers=workers, **kwargs
        )
    ]
