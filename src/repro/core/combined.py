"""The combined algorithm (Section 3, "A Note on Success Probability").

``A_heavy`` succeeds with probability ``1 - n^{-c}`` — vacuous when
``n`` is a small constant.  The paper's fix: when
``n < log log(m/n)``, run the deterministic trivial algorithm instead
(``n`` rounds, perfectly balanced), which is *within the round budget*
in exactly that regime.  The combination succeeds with probability
``1 - o(1)`` over the entire parameter range.

:func:`run_combined` implements the dispatch and records which branch
ran; experiment T8 exercises both sides of the boundary.
"""

from __future__ import annotations

from typing import Optional

from repro.api.spec import register_allocator, register_replicator
from repro.core.heavy import HeavyConfig, replicate_heavy, run_heavy
from repro.core.trivial import replicate_trivial, run_trivial
from repro.result import AllocationResult
from repro.utils.logstar import loglog2
from repro.utils.validation import ensure_m_n

__all__ = ["replicate_combined", "run_combined", "should_use_trivial"]


def should_use_trivial(m: int, n: int) -> bool:
    """The paper's dispatch test: ``n < log log(m/n)``.

    In this regime ``n`` rounds fit inside the ``O(log log(m/n))``
    budget and the deterministic algorithm's perfect balance beats any
    probabilistic guarantee that degrades with small ``n``.
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    return n < loglog2(m / n)


@register_allocator(
    "combined",
    summary="Section 3 dispatcher: trivial for tiny n, else A_heavy",
    paper_ref="Section 3",
    modes=("perball", "aggregate", "engine"),
    kernel_backed=True,
    workload_capable=True,
    config_type=HeavyConfig,
)
def run_combined(
    m: int,
    n: int,
    *,
    seed=None,
    config: Optional[HeavyConfig] = None,
    mode: str = "perball",
    workload=None,
) -> AllocationResult:
    """Run the combined algorithm of Section 3.

    Dispatches to :func:`~repro.core.trivial.run_trivial` when
    ``n < log log(m/n)`` and to :func:`~repro.core.heavy.run_heavy`
    otherwise.  The chosen branch is recorded in
    ``result.extra["branch"]``.  ``workload`` is forwarded to the
    chosen branch (see each branch's docstring for its workload
    semantics; engine mode supports the uniform workload only).
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    if should_use_trivial(m, n):
        result = run_trivial(m, n, seed=seed, workload=workload)
        result.extra["branch"] = "trivial"
    else:
        result = run_heavy(
            m,
            n,
            seed=seed,
            mode=mode,  # type: ignore[arg-type]
            config=config or HeavyConfig(),
            workload=workload,
        )
        result.extra["branch"] = "heavy"
    result.algorithm = "combined"
    return result


@register_replicator("combined", equivalent_mode="aggregate")
def replicate_combined(
    m: int,
    n: int,
    *,
    trials: int,
    seed_seqs,
    workload=None,
    config: Optional[HeavyConfig] = None,
) -> list[AllocationResult]:
    """Run ``trials`` seeded replications of the combined algorithm.

    The Section 3 dispatch test depends only on ``(m, n)``, so every
    trial takes the same branch: the batch delegates wholesale to the
    trivial or heavy trial-batched engine.  Trial ``t`` is
    bitwise-identical to ``run_combined(m, n, seed=seed_seqs[t],
    mode="aggregate", ...)``.
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    if should_use_trivial(m, n):
        results = replicate_trivial(
            m, n, trials=trials, seed_seqs=seed_seqs, workload=workload
        )
        branch = "trivial"
    else:
        results = replicate_heavy(
            m,
            n,
            trials=trials,
            seed_seqs=seed_seqs,
            workload=workload,
            config=config or HeavyConfig(),
        )
        branch = "heavy"
    for result in results:
        result.extra["branch"] = branch
        result.algorithm = "combined"
    return results
