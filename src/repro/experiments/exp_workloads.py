"""Experiment W1: allocation quality under increasing choice skew.

The paper's guarantees are stated for uniform contacts, but the
threshold mechanism is *oblivious to the request distribution*: bins
accept up to ``T_i - load`` no matter where requests come from, so the
load cap survives arbitrary skew — what degrades is progress (cold
bins stop being contacted, so stragglers ride the phase-2 handoff).
The naive one-shot process has no such cap: its hottest bin absorbs
the full skew, and the non-adaptive parallel d-choice baseline pays in
rounds (one grant per hot bin per round).  W1 measures all three
across a Zipf exponent sweep through the workload-aware dispatch API.
"""

from __future__ import annotations

import numpy as np

from repro.api import allocate
from repro.experiments.plotting import ascii_chart
from repro.experiments.report import ExperimentReport
from repro.experiments.runner import seed_list

__all__ = ["exp_w1"]


def exp_w1(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """W1 — max-load gap of heavy/single/dchoice under Zipf choice skew."""
    report = ExperimentReport(
        exp_id="W1",
        title="Max-load gap vs Zipf choice-skew exponent",
        claim="extension: oblivious thresholds cap skewed demand at "
        "~T_i + O(1) while the naive gap tracks the hottest bin's "
        "excess mass (p_max * m - m/n) and parallel d-choice pays in "
        "rounds",
        columns=[
            "zipf s",
            "p_max*n",
            "heavy gap",
            "heavy rounds",
            "naive gap",
            "naive(pred)",
            "dchoice rounds",
        ],
    )
    if scale == "quick":
        n, ratio, reps = 256, 64, 2
        exponents = [0.0, 0.5, 1.0]
    else:
        n, ratio, reps = 1024, 64, 3
        exponents = [0.0, 0.25, 0.5, 0.75, 1.0, 1.25]
    m = n * ratio
    # dchoice issues one grant per bin per round, so it runs at its
    # natural near-n scale (as in the bench harness) — the metric of
    # interest is its round blow-up, not the gap.
    m_dchoice = 4 * n

    ok = True
    heavy_gaps, naive_gaps = [], []
    for s in exponents:
        workload = None if s == 0 else f"zipf:{s:g}"
        from repro.workloads import Workload

        pvals = Workload.zipf(s).pvals(n) if s > 0 else np.full(n, 1.0 / n)
        p_max = float(pvals.max())
        h_gap = h_rounds = nv_gap = dc_rounds = 0.0
        for rep_seed in seed_list(seed, reps):
            h = allocate("heavy", m, n, seed=rep_seed, workload=workload)
            nv = allocate("single", m, n, seed=rep_seed, workload=workload)
            dc = allocate(
                "dchoice", m_dchoice, n, seed=rep_seed, workload=workload
            )
            h_gap += h.gap / reps
            h_rounds += h.rounds / reps
            nv_gap += nv.gap / reps
            dc_rounds += dc.rounds / reps
            ok = ok and h.complete
        naive_pred = p_max * m - m / n
        report.add_row(
            s, p_max * n, h_gap, h_rounds, nv_gap, naive_pred, dc_rounds
        )
        heavy_gaps.append(h_gap)
        naive_gaps.append(nv_gap)
        # The threshold cap: heavy's gap must stay far below the naive
        # skew penalty once skew is material (hot bin >= 2x fair share).
        if p_max * n >= 2.0:
            ok = ok and h_gap <= 0.25 * naive_pred
    # Uniform sanity: at s=0 heavy keeps its O(1) gap.
    ok = ok and heavy_gaps[0] <= 8.0
    report.charts.append(
        ascii_chart(
            exponents,
            {"heavy": heavy_gaps, "naive": naive_gaps},
            title="max-load gap vs Zipf exponent (thresholds cap skew)",
            x_label="zipf s",
        )
    )
    report.passed = ok
    report.notes.append(
        "heavy's bins still accept only T_i - load requests, so skew "
        "converts into phase-2 handoff work, not load; the naive "
        "process inherits the hottest bin's full excess mass."
    )
    report.notes.append(
        "dchoice runs at m=4n (its natural scale): skew shows up as "
        "extra rounds because a hot bin grants one accept per round."
    )
    return report
