"""Threshold schedules for the symmetric threshold protocol.

A *threshold schedule* produces the cumulative acceptance threshold
``T_i`` for each round ``i``; a bin with load ``ℓ`` accepts up to
``T_i - ℓ`` requests.  Schedules are **oblivious**: ``T_i`` may depend
only on ``(m, n, i)`` and the estimate recursion — never on the balls'
random choices — matching both the algorithm of Section 3 and the
obliviousness requirement of the lower-bound family (Section 4, step 1).

Provided schedules:

* :class:`PaperSchedule` — the paper's
  ``T_i = m/n - (m̃_i/n)^{2/3}``, ``m̃_{i+1} = m̃_i^{2/3} n^{1/3}``
  (Section 3, Algorithm ``A_heavy`` step 2b-2c);
* :class:`FixedSchedule` — the naive ``T_i = m/n + c`` for all ``i``
  (the Section 1.1 negative example, needing ``Ω(log n)`` rounds);
* :class:`ExponentSchedule` — the ablation family
  ``T_i = m/n - (m̃_i/n)^{alpha}`` with ``m̃_{i+1} = m̃_i^{alpha}
  n^{1-alpha}``; ``alpha = 2/3`` recovers :class:`PaperSchedule`
  (experiment A1 sweeps ``alpha``).

``T_i`` values are real; the protocol floors them (the paper assumes
integrality "as we aim for asymptotic bounds").  Schedules guarantee
monotone non-decreasing integer thresholds.
"""

from __future__ import annotations

import abc
import math
from typing import Optional

from repro.utils.validation import ensure_m_n

__all__ = [
    "ThresholdSchedule",
    "PaperSchedule",
    "FixedSchedule",
    "ExponentSchedule",
]


class ThresholdSchedule(abc.ABC):
    """Oblivious per-round cumulative thresholds.

    Subclasses implement :meth:`raw_threshold`; the public
    :meth:`threshold` floors and monotonizes.  :meth:`phase1_rounds`
    reports how many threshold rounds the schedule prescribes before the
    protocol should hand off to ``A_light`` (``None`` = run until the
    caller's own stopping rule, used by the fixed schedule which has no
    intrinsic endpoint).
    """

    def __init__(self, m: int, n: int) -> None:
        self.m, self.n = ensure_m_n(m, n, require_heavy=True)

    @abc.abstractmethod
    def raw_threshold(self, round_index: int) -> float:
        """The schedule's real-valued ``T_i``."""

    @abc.abstractmethod
    def estimate(self, round_index: int) -> float:
        """The unallocated-ball estimate ``m̃_i`` at the start of round
        ``i`` (``m̃_0 = m``)."""

    def phase1_rounds(self) -> Optional[int]:
        """Number of threshold rounds before handing off, or ``None``."""
        return None

    def threshold(self, round_index: int) -> int:
        """Integral, monotone, non-negative ``T_i``."""
        if round_index < 0:
            raise ValueError(f"round_index must be >= 0, got {round_index}")
        values = [self.raw_threshold(i) for i in range(round_index + 1)]
        best = 0.0
        for v in values:
            best = max(best, v)
        return max(0, math.floor(best))

    def capacity(self, round_index: int) -> int:
        """Fresh capacity opened in round ``i``: ``T_i - T_{i-1}``."""
        if round_index == 0:
            return self.threshold(0)
        return self.threshold(round_index) - self.threshold(round_index - 1)


class PaperSchedule(ThresholdSchedule):
    """The schedule of Algorithm ``A_heavy`` (Section 3).

    ``T_i = m/n - (m̃_i/n)^{2/3}`` with ``m̃_0 = m`` and
    ``m̃_{i+1} = m̃_i^{2/3} n^{1/3}``; closed form
    ``m̃_i = m^{(2/3)^i} n^{1-(2/3)^i}``.  Phase 1 ends once
    ``m̃_i <= stop_factor * n`` (default 2, after which at most ``O(n)``
    balls remain w.h.p. — Claims 2-4).
    """

    def __init__(self, m: int, n: int, *, stop_factor: float = 2.0) -> None:
        super().__init__(m, n)
        if stop_factor < 1.0:
            raise ValueError(f"stop_factor must be >= 1, got {stop_factor}")
        self.stop_factor = stop_factor

    def estimate(self, round_index: int) -> float:
        if round_index < 0:
            raise ValueError(f"round_index must be >= 0, got {round_index}")
        exponent = (2.0 / 3.0) ** round_index
        # m̃_i = m^{(2/3)^i} n^{1-(2/3)^i}; computed in log space for
        # numerical stability at extreme m.
        log_mt = exponent * math.log(self.m) + (1.0 - exponent) * math.log(self.n)
        return math.exp(log_mt)

    def raw_threshold(self, round_index: int) -> float:
        return self.m / self.n - (self.estimate(round_index) / self.n) ** (2.0 / 3.0)

    def phase1_rounds(self) -> int:
        limit = self.stop_factor * self.n
        i = 0
        while self.estimate(i) > limit and i < 512:
            i += 1
        return i


class FixedSchedule(ThresholdSchedule):
    """The naive constant threshold ``T = m/n + slack`` (Section 1.1).

    A bin accepts up to ``T`` balls in total from round 0.  The paper's
    intuition section shows this variant fills a constant fraction of
    bins after one round and then needs ``Ω(log n)`` rounds overall —
    experiment F2 measures exactly that.
    """

    def __init__(self, m: int, n: int, *, slack: int = 1) -> None:
        super().__init__(m, n)
        if slack < 0:
            raise ValueError(f"slack must be >= 0, got {slack}")
        self.slack = slack

    def raw_threshold(self, round_index: int) -> float:
        return math.ceil(self.m / self.n) + self.slack

    def estimate(self, round_index: int) -> float:
        # No estimate recursion; the schedule is constant.  Report the
        # trivial bound (every ball may still be unallocated).
        return float(self.m)

    def phase1_rounds(self) -> None:
        return None


class ExponentSchedule(ThresholdSchedule):
    """Ablation family: ``T_i = m/n - (m̃_i/n)^{alpha}`` with
    ``m̃_{i+1} = m̃_i^{alpha} n^{1-alpha}``.

    ``alpha`` trades per-round progress against underload risk: larger
    ``alpha`` (closer to 1) keeps thresholds closer to the mean so fewer
    balls remain per round, but bins fail to fill more often (Claim 1's
    exponent ``(m̃_i/n)^{1-alpha}``... for the paper's analysis to give a
    w.h.p. bound one needs ``delta^2 * mu = (m̃_i/n)^{2(1-alpha)-...}``
    to diverge; ``alpha = 2/3`` balances ``delta = (m/n)^{-1/3}`` against
    the mean).  Experiment A1 sweeps ``alpha in {1/2, 2/3, 3/4, 0.9}``.
    """

    def __init__(
        self, m: int, n: int, *, alpha: float, stop_factor: float = 2.0
    ) -> None:
        super().__init__(m, n)
        if not 0.0 < alpha < 1.0:
            raise ValueError(f"alpha must be in (0, 1), got {alpha}")
        if stop_factor < 1.0:
            raise ValueError(f"stop_factor must be >= 1, got {stop_factor}")
        self.alpha = alpha
        self.stop_factor = stop_factor

    def estimate(self, round_index: int) -> float:
        if round_index < 0:
            raise ValueError(f"round_index must be >= 0, got {round_index}")
        exponent = self.alpha**round_index
        log_mt = exponent * math.log(self.m) + (1.0 - exponent) * math.log(self.n)
        return math.exp(log_mt)

    def raw_threshold(self, round_index: int) -> float:
        return self.m / self.n - (self.estimate(round_index) / self.n) ** self.alpha

    def phase1_rounds(self) -> int:
        limit = self.stop_factor * self.n
        i = 0
        while self.estimate(i) > limit and i < 2048:
            i += 1
        return i
