"""The common result type returned by every allocation algorithm.

All entry points — the paper's algorithms, the baselines, engine-mode and
vectorized runs alike — return an :class:`AllocationResult` so experiments
and tests can treat them uniformly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.analysis.stats import RunStatistics, summarize_loads
from repro.simulation.metrics import MessageCounter, RunMetrics

__all__ = ["AllocationResult"]


@dataclass
class AllocationResult:
    """Outcome of allocating ``m`` balls into ``n`` bins.

    Attributes
    ----------
    algorithm:
        Human-readable algorithm identifier (e.g. ``"heavy"``,
        ``"single-choice"``).
    m, n:
        Instance size.
    loads:
        Final per-bin load vector; ``loads.sum() == m`` whenever
        ``complete`` is true.
    rounds:
        Number of synchronous rounds executed (0 for one-shot sequential
        baselines, which are *not* round-based; they report 0 and set
        ``sequential=True``).
    metrics:
        Per-round progress records (may be empty for sequential
        baselines).
    messages:
        Full message accounting, or ``None`` when the run used the
        aggregate fast path that does not track per-agent counts.
    total_messages:
        Total messages sent, tracked even by the aggregate path.
    complete:
        Whether every ball was allocated.  Algorithms that can leave
        balls unallocated under a round budget (e.g. a truncated
        fixed-threshold run) set this to False and report the leftover
        count in ``unallocated``.
    sequential:
        True for non-parallel baselines (greedy[d], single-choice);
        their "rounds" are not comparable to the parallel algorithms'.
    seed_entropy:
        Root entropy of the RNG, for exact reproduction.
    """

    algorithm: str
    m: int
    n: int
    loads: np.ndarray
    rounds: int
    metrics: Optional[RunMetrics] = None
    messages: Optional[MessageCounter] = None
    total_messages: int = 0
    complete: bool = True
    unallocated: int = 0
    sequential: bool = False
    seed_entropy: tuple[int, ...] = field(default_factory=tuple)
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.loads = np.asarray(self.loads, dtype=np.int64)
        if self.loads.ndim != 1 or self.loads.size != self.n:
            raise ValueError(
                f"loads must be a 1-D array of length n={self.n}, "
                f"got shape {self.loads.shape}"
            )
        allocated = int(self.loads.sum())
        expected = self.m - self.unallocated
        if allocated != expected:
            raise ValueError(
                f"loads sum to {allocated} but m - unallocated = {expected}"
            )
        if self.complete and self.unallocated:
            raise ValueError("complete runs cannot report unallocated balls")

    # -- derived quantities ----------------------------------------------

    @property
    def max_load(self) -> int:
        """The paper's objective: the maximum bin load."""
        return int(self.loads.max())

    @property
    def gap(self) -> float:
        """Max load minus the perfect average ``m/n``."""
        return self.max_load - self.m / self.n

    @property
    def average_load(self) -> float:
        return self.m / self.n

    def statistics(self) -> RunStatistics:
        """Full load-distribution summary (requires a complete run)."""
        if not self.complete:
            raise ValueError(
                "statistics() requires a complete allocation; "
                f"{self.unallocated} balls unallocated"
            )
        return summarize_loads(self.loads, self.m)

    @property
    def unallocated_history(self) -> list[int]:
        """``m_i`` per round, when per-round metrics were recorded."""
        if self.metrics is None:
            return []
        return self.metrics.unallocated_history

    def describe(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"algorithm     : {self.algorithm}",
            f"instance      : m={self.m}, n={self.n} (m/n={self.m / self.n:.4g})",
            f"max load      : {self.max_load} (gap {self.gap:+.3f})",
            f"rounds        : {self.rounds}"
            + (" (sequential)" if self.sequential else ""),
            f"messages      : {self.total_messages}",
            f"complete      : {self.complete}"
            + (f" ({self.unallocated} left)" if not self.complete else ""),
        ]
        if self.messages is not None:
            s = self.messages.summary()
            lines.append(
                "per-ball msgs : "
                f"mean {s['per_ball_mean']:.3f}, max {s['per_ball_max']:.0f}"
            )
            lines.append(
                "per-bin recv  : "
                f"mean {s['per_bin_received_mean']:.3f}, "
                f"max {s['per_bin_received_max']:.0f}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return (
            f"AllocationResult({self.algorithm}: m={self.m}, n={self.n}, "
            f"max_load={self.max_load}, gap={self.gap:+.3f}, "
            f"rounds={self.rounds})"
        )
