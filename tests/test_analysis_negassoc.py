"""Tests for repro.analysis.negassoc (Definition 2 / Proposition 1)."""

import numpy as np
import pytest

from repro.analysis.negassoc import (
    empirical_covariance_matrix,
    exact_multinomial_covariance,
    max_pairwise_covariance,
    negative_association_violations,
)


@pytest.fixture
def multinomial_samples(rng):
    """(trials, n) occupancy samples — the canonical NA family."""
    n, m, trials = 8, 400, 4000
    return rng.multinomial(m, np.full(n, 1 / n), size=trials)


class TestExactCovariance:
    def test_formula(self):
        assert exact_multinomial_covariance(400, 8) == -400 / 64

    def test_invalid(self):
        with pytest.raises(ValueError):
            exact_multinomial_covariance(-1, 8)
        with pytest.raises(ValueError):
            exact_multinomial_covariance(10, 0)


class TestEmpiricalCovariance:
    def test_shape(self, multinomial_samples):
        cov = empirical_covariance_matrix(multinomial_samples)
        assert cov.shape == (8, 8)

    def test_matches_exact_offdiagonal(self, multinomial_samples):
        cov = empirical_covariance_matrix(multinomial_samples)
        exact = exact_multinomial_covariance(400, 8)
        off = cov[~np.eye(8, dtype=bool)]
        assert np.mean(off) == pytest.approx(exact, rel=0.15)

    def test_requires_2d(self):
        with pytest.raises(ValueError):
            empirical_covariance_matrix(np.zeros(10))

    def test_requires_trials(self):
        with pytest.raises(ValueError):
            empirical_covariance_matrix(np.zeros((1, 5)))


class TestMaxPairwiseCovariance:
    def test_multinomial_negative(self, multinomial_samples):
        # All pairwise covariances are -m/n^2 < 0; sampling noise cannot
        # push the max far above 0.
        assert max_pairwise_covariance(multinomial_samples) < 1.0

    def test_positively_correlated_detected(self, rng):
        base = rng.normal(size=(2000, 1))
        samples = base + 0.1 * rng.normal(size=(2000, 4))
        assert max_pairwise_covariance(samples) > 0.5


class TestViolationCount:
    def test_multinomial_has_no_violations(self, multinomial_samples):
        assert negative_association_violations(multinomial_samples) == 0

    def test_indicator_transform_no_violations(self, multinomial_samples):
        # Proposition 1: overload indicators z_i = 1[X_i >= T] are
        # monotone maps of disjoint subsets, hence NA as well.
        violations = negative_association_violations(
            multinomial_samples,
            transform=lambda x: (x >= 55).astype(float),
        )
        assert violations == 0

    def test_correlated_data_flagged(self, rng):
        base = rng.normal(size=(2000, 1))
        samples = base + 0.05 * rng.normal(size=(2000, 6))
        assert negative_association_violations(samples) > 0

    def test_custom_tolerance(self, multinomial_samples):
        # An absurdly negative tolerance flags everything.
        n_pairs = 8 * 7 // 2
        assert (
            negative_association_violations(
                multinomial_samples, tolerance=-1e9
            )
            == n_pairs
        )

    def test_transform_must_keep_shape(self, multinomial_samples):
        with pytest.raises(ValueError):
            negative_association_violations(
                multinomial_samples, transform=lambda x: x.sum(axis=1)
            )
