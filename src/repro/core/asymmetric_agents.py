"""Object-level (engine-mode) agents for the asymmetric algorithm.

A reference implementation of Section 5's protocol on the synchronous
engine with ``symmetric=False`` (balls address bins by global ID — the
defining capability of the asymmetric model).  Used by the test suite
to cross-validate the vectorized :mod:`repro.core.asymmetric`; small
instances only.

The agents follow the same schedule logic as the vectorized path (via
the shared :func:`repro.core.asymmetric._schedule_params`), so the two
implementations agree on the round structure by construction and are
compared on outcomes (loads, rounds) statistically.
"""

from __future__ import annotations

import math
from typing import Optional, Sequence

import numpy as np

from repro.core.asymmetric import _schedule_params, superbin_blocks
from repro.result import AllocationResult
from repro.simulation.agents import BallAgent, BinAgent
from repro.simulation.engine import EngineConfig, SyncEngine
from repro.simulation.messages import Message, MessageKind
from repro.utils.seeding import RngFactory
from repro.utils.validation import ensure_m_n

__all__ = ["run_asymmetric_engine"]


class _SharedSchedule:
    """Round parameters shared by all agents (globally known: they are a
    function of (m, n, round) only — exactly what 'asymmetric' grants)."""

    def __init__(self, m: int, n: int, c: float) -> None:
        self.m = m
        self.n = n
        self.c = c
        self.m_sched = m
        self._cache: dict[int, tuple[np.ndarray, int, bool]] = {}
        self._m_invoked = max(m, 1)

    def params(self, round_no: int) -> tuple[np.ndarray, int, bool]:
        if round_no not in self._cache:
            n_r, _delta, l_r, terminal = _schedule_params(
                max(self.m_sched, 1), self._m_invoked, self.n, self.c
            )
            blocks = superbin_blocks(self.n, n_r)
            self._cache[round_no] = (blocks, l_r, terminal)
            self.m_sched = max(0, self.m_sched - l_r * n_r)
        return self._cache[round_no]


class AsymBallAgent(BallAgent):
    """Samples a uniform bin, contacts its block leader; on accept,
    commits to the member bin named in the payload."""

    def __init__(self, index, rng, schedule: _SharedSchedule) -> None:
        super().__init__(index, rng)
        self.schedule = schedule

    def choose_requests(self, round_no: int, n_bins: int) -> Sequence[int]:
        blocks, _l_r, _term = self.schedule.params(round_no)
        pick = int(self.rng.integers(0, n_bins))
        block = int(np.searchsorted(blocks, pick, side="right") - 1)
        return [int(blocks[block])]  # the leader

    def receive_replies(
        self, round_no: int, replies: Sequence[Message]
    ) -> Optional[int]:
        for msg in replies:
            if msg.kind is MessageKind.ACCEPT:
                # The leader is the accountable bin in the engine's
                # bookkeeping; the member assignment is folded by the
                # runner through the leader's member counters.
                return msg.bin
        return None


class AsymBinAgent(BinAgent):
    """A bin that acts as leader for its block when addressed.

    Accepts up to the block-scaled ``L_r`` requests per round; the
    round-robin member fan-out is reconstructed by the runner from the
    leader's per-round accept counts (the engine tracks commitment to
    the *leader*; the runner redistributes to members exactly as the
    protocol's step 4-5 message flow would).
    """

    def __init__(self, index, rng, schedule: _SharedSchedule) -> None:
        super().__init__(index, rng)
        self.schedule = schedule
        self.accepts_by_round: dict[int, int] = {}

    def respond(
        self, round_no: int, requests: Sequence[Message]
    ) -> Sequence[int]:
        blocks, l_r, _term = self.schedule.params(round_no)
        n_r = len(blocks) - 1
        block = int(np.searchsorted(blocks, self.index, side="right") - 1)
        if blocks[block] != self.index:
            return []  # not a leader this round: decline everything
        size = int(blocks[block + 1] - blocks[block])
        avg = self.schedule.n / n_r
        cap = math.ceil(l_r * size / avg)
        take = min(cap, len(requests))
        self.accepts_by_round[round_no] = (
            self.accepts_by_round.get(round_no, 0) + take
        )
        return list(range(take))


def run_asymmetric_engine(
    m: int,
    n: int,
    *,
    seed=None,
    c: float = 1.5,
    max_rounds: int = 64,
) -> AllocationResult:
    """Engine-mode asymmetric run (no presymmetric round; small m).

    Loads are reported at *member-bin* granularity by redistributing
    each leader's committed balls round-robin over its block, matching
    the vectorized implementation's water-fill up to tie order.
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    factory = RngFactory(seed)
    schedule = _SharedSchedule(m, n, c)
    balls = [
        AsymBallAgent(i, factory.stream("ball", i), schedule)
        for i in range(m)
    ]
    bins = [
        AsymBinAgent(j, factory.stream("bin", j), schedule) for j in range(n)
    ]
    engine = SyncEngine(
        balls,
        bins,
        config=EngineConfig(symmetric=False, max_rounds=max_rounds),
        rng_factory=factory.child_factory("engine"),
    )
    outcome = engine.run()
    if not outcome.complete:
        raise RuntimeError(
            f"engine asymmetric run incomplete: {outcome.unallocated} left"
        )
    # Redistribute leader commitments over block members, round-robin.
    member_loads = np.zeros(n, dtype=np.int64)
    leader_totals = np.bincount(
        outcome.commitments, minlength=n
    )  # commitments point at leaders
    # Rebuild the union of blocks over rounds: a bin may lead blocks of
    # different sizes in different rounds; we redistribute using the
    # per-round accept counts each leader recorded.
    for j, bin_agent in enumerate(bins):
        for round_no, count in bin_agent.accepts_by_round.items():
            blocks, _l_r, _term = schedule.params(round_no)
            block = int(np.searchsorted(blocks, j, side="right") - 1)
            lo, hi = int(blocks[block]), int(blocks[block + 1])
            size = hi - lo
            base, rem = divmod(count, size)
            member_loads[lo:hi] += base
            if rem:
                member_loads[lo : lo + rem] += 1
    if member_loads.sum() != leader_totals.sum():
        raise RuntimeError("member redistribution lost balls")
    return AllocationResult(
        algorithm="asymmetric[engine]",
        m=m,
        n=n,
        loads=member_loads,
        rounds=outcome.rounds,
        metrics=outcome.metrics,
        messages=outcome.counter,
        total_messages=outcome.counter.total,
        seed_entropy=factory.root_entropy,
    )
