"""Tests for the engine-mode agents of A_heavy and A_light."""

import numpy as np
import pytest

from repro.core.heavy_agents import (
    LightBallAgent,
    LightBinAgent,
    ThresholdBallAgent,
    ThresholdBinAgent,
    run_heavy_engine,
    run_light_engine,
)
from repro.core.thresholds import PaperSchedule
from repro.simulation.messages import Message, MessageKind
from repro.utils.seeding import RngFactory


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestThresholdAgents:
    def test_ball_requests_one_bin(self, rng):
        ball = ThresholdBallAgent(0, rng)
        reqs = ball.choose_requests(0, 16)
        assert len(reqs) == 1
        assert 0 <= reqs[0] < 16

    def test_ball_commits_on_accept(self, rng):
        ball = ThresholdBallAgent(0, rng)
        accept = Message(MessageKind.ACCEPT, ball=0, bin=3, round_no=0)
        assert ball.receive_replies(0, [accept]) == 3

    def test_ball_ignores_rejects(self, rng):
        ball = ThresholdBallAgent(0, rng)
        reject = Message(MessageKind.REJECT, ball=0, bin=3, round_no=0)
        assert ball.receive_replies(0, [reject]) is None

    def test_bin_respects_threshold(self, rng):
        m, n = 1000, 10
        schedule = PaperSchedule(m, n)
        bin_ = ThresholdBinAgent(0, rng, schedule)
        bin_.on_round_start(0)
        t0 = schedule.threshold(0)
        requests = [
            Message(MessageKind.REQUEST, ball=i, bin=0, round_no=0)
            for i in range(t0 + 50)
        ]
        accepted = bin_.respond(0, requests)
        assert len(accepted) == t0

    def test_bin_accounts_existing_load(self, rng):
        m, n = 1000, 10
        schedule = PaperSchedule(m, n)
        bin_ = ThresholdBinAgent(0, rng, schedule)
        bin_.on_round_start(0)
        bin_.load = schedule.threshold(0) - 2
        requests = [
            Message(MessageKind.REQUEST, ball=i, bin=0, round_no=0)
            for i in range(10)
        ]
        assert len(bin_.respond(0, requests)) == 2


class TestLightAgents:
    def test_contact_count_grows_tower(self, rng):
        ball = LightBallAgent(0, rng)
        k0 = len(ball.choose_requests(0, 1000))
        k1 = len(ball.choose_requests(1, 1000))
        k2 = len(ball.choose_requests(2, 1000))
        k3 = len(ball.choose_requests(3, 1000))
        assert (k0, k1, k2, k3) == (1, 2, 4, 16)

    def test_contact_count_capped(self, rng):
        ball = LightBallAgent(0, rng, max_contacts=8)
        for r in range(5):
            assert len(ball.choose_requests(r, 1000)) <= 8

    def test_ball_picks_one_acceptor(self, rng):
        ball = LightBallAgent(0, rng)
        accepts = [
            Message(MessageKind.ACCEPT, ball=0, bin=b, round_no=0)
            for b in (2, 5, 9)
        ]
        chosen = ball.receive_replies(0, accepts)
        assert chosen in (2, 5, 9)

    def test_bin_capacity_two(self, rng):
        bin_ = LightBinAgent(0, rng, capacity=2)
        requests = [
            Message(MessageKind.REQUEST, ball=i, bin=0, round_no=0)
            for i in range(5)
        ]
        assert len(bin_.respond(0, requests)) == 2
        bin_.load = 2
        assert len(bin_.respond(0, requests)) == 0


class TestEngineRuns:
    def test_heavy_engine_complete(self):
        res = run_heavy_engine(3000, 16, seed=1)
        assert res.complete
        assert res.loads.sum() == 3000
        assert res.gap <= 10

    def test_heavy_engine_deterministic(self):
        a = run_heavy_engine(2000, 16, seed=5)
        b = run_heavy_engine(2000, 16, seed=5)
        assert np.array_equal(a.loads, b.loads)

    def test_heavy_engine_via_mode(self):
        from repro.core import run_heavy

        res = run_heavy(2000, 16, seed=5, mode="engine")
        assert res.algorithm == "heavy[engine]"
        assert res.complete

    def test_heavy_engine_no_handoff(self):
        res = run_heavy_engine(3000, 16, seed=1, handoff=False)
        assert not res.complete
        assert res.unallocated > 0

    def test_light_engine_guarantees(self):
        out = run_light_engine(256, 256, seed=2)
        assert out.complete
        assert out.loads.max() <= 2

    def test_light_engine_custom_capacity(self):
        out = run_light_engine(100, 300, seed=2, capacity=1)
        assert out.loads.max() <= 1
