"""repro — Parallel Balanced Allocations: The Heavily Loaded Case.

A full reproduction of Lenzen, Parter & Yogev (SPAA 2019,
arXiv:1904.07532): parallel balls-into-bins algorithms for the
``m >> n`` regime, the supporting synchronous message-passing
simulation substrate, the lower-bound machinery of Theorem 7, the
baselines the paper compares against, and the experiment harness that
regenerates every quantitative claim.

Quickstart
----------
>>> import repro
>>> result = repro.allocate("heavy", m=1_000_000, n=1_000, seed=7)
>>> result.max_load - result.m // result.n <= 4   # m/n + O(1)
True

Scenarios beyond the paper's uniform/unit/homogeneous setting are one
keyword away (see ``docs/workloads.md``): Zipf-skewed demand, weighted
jobs, heterogeneous capacities —

>>> skewed = repro.allocate(
...     "heavy", m=100_000, n=256, seed=7, workload="zipf:1.1+propcap"
... )
>>> skewed.complete
True

and allocation under *churn* — epochs of departures and arrivals with
incremental rebalancing against the residual loads — is the dynamic
subsystem (see ``docs/dynamic.md``):

>>> dyn = repro.run_dynamic("heavy", 20_000, 64, seed=7, epochs=4)
>>> dyn.complete and len(dyn.gaps) == 5
True

Unified API (see ``docs/api.md``)
---------------------------------
Every algorithm is registered with :func:`repro.register_allocator` and
runs through one dispatch layer:

========================  ====================================================
``allocate``              Run any registered algorithm by name (one code
                          path: option validation, config normalization,
                          automatic mode selection)
``allocate_many``         Repeat one instance over seed-spawned independent
                          RNG streams, optionally across processes
``replicate``             Run hundreds of seeded replications in one
                          trial-batched vectorized pass; returns the
                          distributional summary (``ReplicationResult``)
``run_dynamic``           Run allocation under churn: epochs of
                          departures/arrivals with incremental
                          rebalancing (``DynamicResult`` time series)
``sweep``                 Run a grid of instances, each repeated
``list_allocators``       All registered :class:`AllocatorSpec` entries
``get_spec``              Look up one spec by name or alias
========================  ====================================================

``python -m repro list`` prints the registry; every algorithm below is
also a generated CLI subcommand.

Registered algorithms (all return :class:`repro.AllocationResult`;
the historical ``run_*`` entry points remain and are what the registry
dispatches to, so both spellings give bitwise-identical results
whenever the resolved mode matches the runner's default — always below
``repro.api.AGGREGATE_THRESHOLD``, or with ``mode=None``):

============  ========================  ==================================
registry      direct entry point        what it is
============  ========================  ==================================
``heavy``     ``run_heavy``             Algorithm ``A_heavy`` (Theorem 1)
``asymmetric``  ``run_asymmetric``      Constant-round asymmetric
                                        algorithm (Theorem 3)
``combined``  ``run_combined``          The combined dispatcher (Sec. 3)
``trivial``   ``run_trivial``           Deterministic n-round algorithm
``light``     ``run_light_allocation``  [LW16]-style light-load
                                        subroutine (Theorem 5)
``faulty``    ``run_heavy_faulty``      ``A_heavy`` under crashes and
                                        message loss
``multicontact``  ``run_heavy_multicontact``  Degree-d threshold variant
``single``    ``run_single_choice``     Naive one-shot random allocation
``greedy``    ``run_greedy_d``          Sequential greedy[d] [ABKU99]
``dchoice``   ``run_parallel_dchoice``  Non-adaptive parallel d-choice
                                        [ACMR98]
``stemann``   ``run_stemann``           Collision protocol [Ste96]
``batched``   ``run_batched_dchoice``   Batched multiple-choice [BCE+12]
============  ========================  ==================================
"""

from repro.baselines import (
    run_batched_dchoice,
    run_greedy_d,
    run_parallel_dchoice,
    run_single_choice,
    run_stemann,
)
from repro.core import (
    AsymmetricConfig,
    ExponentSchedule,
    FixedSchedule,
    HeavyConfig,
    PaperSchedule,
    ThresholdSchedule,
    run_asymmetric,
    run_combined,
    run_heavy,
    run_heavy_faulty,
    run_heavy_multicontact,
    run_threshold_protocol,
    run_trivial,
    should_use_trivial,
)
from repro.core.faulty import FaultModel, parse_faults
from repro.dynamic import (
    DynamicResult,
    DynamicSpec,
    run_dynamic,
    run_dynamic_many,
)
from repro.light import LightConfig, run_light, run_light_allocation
from repro.result import AllocationResult
from repro.service import (
    AdmissionPolicy,
    AllocatorService,
    ServiceReport,
    simulate_service,
)
from repro.fastpath.backend import available_backends, use_backend
from repro.telemetry import Telemetry, current_telemetry, use_telemetry
from repro.workloads import (
    TimeVaryingWorkload,
    Workload,
    parse_time_varying,
    parse_workload,
)

# The api package is imported after the algorithm packages above, so
# every registration has run by the time allocate() is reachable.
from repro.api import (
    AllocatorSpec,
    ReplicationResult,
    allocate,
    allocate_many,
    allocator_names,
    get_spec,
    list_allocators,
    register_allocator,
    replicate,
    sweep,
)

__version__ = "1.1.0"

__all__ = [
    "AdmissionPolicy",
    "AllocationResult",
    "AllocatorService",
    "AllocatorSpec",
    "AsymmetricConfig",
    "DynamicResult",
    "DynamicSpec",
    "ExponentSchedule",
    "FaultModel",
    "FixedSchedule",
    "HeavyConfig",
    "LightConfig",
    "PaperSchedule",
    "ReplicationResult",
    "ServiceReport",
    "Telemetry",
    "ThresholdSchedule",
    "TimeVaryingWorkload",
    "Workload",
    "__version__",
    "allocate",
    "allocate_many",
    "allocator_names",
    "available_backends",
    "current_telemetry",
    "get_spec",
    "list_allocators",
    "parse_faults",
    "parse_time_varying",
    "parse_workload",
    "register_allocator",
    "replicate",
    "run_dynamic",
    "run_dynamic_many",
    "simulate_service",
    "run_asymmetric",
    "run_batched_dchoice",
    "run_combined",
    "run_greedy_d",
    "run_heavy",
    "run_heavy_faulty",
    "run_heavy_multicontact",
    "run_light",
    "run_light_allocation",
    "run_parallel_dchoice",
    "run_single_choice",
    "run_stemann",
    "run_threshold_protocol",
    "run_trivial",
    "should_use_trivial",
    "sweep",
    "use_backend",
    "use_telemetry",
]
