"""Parameter validation shared by every public entry point.

All public ``run(m, n, ...)`` functions validate through these helpers so
error messages are uniform and tests can assert on a single failure mode.
"""

from __future__ import annotations

from typing import Any

import numpy as np

__all__ = [
    "check_positive_int",
    "check_probability",
    "check_seed",
    "ensure_m_n",
]


def check_positive_int(value: Any, name: str, *, minimum: int = 1) -> int:
    """Validate that ``value`` is an integer ``>= minimum`` and return it.

    Accepts numpy integer scalars (common when parameters come out of
    ``np.logspace`` sweeps) and converts them to Python ints so that
    downstream arithmetic (e.g. ``m * n``) cannot overflow silently.
    """
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError(f"{name} must be an integer, got bool")
    if isinstance(value, (int, np.integer)):
        ivalue = int(value)
    elif isinstance(value, float) and value.is_integer():
        ivalue = int(value)
    else:
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    if ivalue < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {ivalue}")
    return ivalue


def check_probability(value: Any, name: str) -> float:
    """Validate that ``value`` lies in ``[0, 1]`` and return it as float."""
    try:
        fvalue = float(value)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be a number in [0, 1]") from exc
    if not 0.0 <= fvalue <= 1.0:
        raise ValueError(f"{name} must be in [0, 1], got {fvalue}")
    return fvalue


def check_seed(seed: Any) -> Any:
    """Validate a seed argument.

    ``None`` (fresh entropy), ints, and :class:`numpy.random.SeedSequence`
    instances are accepted — the same contract as
    :func:`numpy.random.default_rng`.
    """
    if seed is None or isinstance(seed, np.random.SeedSequence):
        return seed
    if isinstance(seed, (int, np.integer)):
        if int(seed) < 0:
            raise ValueError(f"seed must be >= 0, got {seed}")
        return int(seed)
    if isinstance(seed, np.random.Generator):
        return seed
    raise TypeError(
        "seed must be None, a non-negative int, a SeedSequence, or a Generator; "
        f"got {type(seed).__name__}"
    )


def ensure_m_n(m: Any, n: Any, *, require_heavy: bool = False) -> tuple[int, int]:
    """Validate a balls-into-bins instance ``(m, n)``.

    Parameters
    ----------
    m:
        Number of balls, ``>= 1``.
    n:
        Number of bins, ``>= 1``.
    require_heavy:
        If true, additionally require ``m >= n`` (the paper's heavily
        loaded regime assumes ``m >> n``; algorithms remain correct for
        ``m >= n`` and tests exercise the boundary).
    """
    mi = check_positive_int(m, "m")
    ni = check_positive_int(n, "n")
    if require_heavy and mi < ni:
        raise ValueError(
            f"the heavily loaded regime requires m >= n, got m={mi} < n={ni}"
        )
    return mi, ni
