"""Tests for repro.utils.logstar."""

import math

import pytest

from repro.utils.logstar import ilog2, iterated_log2, log_star, loglog2, tower


class TestIlog2:
    def test_powers_of_two_exact(self):
        for k in range(0, 60):
            assert ilog2(2**k) == k

    def test_between_powers(self):
        assert ilog2(3) == 1
        assert ilog2(5) == 2
        assert ilog2(1023) == 9
        assert ilog2(1025) == 10

    def test_float_input(self):
        assert ilog2(8.0) == 3
        assert ilog2(7.9) == 2

    def test_one(self):
        assert ilog2(1) == 0

    def test_below_one_raises(self):
        with pytest.raises(ValueError):
            ilog2(0.5)
        with pytest.raises(ValueError):
            ilog2(0)


class TestLoglog2:
    def test_known_values(self):
        assert loglog2(4) == 1.0
        assert loglog2(16) == 2.0
        assert loglog2(256) == 3.0
        assert loglog2(65536) == 4.0

    def test_clamps_small(self):
        assert loglog2(1) == 0.0
        assert loglog2(2) == 0.0
        assert loglog2(0.5) == 0.0

    def test_monotone(self):
        values = [loglog2(2.0**k) for k in range(2, 30)]
        assert values == sorted(values)


class TestIteratedLog:
    def test_zero_times_identity(self):
        assert iterated_log2(100.0, 0) == 100.0

    def test_once_is_log2(self):
        assert iterated_log2(8, 1) == 3.0

    def test_twice(self):
        assert iterated_log2(256, 2) == 3.0

    def test_clamps_at_zero(self):
        assert iterated_log2(2, 5) == 0.0

    def test_negative_times_raises(self):
        with pytest.raises(ValueError):
            iterated_log2(10, -1)


class TestLogStar:
    def test_small_values(self):
        assert log_star(1) == 0
        assert log_star(2) == 1
        assert log_star(4) == 2
        assert log_star(16) == 3
        assert log_star(65536) == 4

    def test_tower_inverse(self):
        # log*(tower(h)) == h for h up to 4.
        for h in range(5):
            assert log_star(tower(h + 1)) == h + 1 or tower(h + 1) == float(
                "inf"
            )

    def test_practical_range_at_most_five(self):
        assert log_star(2**63) == 5
        assert log_star(1e300) == 5

    def test_custom_base(self):
        assert log_star(10, base=10) == 1
        assert log_star(10**10, base=10) == 2

    def test_bad_base_raises(self):
        with pytest.raises(ValueError):
            log_star(10, base=1.0)


class TestTower:
    def test_values(self):
        assert tower(0) == 1
        assert tower(1) == 2
        assert tower(2) == 4
        assert tower(3) == 16
        assert tower(4) == 65536

    def test_cap(self):
        assert tower(4, cap=100) == 100
        assert tower(10, cap=1000) == 1000

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            tower(-1)
