#!/usr/bin/env python
"""Scenario: dispatching a burst of jobs onto a server fleet.

The balls-into-bins abstraction the paper motivates: ``m`` short jobs
arrive at once and must be dispatched onto ``n`` identical servers by
*stateless* dispatch (no central queue, no global load view).  Each
job-agent can exchange a few messages with servers before committing.
The maximum server backlog — the paper's max load — determines the
tail latency of the burst.

This example compares dispatch policies at fleet scale and prints the
tail-latency table, including the round/message budget each policy
consumed.  The numbers show the paper's trade-off: the threshold
algorithm matches the quality of sequential least-loaded dispatch
while running in a handful of parallel message rounds.

A second table re-runs the burst under a *skewed, weighted* workload
(Zipf-popular servers — think locality-affine dispatch — and
geometric job sizes): the threshold dispatch keeps the hot servers
capped while hash-random dispatch inherits the full skew.

Run:
    python examples/job_scheduler.py [--jobs 2000000] [--servers 2000]
"""

from __future__ import annotations

import argparse

import repro


def dispatch_table(m: int, n: int, seed: int) -> None:
    mean = m / n
    print(f"burst: {m:,} jobs over {n:,} servers (mean backlog {mean:.0f})\n")
    rows = []

    # Every policy goes through the one dispatch API; the registry
    # names here are what `python -m repro list` prints.
    naive = repro.allocate("single", m, n, seed=seed)
    rows.append(("random (one-shot)", naive))

    stemann = repro.allocate("stemann", m, n, seed=seed)
    rows.append(("collision protocol [Ste96]", stemann))

    batched = repro.allocate("batched", m, n, seed=seed, d=2)
    rows.append(("batched 2-choice [BCE+12]", batched))

    heavy = repro.allocate("heavy", m, n, seed=seed)
    rows.append(("threshold (paper, Thm 1)", heavy))

    asym = repro.allocate("asymmetric", m, n, seed=seed)
    rows.append(("superbins (paper, Thm 3)", asym))

    # Sequential reference: what a central least-loaded-of-2 queue
    # would achieve, processing jobs one at a time.
    greedy = repro.allocate("greedy", min(m, 2_000_000), n, seed=seed, d=2)
    rows.append(("sequential 2-choice [BCSV06]", greedy))

    header = f"{'policy':32s} {'max backlog':>12s} {'over mean':>10s} {'rounds':>7s} {'msgs/job':>9s}"
    print(header)
    print("-" * len(header))
    for name, res in rows:
        rounds = "seq" if res.sequential else str(res.rounds)
        msgs = res.total_messages / res.m
        print(
            f"{name:32s} {res.max_load:12,d} {res.gap:+10.1f} "
            f"{rounds:>7s} {msgs:9.2f}"
        )
    print()
    print(
        "tail-latency takeaway: the paper's threshold dispatch keeps the\n"
        "worst server within a constant of the mean — the same quality\n"
        "as a sequential least-loaded queue — using "
        f"{heavy.rounds} parallel rounds and "
        f"{heavy.total_messages / m:.1f} messages per job."
    )


def skewed_burst(m: int, n: int, seed: int) -> None:
    # Same burst, non-uniform scenario: job affinity follows a Zipf
    # popularity law over servers and jobs carry geometric sizes
    # (mean 2 work units).  One workload spec threads the scenario
    # through the same dispatch API.
    workload = "zipf:1.1+geomw:0.5"
    print(f"\nskewed burst (workload {workload}):")
    header = (
        f"{'policy':32s} {'max backlog':>12s} {'max work':>10s} "
        f"{'rounds':>7s}"
    )
    print(header)
    print("-" * len(header))
    for label, name in (
        ("random (one-shot)", "single"),
        ("threshold (paper, Thm 1)", "heavy"),
    ):
        res = repro.allocate(name, m, n, seed=seed, workload=workload)
        wrec = res.extra["workload"]
        print(
            f"{label:32s} {res.max_load:12,d} "
            f"{wrec['weighted_max_load']:10,.0f} {res.rounds:7d}"
        )
    print(
        "\nskew takeaway: the threshold dispatch's capacity rule is\n"
        "oblivious to demand, so hot servers stay capped near m/n; the\n"
        "hash-random baseline's hottest server absorbs the skew in full."
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--jobs", type=int, default=2_000_000)
    parser.add_argument("--servers", type=int, default=2_000)
    parser.add_argument("--seed", type=int, default=7)
    args = parser.parse_args()
    dispatch_table(args.jobs, args.servers, args.seed)
    skewed_burst(args.jobs, args.servers, args.seed)


if __name__ == "__main__":
    main()
