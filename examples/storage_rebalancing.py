#!/usr/bin/env python
"""Scenario: placing objects on a storage cluster with labelled nodes.

A second workload from the paper's motivation: ``m`` objects must be
placed on ``n`` storage nodes.  Unlike the job-dispatch scenario, the
nodes here have *globally known identifiers* (every client has the
cluster map) — exactly the asymmetric model of Section 5.  The paper
shows identifiers buy a constant-round placement with near-perfect
balance; this example measures that, and also demonstrates the
per-node message load (a proxy for coordinator hot-spotting) that
Theorem 3 bounds by ``(1+o(1)) m/n + O(log n)``.

The example also exercises the *incremental* use of the API: a second
wave of objects arrives after the first placement, and the placement is
re-run over the residual capacity by treating the first wave's loads as
pre-filled (a common rebalancing pattern; the paper's algorithms extend
to it because thresholds are relative to current loads).

Finally, a heterogeneous-fleet wave shows the workload subsystem on a
mixed cluster: read traffic follows a hot-set skew (10% of nodes serve
half the reads) while node capacities are provisioned proportionally
to that popularity — one `workload=` spec threads both through the
same placement call.

Run:
    python examples/storage_rebalancing.py [--objects 1000000] [--nodes 512]
"""

from __future__ import annotations

import argparse
import math

import numpy as np

import repro


def place_wave(m: int, n: int, seed: int, label: str) -> np.ndarray:
    # perball: the whole point here is per-node message accounting,
    # which the aggregate fast path (mode="auto" at large m) drops.
    res = repro.allocate("asymmetric", m, n, seed=seed, mode="perball")
    s = res.messages.summary()
    print(f"{label}: {m:,} objects -> {n} nodes")
    print(f"  max node load : {res.max_load:,} (gap {res.gap:+.1f})")
    print(f"  rounds        : {res.rounds} (cleanup {res.extra['cleanup_rounds']})")
    print(
        f"  node messages : max {s['per_bin_received_max']:.0f} "
        f"vs bound ~{m / n + 8 * math.log(n):.0f}"
    )
    print()
    return res.loads


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--objects", type=int, default=1_000_000)
    parser.add_argument("--nodes", type=int, default=512)
    parser.add_argument("--seed", type=int, default=99)
    args = parser.parse_args()
    m, n = args.objects, args.nodes

    # Wave 1: initial bulk placement.
    loads1 = place_wave(m, n, args.seed, "wave 1 (bulk load)")

    # Wave 2: an additional 25% arrives.  Rather than re-placing
    # everything, place the new objects and stack the load vectors —
    # balance composes because each wave is near-uniform.
    m2 = m // 4
    loads2 = place_wave(m2, n, args.seed + 1, "wave 2 (incremental 25%)")

    combined = loads1 + loads2
    total = m + m2
    gap = combined.max() - total / n
    print("combined placement")
    print(f"  total objects : {total:,}")
    print(f"  max node load : {combined.max():,} (gap {gap:+.1f})")
    print(f"  imbalance     : {combined.max() / (total / n) - 1:.3%}")
    print()

    # Contrast: consistent-hashing-style single-choice placement of the
    # same total would have paid a sqrt overload:
    naive = repro.allocate("single", total, n, seed=args.seed, mode="aggregate")
    print(
        f"for reference, hash-random placement of the same {total:,} "
        f"objects lands at gap {naive.gap:+.1f} "
        f"({naive.max_load / (total / n) - 1:.3%} imbalance)"
    )

    # Heterogeneous fleet: a hot-set access pattern (10% of nodes serve
    # 50% of the traffic) on capacity provisioned for exactly that
    # popularity.  The threshold placement respects both axes through
    # one workload spec; per-node caps scale with the profile, so the
    # hot nodes legitimately hold more while staying within provision.
    workload = "hotset:0.1:0.5+propcap"
    hot = repro.allocate(
        "heavy", m, n, seed=args.seed + 2, workload=workload
    )
    hot_caps = repro.parse_workload(workload).capacity_scale(n)
    utilization = hot.loads / np.maximum(hot_caps * (m / n), 1.0)
    print()
    print(f"heterogeneous wave (workload {workload})")
    print(f"  max node load : {hot.max_load:,} on provisioned capacity")
    print(f"  peak utilization vs provision: {utilization.max():.2f}x")
    print(f"  rounds        : {hot.rounds}")


if __name__ == "__main__":
    main()
