"""Analytical companions to the simulations.

The paper's proofs lean on four probabilistic tools, each of which has a
direct executable counterpart here so experiments can print
*prediction vs measurement* rows:

* :mod:`repro.analysis.chernoff` — the multiplicative Chernoff bounds of
  Lemma 1, including the ``sqrt(2 mu log m)`` deviation forms.
* :mod:`repro.analysis.berry_esseen` — the Berry–Esseen normal
  approximation of Theorem 4, used by the lower bound (Claim 5) to show
  any bin overflows its mean by ``2 sqrt(mu)`` with constant probability.
* :mod:`repro.analysis.negassoc` — empirical checks of negative
  association (Definition 2 / Proposition 1) for occupancy vectors.
* :mod:`repro.analysis.theory` — closed-form predictions: expected max
  loads of the naive and d-choice processes, the paper's round bounds,
  the ``m̃_i`` recursion, and the lower-bound ``M_i`` recursion.

:mod:`repro.analysis.stats` provides the empirical side: gap statistics,
quantiles, and confidence intervals over repeated runs.
"""

from repro.analysis.berry_esseen import (
    berry_esseen_bound,
    binomial_upper_deviation_probability,
    overload_probability_lower_bound,
)
from repro.analysis.chernoff import (
    chernoff_lower_tail,
    chernoff_upper_tail,
    deviation_for_failure_probability,
    underload_probability_bound,
)
from repro.analysis.negassoc import (
    empirical_covariance_matrix,
    max_pairwise_covariance,
    negative_association_violations,
)
from repro.analysis.stats import (
    ConfidenceInterval,
    RunStatistics,
    gap_statistics,
    mean_confidence_interval,
    summarize_loads,
    summarize_runs,
)
from repro.analysis.theory import (
    expected_max_load_greedy_d,
    expected_max_load_single_choice,
    heavy_phase_round_bound,
    lower_bound_recursion,
    mtilde_schedule,
    predicted_rounds,
    rejection_floor,
    threshold_schedule,
)

__all__ = [
    "ConfidenceInterval",
    "RunStatistics",
    "berry_esseen_bound",
    "binomial_upper_deviation_probability",
    "chernoff_lower_tail",
    "chernoff_upper_tail",
    "deviation_for_failure_probability",
    "empirical_covariance_matrix",
    "expected_max_load_greedy_d",
    "expected_max_load_single_choice",
    "gap_statistics",
    "heavy_phase_round_bound",
    "lower_bound_recursion",
    "max_pairwise_covariance",
    "mean_confidence_interval",
    "mtilde_schedule",
    "negative_association_violations",
    "overload_probability_lower_bound",
    "predicted_rounds",
    "rejection_floor",
    "summarize_loads",
    "summarize_runs",
    "threshold_schedule",
    "underload_probability_bound",
]
