"""Tests for repro.simulation.metrics."""

import numpy as np
import pytest

from repro.simulation.metrics import MessageCounter, RoundMetrics, RunMetrics


class TestMessageCounter:
    def test_single_records(self):
        c = MessageCounter(3, 2)
        c.record_ball_to_bin(0, 1)
        c.record_bin_to_ball(1, 0)
        assert c.total == 2
        assert c.ball_sent[0] == 1
        assert c.ball_received[0] == 1
        assert c.bin_received[1] == 1
        assert c.bin_sent[1] == 1

    def test_counted_with_multiplicity(self):
        c = MessageCounter(1, 1)
        c.record_ball_to_bin(0, 0, count=5)
        assert c.total == 5
        assert c.bin_received[0] == 5

    def test_bulk_matches_loop(self):
        c1 = MessageCounter(10, 4)
        c2 = MessageCounter(10, 4)
        balls = np.array([0, 1, 2, 2, 5])
        bins = np.array([3, 0, 1, 1, 2])
        c1.record_bulk_ball_to_bin(bins, balls)
        for b, t in zip(balls, bins):
            c2.record_ball_to_bin(int(b), int(t))
        assert np.array_equal(c1.ball_sent, c2.ball_sent)
        assert np.array_equal(c1.bin_received, c2.bin_received)
        assert c1.total == c2.total

    def test_bulk_bin_to_ball(self):
        c = MessageCounter(5, 3)
        c.record_bulk_bin_to_ball(np.array([0, 0, 2]), np.array([1, 2, 3]))
        assert c.bin_sent[0] == 2
        assert c.ball_received[3] == 1
        assert c.total == 3

    def test_summary_keys(self):
        c = MessageCounter(2, 2)
        c.record_ball_to_bin(0, 0)
        s = c.summary()
        assert s["total"] == 1.0
        assert s["per_ball_max"] == 1.0
        assert s["per_bin_received_max"] == 1.0

    def test_ball_total_combines(self):
        c = MessageCounter(2, 2)
        c.record_ball_to_bin(1, 0)
        c.record_bin_to_ball(0, 1)
        assert c.ball_total[1] == 2
        assert c.max_ball_messages() == 2

    def test_empty_counter(self):
        c = MessageCounter(0, 1)
        assert c.mean_ball_messages() == 0.0
        assert c.max_ball_messages() == 0

    def test_invalid_dims(self):
        with pytest.raises(ValueError):
            MessageCounter(-1, 1)
        with pytest.raises(ValueError):
            MessageCounter(1, 0)


class TestRoundMetrics:
    def _mk(self, i=0):
        return RoundMetrics(
            round_no=i,
            unallocated_start=10,
            requests_sent=10,
            accepts_sent=8,
            rejects_sent=0,
            commits=8,
            unallocated_end=2,
            max_load=3,
        )

    def test_str_includes_progress(self):
        text = str(self._mk())
        assert "10 -> 2" in text

    def test_threshold_rendered(self):
        m = RoundMetrics(
            round_no=0,
            unallocated_start=1,
            requests_sent=1,
            accepts_sent=1,
            rejects_sent=0,
            commits=1,
            unallocated_end=0,
            max_load=1,
            threshold=7.0,
        )
        assert "T=7.00" in str(m)


class TestRunMetrics:
    def test_add_and_query(self):
        run = RunMetrics(10, 2)
        run.add_round(
            RoundMetrics(0, 10, 10, 7, 0, 7, 3, 4)
        )
        run.add_round(
            RoundMetrics(1, 3, 3, 3, 0, 3, 0, 5)
        )
        assert run.num_rounds == 2
        assert run.unallocated_history == [10, 3]
        assert run.total_requests == 13

    def test_rounds_must_increase(self):
        run = RunMetrics(10, 2)
        run.add_round(RoundMetrics(1, 10, 10, 7, 0, 7, 3, 4))
        with pytest.raises(ValueError):
            run.add_round(RoundMetrics(1, 3, 3, 3, 0, 3, 0, 5))
        with pytest.raises(ValueError):
            run.add_round(RoundMetrics(0, 3, 3, 3, 0, 3, 0, 5))
