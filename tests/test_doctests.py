"""Run the docstring examples as tests (they appear in user-facing docs)."""

import doctest

import repro.utils.seeding
import repro.utils.logstar


def test_seeding_doctests():
    results = doctest.testmod(repro.utils.seeding, verbose=False)
    assert results.failed == 0


def test_logstar_doctests():
    results = doctest.testmod(repro.utils.logstar, verbose=False)
    assert results.failed == 0


def test_package_docstring_example():
    """The quickstart claim in the package docstring must stay true."""
    import repro

    result = repro.run_heavy(m=1_000_000, n=1_000, seed=7)
    assert result.max_load - result.m // result.n <= 4
