"""Tests for the vectorized sampling kernels."""

import numpy as np
import pytest
from scipy import stats as sps

from repro.fastpath.sampling import (
    grouped_accept,
    multinomial_occupancy,
    sample_choices,
    sample_uniform_choices,
    validate_pvals,
)


class TestSampleUniformChoices:
    def test_range_and_dtype(self, rng):
        out = sample_uniform_choices(1000, 7, rng)
        assert out.dtype == np.int64
        assert out.min() >= 0 and out.max() < 7

    def test_zero_k(self, rng):
        assert sample_uniform_choices(0, 5, rng).size == 0

    def test_uniformity_chi2(self, rng):
        n = 16
        out = sample_uniform_choices(160_000, n, rng)
        counts = np.bincount(out, minlength=n)
        chi2 = ((counts - 10_000) ** 2 / 10_000).sum()
        # chi2 with 15 dof: 99.9th percentile ~ 37.7
        assert chi2 < 37.7

    def test_invalid(self, rng):
        with pytest.raises(ValueError):
            sample_uniform_choices(-1, 5, rng)
        with pytest.raises(ValueError):
            sample_uniform_choices(5, 0, rng)


class TestMultinomialOccupancy:
    def test_sums_to_k(self, rng):
        counts = multinomial_occupancy(12345, 77, rng)
        assert counts.sum() == 12345
        assert counts.dtype == np.int64

    def test_zero_k(self, rng):
        counts = multinomial_occupancy(0, 5, rng)
        assert counts.sum() == 0
        assert counts.shape == (5,)

    def test_large_k_supported(self, rng):
        counts = multinomial_occupancy(10**12, 64, rng)
        assert counts.sum() == 10**12

    def test_same_distribution_as_bincount(self, rng):
        """The aggregate path must match the per-ball path in law: KS
        test on single-bin counts across trials."""
        k, n, trials = 5000, 10, 300
        agg = np.array(
            [multinomial_occupancy(k, n, rng)[0] for _ in range(trials)]
        )
        per = np.array(
            [
                np.bincount(sample_uniform_choices(k, n, rng), minlength=n)[0]
                for _ in range(trials)
            ]
        )
        _, pvalue = sps.ks_2samp(agg, per)
        assert pvalue > 1e-4

    def test_invalid(self, rng):
        with pytest.raises(ValueError):
            multinomial_occupancy(-1, 5, rng)
        with pytest.raises(ValueError):
            multinomial_occupancy(5, 0, rng)


class TestValidatePvals:
    def test_normalizes_within_tolerance(self):
        p = validate_pvals(np.array([0.5, 0.5 + 1e-9]), 2)
        assert abs(p.sum() - 1.0) < 1e-15

    def test_accepts_integer_dtype(self):
        p = validate_pvals(np.array([1, 0]), 2)
        assert p.dtype == np.float64
        assert p[0] == 1.0

    def test_zero_probability_bin_allowed(self):
        p = validate_pvals(np.array([0.0, 1.0]), 2)
        assert p[0] == 0.0

    def test_rejects_wrong_length(self):
        with pytest.raises(ValueError, match="length n_bins"):
            validate_pvals(np.array([0.5, 0.5]), 3)

    def test_rejects_negative_nan_and_bad_sum(self):
        with pytest.raises(ValueError, match="non-negative"):
            validate_pvals(np.array([-0.1, 1.1]), 2)
        with pytest.raises(ValueError, match="finite"):
            validate_pvals(np.array([np.nan, 1.0]), 2)
        with pytest.raises(ValueError, match="sum to 1"):
            validate_pvals(np.array([0.3, 0.3]), 2)

    def test_rejects_non_numeric_dtype(self):
        with pytest.raises(ValueError, match="numeric"):
            validate_pvals(np.array(["a", "b"]), 2)

    def test_does_not_mutate_input(self):
        src = np.array([0.25, 0.75])
        out = validate_pvals(src, 2)
        out[0] = 9.0
        assert src[0] == 0.25


class TestSampleChoices:
    def test_uniform_path_bitwise_matches_sample_uniform_choices(self):
        a = sample_choices(5000, 17, np.random.default_rng(3))
        b = sample_uniform_choices(5000, 17, np.random.default_rng(3))
        assert np.array_equal(a, b)

    def test_k_zero(self, rng):
        out = sample_choices(0, 5, rng, np.full(5, 0.2))
        assert out.size == 0 and out.dtype == np.int64

    def test_single_bin(self, rng):
        out = sample_choices(100, 1, rng, np.array([1.0]))
        assert np.array_equal(out, np.zeros(100, dtype=np.int64))

    def test_zero_probability_bin_never_drawn(self, rng):
        pvals = np.array([0.0, 0.5, 0.5])
        out = sample_choices(20_000, 3, rng, pvals)
        assert not (out == 0).any()

    def test_float_tolerance_sum_accepted(self, rng):
        pvals = np.full(3, 1.0 / 3.0)  # sums to 1 within float tolerance
        out = sample_choices(100, 3, rng, pvals)
        assert out.min() >= 0 and out.max() < 3

    def test_skew_matches_pvals_chi2(self, rng):
        pvals = np.array([0.6, 0.3, 0.1])
        k = 60_000
        counts = np.bincount(sample_choices(k, 3, rng, pvals), minlength=3)
        expected = pvals * k
        chi2 = ((counts - expected) ** 2 / expected).sum()
        assert chi2 < 13.8  # 99.9th percentile, 2 dof

    def test_invalid_args(self, rng):
        with pytest.raises(ValueError):
            sample_choices(-1, 5, rng, np.full(5, 0.2))
        with pytest.raises(ValueError):
            sample_choices(5, 0, rng, None)
        with pytest.raises(ValueError, match="sum to 1"):
            sample_choices(5, 2, rng, np.array([0.9, 0.3]))


class TestMultinomialOccupancyPvals:
    def test_k_zero_with_pvals(self, rng):
        counts = multinomial_occupancy(0, 4, rng, np.full(4, 0.25))
        assert counts.shape == (4,) and counts.sum() == 0

    def test_single_bin(self, rng):
        counts = multinomial_occupancy(123, 1, rng, np.array([1.0]))
        assert counts.tolist() == [123]

    def test_zero_probability_bin_gets_nothing(self, rng):
        pvals = np.array([0.0, 0.4, 0.6])
        counts = multinomial_occupancy(50_000, 3, rng, pvals)
        assert counts[0] == 0 and counts.sum() == 50_000

    def test_uniform_pvals_bitwise_matches_default(self):
        n = 8
        a = multinomial_occupancy(10_000, n, np.random.default_rng(5))
        b = multinomial_occupancy(
            10_000, n, np.random.default_rng(5), np.full(n, 1.0 / n)
        )
        assert np.array_equal(a, b)

    def test_same_law_as_perball_under_skew(self, rng):
        """Aggregate counts under pvals must match binned per-ball
        draws in law (KS on the hottest bin across trials)."""
        pvals = np.array([0.5, 0.3, 0.2])
        k, trials = 2000, 300
        agg = np.array(
            [multinomial_occupancy(k, 3, rng, pvals)[0] for _ in range(trials)]
        )
        per = np.array(
            [
                np.bincount(sample_choices(k, 3, rng, pvals), minlength=3)[0]
                for _ in range(trials)
            ]
        )
        _, pvalue = sps.ks_2samp(agg, per)
        assert pvalue > 1e-4

    def test_invalid_pvals_rejected(self, rng):
        with pytest.raises(ValueError, match="1-D"):
            multinomial_occupancy(5, 2, rng, np.ones((2, 2)) / 4)


class TestGroupedAccept:
    def test_respects_capacity(self, rng):
        choices = rng.integers(0, 8, size=1000)
        capacity = rng.integers(0, 50, size=8)
        mask = grouped_accept(choices, capacity, rng)
        accepted_per_bin = np.bincount(choices[mask], minlength=8)
        assert np.all(accepted_per_bin <= capacity)

    def test_accepts_all_when_capacity_huge(self, rng):
        choices = rng.integers(0, 4, size=100)
        mask = grouped_accept(choices, np.full(4, 1000), rng)
        assert mask.all()

    def test_accepts_exactly_capacity_when_saturated(self, rng):
        choices = np.zeros(100, dtype=np.int64)
        mask = grouped_accept(choices, np.array([7]), rng)
        assert mask.sum() == 7

    def test_negative_capacity_treated_as_zero(self, rng):
        choices = np.zeros(10, dtype=np.int64)
        mask = grouped_accept(choices, np.array([-3]), rng)
        assert mask.sum() == 0

    def test_empty_input(self, rng):
        mask = grouped_accept(np.zeros(0, dtype=np.int64), np.array([1]), rng)
        assert mask.size == 0

    def test_out_of_range_target(self, rng):
        with pytest.raises(ValueError):
            grouped_accept(np.array([5]), np.array([1, 1]), rng)

    def test_uniform_selection_within_bin(self, rng):
        """Each requester of a saturated bin must win equally often."""
        trials = 3000
        wins = np.zeros(4)
        choices = np.zeros(4, dtype=np.int64)  # 4 requests to bin 0
        capacity = np.array([1])
        for _ in range(trials):
            mask = grouped_accept(choices, capacity, rng)
            wins[np.flatnonzero(mask)[0]] += 1
        expected = trials / 4
        chi2 = ((wins - expected) ** 2 / expected).sum()
        assert chi2 < 16.3  # 99.9th percentile, 3 dof

    def test_multiple_bins_independent(self, rng):
        choices = np.array([0, 0, 1, 1, 2])
        capacity = np.array([1, 2, 0])
        mask = grouped_accept(choices, capacity, rng)
        assert mask[:2].sum() == 1
        assert mask[2:4].sum() == 2
        assert not mask[4]
