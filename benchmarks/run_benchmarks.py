#!/usr/bin/env python
"""Pinned-seed benchmark runner: the repo's performance trajectory.

Runs a fixed subset of the benchmark suite — the shared RoundState
kernel backends of every registered allocator plus the object-level
agent-engine reference — at pinned seeds and writes the results to
``BENCH_kernels.json`` (checked in at the repo root), so successive PRs
record a comparable perf trajectory.  A second artifact,
``BENCH_workloads.json``, times the workload-capable allocators in
both granularities under Zipf choice skew (plus geometric weights and
a proportional capacity profile) at the same pinned seeds — the
perball-vs-aggregate trajectory of the workload subsystem.  A third,
``BENCH_replication.json``, times the trial-batched replication engine
(``repro.replicate``) against the sequential per-seed loop at m=10^5,
trials=256 — the ISSUE-4 acceptance bar is a >= 20x speedup on the
headline ``heavy`` record at full scale, with both legs pinned to the
``reference`` kernel backend so the baseline stays the historical
per-seed loop across PRs (the fused backend accelerates that loop
~2x, which would shrink the ratio without the engine getting slower).  A fourth,
``BENCH_dynamic.json``, times incremental rebalancing against the
full-rerun oracle under 10% churn (m=10^5, 32 epochs at full scale) —
the ISSUE-5 acceptance bar is a >= 5x advantage on both per-epoch
messages and placement wall time for the headline ``heavy`` pair,
likewise pinned to the ``reference`` backend (fused accelerates the
oracle's full-m placements more than the small churn cohorts).  A
fifth, ``BENCH_service.json``, drives the continuous allocation
service with a bursty open-loop stream (n=10^4 bins, m=10^5 balls at
full scale, gap-SLO admission control on) — the ISSUE-6 acceptance
bar is a sustained-throughput floor on the headline ``heavy`` record
plus the worst observed gap staying within the SLO.  A sixth,
``BENCH_adversarial.json``, runs every dynamic-capable allocator
benign vs attacked (the gap-maximizing greedy departure adversary) on
the same pinned seed (m=10^5, n=256, 32 epochs at full scale) — the
ISSUE-9 acceptance bar is that the headline ``heavy`` worst-epoch gap
under attack stays <= 3x its benign worst while at least one baseline
exceeds 10x (graceful degradation vs blowup).  A seventh,
``BENCH_telemetry.json``, times the instrumented end-to-end paths
(allocate/dynamic/service) with telemetry fully on vs fully off,
asserting the two legs bitwise-identical in-run at every scale — the
ISSUE-10 acceptance bar is <= 1.10x on-vs-off wall time on the m=10^6
heavy perball allocate leg at full scale, plus a span-export JSON
round-trip.

``BENCH_kernels.json`` additionally carries a ``scaling`` section
(ISSUE-7): the 1/2/4/8-worker trial-sharding curve for heavy
replication (value-identity asserted at every worker count; the >= 3x
@ 4 workers bar enforced at full scale on hosts with >= 4 CPUs), the
chunked+int32 one-shot perball run (m=10^8 at full scale, peak RSS
recorded), and the trials=10^4 batched-replication headline.

A ``kernel_profile`` section (ISSUE-8) microbenchmarks each backend
primitive (grouping/accept, priority commit, scatter) on the
``reference`` and ``fused`` kernel backends over identical inputs —
bitwise equality is asserted in-run at every scale (``RuntimeError``
on mismatch) — at m=10^6 and m=10^7 at full scale, plus an end-to-end
``heavy`` perball run per backend at m=10^6.  The ISSUE-8 acceptance
bar is a >= 1.5x fused-over-reference speedup on the contended
grouping kernel at m=10^7, enforced at full scale.

Scales::

    python benchmarks/run_benchmarks.py --scale smoke   # CI (seconds)
    python benchmarks/run_benchmarks.py --scale full    # artifact
                                                        # (m=10^6 incl.
                                                        # engine, ~3 min)

The headline figure is ``speedups``: wall-time ratio of the agent
engine (the executable specification, O(m) Python objects) to each
kernel backend at the same ``(m, n, seed)``.  The ISSUE-2 acceptance
bar is >= 5x for the per-ball kernel path at ``m = 10^6``; measured
ratios are in the hundreds (per-ball) to hundreds of thousands
(aggregate).

Use ``--output`` to write elsewhere (CI smoke does, to keep the
checked-in full-scale artifact pristine).
"""

from __future__ import annotations

import argparse
import json
import os
import platform
import subprocess
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.api.bench import (  # noqa: E402
    adversarial_degradation,
    benchmark_adversarial,
    benchmark_dynamic,
    benchmark_engine_reference,
    benchmark_kernels,
    benchmark_registry,
    benchmark_replication,
    benchmark_service,
    benchmark_telemetry,
    dynamic_speedups,
    peak_rss_bytes,
)
from repro.fastpath.backend import use_backend  # noqa: E402

#: Instance sizes per scale: (kernel m, kernel n, engine m, engine n).
#: The engine always shares n with the kernels; when its m is smaller
#: (smoke/quick), speedups are per-ball extrapolations and the payload
#: flags them via ``engine_extrapolated``.
SCALES = {
    "smoke": (20_000, 64, 5_000, 64),
    "quick": (1_000_000, 1024, 100_000, 1024),
    "full": (1_000_000, 1024, 1_000_000, 1024),
}

#: Pinned seeds — the trajectory compares like with like across PRs.
SEEDS = (0, 1)

#: Workload artifact: pinned scenario and the allocators whose
#: perball-vs-aggregate agreement it tracks (both granularities exist
#: and are exact-in-law for these).
WORKLOAD_SPEC = "zipf:1.1+geomw:0.5+propcap"
WORKLOAD_ALGORITHMS = ("heavy", "single", "stemann")

#: Replication artifact: (m, n, trials) per scale.  The ISSUE-4
#: acceptance instance is full scale — m=10^5, trials=256 — where the
#: trial-batched engine must beat the sequential per-seed loop
#: (allocate_many at default mode, workers=1) by >= 20x on the
#: headline algorithm.
REPLICATION_SCALES = {
    "smoke": (20_000, 64, 32),
    "quick": (100_000, 256, 64),
    "full": (100_000, 256, 256),
}
REPLICATION_ALGORITHMS = ("heavy", "combined", "single", "stemann", "trivial")
REPLICATION_HEADLINE = "heavy"
REPLICATION_SPEEDUP_BAR = 20.0

#: Dynamic artifact: (m, n, epochs) per scale at 10% churn.  The
#: ISSUE-5 acceptance instance is full scale — m=10^5, 32 epochs —
#: where incremental rebalancing must beat the full-rerun oracle by
#: >= 5x on both per-epoch messages and placement wall time for the
#: headline algorithm.  Per-ball granularity: the regime where
#: placement work scales with the balls actually moved.
DYNAMIC_SCALES = {
    "smoke": (20_000, 64, 8),
    "quick": (100_000, 256, 16),
    "full": (100_000, 256, 32),
}
DYNAMIC_CHURN = 0.1
DYNAMIC_ALGORITHMS = ("heavy", "combined", "single", "stemann")
DYNAMIC_HEADLINE = "heavy"
DYNAMIC_SPEEDUP_BAR = 5.0

#: Service artifact: (m, n, epochs) per scale at 10% churn, bursty
#: arrivals.  The ISSUE-6 acceptance instance is full scale — n=10^4
#: bins, m=10^5 balls, 16 bursty intervals — where the continuous
#: service must sustain >= SERVICE_OPS_FLOOR processed ops per busy
#: wall second on the headline algorithm (measured ~1.35M ops/s on the
#: reference machine; the floor leaves ~5x headroom for slower CI
#: hardware) while the worst observed gap stays within the admission
#: controller's SLO.
SERVICE_SCALES = {
    "smoke": (20_000, 64, 6),
    "quick": (100_000, 1024, 12),
    "full": (100_000, 10_000, 16),
}
SERVICE_CHURN = 0.1
SERVICE_ARRIVALS = "bursty"
SERVICE_ALGORITHMS = ("heavy", "combined", "single", "stemann")
SERVICE_HEADLINE = "heavy"
SERVICE_OPS_FLOOR = 250_000.0
SERVICE_GAP_SLO = 12.0

#: Adversarial artifact: (m, n, epochs) per scale at 10% churn.  The
#: ISSUE-9 acceptance instance is full scale — m=10^5, n=256, 32
#: epochs — where the headline ``heavy`` worst-epoch gap under the
#: greedy departure adversary must stay <= HEAVY_DEGRADATION_BAR times
#: its benign worst-epoch gap on the same seed, while at least one
#: baseline degrades by more than BASELINE_BLOWUP_BAR (the
#: load-oblivious baselines ratchet their maximum up every epoch; the
#: threshold schedule re-levels).
ADVERSARIAL_SCALES = {
    "smoke": (20_000, 64, 8),
    "quick": (100_000, 256, 16),
    "full": (100_000, 256, 32),
}
ADVERSARIAL_CHURN = 0.1
ADVERSARIAL_ALGORITHMS = ("heavy", "combined", "single", "stemann")
ADVERSARIAL_HEADLINE = "heavy"
HEAVY_DEGRADATION_BAR = 3.0
BASELINE_BLOWUP_BAR = 10.0

#: Scaling section (ISSUE-7): the hardware-limit axes of the kernel
#: layer, recorded inside BENCH_kernels.json.  Three sub-blocks:
#: a 1/2/4/8-worker trial-sharding curve for heavy replication
#: (value-identity asserted against workers=1 at every count), a
#: chunked+narrowed one-shot perball run (m=10^8 at full scale, peak
#: RSS recorded — the documented memory budget in
#: docs/performance.md), and a trials=10^4 batched-replication
#: headline.  The >= 3x @ 4 workers acceptance bar is enforced at full
#: scale on hosts with >= 4 CPUs; on smaller hosts the measured curve
#: is recorded and the payload says why the bar was not enforced
#: (a 1-core host cannot exhibit process parallelism).  Value identity
#: is enforced unconditionally, at every scale.
SCALING_SCALES = {
    #         curve (m, n, trials)   chunked (m, n, chunk)      headline trials
    "smoke": ((20_000, 64, 32), (200_000, 256, 1 << 16), 64),
    "quick": ((100_000, 256, 256), (10_000_000, 1024, 1 << 22), 1_000),
    "full": ((100_000, 256, 256), (100_000_000, 1024, 1 << 22), 10_000),
}
SCALING_WORKER_COUNTS = (1, 2, 4, 8)
SCALING_HEADLINE = "heavy"
SCALING_SPEEDUP_BAR = 3.0  # at 4 workers, full scale, cpu_count >= 4

#: Kernel-profile section (ISSUE-8): instance sizes per scale for the
#: reference-vs-fused primitive microbenchmarks.  The end-to-end
#: ``heavy`` perball leg runs at the *first* size (m=10^6 at full
#: scale); the >= 1.5x contended-grouping bar is judged at the *last*
#: (m=10^7 at full scale).  Bitwise equality of the two backends is
#: asserted inside :func:`repro.api.bench.benchmark_kernels` at every
#: scale — a mismatch aborts the run with ``RuntimeError``.
KERNEL_PROFILE_SCALES = {
    "smoke": ((20_000, 64), (100_000, 256)),
    "quick": ((1_000_000, 1024), (2_000_000, 1024)),
    "full": ((1_000_000, 1024), (10_000_000, 1024)),
}
KERNEL_PROFILE_REPEATS = {"smoke": 2, "quick": 3, "full": 3}
KERNEL_GROUPING_BAR = 1.5  # fused vs reference, contended grouping

#: Telemetry artifact (ISSUE-10): telemetry-on vs telemetry-off wall
#: time on the instrumented end-to-end paths, with bitwise equality of
#: the two legs asserted in-run at every scale (``RuntimeError`` on
#: divergence — instrumentation that changes a value is a correctness
#: bug, not an overhead).  Per scale: the ``allocate`` heavy-perball
#: instance (m, n), the ``dynamic`` churn instance (m, n, epochs), and
#: the ``service`` open-loop instance (m, n, epochs).  The acceptance
#: bar — full telemetry on costs <= 1.10x off — is judged on the
#: headline ``allocate`` leg (m=10^6 heavy perball) at full scale; the
#: dynamic/service legs are recorded for the trajectory (the service's
#: per-submission audit mirror makes its ratio intrinsically higher on
#: open-loop unit-event streams).
TELEMETRY_SCALES = {
    "smoke": ((20_000, 64), (10_000, 64, 4), (10_000, 64, 4)),
    "quick": ((1_000_000, 1024), (50_000, 256, 8), (50_000, 256, 8)),
    "full": ((1_000_000, 1024), (100_000, 256, 16), (100_000, 1024, 16)),
}
TELEMETRY_REPEATS = {"smoke": 2, "quick": 3, "full": 3}
TELEMETRY_HEADLINE = "allocate"
TELEMETRY_OVERHEAD_BAR = 1.10  # on/off wall ratio, allocate leg, full


def run_scaling(scale: str) -> dict:
    """Measure the ISSUE-7 hardware-limit axes for BENCH_kernels.json.

    Returns the ``scaling`` payload block; raises ``RuntimeError``
    when a sharded run is not value-identical to workers=1 (that is a
    correctness failure at any scale, not a perf miss).
    """
    from repro.api.replicate import replicate

    (curve_m, curve_n, curve_trials), (chunk_m, chunk_n, chunk_size), \
        headline_trials = SCALING_SCALES[scale]
    cpu_count = os.cpu_count() or 1

    # -- worker curve: trial-sharded replication at 1/2/4/8 workers ----
    curve_records = []
    baseline = None
    base_seconds = None
    for workers in SCALING_WORKER_COUNTS:
        start = time.perf_counter()
        rep = replicate(
            SCALING_HEADLINE, curve_m, curve_n, trials=curve_trials,
            seed=SEEDS[0], workers=workers,
        )
        seconds = time.perf_counter() - start
        if baseline is None:
            baseline, base_seconds = rep, seconds
            identical = True
        else:
            identical = bool(
                (rep.loads == baseline.loads).all()
                and (rep.gaps == baseline.gaps).all()
                and (rep.total_messages == baseline.total_messages).all()
            )
        if not identical:
            raise RuntimeError(
                f"sharded replication at workers={workers} diverged "
                f"from workers=1 — value-identity violation"
            )
        curve_records.append(
            {
                "workers": workers,
                "seconds": round(seconds, 4),
                "speedup_vs_1": round(base_seconds / seconds, 2)
                if seconds > 0
                else None,
                "value_identical": identical,
            }
        )
    speedup_at_4 = next(
        (r["speedup_vs_1"] for r in curve_records if r["workers"] == 4),
        None,
    )
    bar_enforced = scale == "full" and cpu_count >= 4
    bar_skip_reason = None
    if not bar_enforced:
        bar_skip_reason = (
            f"bar applies at full scale only (scale={scale})"
            if scale != "full"
            else f"host has {cpu_count} CPU(s); process parallelism "
            f"cannot reach 3x below 4 cores — curve recorded as measured"
        )

    # -- chunked perball one-shot: m=10^8 at full scale ----------------
    # Runs in a fresh subprocess: ru_maxrss is a process-lifetime
    # high-water mark, so an in-process measurement after the engine
    # reference would report the engine's footprint, not this leg's.
    child_script = (
        "import json, time\n"
        "import repro\n"
        "from repro.api.bench import peak_rss_bytes\n"
        "from repro.core.heavy import HeavyConfig\n"
        f"m, n, chunk, seed = {chunk_m}, {chunk_n}, {chunk_size}, {SEEDS[0]}\n"
        "start = time.perf_counter()\n"
        f"chunked = repro.allocate({SCALING_HEADLINE!r}, m, n, seed=seed,\n"
        "    mode='perball', chunk_size=chunk,\n"
        "    config=HeavyConfig(track_per_ball=False))\n"
        "seconds = time.perf_counter() - start\n"
        "rss = peak_rss_bytes()\n"
        "equivalent = None\n"
        "if m <= 1_000_000:\n"
        "    # Cheap enough to pin bitwise equivalence in the artifact\n"
        "    # run itself; at larger m the equivalence suites own the\n"
        "    # claim.\n"
        f"    plain = repro.allocate({SCALING_HEADLINE!r}, m, n, seed=seed,\n"
        "        mode='perball', config=HeavyConfig(track_per_ball=False))\n"
        "    equivalent = bool((plain.loads == chunked.loads).all()\n"
        "        and plain.total_messages == chunked.total_messages)\n"
        "print(json.dumps({'seconds': seconds, 'gap': chunked.gap,\n"
        "    'rounds': chunked.rounds, 'peak_rss_bytes': rss,\n"
        "    'equivalent': equivalent}))\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (str(REPO_ROOT / "src"), env.get("PYTHONPATH")) if p
    )
    proc = subprocess.run(
        [sys.executable, "-c", child_script],
        capture_output=True, text=True, env=env,
    )
    if proc.returncode != 0:
        raise RuntimeError(
            f"chunked perball subprocess failed:\n{proc.stderr}"
        )
    child = json.loads(proc.stdout.strip().splitlines()[-1])
    if child["equivalent"] is False:
        raise RuntimeError(
            "chunked perball run diverged from the unchunked path"
        )
    chunk_seconds = child["seconds"]
    chunked_block = {
        "algorithm": SCALING_HEADLINE,
        "mode": "perball",
        "m": chunk_m,
        "n": chunk_n,
        "chunk_size": chunk_size,
        "track_per_ball": False,
        "seconds": round(chunk_seconds, 3),
        "balls_per_sec": round(chunk_m / chunk_seconds, 1)
        if chunk_seconds > 0
        else None,
        "gap": child["gap"],
        "rounds": child["rounds"],
        "peak_rss_bytes": child["peak_rss_bytes"],
        "equivalent_to_unchunked": child["equivalent"],
    }

    # -- headline: trials=10^4 batched replication ---------------------
    start = time.perf_counter()
    headline_rep = replicate(
        SCALING_HEADLINE, curve_m, curve_n, trials=headline_trials,
        seed=SEEDS[0],
    )
    headline_seconds = time.perf_counter() - start
    headline_block = {
        "algorithm": SCALING_HEADLINE,
        "m": curve_m,
        "n": curve_n,
        "trials": headline_trials,
        "seconds": round(headline_seconds, 3),
        "trials_per_sec": round(headline_trials / headline_seconds, 1)
        if headline_seconds > 0
        else None,
        "gap_mean": round(float(headline_rep.gaps.mean()), 4),
        "gap_p99": round(
            headline_rep.quantiles("gap", (0.99,))[0.99], 4
        ),
        "peak_rss_bytes": peak_rss_bytes(),
    }

    return {
        "schema": 1,
        "cpu_count": cpu_count,
        "worker_counts": list(SCALING_WORKER_COUNTS),
        "workers_curve": {
            "algorithm": SCALING_HEADLINE,
            "m": curve_m,
            "n": curve_n,
            "trials": curve_trials,
            "records": curve_records,
            "speedup_at_4": speedup_at_4,
            "bar": SCALING_SPEEDUP_BAR,
            "bar_enforced": bar_enforced,
            "bar_skip_reason": bar_skip_reason,
        },
        "chunked_perball": chunked_block,
        "headline_replication": headline_block,
    }


def run_kernel_profile(scale: str) -> dict:
    """Microbenchmark the backend primitives: reference vs fused.

    Returns the ``kernel_profile`` payload block.  Bitwise equality of
    the two backends on identical inputs is asserted *inside*
    :func:`repro.api.bench.benchmark_kernels` — any divergence raises
    ``RuntimeError`` before a single timing is recorded, at every
    scale.  The >= 1.5x contended-grouping acceptance bar itself is
    judged in :func:`main` at full scale only.
    """
    sizes = KERNEL_PROFILE_SCALES[scale]
    repeats = KERNEL_PROFILE_REPEATS[scale]
    records = []
    for i, (m, n) in enumerate(sizes):
        records.extend(
            benchmark_kernels(
                m,
                n,
                seed=SEEDS[0],
                repeats=repeats,
                # The end-to-end leg is a full allocate() per backend;
                # one size (the first — m=10^6 at full scale) keeps the
                # profile's wall time dominated by the primitives.
                end_to_end_m=m if i == 0 else None,
            )
        )
    bar_m, bar_n = sizes[-1]
    grouping = next(
        r
        for r in records
        if r.kernel == "grouped_accept"
        and r.variant == "contended"
        and r.m == bar_m
    )
    end_to_end = next(
        (r for r in records if r.kernel == "end_to_end"), None
    )
    bar_enforced = scale == "full"
    bar_skip_reason = (
        None
        if bar_enforced
        else f"bar applies at full scale only (scale={scale})"
    )
    return {
        "schema": 1,
        "scale": scale,
        "seed": SEEDS[0],
        "repeats": repeats,
        "backends": ["reference", "fused"],
        "records": [r.to_dict() for r in records],
        "grouping_speedup": round(grouping.speedup, 2),
        "grouping_bar_m": bar_m,
        "grouping_bar_n": bar_n,
        "bar": KERNEL_GROUPING_BAR,
        "bar_enforced": bar_enforced,
        "bar_skip_reason": bar_skip_reason,
        "end_to_end_perball_speedup": (
            round(end_to_end.speedup, 2) if end_to_end else None
        ),
        "end_to_end_m": end_to_end.m if end_to_end else None,
        "bitwise_equal": all(r.bitwise_equal for r in records),
    }


def run(scale: str) -> dict:
    kernel_m, kernel_n, engine_m, engine_n = SCALES[scale]
    records = benchmark_registry(
        kernel_m, kernel_n, seeds=SEEDS, kernel_only=True
    )
    engine = benchmark_engine_reference(engine_m, engine_n, seeds=SEEDS[:1])

    # Engine-vs-kernel speedups, normalized per ball when the engine ran
    # at a smaller instance than the kernels (smoke/quick scales).
    engine_sec_per_ball = engine.seconds_mean / engine.m
    speedups = {}
    for r in records:
        if r.seconds_mean <= 0:
            continue
        key = f"{r.algorithm}[{r.mode or 'default'}]"
        speedups[key] = round(
            (engine_sec_per_ball * r.m) / r.seconds_mean, 1
        )

    return {
        "schema": 1,
        "scale": scale,
        "seeds": list(SEEDS),
        "python": platform.python_version(),
        "machine": platform.machine(),
        "engine_reference": engine.to_dict(),
        # True when the engine ran at a smaller m than the kernels and
        # the speedups are per-ball extrapolations; the checked-in
        # artifact is always full scale (False: same instance).
        "engine_extrapolated": engine.m != kernel_m or engine.n != kernel_n,
        "records": [r.to_dict() for r in records],
        "speedups_vs_engine": speedups,
    }


def run_workloads(scale: str) -> dict:
    """Time the workload subsystem: perball vs aggregate under skew.

    One pinned scenario (Zipf choice skew + geometric weights +
    proportional capacities) over the allocators with both
    granularities; the artifact records, per algorithm, the timings of
    each granularity and the perball/aggregate agreement of the first
    seed's load statistics — a drift alarm for the workload kernels.
    """
    kernel_m, kernel_n, _, _ = SCALES[scale]
    records = benchmark_registry(
        kernel_m,
        kernel_n,
        seeds=SEEDS,
        algorithms=WORKLOAD_ALGORITHMS,
        workload=WORKLOAD_SPEC,
    )
    by_algo: dict = {}
    for r in records:
        by_algo.setdefault(r.algorithm, {})[r.mode] = r
    agreement = {}
    for algo, modes in by_algo.items():
        if "perball" not in modes or "aggregate" not in modes:
            continue
        p, a = modes["perball"], modes["aggregate"]
        agreement[algo] = {
            "gap_perball": p.gap,
            "gap_aggregate": a.gap,
            "rounds_perball": p.rounds,
            "rounds_aggregate": a.rounds,
            "aggregate_speedup": round(
                p.seconds_mean / a.seconds_mean, 2
            )
            if a.seconds_mean > 0
            else None,
        }
    return {
        "schema": 1,
        "scale": scale,
        "seeds": list(SEEDS),
        "workload": WORKLOAD_SPEC,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "records": [r.to_dict() for r in records],
        "perball_vs_aggregate": agreement,
    }


def run_replication(scale: str) -> dict:
    """Time the trial-batched replication engine vs the sequential loop.

    One pinned seed, every ``trial_batched`` allocator: the artifact
    records both wall times and their ratio, plus the batched run's
    gap statistics as a value anchor.  The headline figure is the
    ``heavy`` speedup at full scale (m=10^5, trials=256) — the
    dominant real workload (repeated seeded runs of the paper's main
    algorithm) before and after the replication engine.
    """
    m, n, trials = REPLICATION_SCALES[scale]
    # Both legs run on the reference kernel backend: the speedup bar
    # measures the *batching* axis (engine vs per-seed loop), so the
    # baseline must stay the historical kernels for the trajectory to
    # remain comparable across PRs.  (The fused backend accelerates the
    # perball sequential loop ~2x but not the O(n)-per-round aggregate
    # engine, which never sorts balls — under fused the same ratio reads
    # ~16x, a faster baseline, not a slower engine.)  The fused-vs-
    # reference axis is measured separately by ``kernel_profile``.
    records = benchmark_replication(
        m,
        n,
        trials=trials,
        seed=SEEDS[0],
        algorithms=REPLICATION_ALGORITHMS,
        backend="reference",
    )
    speedups = {
        r.algorithm: round(r.speedup, 1)
        for r in records
        if r.speedup is not None
    }
    return {
        "schema": 1,
        "scale": scale,
        "m": m,
        "n": n,
        "trials": trials,
        "seed": SEEDS[0],
        "python": platform.python_version(),
        "machine": platform.machine(),
        "backend": "reference",
        "records": [r.to_dict() for r in records],
        "speedups_batched_vs_sequential": speedups,
        "headline": REPLICATION_HEADLINE,
        "headline_speedup": speedups.get(REPLICATION_HEADLINE),
        "speedup_bar": REPLICATION_SPEEDUP_BAR,
    }


def run_dynamic_bench(scale: str) -> dict:
    """Time incremental vs full-rerun rebalancing under churn.

    One pinned seed, every dynamic-capable allocator, both rebalance
    strategies on the same churn regime (10% uniform churn, fixed
    arrivals).  The artifact records per-epoch messages/moved
    balls/wall time for each strategy and the full/incremental
    advantage ratios — the headline figure is the ``heavy`` pair at
    full scale, where incremental cost must scale with the churn, not
    the population.
    """
    m, n, epochs = DYNAMIC_SCALES[scale]
    # Pinned to the reference kernel backend for the same reason as the
    # replication benchmark: the bar measures the incremental-vs-oracle
    # axis, and the fused backend accelerates the oracle's full-m
    # perball grouping far more than the small churn-cohort placements
    # (whose fixed per-round overheads dominate), shrinking the wall
    # ratio without incremental getting slower.  Messages are a value
    # metric and identical under either backend.
    with use_backend("reference"):
        records = benchmark_dynamic(
            m,
            n,
            epochs=epochs,
            churn=DYNAMIC_CHURN,
            seed=SEEDS[0],
            algorithms=DYNAMIC_ALGORITHMS,
            mode="perball",
        )
    speedups = {
        algo: {
            k: (round(v, 2) if v is not None else None)
            for k, v in ratios.items()
        }
        for algo, ratios in dynamic_speedups(records).items()
    }
    headline = speedups.get(DYNAMIC_HEADLINE, {})
    return {
        "schema": 1,
        "scale": scale,
        "m": m,
        "n": n,
        "epochs": epochs,
        "churn": DYNAMIC_CHURN,
        "seed": SEEDS[0],
        "mode": "perball",
        "backend": "reference",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "records": [r.to_dict() for r in records],
        "speedups_incremental_vs_full": speedups,
        "headline": DYNAMIC_HEADLINE,
        "headline_message_speedup": headline.get("messages"),
        "headline_wall_speedup": headline.get("seconds"),
        "speedup_bar": DYNAMIC_SPEEDUP_BAR,
    }


def run_service_bench(scale: str) -> dict:
    """Time the continuous service under a bursty open-loop stream.

    One pinned seed, every dynamic-capable allocator in
    ``SERVICE_ALGORITHMS``, the gap-SLO admission controller enabled.
    The artifact records sustained throughput (processed ops per busy
    wall second), simulated-time latency percentiles, admission
    counters, and the gap trajectory — the headline figure is the
    ``heavy`` sustained ops/sec at full scale (n=10^4 bins, bursty
    arrivals), floored by ``SERVICE_OPS_FLOOR``, with the worst gap
    checked against ``SERVICE_GAP_SLO``.
    """
    m, n, epochs = SERVICE_SCALES[scale]
    records = benchmark_service(
        m,
        n,
        epochs=epochs,
        churn=SERVICE_CHURN,
        arrivals=SERVICE_ARRIVALS,
        seed=SEEDS[0],
        algorithms=SERVICE_ALGORITHMS,
        gap_slo=SERVICE_GAP_SLO,
    )
    by_algo = {r.algorithm: r for r in records}
    headline = by_algo.get(SERVICE_HEADLINE)
    return {
        "schema": 1,
        "scale": scale,
        "m": m,
        "n": n,
        "epochs": epochs,
        "churn": SERVICE_CHURN,
        "arrivals": SERVICE_ARRIVALS,
        "seed": SEEDS[0],
        "gap_slo": SERVICE_GAP_SLO,
        "python": platform.python_version(),
        "machine": platform.machine(),
        "records": [r.to_dict() for r in records],
        "headline": SERVICE_HEADLINE,
        "headline_ops_per_sec": (
            round(headline.ops_per_sec, 1) if headline else None
        ),
        "headline_gap_worst": (
            headline.gap_worst if headline else None
        ),
        "ops_floor": SERVICE_OPS_FLOOR,
    }


def run_adversarial_bench(scale: str) -> dict:
    """Run benign-vs-attacked churn pairs for every dynamic allocator.

    One pinned seed; per algorithm the same regime runs twice —
    uniform departures (benign control) and the gap-maximizing greedy
    departure adversary — and the artifact records both worst-epoch
    gaps plus their ratio (the degradation attributable to the
    adversary).  Aggregate granularity: the degradation bar is a value
    claim (gap trajectories), not a wall-time one, and aggregate keeps
    the 32-epoch full-scale run cheap.
    """
    m, n, epochs = ADVERSARIAL_SCALES[scale]
    records = benchmark_adversarial(
        m,
        n,
        epochs=epochs,
        churn=ADVERSARIAL_CHURN,
        seed=SEEDS[0],
        algorithms=ADVERSARIAL_ALGORITHMS,
        mode="aggregate",
    )
    degradation = {
        algo: round(ratio, 2)
        for algo, ratio in adversarial_degradation(records).items()
    }
    baselines = {
        algo: ratio
        for algo, ratio in degradation.items()
        if algo != ADVERSARIAL_HEADLINE
    }
    worst_baseline = (
        max(baselines, key=baselines.get) if baselines else None
    )
    return {
        "schema": 1,
        "scale": scale,
        "m": m,
        "n": n,
        "epochs": epochs,
        "churn": ADVERSARIAL_CHURN,
        "seed": SEEDS[0],
        "mode": "aggregate",
        "attack_departures": "greedy_adversary",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "records": [r.to_dict() for r in records],
        "degradation": degradation,
        "headline": ADVERSARIAL_HEADLINE,
        "headline_degradation": degradation.get(ADVERSARIAL_HEADLINE),
        "worst_baseline": worst_baseline,
        "worst_baseline_degradation": (
            baselines[worst_baseline] if worst_baseline else None
        ),
        "degradation_bar": HEAVY_DEGRADATION_BAR,
        "baseline_blowup_bar": BASELINE_BLOWUP_BAR,
    }


def run_telemetry_bench(scale: str) -> dict:
    """Time telemetry-on vs telemetry-off on the instrumented paths.

    One pinned seed, three end-to-end scenarios (a heavy-perball
    ``allocate``, a churn ``run_dynamic``, an open-loop service run) —
    each timed best-of-``repeats`` with telemetry fully off and fully
    on, after asserting the two legs bitwise-identical in-run
    (:func:`repro.api.bench.benchmark_telemetry` raises on divergence
    at every scale).  The artifact also pins the span-export contract:
    the instrumented run's Chrome-trace JSON must round-trip through
    ``json`` with structurally valid events.
    """
    (alloc_m, alloc_n), dynamic, service = TELEMETRY_SCALES[scale]
    repeats = TELEMETRY_REPEATS[scale]
    records = benchmark_telemetry(
        alloc_m,
        alloc_n,
        seed=SEEDS[0],
        repeats=repeats,
        dynamic=dynamic,
        service=service,
    )
    headline = next(
        (r for r in records if r.scenario == TELEMETRY_HEADLINE), None
    )
    bar_enforced = scale == "full"
    bar_skip_reason = (
        None
        if bar_enforced
        else f"bar applies at full scale only (scale={scale})"
    )
    return {
        "schema": 1,
        "scale": scale,
        "seed": SEEDS[0],
        "repeats": repeats,
        "records": [r.to_dict() for r in records],
        "headline": TELEMETRY_HEADLINE,
        "headline_overhead": (
            round(headline.overhead, 3) if headline else None
        ),
        "bar": TELEMETRY_OVERHEAD_BAR,
        "bar_enforced": bar_enforced,
        "bar_skip_reason": bar_skip_reason,
        "bitwise_equal": all(r.bitwise_equal for r in records),
        "span_roundtrip": all(r.span_roundtrip for r in records),
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="full")
    parser.add_argument(
        "--output",
        "--kernels-output",
        type=Path,
        default=REPO_ROOT / "BENCH_kernels.json",
        help="kernels-artifact path (default: BENCH_kernels.json at the "
        "repo root); --kernels-output is an alias",
    )
    parser.add_argument(
        "--workloads-output",
        type=Path,
        default=REPO_ROOT / "BENCH_workloads.json",
        help="workload-artifact path (default: BENCH_workloads.json at "
        "the repo root)",
    )
    parser.add_argument(
        "--replication-output",
        type=Path,
        default=REPO_ROOT / "BENCH_replication.json",
        help="replication-artifact path (default: BENCH_replication.json "
        "at the repo root)",
    )
    parser.add_argument(
        "--dynamic-output",
        type=Path,
        default=REPO_ROOT / "BENCH_dynamic.json",
        help="dynamic-artifact path (default: BENCH_dynamic.json at the "
        "repo root)",
    )
    parser.add_argument(
        "--service-output",
        type=Path,
        default=REPO_ROOT / "BENCH_service.json",
        help="service-artifact path (default: BENCH_service.json at the "
        "repo root)",
    )
    parser.add_argument(
        "--adversarial-output",
        type=Path,
        default=REPO_ROOT / "BENCH_adversarial.json",
        help="adversarial-artifact path (default: BENCH_adversarial.json "
        "at the repo root)",
    )
    parser.add_argument(
        "--telemetry-output",
        type=Path,
        default=REPO_ROOT / "BENCH_telemetry.json",
        help="telemetry-artifact path (default: BENCH_telemetry.json at "
        "the repo root)",
    )
    args = parser.parse_args(argv)
    payload = run(args.scale)
    payload["scaling"] = run_scaling(args.scale)
    payload["kernel_profile"] = run_kernel_profile(args.scale)
    args.output.write_text(json.dumps(payload, indent=2) + "\n")
    workloads_payload = run_workloads(args.scale)
    args.workloads_output.write_text(
        json.dumps(workloads_payload, indent=2) + "\n"
    )
    print(
        f"wrote {args.workloads_output} "
        f"({len(workloads_payload['records'])} workload records, "
        f"workload {workloads_payload['workload']})"
    )
    replication_payload = run_replication(args.scale)
    args.replication_output.write_text(
        json.dumps(replication_payload, indent=2) + "\n"
    )
    headline = replication_payload["headline_speedup"]
    print(
        f"wrote {args.replication_output} "
        f"({len(replication_payload['records'])} replication records)"
    )
    print(
        f"replication speedup ({REPLICATION_HEADLINE}, trial-batched vs "
        f"sequential): {headline}x"
    )
    # ISSUE-4 acceptance bar: >= 20x at the full-scale instance
    # (m=10^5, trials=256).  Smoke/quick run smaller trial counts where
    # fixed overheads weigh more, so the bar applies at full scale only.
    if args.scale == "full" and (
        headline is None or headline < REPLICATION_SPEEDUP_BAR
    ):
        print(
            "error: replication speedup fell below the "
            f"{REPLICATION_SPEEDUP_BAR:.0f}x acceptance bar"
        )
        return 1
    dynamic_payload = run_dynamic_bench(args.scale)
    args.dynamic_output.write_text(
        json.dumps(dynamic_payload, indent=2) + "\n"
    )
    msg_speedup = dynamic_payload["headline_message_speedup"]
    wall_speedup = dynamic_payload["headline_wall_speedup"]
    print(
        f"wrote {args.dynamic_output} "
        f"({len(dynamic_payload['records'])} dynamic records)"
    )
    print(
        f"dynamic advantage ({DYNAMIC_HEADLINE}, incremental vs "
        f"full_rerun at {DYNAMIC_CHURN:.0%} churn): "
        f"{msg_speedup}x messages, {wall_speedup}x wall"
    )
    # ISSUE-5 acceptance bar: >= 5x on messages AND wall time at the
    # full-scale instance (m=10^5, 32 epochs).  Smoke/quick run fewer
    # epochs at smaller m where fixed overheads weigh more, so the bar
    # applies at full scale only.
    if args.scale == "full" and (
        msg_speedup is None
        or wall_speedup is None
        or msg_speedup < DYNAMIC_SPEEDUP_BAR
        or wall_speedup < DYNAMIC_SPEEDUP_BAR
    ):
        print(
            "error: dynamic incremental advantage fell below the "
            f"{DYNAMIC_SPEEDUP_BAR:.0f}x acceptance bar"
        )
        return 1
    service_payload = run_service_bench(args.scale)
    args.service_output.write_text(
        json.dumps(service_payload, indent=2) + "\n"
    )
    ops = service_payload["headline_ops_per_sec"]
    gap_worst = service_payload["headline_gap_worst"]
    print(
        f"wrote {args.service_output} "
        f"({len(service_payload['records'])} service records)"
    )
    print(
        f"service throughput ({SERVICE_HEADLINE}, bursty open-loop at "
        f"n={service_payload['n']:,}): {ops:,.0f} ops/s sustained, "
        f"worst gap {gap_worst:+.1f} (SLO {SERVICE_GAP_SLO:.0f})"
    )
    # ISSUE-6 acceptance bar: sustained throughput floor and the gap
    # SLO, at the full-scale instance (n=10^4 bins, bursty arrivals).
    # Smoke/quick run smaller instances where per-batch overheads
    # dominate, so the bar applies at full scale only.
    if args.scale == "full" and (
        ops is None
        or ops < SERVICE_OPS_FLOOR
        or gap_worst is None
        or gap_worst > SERVICE_GAP_SLO
    ):
        print(
            f"error: service fell below the {SERVICE_OPS_FLOOR:,.0f} "
            f"ops/s floor or breached the {SERVICE_GAP_SLO:.0f} gap SLO"
        )
        return 1
    adversarial_payload = run_adversarial_bench(args.scale)
    args.adversarial_output.write_text(
        json.dumps(adversarial_payload, indent=2) + "\n"
    )
    heavy_degrade = adversarial_payload["headline_degradation"]
    worst_baseline = adversarial_payload["worst_baseline"]
    worst_degrade = adversarial_payload["worst_baseline_degradation"]
    print(
        f"wrote {args.adversarial_output} "
        f"({len(adversarial_payload['records'])} adversarial records)"
    )
    print(
        f"adversarial degradation (greedy departures, "
        f"{ADVERSARIAL_CHURN:.0%} churn): {ADVERSARIAL_HEADLINE} "
        f"{heavy_degrade}x vs worst baseline {worst_baseline} "
        f"{worst_degrade}x"
    )
    # ISSUE-9 acceptance bar: at the full-scale instance (m=10^5,
    # n=256, 32 epochs) heavy's worst-epoch gap under attack stays
    # <= 3x its benign worst while at least one baseline exceeds 10x.
    # Smoke/quick run fewer epochs, where the baselines' per-epoch
    # ratchet has not yet compounded, so the bar applies at full scale
    # only.
    if args.scale == "full" and (
        heavy_degrade is None
        or heavy_degrade > HEAVY_DEGRADATION_BAR
        or worst_degrade is None
        or worst_degrade <= BASELINE_BLOWUP_BAR
    ):
        print(
            f"error: adversarial degradation bar failed — need "
            f"{ADVERSARIAL_HEADLINE} <= {HEAVY_DEGRADATION_BAR}x and a "
            f"baseline > {BASELINE_BLOWUP_BAR}x"
        )
        return 1
    telemetry_payload = run_telemetry_bench(args.scale)
    args.telemetry_output.write_text(
        json.dumps(telemetry_payload, indent=2) + "\n"
    )
    overhead = telemetry_payload["headline_overhead"]
    print(
        f"wrote {args.telemetry_output} "
        f"({len(telemetry_payload['records'])} telemetry records)"
    )
    print(
        f"telemetry overhead ({TELEMETRY_HEADLINE} heavy perball, "
        f"full instrumentation on vs off): {overhead}x "
        f"(bitwise equal: {telemetry_payload['bitwise_equal']}, "
        f"span round-trip: {telemetry_payload['span_roundtrip']})"
    )
    # ISSUE-10 acceptance bar: full telemetry on costs <= 1.10x off on
    # the m=10^6 heavy perball leg — the full-scale instance; smaller
    # scales time millisecond runs where scheduler noise swamps the
    # ratio, so the bar applies at full scale only.  Bitwise equality
    # and the span-export round-trip were already enforced in-run
    # (benchmark_telemetry raises on divergence at every scale).
    if telemetry_payload["bar_enforced"] and (
        overhead is None or overhead > TELEMETRY_OVERHEAD_BAR
    ):
        print(
            f"error: telemetry overhead exceeded the "
            f"{TELEMETRY_OVERHEAD_BAR}x acceptance bar"
        )
        return 1
    if telemetry_payload["bar_skip_reason"]:
        print(
            f"telemetry bar not enforced: "
            f"{telemetry_payload['bar_skip_reason']}"
        )
    heavy_perball = payload["speedups_vs_engine"].get("heavy[perball]")
    print(f"wrote {args.output} ({len(payload['records'])} records)")
    print(f"engine reference : {payload['engine_reference']['seconds_mean']:.2f}s "
          f"at m={payload['engine_reference']['m']:,}")
    if heavy_perball is None:
        print("error: heavy[perball] record missing from the run")
        return 1
    print(f"heavy[perball] speedup vs engine: {heavy_perball:,.0f}x")
    # ISSUE-2 acceptance bar, enforced at every scale (CI runs smoke):
    # the kernel backend must beat the agent engine by >= 5x per ball.
    if heavy_perball < 5:
        print("error: kernel speedup fell below the 5x acceptance bar")
        return 1
    scaling = payload["scaling"]
    curve = scaling["workers_curve"]
    chunked = scaling["chunked_perball"]
    curve_str = ", ".join(
        f"{r['workers']}w={r['speedup_vs_1']}x" for r in curve["records"]
    )
    print(
        f"scaling curve ({curve['algorithm']}, trials={curve['trials']}, "
        f"{scaling['cpu_count']} cpu): {curve_str}"
    )
    print(
        f"chunked perball: m={chunked['m']:,} in {chunked['seconds']:.1f}s "
        f"({chunked['balls_per_sec']:,.0f} balls/s, "
        f"peak rss {chunked['peak_rss_bytes'] / 2**30:.2f} GiB)"
    )
    # ISSUE-7 acceptance bar: >= 3x speedup at 4 workers for the
    # trials=256 heavy replication curve — enforceable only where 4
    # cores exist; value identity (workers=k == workers=1) is already
    # enforced unconditionally inside run_scaling at every scale.
    if curve["bar_enforced"] and (
        curve["speedup_at_4"] is None
        or curve["speedup_at_4"] < SCALING_SPEEDUP_BAR
    ):
        print(
            f"error: trial-sharding speedup at 4 workers fell below "
            f"the {SCALING_SPEEDUP_BAR:.0f}x acceptance bar"
        )
        return 1
    if curve["bar_skip_reason"]:
        print(f"scaling bar not enforced: {curve['bar_skip_reason']}")
    kp = payload["kernel_profile"]
    print(
        f"kernel profile: contended grouping fused-vs-reference "
        f"{kp['grouping_speedup']}x at m={kp['grouping_bar_m']:,}; "
        f"end-to-end perball {kp['end_to_end_perball_speedup']}x at "
        f"m={kp['end_to_end_m']:,} (bitwise equal: "
        f"{kp['bitwise_equal']})"
    )
    # ISSUE-8 acceptance bar: the fused counting-sort grouping must
    # beat the reference lexsort by >= 1.5x on the contended kernel at
    # m=10^7 — the full-scale instance; smoke/quick sizes are too small
    # for the asymptotic gap to dominate fixed overheads.  Bitwise
    # equivalence was already enforced in-run (benchmark_kernels raises
    # on mismatch at every scale).
    if kp["bar_enforced"] and kp["grouping_speedup"] < KERNEL_GROUPING_BAR:
        print(
            f"error: fused grouping speedup fell below the "
            f"{KERNEL_GROUPING_BAR}x acceptance bar"
        )
        return 1
    if kp["bar_skip_reason"]:
        print(f"kernel-profile bar not enforced: {kp['bar_skip_reason']}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
