"""Process-pool execution of repeated runs.

The simulations are CPU-bound numpy code, so Python threads cannot
parallelize repetitions (the GIL serializes the interpreter between the
vectorized sections — the limitation the calibration notes flag).
Repetitions over seeds are embarrassingly parallel, though, and
``multiprocessing`` sidesteps the GIL entirely: this module fans a
seed list out over worker *processes*, following the message-passing
idiom of the HPC guides (each worker owns its instance; only small
result summaries cross process boundaries).

Workers re-import :mod:`repro` and dispatch by *algorithm name* (plain
strings and kwargs are picklable where closures are not), so the entry
point works under the default ``fork`` and ``spawn`` start methods
alike.
"""

from __future__ import annotations

import os
from concurrent.futures import ProcessPoolExecutor
from typing import Any, Optional, Sequence

__all__ = ["ALGORITHMS", "run_one", "parallel_results", "parallel_gaps"]

#: Names accepted by :func:`run_one`; each maps to a repro entry point.
ALGORITHMS: tuple[str, ...] = (
    "heavy",
    "asymmetric",
    "single_choice",
    "greedy_d",
    "stemann",
    "batched",
    "trivial",
    "combined",
)


def run_one(algorithm: str, m: int, n: int, seed: int, **kwargs: Any) -> dict:
    """Run one allocation in the current process; return a summary dict.

    Returns only small plain data (gap, max load, rounds, messages) so
    the inter-process payload stays negligible.
    """
    import repro

    dispatch = {
        "heavy": repro.run_heavy,
        "asymmetric": repro.run_asymmetric,
        "single_choice": repro.run_single_choice,
        "greedy_d": repro.run_greedy_d,
        "stemann": repro.run_stemann,
        "batched": repro.run_batched_dchoice,
        "trivial": repro.run_trivial,
        "combined": repro.run_combined,
    }
    if algorithm not in dispatch:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    result = dispatch[algorithm](m, n, seed=seed, **kwargs)
    return {
        "algorithm": result.algorithm,
        "seed": seed,
        "gap": result.gap,
        "max_load": result.max_load,
        "rounds": result.rounds,
        "total_messages": result.total_messages,
        "complete": result.complete,
    }


def parallel_results(
    algorithm: str,
    m: int,
    n: int,
    seeds: Sequence[int],
    *,
    workers: Optional[int] = None,
    **kwargs: Any,
) -> list[dict]:
    """Run ``algorithm`` once per seed across worker processes.

    Parameters
    ----------
    algorithm:
        One of :data:`ALGORITHMS`.
    m, n:
        Instance size.
    seeds:
        One run per seed; results come back in seed order.
    workers:
        Process count (default: ``min(len(seeds), cpu_count)``).
    kwargs:
        Forwarded to the algorithm (e.g. ``mode="aggregate"``, ``d=2``).
    """
    if algorithm not in ALGORITHMS:
        raise ValueError(
            f"unknown algorithm {algorithm!r}; expected one of {ALGORITHMS}"
        )
    if not seeds:
        raise ValueError("need at least one seed")
    max_workers = workers or min(len(seeds), os.cpu_count() or 1)
    if max_workers == 1:
        return [run_one(algorithm, m, n, seed, **kwargs) for seed in seeds]
    with ProcessPoolExecutor(max_workers=max_workers) as pool:
        futures = [
            pool.submit(run_one, algorithm, m, n, seed, **kwargs)
            for seed in seeds
        ]
        return [f.result() for f in futures]


def parallel_gaps(
    algorithm: str,
    m: int,
    n: int,
    seeds: Sequence[int],
    *,
    workers: Optional[int] = None,
    **kwargs: Any,
) -> list[float]:
    """Convenience: just the max-load gaps, in seed order."""
    return [
        r["gap"]
        for r in parallel_results(
            algorithm, m, n, seeds, workers=workers, **kwargs
        )
    ]
