"""Tests for A_light (Theorem 5 guarantees)."""

import numpy as np
import pytest

from repro.light.lw16 import LightConfig, run_light, tower_schedule
from repro.utils.logstar import log_star


class TestTowerSchedule:
    def test_growth(self):
        cap = 10**9
        assert tower_schedule(0, cap) == 1
        assert tower_schedule(1, cap) == 2
        assert tower_schedule(2, cap) == 4
        assert tower_schedule(3, cap) == 16
        assert tower_schedule(4, cap) == 65536

    def test_cap_respected(self):
        assert tower_schedule(4, 64) == 64
        assert tower_schedule(10, 64) == 64

    def test_negative_round(self):
        with pytest.raises(ValueError):
            tower_schedule(-1, 10)


class TestRunLight:
    @pytest.mark.parametrize("n", [64, 512, 4096])
    def test_theorem5_load_bound(self, n):
        out = run_light(n, n, seed=42)
        assert out.max_load <= 2
        assert out.loads.sum() == n

    @pytest.mark.parametrize("n", [256, 2048])
    def test_theorem5_round_bound(self, n):
        out = run_light(n, n, seed=7)
        assert out.rounds <= log_star(n) + 6
        assert not out.used_fallback

    @pytest.mark.parametrize("n", [256, 2048])
    def test_theorem5_message_bound(self, n):
        out = run_light(n, n, seed=7)
        # O(n) messages with a modest constant.
        assert out.total_messages <= 12 * n

    def test_assignment_consistent_with_loads(self):
        out = run_light(500, 500, seed=3)
        assert (out.assignment >= 0).all()
        recomputed = np.bincount(out.assignment, minlength=500)
        assert np.array_equal(recomputed, out.loads)

    def test_fewer_balls_than_bins(self):
        out = run_light(100, 1000, seed=1)
        assert out.loads.sum() == 100
        assert out.max_load <= 2

    def test_capacity_one(self):
        out = run_light(50, 200, seed=1, config=LightConfig(capacity=1))
        assert out.max_load <= 1
        assert out.loads.sum() == 50

    def test_over_capacity_rejected(self):
        with pytest.raises(ValueError, match="exceed total capacity"):
            run_light(1000, 100, seed=1)  # capacity 2*100 < 1000

    def test_exact_capacity_completes(self):
        # n_balls == capacity * n_bins forces the tightest packing; the
        # sweep fallback guarantees completion.
        out = run_light(64, 32, seed=5)
        assert out.loads.sum() == 64
        assert out.max_load <= 2

    def test_zero_balls(self):
        out = run_light(0, 10, seed=1)
        assert out.loads.sum() == 0
        assert out.rounds == 0

    def test_deterministic(self):
        a = run_light(1000, 1000, seed=11)
        b = run_light(1000, 1000, seed=11)
        assert np.array_equal(a.assignment, b.assignment)
        assert a.total_messages == b.total_messages

    def test_ball_messages_tracked(self):
        out = run_light(800, 800, seed=2)
        assert out.ball_messages.shape == (800,)
        # every ball sends >= 1 request and receives >= 1 accept (+1
        # commit per accept): minimum 3 interactions on the happy path.
        assert out.ball_messages.min() >= 3
        assert out.ball_messages.sum() == out.total_messages

    def test_metrics_round_progression(self):
        out = run_light(2000, 2000, seed=8)
        hist = out.metrics.unallocated_history
        assert hist[0] == 2000
        assert all(a > b for a, b in zip(hist, hist[1:]))

    def test_round_budget_decay(self):
        """The unallocated count must collapse super-geometrically: by
        round 3 fewer than 2% of balls remain."""
        out = run_light(10_000, 10_000, seed=4)
        hist = out.metrics.unallocated_history + [0]
        if len(hist) > 3:
            assert hist[3] < 200

    def test_ball_ids_length_validated(self):
        with pytest.raises(ValueError, match="ball_ids"):
            run_light(10, 10, seed=1, ball_ids=np.arange(5))


class TestLightConfig:
    def test_invalid_capacity(self):
        with pytest.raises(ValueError, match="capacity"):
            run_light(10, 10, seed=1, config=LightConfig(capacity=0))

    def test_max_contacts_respected(self):
        """Per-round request count never exceeds max_contacts * active."""
        cfg = LightConfig(max_contacts=4)
        out = run_light(2000, 2000, seed=3, config=cfg)
        for r in out.metrics.rounds:
            assert r.requests_sent <= 4 * r.unallocated_start
        assert out.max_load <= 2

    def test_round_budget_slack_zero_falls_back_fast(self):
        """With no randomized budget the sweep fallback must engage and
        still satisfy the load cap."""
        cfg = LightConfig(round_budget_slack=-10)  # budget <= 0
        out = run_light(100, 100, seed=3, config=cfg)
        assert out.used_fallback
        assert out.max_load <= 2
        assert out.loads.sum() == 100
