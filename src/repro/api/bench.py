"""Registry-driven benchmark harness for the kernel backends.

One function, :func:`benchmark_registry`, walks the allocator registry
(exactly like ``python -m repro list``) and times every registered
allocator in each of its vectorized execution modes at a pinned
instance size and seed set.  It backs two front ends:

* ``python -m repro bench`` — the CLI subcommand, printing a throughput
  table for any instance size;
* ``benchmarks/run_benchmarks.py`` — the pinned-seed perf-trajectory
  runner that writes ``BENCH_kernels.json`` (engine-reference timings
  included, so the kernel-vs-engine speedup is recorded per run).

:func:`benchmark_replication` is the replication-engine counterpart:
it times ``repro.replicate`` (trial-batched) against the sequential
per-seed loop for every ``trial_batched`` spec, backing ``python -m
repro bench --trials`` and the checked-in ``BENCH_replication.json``.

:func:`benchmark_kernels` is the per-kernel microbenchmark behind the
``kernel_profile`` section of ``BENCH_kernels.json``: it times each
backend primitive (grouping/accept, commit resolution, scatter) on the
``reference`` and ``fused`` kernel backends over *identical* inputs,
asserting bitwise-equal outputs in-run — a mismatch raises
``RuntimeError`` instead of recording a timing for a wrong kernel.

Timings use ``time.perf_counter`` around the public ``allocate`` entry
point, so what is measured is exactly what a user gets.
"""

from __future__ import annotations

import resource
import sys
import time
from dataclasses import asdict, dataclass
from typing import Iterable, Optional, Sequence

from repro.api.dispatch import allocate
from repro.api.spec import AllocatorSpec, list_allocators, resolve_name

__all__ = [
    "AdversarialBenchRecord",
    "BenchRecord",
    "DynamicBenchRecord",
    "KernelBenchRecord",
    "ReplicationBenchRecord",
    "ServiceBenchRecord",
    "adversarial_degradation",
    "benchmark_adversarial",
    "benchmark_registry",
    "benchmark_engine_reference",
    "benchmark_dynamic",
    "benchmark_kernels",
    "benchmark_replication",
    "benchmark_service",
    "dynamic_speedups",
    "peak_rss_bytes",
    "render_adversarial_table",
    "render_dynamic_table",
    "render_kernel_table",
    "render_replication_table",
    "render_service_table",
    "render_table",
]

def peak_rss_bytes() -> int:
    """Process peak resident set size, in bytes.

    The value is a *high-water mark*: it only ever rises, so a
    record's value is an upper bound on that run's working set, and
    the growth between consecutive records in one benchmark session
    is attributable to the runs in between.  The alternative
    (``tracemalloc``) would instrument every allocation and pollute
    the very timings the records exist for.

    On Linux this reads ``VmHWM`` from ``/proc/self/status`` — the
    current address space's own high-water mark.  ``ru_maxrss`` is
    deliberately the fallback only: a process forked from a
    large-memory parent *inherits* the parent's mark through
    fork/exec into its accumulated ``ru_maxrss``, so a subprocess
    benchmark leg would report its launcher's footprint instead of
    its own.  ``VmHWM`` resets at ``exec`` and is identical to
    ``ru_maxrss`` for a normally launched process.
    """
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1]) * 1024
    except OSError:
        pass
    peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return int(peak) * (1 if sys.platform == "darwin" else 1024)


@dataclass(frozen=True)
class BenchRecord:
    """One timed allocation run."""

    algorithm: str
    mode: Optional[str]
    m: int
    n: int
    seeds: int
    seconds_mean: float
    seconds_min: float
    balls_per_sec: float
    max_load: int
    gap: float
    rounds: int
    total_messages: int
    #: Workload spec string the run used (None = uniform).
    workload: Optional[str] = None
    #: Process peak RSS after the timed runs (see :func:`peak_rss_bytes`).
    peak_rss_bytes: Optional[int] = None
    #: Why this row's instance differs from the requested ``(m, n)``
    #: (regime-bound allocators run at their own natural scale so the
    #: balls/sec column stays comparable at equal ``m``).
    scale_note: Optional[str] = None
    #: Resolved kernel backend name the run executed on.
    backend: Optional[str] = None

    def to_dict(self) -> dict:
        return asdict(self)


def _instance_for(
    spec: AllocatorSpec, m: int, n: int
) -> tuple[int, int, Optional[str]]:
    """Fit the instance to the allocator's own regime, at full ``m``.

    ``light`` requires ``m <= capacity * n`` (Theorem 5); ``dchoice``
    issues one grant per bin per round, so heavy instances need ``~m/n``
    rounds (the point of the baseline, but quadratic wall time).  Both
    therefore benchmark at the requested ``m`` with ``n`` raised to the
    regime's natural ratio — the balls/sec column then compares
    like-with-like across rows instead of implying an orders-of-
    magnitude deficit that was really a toy workload size (the old
    behavior clamped ``m`` down to a few thousand).  The returned note
    records the adjustment; every other allocator takes the requested
    size as-is, note ``None``.
    """
    if spec.name == "light":
        n_run = max(n, -(-m // 2))
        if n_run != n:
            return m, n_run, (
                f"n raised {n}->{n_run}: light regime requires "
                f"m <= 2n, benchmarked at full m for comparable "
                f"balls/sec"
            )
        return m, n, None
    if spec.name == "dchoice":
        n_run = max(n, -(-m // 4))
        if n_run != n:
            return m, n_run, (
                f"n raised {n}->{n_run}: dchoice grants once per bin "
                f"per round (m >> n is quadratic), benchmarked at "
                f"m/n=4 for comparable balls/sec"
            )
        return m, n, None
    return m, n, None


def _bench_modes(spec: AllocatorSpec, include_engine: bool) -> list[Optional[str]]:
    if not spec.modes:
        return [None]
    modes = [mode for mode in spec.modes if mode != "engine" or include_engine]
    return modes


def _time_allocations(
    name: str,
    mode: Optional[str],
    m: int,
    n: int,
    seeds: Sequence[int],
    workload=None,
    scale_note: Optional[str] = None,
    backend: Optional[str] = None,
) -> BenchRecord:
    """Time ``allocate(name, m, n, mode=mode)`` once per pinned seed.

    Wall-time stats aggregate over all seeds; the result stats
    (max_load, gap, rounds, total_messages) are those of the *first*
    seed, so extending the seed list refines the timing without
    changing the recorded outcome — the perf trajectory stays
    like-with-like across PRs.
    """
    if not seeds:
        raise ValueError("need at least one seed to benchmark")
    times = []
    first_result = None
    for seed in seeds:
        start = time.perf_counter()
        result = allocate(
            name, m, n, seed=seed, mode=mode, workload=workload,
            backend=backend,
        )
        times.append(time.perf_counter() - start)
        if first_result is None:
            first_result = result
    mean = sum(times) / len(times)
    return BenchRecord(
        algorithm=name,
        mode=mode,
        m=m,
        n=n,
        seeds=len(times),
        seconds_mean=mean,
        seconds_min=min(times),
        balls_per_sec=m / mean if mean > 0 else float("inf"),
        max_load=first_result.max_load,
        gap=first_result.gap,
        rounds=first_result.rounds,
        total_messages=first_result.total_messages,
        workload=first_result.extra.get("api", {}).get("workload"),
        peak_rss_bytes=peak_rss_bytes(),
        scale_note=scale_note,
        backend=first_result.extra.get("api", {}).get("backend"),
    )


def benchmark_registry(
    m: int,
    n: int,
    *,
    seeds: Sequence[int] = (0,),
    algorithms: Optional[Iterable[str]] = None,
    include_engine: bool = False,
    include_sequential: bool = False,
    kernel_only: bool = False,
    workload=None,
    backend: Optional[str] = None,
) -> list[BenchRecord]:
    """Time every registered allocator at ``(m, n)`` over pinned seeds.

    Parameters
    ----------
    m, n:
        Instance size (clamped per-allocator where the algorithm's
        regime demands it, e.g. ``light``).
    seeds:
        Pinned seeds; each (allocator, mode) runs once per seed and the
        record reports mean/min wall time.
    algorithms:
        Restrict to these registry names/aliases (default: all).
    include_engine:
        Also time ``mode="engine"`` where supported (O(m) Python
        objects — slow; this is the reference the kernels are measured
        against).
    include_sequential:
        Also time sequential baselines (greedy[d]); off by default
        because their Python-loop cost at large ``m`` dwarfs every
        vectorized path.
    kernel_only:
        Restrict to kernel-backed specs (the ``kernel`` capability).
    workload:
        Optional workload spec string (or
        :class:`repro.workloads.Workload`) applied to every run.  A
        non-uniform workload restricts the sweep to workload-capable
        allocators and skips engine modes (which accept only the
        uniform workload).
    backend:
        Kernel backend name every timed run executes on (default: the
        ambient resolution — env var or ``"fused"``); the resolved
        name lands in each record's ``backend`` column.
    """
    from repro.workloads import as_workload

    wl = as_workload(workload)
    wanted: Optional[set[str]] = None
    if algorithms is not None:
        wanted = {resolve_name(a) for a in algorithms}
    records: list[BenchRecord] = []
    for spec in list_allocators():
        if wanted is not None and spec.name not in wanted:
            continue
        if spec.sequential and not include_sequential and wanted is None:
            continue
        if kernel_only and not spec.kernel_backed:
            continue
        if wl is not None and not spec.workload_capable:
            if wanted is not None:
                raise ValueError(
                    f"algorithm {spec.name!r} supports the uniform "
                    f"workload only; drop it from --algorithms or the "
                    f"--workload flag"
                )
            continue
        m_run, n_run, note = _instance_for(spec, m, n)
        for mode in _bench_modes(
            spec, include_engine and wl is None
        ):
            records.append(
                _time_allocations(
                    spec.name, mode, m_run, n_run, seeds, workload=wl,
                    scale_note=note, backend=backend,
                )
            )
    return records


def benchmark_engine_reference(
    m: int, n: int, *, seeds: Sequence[int] = (0,)
) -> BenchRecord:
    """Time the object-level agent engine (``heavy`` in engine mode).

    This is the executable specification the vectorized kernels are
    validated against; its wall time is the denominator of the
    kernel-speedup figures in ``BENCH_kernels.json``.
    """
    return _time_allocations("heavy", "engine", m, n, seeds)


@dataclass(frozen=True)
class ReplicationBenchRecord:
    """One trial-batched vs sequential replication timing."""

    algorithm: str
    m: int
    n: int
    trials: int
    seed: int
    #: Wall seconds for ``replicate(...)`` on the trial-batched engine.
    batched_seconds: float
    #: Wall seconds for the sequential per-seed loop
    #: (``allocate_many(workers=1, trial_batched=False)`` at its
    #: default mode — the historical path users ran before batching).
    sequential_seconds: Optional[float]
    #: sequential / batched (None when the sequential leg was skipped).
    speedup: Optional[float]
    #: Mean max-load gap over the batched trials (value sanity anchor).
    gap_mean: float
    gap_p99: float
    rounds_mean: float
    workload: Optional[str] = None
    #: Process peak RSS after the timed runs (see :func:`peak_rss_bytes`).
    peak_rss_bytes: Optional[int] = None
    #: Resolved kernel backend name both legs executed on.
    backend: Optional[str] = None

    def to_dict(self) -> dict:
        return asdict(self)


def benchmark_replication(
    m: int,
    n: int,
    *,
    trials: int,
    seed: int = 0,
    algorithms: Optional[Iterable[str]] = None,
    include_sequential: bool = True,
    workload=None,
    backend: Optional[str] = None,
) -> list[ReplicationBenchRecord]:
    """Time trial-batched replication against the sequential loop.

    For every ``trial_batched`` spec (or the requested subset), runs
    ``replicate(algorithm, m, n, trials=trials, seed=seed)`` on the
    batched engine and — when ``include_sequential`` — the same
    repetition through ``allocate_many(..., trial_batched=False,
    workers=1)`` at its default mode, the path every repeated-seed
    experiment took before the replication engine existed.  The
    speedup column of ``BENCH_replication.json`` is the ratio of the
    two.
    """
    from repro.api.batch import allocate_many
    from repro.api.replicate import replicate
    from repro.api.spec import get_spec
    from repro.fastpath.backend import resolve_backend, use_backend

    backend_name = resolve_backend(backend).name

    if algorithms is not None:
        names = [resolve_name(a) for a in algorithms]
        not_batched = [n for n in names if not get_spec(n).trial_batched]
        if not_batched:
            # A sequential-vs-sequential timing labelled as a batched
            # speedup would be meaningless; fail loudly instead.
            raise ValueError(
                f"algorithm(s) {', '.join(sorted(not_batched))} have no "
                f"trial-batched engine; replication benchmarks cover "
                f"trial_batched specs only"
            )
    else:
        names = [s.name for s in list_allocators() if s.trial_batched]
    records = []
    for name in names:
        start = time.perf_counter()
        rep = replicate(
            name, m, n, trials=trials, seed=seed, workload=workload,
            backend=backend,
        )
        batched_seconds = time.perf_counter() - start
        sequential_seconds = speedup = None
        if include_sequential:
            start = time.perf_counter()
            with use_backend(backend):
                allocate_many(
                    name,
                    m,
                    n,
                    repeats=trials,
                    seed=seed,
                    workers=1,
                    trial_batched=False,
                    **(
                        {"workload": workload}
                        if workload is not None
                        else {}
                    ),
                )
            sequential_seconds = time.perf_counter() - start
            if batched_seconds > 0:
                speedup = sequential_seconds / batched_seconds
        gq = rep.quantiles("gap", (0.99,))
        records.append(
            ReplicationBenchRecord(
                algorithm=name,
                m=m,
                n=n,
                trials=trials,
                seed=seed,
                batched_seconds=batched_seconds,
                sequential_seconds=sequential_seconds,
                speedup=speedup,
                gap_mean=float(rep.gaps.mean()),
                gap_p99=gq[0.99],
                rounds_mean=float(rep.rounds.mean()),
                workload=rep.workload,
                peak_rss_bytes=peak_rss_bytes(),
                backend=backend_name,
            )
        )
    return records


@dataclass(frozen=True)
class KernelBenchRecord:
    """One reference-vs-fused microbenchmark of a backend primitive.

    Both backends ran on *identical* inputs and their outputs were
    compared bitwise before either timing loop started —
    ``bitwise_equal`` is therefore always ``True`` on a constructed
    record (:func:`benchmark_kernels` raises ``RuntimeError`` on any
    mismatch rather than recording a timing for a wrong kernel).
    """

    #: Primitive name: ``grouped_accept``, ``priority_commit``,
    #: ``scatter_counts``, or ``end_to_end``.
    kernel: str
    #: Input regime (``contended``, ``uncontended``, ``degree-2``,
    #: ``dense``, ``heavy perball``).
    variant: str
    #: Request count the kernel processed (the microbenchmark ``m``).
    m: int
    n: int
    repeats: int
    #: Best-of-``repeats`` wall seconds on each backend.
    reference_seconds: float
    fused_seconds: float
    #: ``reference_seconds / fused_seconds``.
    speedup: float
    bitwise_equal: bool
    peak_rss_bytes: Optional[int] = None

    def to_dict(self) -> dict:
        return asdict(self)


def _best_of(fn, repeats: int) -> float:
    """Best-of-``repeats`` wall seconds for ``fn()`` (min is the right
    statistic for a microbenchmark: noise only ever adds time)."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def benchmark_kernels(
    m: int,
    n: int,
    *,
    seed: int = 0,
    repeats: int = 3,
    end_to_end_m: Optional[int] = None,
) -> list[KernelBenchRecord]:
    """Microbenchmark each backend primitive: reference vs fused.

    Generates one pinned-seed request stream of ``m`` draws over ``n``
    bins and runs every primitive on both kernel backends over the
    *identical* arrays:

    * ``grouped_accept`` — the accept grouping, in a *contended*
      regime (capacity below the mean request count, so the fused
      counting-sort path does real ranking work) and an *uncontended*
      one (capacity above every count — the bincount classification
      prunes the sort entirely);
    * ``priority_commit`` — a degree-2 priority-commit phase
      (accept + segmented commit resolution);
    * ``scatter_counts`` — the dense integer load scatter;
    * ``end_to_end`` — optionally (``end_to_end_m``), a full
      ``allocate("heavy", ..., mode="perball")`` run per backend.

    Outputs are compared bitwise before timing; any divergence raises
    ``RuntimeError`` — the profile section of ``BENCH_kernels.json``
    can therefore never contain a timing for a kernel that changed
    values.
    """
    import numpy as np

    from repro.fastpath.backend import get_backend, use_backend

    reference = get_backend("reference")
    fused = get_backend("fused")
    rng = np.random.default_rng(seed)
    records: list[KernelBenchRecord] = []

    def record(kernel, variant, k, ref_fn, fus_fn, equal):
        if not equal:
            raise RuntimeError(
                f"kernel backend mismatch: {kernel}/{variant} at "
                f"m={k}, n={n}, seed={seed} — the fused output is not "
                f"bitwise-identical to reference"
            )
        ref_s = _best_of(ref_fn, repeats)
        fus_s = _best_of(fus_fn, repeats)
        records.append(
            KernelBenchRecord(
                kernel=kernel,
                variant=variant,
                m=k,
                n=n,
                repeats=repeats,
                reference_seconds=ref_s,
                fused_seconds=fus_s,
                speedup=ref_s / fus_s if fus_s > 0 else float("inf"),
                bitwise_equal=True,
                peak_rss_bytes=peak_rss_bytes(),
            )
        )

    choices = rng.integers(0, n, size=m, dtype=np.int64)
    priorities = rng.random(m)
    for variant, cap in (
        ("contended", np.full(n, max(1, m // (2 * n)), dtype=np.int64)),
        ("uncontended", np.full(n, m, dtype=np.int64)),
    ):
        ref_out = reference.grouped_accept_with_priorities(
            choices, cap, priorities
        )
        fus_out = fused.grouped_accept_with_priorities(
            choices, cap, priorities
        )
        record(
            "grouped_accept",
            variant,
            m,
            lambda c=cap: reference.grouped_accept_with_priorities(
                choices, c, priorities
            ),
            lambda c=cap: fused.grouped_accept_with_priorities(
                choices, c, priorities
            ),
            np.array_equal(ref_out, fus_out),
        )

    # Degree-2 priority-commit phase in the kernels' ball-major layout.
    u = max(1, m // 2)
    pc_choices = rng.integers(0, n, size=2 * u, dtype=np.int64)
    pc_marks = rng.random(2 * u)
    pc_pos = np.repeat(np.arange(u, dtype=np.int64), 2)
    pc_cap = np.full(n, max(1, u // n), dtype=np.int64)
    ref_pc = reference.priority_commit_accept(
        pc_choices, pc_marks, pc_pos, u, pc_cap
    )
    fus_pc = fused.priority_commit_accept(
        pc_choices, pc_marks, pc_pos, u, pc_cap
    )
    record(
        "priority_commit",
        "degree-2",
        2 * u,
        lambda: reference.priority_commit_accept(
            pc_choices, pc_marks, pc_pos, u, pc_cap
        ),
        lambda: fused.priority_commit_accept(
            pc_choices, pc_marks, pc_pos, u, pc_cap
        ),
        np.array_equal(ref_pc[0], fus_pc[0])
        and np.array_equal(ref_pc[1], fus_pc[1]),
    )

    # The scatter mutates in place: each timed call owns a fresh target
    # (an O(n) allocation, negligible against the O(m) scatter).
    def ref_scatter():
        target = np.zeros(n, dtype=np.int64)
        reference.scatter_counts(target, choices)
        return target

    def fus_scatter():
        target = np.zeros(n, dtype=np.int64)
        fused.scatter_counts(target, choices)
        return target

    record(
        "scatter_counts",
        "dense",
        m,
        ref_scatter,
        fus_scatter,
        np.array_equal(ref_scatter(), fus_scatter()),
    )

    if end_to_end_m is not None:
        def e2e(backend_name):
            with use_backend(backend_name):
                return allocate(
                    "heavy", end_to_end_m, n, seed=seed, mode="perball"
                )

        ref_res = e2e("reference")
        fus_res = e2e("fused")
        record(
            "end_to_end",
            "heavy perball",
            end_to_end_m,
            lambda: e2e("reference"),
            lambda: e2e("fused"),
            np.array_equal(ref_res.loads, fus_res.loads)
            and ref_res.max_load == fus_res.max_load
            and ref_res.total_messages == fus_res.total_messages,
        )
    return records


def render_kernel_table(records: Sequence[KernelBenchRecord]) -> str:
    """Human-readable table of kernel microbenchmark records."""
    header = (
        f"{'kernel':16s} {'variant':14s} {'m':>12s} {'n':>7s} "
        f"{'reference':>10s} {'fused':>10s} {'speedup':>8s}"
    )
    lines = [header, "-" * len(header)]
    for r in records:
        lines.append(
            f"{r.kernel:16s} {r.variant:14s} {r.m:12,d} {r.n:7,d} "
            f"{r.reference_seconds:9.4f}s {r.fused_seconds:9.4f}s "
            f"{r.speedup:7.1f}x"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class DynamicBenchRecord:
    """One dynamic run's steady-state cost under a rebalance strategy.

    All per-epoch figures are means over the *churn* epochs (the
    epoch-0 fill, paid identically by both strategies, is reported
    separately) — the steady-state cost the amortization claim is
    about.
    """

    algorithm: str
    m: int
    n: int
    epochs: int
    churn: float
    seed: int
    mode: str
    rebalance: str
    #: Placement wall seconds summed over the churn epochs.
    churn_seconds: float
    #: Placement messages summed over the churn epochs.
    churn_messages: int
    messages_per_epoch: float
    moved_per_epoch: float
    fill_messages: int
    fill_seconds: float
    gap_steady_mean: float
    gap_worst: float
    complete: bool
    workload: Optional[str] = None
    #: Process peak RSS after the timed runs (see :func:`peak_rss_bytes`).
    peak_rss_bytes: Optional[int] = None

    def to_dict(self) -> dict:
        return asdict(self)


def benchmark_dynamic(
    m: int,
    n: int,
    *,
    epochs: int,
    churn: float = 0.1,
    seed: int = 0,
    algorithms: Optional[Iterable[str]] = None,
    mode: str = "perball",
    departures: str = "uniform",
    rebalances: Sequence[str] = ("incremental", "full_rerun"),
    workload=None,
) -> list[DynamicBenchRecord]:
    """Time dynamic runs under each rebalance strategy.

    For every ``dynamic_capable`` spec (or the requested subset), runs
    the same churn regime once per strategy on the same root seed, so
    the incremental-vs-oracle comparison is like for like.  The
    default ``mode="perball"`` is the granularity where placement work
    scales with the balls actually moved — the regime the
    incremental-cost claim (churn, not ``m``) is stated in; aggregate
    placements are ``O(n)`` per round for both strategies, which
    compresses the wall-clock ratio while leaving the message ratio
    intact.
    """
    from repro.api.spec import get_spec
    from repro.dynamic import run_dynamic

    if algorithms is not None:
        names = [resolve_name(a) for a in algorithms]
        not_dynamic = [x for x in names if not get_spec(x).dynamic_capable]
        if not_dynamic:
            raise ValueError(
                f"algorithm(s) {', '.join(sorted(not_dynamic))} have no "
                f"dynamic-placement adapter; dynamic benchmarks cover "
                f"dynamic_capable specs only"
            )
    else:
        names = [s.name for s in list_allocators() if s.dynamic_capable]
    records = []
    for name in names:
        for rebalance in rebalances:
            res = run_dynamic(
                name,
                m,
                n,
                seed=seed,
                epochs=epochs,
                churn=churn,
                departures=departures,
                rebalance=rebalance,
                mode=mode,
                workload=workload,
            )
            msgs = res.messages
            gaps = res.gaps
            records.append(
                DynamicBenchRecord(
                    algorithm=name,
                    m=m,
                    n=n,
                    epochs=epochs,
                    churn=churn,
                    seed=seed,
                    mode=mode,
                    rebalance=rebalance,
                    churn_seconds=res.churn_seconds,
                    churn_messages=res.churn_messages,
                    messages_per_epoch=float(msgs[1:].mean())
                    if epochs
                    else 0.0,
                    moved_per_epoch=float(res.moved[1:].mean())
                    if epochs
                    else 0.0,
                    fill_messages=int(msgs[0]),
                    fill_seconds=res.records[0].seconds,
                    gap_steady_mean=float(gaps[1:].mean())
                    if epochs
                    else float(gaps[0]),
                    gap_worst=float(gaps.max()),
                    complete=res.complete,
                    workload=res.workload,
                    peak_rss_bytes=peak_rss_bytes(),
                )
            )
    return records


@dataclass(frozen=True)
class AdversarialBenchRecord:
    """One dynamic run under a benign or adversarial churn regime.

    Records come in same-seed pairs per algorithm (``regime`` is
    ``"benign"`` or ``"adversarial"``): the attacked leg differs from
    the benign one *only* in the departure policy (and the optional
    fault model), so the worst-epoch gap ratio between the two is the
    degradation attributable to the adversary — the figure
    ``BENCH_adversarial.json`` enforces bars on.
    """

    algorithm: str
    #: ``"benign"`` or ``"adversarial"``.
    regime: str
    m: int
    n: int
    epochs: int
    churn: float
    seed: int
    departures: str
    gap_fill: float
    gap_steady_mean: float
    gap_worst: float
    messages_per_epoch: float
    churn_seconds: float
    complete: bool
    #: Worst per-epoch failed-bin count (0 without a fault model).
    failed_bins_worst: int = 0
    #: Total acks lost to the fault model's message loss.
    lost_acks: int = 0
    faults: Optional[str] = None
    #: Process peak RSS after the timed runs (see :func:`peak_rss_bytes`).
    peak_rss_bytes: Optional[int] = None

    def to_dict(self) -> dict:
        return asdict(self)


def benchmark_adversarial(
    m: int,
    n: int,
    *,
    epochs: int,
    churn: float = 0.1,
    seed: int = 0,
    algorithms: Optional[Iterable[str]] = None,
    mode: str = "aggregate",
    attack_departures: str = "greedy_adversary",
    fault_model=None,
) -> list[AdversarialBenchRecord]:
    """Run each algorithm benign vs attacked on the same root seed.

    For every ``dynamic_capable`` spec (or the requested subset), runs
    the churn regime twice: once with ``departures="uniform"`` (the
    benign control) and once with ``attack_departures`` (default: the
    gap-maximizing greedy adversary), everything else — instance, seed,
    epochs, churn, mode — pinned identical.  An optional
    ``fault_model`` is applied to the *adversarial* leg only, so the
    pair isolates what the degraded regime costs.  Backs
    ``benchmarks/run_benchmarks.py --adversarial-output`` and the
    checked-in ``BENCH_adversarial.json``.
    """
    from repro.api.spec import get_spec
    from repro.dynamic import run_dynamic

    if algorithms is not None:
        names = [resolve_name(a) for a in algorithms]
        not_dynamic = [x for x in names if not get_spec(x).dynamic_capable]
        if not_dynamic:
            raise ValueError(
                f"algorithm(s) {', '.join(sorted(not_dynamic))} have no "
                f"dynamic-placement adapter; adversarial benchmarks "
                f"cover dynamic_capable specs only"
            )
    else:
        names = [s.name for s in list_allocators() if s.dynamic_capable]
    records = []
    for name in names:
        for regime, departures, faults in (
            ("benign", "uniform", None),
            ("adversarial", attack_departures, fault_model),
        ):
            res = run_dynamic(
                name,
                m,
                n,
                seed=seed,
                epochs=epochs,
                churn=churn,
                departures=departures,
                mode=mode,
                fault_model=faults,
            )
            msgs = res.messages
            gaps = res.gaps
            records.append(
                AdversarialBenchRecord(
                    algorithm=name,
                    regime=regime,
                    m=m,
                    n=n,
                    epochs=epochs,
                    churn=churn,
                    seed=seed,
                    departures=departures,
                    gap_fill=float(gaps[0]),
                    gap_steady_mean=float(gaps[1:].mean())
                    if epochs
                    else float(gaps[0]),
                    gap_worst=float(gaps.max()),
                    messages_per_epoch=float(msgs[1:].mean())
                    if epochs
                    else 0.0,
                    churn_seconds=res.churn_seconds,
                    complete=res.complete,
                    failed_bins_worst=int(res.failed_bins.max()),
                    lost_acks=res.lost_acks,
                    faults=faults.describe() if faults else None,
                    peak_rss_bytes=peak_rss_bytes(),
                )
            )
    return records


def adversarial_degradation(
    records: Sequence[AdversarialBenchRecord],
) -> dict[str, float]:
    """Per-algorithm worst-gap degradation: adversarial / benign.

    Returns ``{algorithm: ratio}`` for every algorithm with both
    regimes present.  The benign denominator is floored at a tiny
    positive value so a zero-gap benign run reads as a huge (finite)
    ratio instead of dividing by zero.
    """
    by_algo: dict[str, dict[str, AdversarialBenchRecord]] = {}
    for r in records:
        by_algo.setdefault(r.algorithm, {})[r.regime] = r
    out: dict[str, float] = {}
    for algo, regimes in by_algo.items():
        benign = regimes.get("benign")
        adv = regimes.get("adversarial")
        if benign is None or adv is None:
            continue
        out[algo] = adv.gap_worst / max(benign.gap_worst, 1e-9)
    return out


def render_adversarial_table(
    records: Sequence[AdversarialBenchRecord],
) -> str:
    """Human-readable table of adversarial benchmark records."""
    ratios = adversarial_degradation(records)
    header = (
        f"{'algorithm':14s} {'regime':11s} {'departures':16s} "
        f"{'m':>10s} {'n':>6s} {'fill gap':>9s} {'worst gap':>10s} "
        f"{'degrade':>8s} {'msg/epoch':>10s}"
    )
    lines = [header, "-" * len(header)]
    for r in records:
        degrade = (
            f"{ratios[r.algorithm]:7.1f}x"
            if r.regime == "adversarial" and r.algorithm in ratios
            else f"{'-':>8s}"
        )
        lines.append(
            f"{r.algorithm:14s} {r.regime:11s} {r.departures:16s} "
            f"{r.m:10,d} {r.n:6,d} {r.gap_fill:+9.2f} "
            f"{r.gap_worst:+10.2f} {degrade} "
            f"{r.messages_per_epoch:10,.0f}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class ServiceBenchRecord:
    """One sustained-throughput run of the continuous service.

    ``ops_per_sec`` is the figure the acceptance bar floors: processed
    place+release operations per *busy* wall second (micro-batch
    processing only — the open-loop driver's submission bookkeeping is
    excluded, so the number is a property of the allocator, not the
    harness).  Latency percentiles are in simulated seconds (time from
    event arrival to the flush that served it).
    """

    algorithm: str
    m: int
    n: int
    epochs: int
    churn: float
    arrivals: str
    seed: int
    batches: int
    processed_ops: int
    busy_seconds: float
    wall_seconds: float
    ops_per_sec: float
    latency_p50: float
    latency_p95: float
    latency_p99: float
    shed: int
    shed_rate: float
    deferred: int
    gap_final: float
    gap_worst: float
    complete: bool
    workload: Optional[str] = None
    #: Process peak RSS after the timed runs (see :func:`peak_rss_bytes`).
    peak_rss_bytes: Optional[int] = None
    #: Most balls ever pending in the ingest queue at once.
    queue_depth_hwm: int = 0
    #: Per-flush processing-time percentiles (wall seconds per batch).
    flush_p50: float = 0.0
    flush_p95: float = 0.0
    flush_p99: float = 0.0

    def to_dict(self) -> dict:
        return asdict(self)


def benchmark_service(
    m: int,
    n: int,
    *,
    epochs: int,
    churn: float = 0.1,
    arrivals: str = "bursty",
    seed: int = 0,
    algorithms: Optional[Iterable[str]] = None,
    gap_slo: Optional[float] = None,
    workload=None,
    **service_kwargs,
) -> list[ServiceBenchRecord]:
    """Time the continuous service under a bursty open-loop stream.

    For every ``dynamic_capable`` spec (or the requested subset), runs
    :func:`repro.service.simulate_service` once on the pinned seed and
    records the sustained throughput plus the latency/admission/gap
    summary.  Backs ``benchmarks/run_benchmarks.py --service-output``
    and the checked-in ``BENCH_service.json``.
    """
    from repro.api.spec import get_spec
    from repro.service import AdmissionPolicy, simulate_service

    if algorithms is not None:
        names = [resolve_name(a) for a in algorithms]
        not_dynamic = [x for x in names if not get_spec(x).dynamic_capable]
        if not_dynamic:
            raise ValueError(
                f"algorithm(s) {', '.join(sorted(not_dynamic))} have no "
                f"dynamic-placement adapter; service benchmarks cover "
                f"dynamic_capable specs only"
            )
    else:
        names = [s.name for s in list_allocators() if s.dynamic_capable]
    policy = (
        AdmissionPolicy(gap_slo=gap_slo) if gap_slo is not None else None
    )
    records = []
    for name in names:
        report = simulate_service(
            name,
            m,
            n,
            seed=seed,
            epochs=epochs,
            churn=churn,
            arrivals=arrivals,
            policy=policy,
            workload=workload,
            **service_kwargs,
        )
        s = report.stats
        records.append(
            ServiceBenchRecord(
                algorithm=report.algorithm,
                m=m,
                n=n,
                epochs=epochs,
                churn=churn,
                arrivals=arrivals,
                seed=seed,
                batches=s.batches,
                processed_ops=s.processed_ops,
                busy_seconds=s.busy_seconds,
                wall_seconds=report.wall_seconds,
                ops_per_sec=s.ops_per_sec,
                latency_p50=s.latency["p50"],
                latency_p95=s.latency["p95"],
                latency_p99=s.latency["p99"],
                shed=s.shed,
                shed_rate=s.shed_rate,
                deferred=s.deferred,
                gap_final=s.gap,
                gap_worst=s.gap_worst,
                complete=s.complete,
                workload=workload,
                peak_rss_bytes=peak_rss_bytes(),
                queue_depth_hwm=s.queue_depth_hwm,
                flush_p50=s.flush_latency["p50"],
                flush_p95=s.flush_latency["p95"],
                flush_p99=s.flush_latency["p99"],
            )
        )
    return records


def _fmt_rss(peak: Optional[int]) -> str:
    """Fixed-width peak-RSS cell (MiB), '-' when unrecorded."""
    if peak is None:
        return f"{'-':>8s}"
    return f"{peak / 2**20:7,.0f}M"


def render_service_table(records: Sequence[ServiceBenchRecord]) -> str:
    """Human-readable table of service benchmark records."""
    header = (
        f"{'algorithm':14s} {'m':>10s} {'n':>6s} {'batches':>7s} "
        f"{'ops/s':>12s} {'p50':>6s} {'p95':>6s} {'p99':>6s} "
        f"{'q-hwm':>8s} {'fl-p99':>8s} "
        f"{'shed':>6s} {'gap':>7s} {'peak rss':>8s}"
    )
    lines = [header, "-" * len(header)]
    for r in records:
        lines.append(
            f"{r.algorithm:14s} {r.m:10,d} {r.n:6,d} {r.batches:7d} "
            f"{r.ops_per_sec:12,.0f} {r.latency_p50:6.2f} "
            f"{r.latency_p95:6.2f} {r.latency_p99:6.2f} "
            f"{r.queue_depth_hwm:8,d} {r.flush_p99 * 1e3:6.1f}ms "
            f"{r.shed:6,d} {r.gap_worst:+7.2f} {_fmt_rss(r.peak_rss_bytes)}"
        )
    return "\n".join(lines)


@dataclass(frozen=True)
class TelemetryBenchRecord:
    """One telemetry-on vs telemetry-off timing of an end-to-end path.

    Both legs ran the *same* pinned-seed computation and their results
    were compared bitwise before either timing loop started —
    ``bitwise_equal`` is therefore always ``True`` on a constructed
    record (:func:`benchmark_telemetry` raises ``RuntimeError`` on any
    divergence: telemetry that changes a value is a correctness bug,
    not an overhead).  ``span_roundtrip`` pins the export contract: the
    on-leg's telemetry serialized to Chrome-trace JSON, round-tripped
    through ``json``, and structurally validated.
    """

    #: End-to-end path: ``allocate``, ``dynamic``, or ``service``.
    scenario: str
    algorithm: str
    m: int
    n: int
    seed: int
    repeats: int
    #: Best-of-``repeats`` wall seconds with telemetry off / on.
    off_seconds: float
    on_seconds: float
    #: ``on_seconds / off_seconds`` — the overhead the bar ceilings.
    overhead: float
    bitwise_equal: bool
    #: Trace events and metric series one instrumented run produced.
    trace_events: int
    metric_series: int
    span_roundtrip: bool
    peak_rss_bytes: Optional[int] = None

    def to_dict(self) -> dict:
        return asdict(self)


def _telemetry_roundtrip(telemetry) -> bool:
    """Serialize → parse → structurally validate the span export."""
    import json as _json

    from repro.telemetry import telemetry_to_dict

    payload = _json.loads(_json.dumps(telemetry_to_dict(telemetry)))
    events = payload.get("traceEvents")
    if not isinstance(events, list) or not events:
        return False
    for event in events:
        if event.get("ph") not in ("X", "i"):
            return False
        if not isinstance(event.get("name"), str):
            return False
        if not isinstance(event.get("ts"), (int, float)):
            return False
        if event["ph"] == "X" and not isinstance(
            event.get("dur"), (int, float)
        ):
            return False
    return isinstance(payload.get("metrics"), dict)


def benchmark_telemetry(
    m: int,
    n: int,
    *,
    seed: int = 0,
    repeats: int = 3,
    dynamic: Optional[tuple[int, int, int]] = None,
    service: Optional[tuple[int, int, int]] = None,
) -> list[TelemetryBenchRecord]:
    """Time telemetry-on vs telemetry-off on the instrumented paths.

    The primary scenario is a full ``allocate("heavy", m, n)`` per-ball
    run — every kernel hook fires (round counters, per-primitive
    profiling via :class:`~repro.fastpath.backend.ProfilingBackend`,
    round/phase/allocate spans).  ``dynamic=(m, n, epochs)`` and
    ``service=(m, n, epochs)`` add the churn runner and the continuous
    service as further scenarios.

    For each scenario the off- and on-leg results are compared bitwise
    (loads, messages, gap — and for the service, the audit trace)
    *before* timing; any divergence raises ``RuntimeError``.  The
    on-leg timing loop hands each run a fresh
    :class:`~repro.telemetry.Telemetry` so span buffers never amortize
    across repeats.  Backs ``benchmarks/run_benchmarks.py
    --telemetry-output`` and the checked-in ``BENCH_telemetry.json``.
    """
    import numpy as np

    from repro.telemetry import Telemetry, use_telemetry

    records: list[TelemetryBenchRecord] = []

    def record(scenario, algorithm, sm, sn, run, same):
        off_result = run()
        telemetry = Telemetry()
        with use_telemetry(telemetry):
            on_result = run()
        if not same(off_result, on_result):
            raise RuntimeError(
                f"telemetry changed results: {scenario} at m={sm}, "
                f"n={sn}, seed={seed} — the instrumented run is not "
                f"bitwise-identical to the uninstrumented one"
            )

        def run_on():
            with use_telemetry(Telemetry()):
                run()

        off_s = _best_of(run, repeats)
        on_s = _best_of(run_on, repeats)
        records.append(
            TelemetryBenchRecord(
                scenario=scenario,
                algorithm=algorithm,
                m=sm,
                n=sn,
                seed=seed,
                repeats=repeats,
                off_seconds=off_s,
                on_seconds=on_s,
                overhead=on_s / off_s if off_s > 0 else float("inf"),
                bitwise_equal=True,
                trace_events=len(telemetry.tracer.events),
                metric_series=len(telemetry.metrics),
                span_roundtrip=_telemetry_roundtrip(telemetry),
                peak_rss_bytes=peak_rss_bytes(),
            )
        )

    record(
        "allocate",
        "heavy",
        m,
        n,
        lambda: allocate("heavy", m, n, seed=seed, mode="perball"),
        lambda a, b: bool(
            np.array_equal(a.loads, b.loads)
            and a.max_load == b.max_load
            and a.total_messages == b.total_messages
            and a.rounds == b.rounds
        ),
    )

    if dynamic is not None:
        from repro.dynamic import run_dynamic

        dm, dn, epochs = dynamic
        record(
            "dynamic",
            "heavy",
            dm,
            dn,
            lambda: run_dynamic(
                "heavy", dm, dn, seed=seed, epochs=epochs, churn=0.1
            ),
            lambda a, b: bool(
                np.array_equal(a.loads, b.loads)
                and np.array_equal(a.loads_history, b.loads_history)
                and [(r.gap, r.messages, r.moved) for r in a.records]
                == [(r.gap, r.messages, r.moved) for r in b.records]
            ),
        )

    if service is not None:
        from repro.service import simulate_service

        sm, sn, epochs = service
        record(
            "service",
            "heavy",
            sm,
            sn,
            lambda: simulate_service(
                "heavy", sm, sn, seed=seed, epochs=epochs
            ),
            lambda a, b: bool(
                a.stats.messages == b.stats.messages
                and a.stats.gap == b.stats.gap
                and a.stats.gap_worst == b.stats.gap_worst
                and a.stats.population == b.stats.population
                and a.stats.batches == b.stats.batches
                and [r.gap for r in a.records]
                == [r.gap for r in b.records]
            ),
        )
    return records


def render_telemetry_table(
    records: Sequence[TelemetryBenchRecord],
) -> str:
    """Human-readable table of telemetry overhead records."""
    header = (
        f"{'scenario':10s} {'algorithm':10s} {'m':>10s} {'n':>6s} "
        f"{'off':>9s} {'on':>9s} {'overhead':>9s} {'events':>7s} "
        f"{'series':>7s} {'bitwise':>8s}"
    )
    lines = [header, "-" * len(header)]
    for r in records:
        lines.append(
            f"{r.scenario:10s} {r.algorithm:10s} {r.m:10,d} {r.n:6,d} "
            f"{r.off_seconds:8.4f}s {r.on_seconds:8.4f}s "
            f"{r.overhead:8.3f}x {r.trace_events:7,d} "
            f"{r.metric_series:7,d} {'yes' if r.bitwise_equal else 'NO':>8s}"
        )
    return "\n".join(lines)


def dynamic_speedups(
    records: Sequence[DynamicBenchRecord],
) -> dict[str, dict[str, Optional[float]]]:
    """Per-algorithm full_rerun/incremental advantage ratios.

    Returns ``{algorithm: {"messages": ..., "seconds": ...}}`` for
    every algorithm with both strategies present.
    """
    by_algo: dict[str, dict[str, DynamicBenchRecord]] = {}
    for r in records:
        by_algo.setdefault(r.algorithm, {})[r.rebalance] = r
    out: dict[str, dict[str, Optional[float]]] = {}
    for algo, strategies in by_algo.items():
        inc = strategies.get("incremental")
        full = strategies.get("full_rerun")
        if inc is None or full is None:
            continue
        out[algo] = {
            "messages": (
                full.churn_messages / inc.churn_messages
                if inc.churn_messages
                else None
            ),
            "seconds": (
                full.churn_seconds / inc.churn_seconds
                if inc.churn_seconds > 0
                else None
            ),
        }
    return out


def render_dynamic_table(records: Sequence[DynamicBenchRecord]) -> str:
    """Human-readable table of dynamic benchmark records."""
    header = (
        f"{'algorithm':14s} {'rebalance':11s} {'m':>10s} {'n':>6s} "
        f"{'epochs':>6s} {'churn':>6s} {'msg/epoch':>10s} "
        f"{'moved/ep':>9s} {'churn wall':>11s} {'gap':>7s} "
        f"{'peak rss':>8s}"
    )
    lines = [header, "-" * len(header)]
    for r in records:
        lines.append(
            f"{r.algorithm:14s} {r.rebalance:11s} {r.m:10,d} {r.n:6,d} "
            f"{r.epochs:6d} {r.churn:6.2f} {r.messages_per_epoch:10,.0f} "
            f"{r.moved_per_epoch:9,.0f} {r.churn_seconds:10.3f}s "
            f"{r.gap_steady_mean:+7.2f} {_fmt_rss(r.peak_rss_bytes)}"
        )
    return "\n".join(lines)


def render_replication_table(
    records: Sequence[ReplicationBenchRecord],
) -> str:
    """Human-readable table of replication benchmark records."""
    header = (
        f"{'algorithm':14s} {'m':>12s} {'n':>7s} {'trials':>7s} "
        f"{'batched':>9s} {'sequential':>11s} {'speedup':>8s} "
        f"{'gap mean':>9s} {'peak rss':>8s}"
    )
    lines = [header, "-" * len(header)]
    for r in records:
        seq = (
            f"{r.sequential_seconds:10.3f}s"
            if r.sequential_seconds is not None
            else f"{'-':>11s}"
        )
        spd = (
            f"{r.speedup:7.1f}x" if r.speedup is not None else f"{'-':>8s}"
        )
        lines.append(
            f"{r.algorithm:14s} {r.m:12,d} {r.n:7,d} {r.trials:7,d} "
            f"{r.batched_seconds:8.3f}s {seq} {spd} {r.gap_mean:+9.2f} "
            f"{_fmt_rss(r.peak_rss_bytes)}"
        )
    return "\n".join(lines)


def render_table(records: Sequence[BenchRecord]) -> str:
    """Human-readable fixed-width table of benchmark records.

    Rows that ran off the requested instance size (regime-bound
    allocators, see :func:`_instance_for`) are marked ``*`` and their
    scale notes listed under the table.
    """
    with_workload = any(r.workload for r in records)
    header = (
        f"{'algorithm':14s} {'mode':10s} {'backend':9s} {'m':>12s} "
        f"{'n':>7s} {'time':>9s} {'balls/s':>12s} {'gap':>8s} "
        f"{'rounds':>7s} {'peak rss':>8s}"
    )
    if with_workload:
        header += f"  {'workload':s}"
    lines = [header, "-" * len(header)]
    notes: list[str] = []
    for r in records:
        starred = "*" if r.scale_note else " "
        line = (
            f"{r.algorithm:13s}{starred} {(r.mode or '-'):10s} "
            f"{(r.backend or '-'):9s} {r.m:12,d} {r.n:7,d} "
            f"{r.seconds_mean:8.3f}s {r.balls_per_sec:12,.0f} "
            f"{r.gap:+8.1f} {r.rounds:7d} {_fmt_rss(r.peak_rss_bytes)}"
        )
        if with_workload:
            line += f"  {r.workload or 'uniform'}"
        lines.append(line)
        if r.scale_note:
            notes.append(f"* {r.algorithm}: {r.scale_note}")
    lines.extend(dict.fromkeys(notes))
    return "\n".join(lines)
