"""Tests for the baseline allocation processes."""

import math

import numpy as np
import pytest

from repro.analysis.theory import expected_max_load_single_choice
from repro.baselines import (
    run_batched_dchoice,
    run_greedy_d,
    run_parallel_dchoice,
    run_single_choice,
    run_stemann,
)


class TestSingleChoice:
    def test_conservation_perball(self):
        res = run_single_choice(10_000, 100, seed=1)
        assert res.loads.sum() == 10_000
        assert res.rounds == 1
        assert res.total_messages == 10_000

    def test_conservation_aggregate(self):
        res = run_single_choice(10**8, 100, seed=1, mode="aggregate")
        assert res.loads.sum() == 10**8

    def test_aggregate_is_o_n_not_o_m(self):
        """Regression: aggregate mode must run on the aggregate
        granularity of the kernel state — 10^12 balls is only feasible
        as a multinomial occupancy draw, never as per-ball arrays."""
        res = run_single_choice(10**12, 256, seed=2, mode="aggregate")
        assert res.loads.sum() == 10**12
        assert res.messages is None  # no per-ball counters at O(n)

    def test_gap_matches_prediction(self):
        m, n = 10**6, 1000
        gaps = [run_single_choice(m, n, seed=s).gap for s in range(5)]
        predicted = expected_max_load_single_choice(m, n) - m / n
        assert 0.5 * predicted <= np.mean(gaps) <= 1.5 * predicted

    def test_modes_same_law(self):
        m, n = 50_000, 64
        g_p = [run_single_choice(m, n, seed=s).gap for s in range(10)]
        g_a = [
            run_single_choice(m, n, seed=s + 50, mode="aggregate").gap
            for s in range(10)
        ]
        # same distribution: means within 3 pooled standard errors
        se = math.sqrt((np.var(g_p) + np.var(g_a)) / 10)
        assert abs(np.mean(g_p) - np.mean(g_a)) <= 3 * max(se, 1.0)

    def test_invalid_mode(self):
        with pytest.raises(ValueError):
            run_single_choice(10, 2, mode="bogus")  # type: ignore[arg-type]

    def test_counter_perball_only(self):
        assert run_single_choice(100, 4, seed=1).messages is not None
        assert (
            run_single_choice(100, 4, seed=1, mode="aggregate").messages
            is None
        )


class TestGreedyD:
    def test_conservation(self):
        res = run_greedy_d(20_000, 64, 2, seed=1)
        assert res.loads.sum() == 20_000
        assert res.sequential

    def test_two_choice_beats_one_choice(self):
        """The multiple-choice gap: greedy[2] << single-choice."""
        m, n = 100_000, 256
        g2 = run_greedy_d(m, n, 2, seed=1).gap
        g1 = run_single_choice(m, n, seed=1).gap
        assert g2 < g1 / 3

    def test_bcsv_gap_m_independent(self):
        """[BCSV06]: the greedy[2] gap must not grow with m."""
        n = 128
        g_small = run_greedy_d(n * 50, n, 2, seed=1).gap
        g_large = run_greedy_d(n * 5000, n, 2, seed=1).gap
        assert g_large <= g_small + 3

    def test_gap_shrinks_with_d(self):
        m, n = 50_000, 256
        gaps = [
            float(np.mean([run_greedy_d(m, n, d, seed=s).gap for s in range(3)]))
            for d in (2, 4)
        ]
        assert gaps[1] <= gaps[0] + 0.5

    def test_d1_is_single_choice(self):
        res = run_greedy_d(1000, 16, 1, seed=3)
        assert res.algorithm == "greedy[1]"
        assert res.sequential
        assert res.loads.sum() == 1000

    def test_deterministic(self):
        a = run_greedy_d(5000, 32, 2, seed=9)
        b = run_greedy_d(5000, 32, 2, seed=9)
        assert np.array_equal(a.loads, b.loads)

    def test_invalid_d(self):
        with pytest.raises(ValueError):
            run_greedy_d(100, 10, 0)

    def test_message_accounting(self):
        res = run_greedy_d(1000, 16, 3, seed=1)
        assert res.total_messages == 1000 * 4  # d probes + 1 commit


class TestParallelDChoice:
    def test_completes_m_equals_n(self):
        res = run_parallel_dchoice(512, 512, 2, seed=1)
        assert res.complete
        assert res.loads.sum() == 512

    def test_load_small_at_m_equals_n(self):
        res = run_parallel_dchoice(1024, 1024, 2, seed=2)
        assert res.max_load <= 5  # ACMR-style loads for m = n

    def test_heavy_regime_needs_many_rounds(self):
        """The paper's motivation: one grant per bin per round makes the
        protocol linear in m/n for m >> n."""
        n = 64
        res = run_parallel_dchoice(n * 32, n, 2, seed=1)
        assert res.complete
        assert res.rounds >= 16  # ~ m/n rounds

    def test_capacity_respected(self):
        res = run_parallel_dchoice(2000, 100, 2, seed=1, capacity=25)
        assert res.max_load <= 25

    def test_insufficient_capacity_rejected(self):
        with pytest.raises(ValueError):
            run_parallel_dchoice(1000, 10, 2, capacity=5)

    def test_max_rounds_truncates(self):
        res = run_parallel_dchoice(6400, 64, 2, seed=1, max_rounds=3)
        assert not res.complete
        assert res.rounds == 3

    def test_grants_per_round_speeds_up(self):
        n = 64
        slow = run_parallel_dchoice(n * 16, n, 2, seed=1).rounds
        fast = run_parallel_dchoice(
            n * 16, n, 2, seed=1, grants_per_round=8
        ).rounds
        assert fast < slow


class TestStemann:
    def test_conservation(self):
        res = run_stemann(50_000, 128, seed=1)
        assert res.complete
        assert res.loads.sum() == 50_000

    def test_load_within_collision_bound(self):
        res = run_stemann(50_000, 128, seed=1, collision_factor=2.0)
        assert res.max_load <= res.extra["collision_bound"]

    def test_gap_grows_with_ratio(self):
        """Stemann's O(m/n) guarantee is multiplicative: the gap keeps
        growing with m/n (here like the binomial noise, sqrt(m/n)),
        unlike A_heavy's flat O(1)."""
        n = 128
        g_small = run_stemann(n * 16, n, seed=1).gap
        g_large = run_stemann(n * 256, n, seed=1).gap
        assert g_large > 2 * g_small

    def test_rounds_logarithmic(self):
        res = run_stemann(100_000, 1024, seed=1)
        assert res.rounds <= 4 * math.log2(1024)

    def test_invalid_factor(self):
        with pytest.raises(ValueError):
            run_stemann(100, 10, collision_factor=1.0)


class TestBatched:
    def test_conservation(self):
        res = run_batched_dchoice(50_000, 128, 2, seed=1)
        assert res.complete
        assert res.loads.sum() == 50_000

    def test_round_count_is_batch_count(self):
        res = run_batched_dchoice(10_000, 100, 2, seed=1)
        assert res.rounds == 100  # m / batch_size with batch = n

    def test_custom_batch(self):
        res = run_batched_dchoice(10_000, 100, 2, seed=1, batch_size=2500)
        assert res.rounds == 4

    def test_beats_single_choice(self):
        m, n = 100_000, 256
        b = run_batched_dchoice(m, n, 2, seed=1).gap
        s = run_single_choice(m, n, seed=1).gap
        assert b < s / 2

    def test_worse_than_sequential(self):
        """Stale loads cost accuracy: batched gap >= sequential gap."""
        m, n = 100_000, 256
        b = np.mean(
            [run_batched_dchoice(m, n, 2, seed=s).gap for s in range(3)]
        )
        g = np.mean([run_greedy_d(m, n, 2, seed=s).gap for s in range(3)])
        assert b >= g - 1.0

    def test_batch_size_m_is_one_shot(self):
        res = run_batched_dchoice(5000, 50, 2, seed=1, batch_size=5000)
        assert res.rounds == 1
