"""Cross-validation: engine (reference) vs per-ball vs aggregate paths.

The three execution paths implement the same protocols at different
granularity; they cannot be bitwise identical (different RNG consumption
patterns) but must agree (a) exactly on conserved/structural quantities
and (b) statistically on distributions.
"""

import numpy as np
import pytest

from repro.core import run_heavy
from repro.core.heavy_agents import run_heavy_engine, run_light_engine
from repro.light import run_light
from repro.utils.logstar import log_star


class TestHeavyEngineVsVectorized:
    """Engine-mode A_heavy against the vectorized path."""

    M, N = 6000, 32

    def test_both_complete_with_constant_gap(self):
        eng = run_heavy_engine(self.M, self.N, seed=1)
        vec = run_heavy(self.M, self.N, seed=1)
        assert eng.complete and vec.complete
        assert eng.gap <= 8 and vec.gap <= 8

    def test_same_phase1_round_count(self):
        """Phase-1 length is schedule-determined — must match exactly."""
        eng = run_heavy_engine(self.M, self.N, seed=2)
        vec = run_heavy(self.M, self.N, seed=2)
        assert eng.extra["phase1_rounds"] == vec.extra["phase1_rounds"]

    def test_phase1_loads_deterministic_whp(self):
        """Claim 2: after phase 1 every bin holds exactly T_{i0-1} w.h.p.
        — so engine and vectorized phase-1 loads match as vectors."""
        eng = run_heavy_engine(self.M, self.N, seed=3)
        vec = run_heavy(self.M, self.N, seed=3)
        # phase-1 leftovers within noise of each other
        assert (
            abs(eng.extra["phase1_remaining"] - vec.extra["phase1_remaining"])
            <= 0.2 * self.N + 50
        )

    def test_gap_distributions_close(self):
        gaps_e = [run_heavy_engine(3000, 16, seed=s).gap for s in range(6)]
        gaps_v = [run_heavy(3000, 16, seed=s + 50).gap for s in range(6)]
        assert abs(np.mean(gaps_e) - np.mean(gaps_v)) <= 2.5

    def test_message_totals_same_order(self):
        eng = run_heavy_engine(self.M, self.N, seed=4)
        vec = run_heavy(self.M, self.N, seed=4)
        assert 0.5 <= eng.total_messages / vec.total_messages <= 2.0


class TestLightEngineVsVectorized:
    def test_engine_light_meets_theorem5(self):
        out = run_light_engine(300, 300, seed=5)
        assert out.complete
        assert out.loads.max() <= 2
        assert out.rounds <= log_star(300) + 10

    def test_round_counts_comparable(self):
        eng = run_light_engine(400, 400, seed=6)
        vec = run_light(400, 400, seed=6)
        assert abs(eng.rounds - vec.rounds) <= 2

    def test_load_histograms_close(self):
        """Distribution of bin loads (0/1/2 counts) must agree between
        engine and vectorized implementations across seeds."""
        n = 256
        hist_e = np.zeros(3)
        hist_v = np.zeros(3)
        for s in range(5):
            le = run_light_engine(n, n, seed=s).loads
            lv = run_light(n, n, seed=s + 99).loads
            hist_e += np.bincount(le, minlength=3)[:3]
            hist_v += np.bincount(lv, minlength=3)[:3]
        hist_e /= hist_e.sum()
        hist_v /= hist_v.sum()
        assert np.abs(hist_e - hist_v).max() < 0.08


class TestPerballVsAggregate:
    def test_round_counts_match(self):
        m, n = 2**18, 512
        p = run_heavy(m, n, seed=7, mode="perball")
        a = run_heavy(m, n, seed=7, mode="aggregate")
        assert p.extra["phase1_rounds"] == a.extra["phase1_rounds"]
        assert abs(p.rounds - a.rounds) <= 2

    def test_phase1_load_vectors_agree_whp(self):
        """During the strong-concentration rounds nearly every bin fills
        to its threshold in both modes — sorted loads match up to the
        few bins touched by the final noisy rounds."""
        m, n = 2**18, 256
        p = run_heavy(m, n, seed=8, mode="perball", handoff=False)
        a = run_heavy(m, n, seed=8, mode="aggregate", handoff=False)
        sp, sa = np.sort(p.loads), np.sort(a.loads)
        assert np.abs(sp - sa).max() <= 3
        assert abs(p.unallocated - a.unallocated) <= 0.1 * n + 50

    def test_unallocated_histories_close(self):
        m, n = 2**18, 256
        p = run_heavy(m, n, seed=9, mode="perball")
        a = run_heavy(m, n, seed=9, mode="aggregate")
        hp, ha = p.unallocated_history, a.unallocated_history
        for x, y in zip(hp, ha):
            assert abs(x - y) <= 0.05 * max(x, y, 1) + 100
