"""Benchmark + table regeneration for experiment D1 (dynamic churn).

See the experiment registry (``python -m repro.experiments`` with no
argument) for the experiment's claim and parameters; the quick-scale
table is printed under -s, the full-scale run is archived in
EXPERIMENTS.md.
"""

from conftest import bench_experiment


def test_experiment_d1(benchmark):
    bench_experiment(benchmark, "D1")
