"""Tests for repro.utils.validation."""

import numpy as np
import pytest

from repro.utils.validation import (
    check_positive_int,
    check_probability,
    check_seed,
    ensure_m_n,
)


class TestCheckPositiveInt:
    def test_plain_int(self):
        assert check_positive_int(5, "x") == 5

    def test_numpy_int(self):
        out = check_positive_int(np.int64(7), "x")
        assert out == 7
        assert isinstance(out, int)

    def test_integral_float(self):
        assert check_positive_int(4.0, "x") == 4

    def test_non_integral_float_raises(self):
        with pytest.raises(TypeError):
            check_positive_int(4.5, "x")

    def test_bool_rejected(self):
        with pytest.raises(TypeError):
            check_positive_int(True, "x")

    def test_below_minimum(self):
        with pytest.raises(ValueError, match="x must be >= 1"):
            check_positive_int(0, "x")

    def test_custom_minimum(self):
        assert check_positive_int(0, "x", minimum=0) == 0
        with pytest.raises(ValueError):
            check_positive_int(-1, "x", minimum=0)

    def test_string_raises(self):
        with pytest.raises(TypeError):
            check_positive_int("5", "x")


class TestCheckProbability:
    @pytest.mark.parametrize("p", [0.0, 0.5, 1.0])
    def test_valid(self, p):
        assert check_probability(p, "p") == p

    @pytest.mark.parametrize("p", [-0.1, 1.1, 2])
    def test_out_of_range(self, p):
        with pytest.raises(ValueError):
            check_probability(p, "p")

    def test_non_number(self):
        with pytest.raises(TypeError):
            check_probability("half", "p")


class TestCheckSeed:
    def test_none_ok(self):
        assert check_seed(None) is None

    def test_int_ok(self):
        assert check_seed(42) == 42

    def test_negative_int_raises(self):
        with pytest.raises(ValueError):
            check_seed(-1)

    def test_seedsequence_ok(self):
        ss = np.random.SeedSequence(1)
        assert check_seed(ss) is ss

    def test_generator_ok(self):
        gen = np.random.default_rng(0)
        assert check_seed(gen) is gen

    def test_bad_type(self):
        with pytest.raises(TypeError):
            check_seed("seed")


class TestEnsureMN:
    def test_valid(self):
        assert ensure_m_n(100, 10) == (100, 10)

    def test_requires_positive(self):
        with pytest.raises(ValueError):
            ensure_m_n(0, 10)
        with pytest.raises(ValueError):
            ensure_m_n(10, 0)

    def test_heavy_regime_check(self):
        with pytest.raises(ValueError, match="heavily loaded"):
            ensure_m_n(5, 10, require_heavy=True)
        assert ensure_m_n(10, 10, require_heavy=True) == (10, 10)

    def test_numpy_inputs_converted(self):
        m, n = ensure_m_n(np.int32(20), np.int64(4))
        assert isinstance(m, int) and isinstance(n, int)
