"""Micro-benchmarks of the vectorized kernels and algorithm hot paths.

These time the primitives the HPC guides direct us to optimize:
whole-array sampling, the grouped-accept lexsort kernel, the multinomial
aggregate round, and end-to-end algorithm runs at the two granularities.
They guard against performance regressions (the per-round kernels are
what caps the feasible ``m``).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines import run_single_choice
from repro.core import run_asymmetric, run_heavy
from repro.fastpath.sampling import (
    grouped_accept,
    multinomial_occupancy,
    sample_uniform_choices,
)
from repro.light import run_light


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestSamplingKernels:
    def test_uniform_choices_1m(self, benchmark, rng):
        out = benchmark(sample_uniform_choices, 1_000_000, 4096, rng)
        assert out.size == 1_000_000

    def test_multinomial_occupancy_1m_balls(self, benchmark, rng):
        out = benchmark(multinomial_occupancy, 1_000_000, 4096, rng)
        assert out.sum() == 1_000_000

    def test_multinomial_occupancy_1t_balls(self, benchmark, rng):
        """The aggregate path's selling point: 10^12 balls in O(n)."""
        out = benchmark(multinomial_occupancy, 10**12, 4096, rng)
        assert out.sum() == 10**12

    def test_grouped_accept_1m_requests(self, benchmark, rng):
        choices = rng.integers(0, 4096, size=1_000_000)
        capacity = np.full(4096, 200)
        mask = benchmark(grouped_accept, choices, capacity, rng)
        assert mask.sum() <= 4096 * 200


class TestAlgorithmThroughput:
    def test_heavy_perball_1m(self, benchmark):
        res = benchmark.pedantic(
            run_heavy,
            args=(1_000_000, 1024),
            kwargs={"seed": 1},
            rounds=1,
            iterations=1,
        )
        assert res.complete

    def test_heavy_aggregate_1g(self, benchmark):
        """10^9 balls: only feasible on the aggregate path."""
        res = benchmark.pedantic(
            run_heavy,
            args=(10**9, 1024),
            kwargs={"seed": 1, "mode": "aggregate"},
            rounds=1,
            iterations=1,
        )
        assert res.complete
        assert res.gap <= 8

    def test_asymmetric_1m(self, benchmark):
        res = benchmark.pedantic(
            run_asymmetric,
            args=(1_000_000, 1024),
            kwargs={"seed": 1},
            rounds=1,
            iterations=1,
        )
        assert res.complete

    def test_light_64k(self, benchmark):
        out = benchmark.pedantic(
            run_light,
            args=(65536, 65536),
            kwargs={"seed": 1},
            rounds=1,
            iterations=1,
        )
        assert out.max_load <= 2

    def test_single_choice_aggregate_1g(self, benchmark):
        res = benchmark.pedantic(
            run_single_choice,
            args=(10**9, 4096),
            kwargs={"seed": 1, "mode": "aggregate"},
            rounds=1,
            iterations=1,
        )
        assert res.loads.sum() == 10**9
