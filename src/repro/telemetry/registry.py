"""Metrics registry: counters, gauges, and log-bucketed histograms.

The registry is the passive half of the telemetry layer: a named bag
of instruments that instrumentation points write into and exporters
read out of.  Three instrument kinds cover every hook in the repo:

* :class:`Counter` — a monotone total (``kernel.rounds``,
  ``service.admission.shed``);
* :class:`Gauge` — a last-written value plus its observed maximum
  (``service.queue.depth`` — the max doubles as a high-water mark);
* :class:`Histogram` — a log-bucketed distribution
  (``kernel.primitive.seconds``, ``service.flush.seconds``): bucket
  ``i`` holds observations in ``(base^(i-1) * scale, base^i * scale]``,
  so forty-odd buckets span nanoseconds to hours with bounded error
  and O(1) memory.  Exact ``count/sum/min/max`` ride along, so means
  are exact even though quantiles are bucket-resolution.

Instruments are keyed by ``(name, labels)`` where labels are a sorted
tuple of ``(key, value)`` pairs — the same identity model Prometheus
uses, so the text exposition in :mod:`repro.telemetry.export` is a
direct rendering.

Determinism: nothing in this module draws randomness or reads the
clock; instruments only store what hooks hand them.  Timings enter as
plain floats measured by the *caller* with ``time.perf_counter`` —
the registry cannot perturb an allocation even in principle.
"""

from __future__ import annotations

import math
from typing import Iterator, Optional

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
]

LabelKey = tuple[tuple[str, str], ...]


def _label_key(labels: dict[str, object]) -> LabelKey:
    """Canonical, hashable identity for a label set."""
    if not labels:
        return ()
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


class Counter:
    """A monotone accumulating total."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up, got {amount}")
        self.value += amount

    def to_dict(self) -> dict:
        return {"value": self.value}


class Gauge:
    """A last-written value that remembers its maximum.

    The maximum is what turns a sampled signal (queue depth read at
    every flush) into a high-water mark without a second instrument.
    """

    __slots__ = ("name", "labels", "value", "max_value", "_written")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelKey = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0
        self.max_value = 0.0
        self._written = False

    def set(self, value: float) -> None:
        value = float(value)
        self.value = value
        if not self._written or value > self.max_value:
            self.max_value = value
        self._written = True

    def to_dict(self) -> dict:
        return {"value": self.value, "max": self.max_value}


class Histogram:
    """Log-bucketed distribution with exact count/sum/min/max.

    Bucket boundaries are ``scale * base**i``: observation ``v`` lands
    in the first bucket whose upper bound is ``>= v``.  With the
    defaults (``base=2``, ``scale=1e-9``) the 64 buckets cover
    ``[1e-9, ~1.8e10]`` at ≤ 2x relative resolution — nanoseconds to
    centuries for timings, and the same dynamic range for dimensionless
    observations (gaps, message counts) — and anything beyond the last
    boundary lands in the overflow bucket.  Non-positive observations
    land in bucket 0 (timings are non-negative; an exact zero is a
    degenerate measurement, not an error).
    """

    __slots__ = (
        "name", "labels", "base", "scale", "bucket_counts",
        "count", "sum", "min", "max",
    )

    kind = "histogram"
    NBUCKETS = 64

    def __init__(
        self,
        name: str,
        labels: LabelKey = (),
        *,
        base: float = 2.0,
        scale: float = 1e-9,
    ) -> None:
        if base <= 1.0:
            raise ValueError(f"base must be > 1, got {base}")
        if scale <= 0.0:
            raise ValueError(f"scale must be > 0, got {scale}")
        self.name = name
        self.labels = labels
        self.base = base
        self.scale = scale
        # NBUCKETS log buckets plus one overflow bucket.
        self.bucket_counts = [0] * (self.NBUCKETS + 1)
        self.count = 0
        self.sum = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def bucket_index(self, value: float) -> int:
        if value <= self.scale:
            return 0
        if math.isinf(value):
            return self.NBUCKETS
        index = math.ceil(math.log(value / self.scale, self.base))
        return min(max(index, 0), self.NBUCKETS)

    def bucket_upper_bound(self, index: int) -> float:
        """Upper boundary of bucket ``index`` (inf for the overflow)."""
        if index >= self.NBUCKETS:
            return math.inf
        return self.scale * self.base**index

    def observe(self, value: float) -> None:
        value = float(value)
        self.bucket_counts[self.bucket_index(value)] += 1
        self.count += 1
        self.sum += value
        if self.min is None or value < self.min:
            self.min = value
        if self.max is None or value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.sum / self.count if self.count else 0.0

    def to_dict(self) -> dict:
        # Trailing all-zero buckets compress away; the exporter
        # reconstructs boundaries from (base, scale).
        last = 0
        for i, c in enumerate(self.bucket_counts):
            if c:
                last = i + 1
        return {
            "count": self.count,
            "sum": self.sum,
            "min": self.min,
            "max": self.max,
            "base": self.base,
            "scale": self.scale,
            "buckets": self.bucket_counts[:last],
        }


class MetricsRegistry:
    """Named bag of instruments, keyed by ``(name, labels)``.

    ``counter``/``gauge``/``histogram`` are get-or-create: the first
    call for a key materializes the instrument, later calls return the
    same object, and asking for an existing name with a different kind
    is an error (one name, one kind — the Prometheus rule).
    """

    def __init__(self) -> None:
        self._instruments: dict[tuple[str, LabelKey], object] = {}
        # Hot-path memo keyed by the labels *as passed* (uncanonicalized
        # kwargs order): repeat lookups from the same call site cost one
        # tuple build + dict hit instead of a sort.  Distinct orderings
        # memoize separately but resolve to the same instrument — the
        # canonical identity stays ``(name, sorted labels)``.
        self._memo: dict[tuple, object] = {}

    def __len__(self) -> int:
        return len(self._instruments)

    def __iter__(self) -> Iterator:
        # Sorted for deterministic export order.
        return iter(
            self._instruments[k] for k in sorted(self._instruments)
        )

    def _get_or_create(self, cls, name: str, labels: dict) -> object:
        key = (name, _label_key(labels))
        found = self._instruments.get(key)
        if found is None:
            found = cls(key[0], key[1])
            self._instruments[key] = found
        elif not isinstance(found, cls):
            raise TypeError(
                f"metric {name!r} already registered as "
                f"{type(found).kind}, not {cls.kind}"
            )
        return found

    def _lookup(self, cls, name: str, labels: dict):
        memo_key = (cls.kind, name, tuple(labels.items()))
        found = self._memo.get(memo_key)
        if found is None:
            found = self._get_or_create(cls, name, labels)
            self._memo[memo_key] = found
        return found

    def counter(self, name: str, **labels) -> Counter:
        return self._lookup(Counter, name, labels)

    def gauge(self, name: str, **labels) -> Gauge:
        return self._lookup(Gauge, name, labels)

    def histogram(self, name: str, **labels) -> Histogram:
        return self._lookup(Histogram, name, labels)

    def get(self, name: str, **labels):
        """Look up an existing instrument (None when absent)."""
        return self._instruments.get((name, _label_key(labels)))

    def to_dict(self) -> dict:
        """JSON-ready snapshot: ``{name: [{labels, kind, ...}, ...]}``."""
        out: dict[str, list] = {}
        for key in sorted(self._instruments):
            inst = self._instruments[key]
            entry = {"labels": dict(inst.labels), "kind": inst.kind}
            entry.update(inst.to_dict())
            out.setdefault(inst.name, []).append(entry)
        return out
