"""Multiplicative Chernoff bounds (Lemma 1 of the paper).

For a sum ``X`` of independent (or negatively associated) 0-1 variables
with mean ``mu``:

* ``P[X < (1 - delta) mu] <= exp(-delta^2 mu / 2)``
* ``P[X > (1 + delta) mu] <= exp(-delta^2 mu / 3)``

and the derived deviation forms used throughout Sections 3-4:

* ``P[X < mu - sqrt(2 mu log m)] <= 1/m``
* ``P[X > mu + sqrt(3 mu log m)] <= 1/m``

Claim 1's underload bound ``P[X_b < T_i - T_{i-1}] < exp(-(m̃_i/n)^{1/3}/2)``
is the lower-tail bound with ``delta = (m_i/n)^{-1/3}``; it is exposed as
:func:`underload_probability_bound` so experiment T5 can print the exact
expression from the paper next to the measured frequency.
"""

from __future__ import annotations

import math

__all__ = [
    "chernoff_lower_tail",
    "chernoff_upper_tail",
    "deviation_for_failure_probability",
    "underload_probability_bound",
]


def _check_delta(delta: float) -> None:
    if not 0.0 < delta < 1.0:
        raise ValueError(f"delta must be in (0, 1), got {delta}")


def _check_mu(mu: float) -> None:
    if mu < 0:
        raise ValueError(f"mu must be >= 0, got {mu}")


def chernoff_lower_tail(mu: float, delta: float) -> float:
    """Upper bound on ``P[X < (1 - delta) mu]``: ``exp(-delta^2 mu / 2)``."""
    _check_mu(mu)
    _check_delta(delta)
    return math.exp(-delta * delta * mu / 2.0)


def chernoff_upper_tail(mu: float, delta: float) -> float:
    """Upper bound on ``P[X > (1 + delta) mu]``: ``exp(-delta^2 mu / 3)``."""
    _check_mu(mu)
    _check_delta(delta)
    return math.exp(-delta * delta * mu / 3.0)


def deviation_for_failure_probability(
    mu: float, failure: float, *, tail: str = "lower"
) -> float:
    """The absolute deviation ``d`` such that the Chernoff bound gives
    ``P[|X - mu| > d] <= failure`` on the requested tail.

    Inverts ``exp(-d^2 / (c mu)) = failure`` with ``c = 2`` (lower) or
    ``c = 3`` (upper); this recovers the paper's
    ``sqrt(2 mu log m)`` / ``sqrt(3 mu log m)`` forms when
    ``failure = 1/m``.

    Parameters
    ----------
    mu:
        Mean of the sum.
    failure:
        Target failure probability in ``(0, 1)``.
    tail:
        ``"lower"`` or ``"upper"``.
    """
    _check_mu(mu)
    if not 0.0 < failure < 1.0:
        raise ValueError(f"failure must be in (0, 1), got {failure}")
    if tail == "lower":
        constant = 2.0
    elif tail == "upper":
        constant = 3.0
    else:
        raise ValueError(f"tail must be 'lower' or 'upper', got {tail!r}")
    return math.sqrt(constant * mu * math.log(1.0 / failure))


def underload_probability_bound(mtilde_i: float, n: int) -> float:
    """Claim 1: bound on the probability that a single bin receives fewer
    than ``T_i - T_{i-1}`` requests in round ``i``.

    The paper's bound is ``exp(-(m̃_i/n)^{1/3} / 2)``, obtained by a
    Chernoff lower-tail bound with ``delta = (m_i/n)^{-1/3}`` and mean
    ``>= m̃_i / n``.

    Parameters
    ----------
    mtilde_i:
        The round-``i`` estimate ``m̃_i`` of the number of unallocated
        balls (a *lower* bound on the true count ``m_i``).
    n:
        Number of bins.
    """
    if mtilde_i < 0:
        raise ValueError(f"mtilde_i must be >= 0, got {mtilde_i}")
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    ratio = mtilde_i / n
    if ratio <= 0:
        return 1.0
    return math.exp(-(ratio ** (1.0 / 3.0)) / 2.0)
