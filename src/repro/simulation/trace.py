"""Execution tracing for the synchronous engine.

A :class:`TraceRecorder` attaches to a :class:`SyncEngine` and captures
a structured, replayable record of a run: per-round request/response/
commit events with agent identities and payloads.  Intended for
debugging protocol implementations and for teaching (the quickstart of
the paper's model *is* a three-round trace).

The recorder hooks the engine non-invasively (it wraps ``step`` and
reads the metrics/counter state), so protocol code needs no changes.

Example
-------
>>> from repro.simulation.trace import TraceRecorder, render_trace
>>> # engine = SyncEngine(...)
>>> # recorder = TraceRecorder(engine)
>>> # engine.run()
>>> # print(render_trace(recorder.events, max_rounds=2))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.engine import SyncEngine

__all__ = ["RoundTrace", "TraceRecorder", "render_trace"]


@dataclass(frozen=True)
class RoundTrace:
    """Condensed record of one engine round."""

    round_no: int
    active_before: int
    requests: int
    accepts: int
    rejects: int
    commits: int
    active_after: int
    max_load: int
    busiest_bin: int
    busiest_bin_requests: int


class TraceRecorder:
    """Records per-round traces from a live engine.

    Attach before running::

        recorder = TraceRecorder(engine)
        engine.run()
        print(render_trace(recorder.events))

    The recorder wraps ``engine.step``; detach by calling
    :meth:`detach` (or let the engine be garbage-collected).
    """

    def __init__(self, engine: "SyncEngine") -> None:
        self.engine = engine
        self.events: list[RoundTrace] = []
        self._original_step = engine.step
        self._bin_received_before = engine.counter.bin_received.copy()
        engine.step = self._wrapped_step  # type: ignore[method-assign]

    def _wrapped_step(self):
        before = self.engine.counter.bin_received.copy()
        metrics = self._original_step()
        delta = self.engine.counter.bin_received - before
        busiest = int(delta.argmax()) if delta.size else 0
        self.events.append(
            RoundTrace(
                round_no=metrics.round_no,
                active_before=metrics.unallocated_start,
                requests=metrics.requests_sent,
                accepts=metrics.accepts_sent,
                rejects=metrics.rejects_sent,
                commits=metrics.commits,
                active_after=metrics.unallocated_end,
                max_load=metrics.max_load,
                busiest_bin=busiest,
                busiest_bin_requests=int(delta[busiest]) if delta.size else 0,
            )
        )
        return metrics

    def detach(self) -> None:
        """Restore the engine's original ``step``."""
        self.engine.step = self._original_step  # type: ignore[method-assign]


def render_trace(
    events: Iterable[RoundTrace],
    *,
    max_rounds: Optional[int] = None,
) -> str:
    """Human-readable multi-line rendering of recorded rounds."""
    lines = [
        f"{'rnd':>4s} {'active':>8s} {'reqs':>8s} {'acc':>8s} "
        f"{'commit':>8s} {'left':>8s} {'maxload':>8s} {'hot bin':>12s}"
    ]
    for i, ev in enumerate(events):
        if max_rounds is not None and i >= max_rounds:
            lines.append(f"... ({i} of more rounds shown)")
            break
        lines.append(
            f"{ev.round_no:4d} {ev.active_before:8d} {ev.requests:8d} "
            f"{ev.accepts:8d} {ev.commits:8d} {ev.active_after:8d} "
            f"{ev.max_load:8d} "
            f"{ev.busiest_bin:5d} ({ev.busiest_bin_requests} rx)"
        )
    return "\n".join(lines)
