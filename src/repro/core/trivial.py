"""The deterministic ``n``-round algorithm (Section 3, success-probability note).

"Balls try all bins one by one, in arbitrary order (which may be
different for each ball); bins use threshold ``ceil(m/n)`` in each
round."  Every ball is allocated within ``n`` rounds *deterministically*:
a bin's fullness is monotone, so a ball rejected by every bin would
imply all bins full — i.e. ``n * ceil(m/n) >= m`` balls placed while one
remains, a contradiction.

The paper invokes this algorithm for the regime ``n < log log(m/n)``
where the w.h.p. guarantees of ``A_heavy`` (stated in terms of ``n``)
are vacuous; see :mod:`repro.core.combined`.

Implementation: ball ``b`` visits bin ``(b + r) mod n`` in round ``r``
(staggered orders spread contention); fully vectorized per round.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.api.spec import register_allocator
from repro.fastpath.sampling import grouped_accept
from repro.result import AllocationResult
from repro.simulation.metrics import RoundMetrics, RunMetrics
from repro.utils.seeding import RngFactory
from repro.utils.validation import ensure_m_n

__all__ = ["run_trivial"]


@register_allocator(
    "trivial",
    summary="deterministic n-round algorithm, max load ceil(m/n)",
    paper_ref="Section 3",
)
def run_trivial(
    m: int,
    n: int,
    *,
    seed=None,
    threshold: Optional[int] = None,
) -> AllocationResult:
    """Deterministically allocate with max load ``ceil(m/n)`` in <= n rounds.

    Parameters
    ----------
    m, n:
        Instance size (any ``m >= 1``, ``n >= 1``).
    seed:
        Only used for the bins' arbitrary accept tie-breaking; the
        round/load guarantees are deterministic regardless.
    threshold:
        Override the per-bin cap (default ``ceil(m/n)``).  Must satisfy
        ``threshold * n >= m`` or the run cannot complete.
    """
    m, n = ensure_m_n(m, n)
    cap = threshold if threshold is not None else math.ceil(m / n)
    if cap * n < m:
        raise ValueError(
            f"threshold {cap} gives total capacity {cap * n} < m={m}"
        )
    factory = RngFactory(seed)
    accept_rng = factory.stream("trivial", "accept")

    loads = np.zeros(n, dtype=np.int64)
    active = np.arange(m, dtype=np.int64)
    metrics = RunMetrics(m, n)
    total_messages = 0
    round_no = 0

    while active.size > 0:
        if round_no >= n:  # impossible by the monotonicity argument
            raise RuntimeError(
                "trivial algorithm exceeded n rounds; invariant violated"
            )
        targets = (active + round_no) % n
        capacity = cap - loads
        accepted = grouped_accept(targets, capacity, accept_rng)
        accepted_bins = targets[accepted]
        np.add.at(loads, accepted_bins, 1)
        accepts = int(accepted.sum())
        total_messages += int(active.size) + accepts
        metrics.add_round(
            RoundMetrics(
                round_no=round_no,
                unallocated_start=int(active.size),
                requests_sent=int(active.size),
                accepts_sent=accepts,
                rejects_sent=0,
                commits=accepts,
                unallocated_end=int(active.size) - accepts,
                max_load=int(loads.max(initial=0)),
                threshold=float(cap),
            )
        )
        active = active[~accepted]
        round_no += 1

    return AllocationResult(
        algorithm="trivial",
        m=m,
        n=n,
        loads=loads,
        rounds=round_no,
        metrics=metrics,
        total_messages=total_messages,
        seed_entropy=factory.root_entropy,
        extra={"threshold": cap},
    )
