"""Property-based tests (hypothesis) on the core invariants.

Each property is an invariant the paper's model demands of *any*
allocation, checked over randomly drawn instances:

* conservation: loads sum to the number of allocated balls;
* cap-respect: accept kernels never exceed capacity;
* schedule monotonicity and integrality;
* determinism: equal seeds produce equal outcomes;
* simulation faithfulness (Lemma 2) over random thresholds.
"""

import numpy as np
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import PaperSchedule, run_heavy, run_trivial
from repro.core.asymmetric import superbin_blocks
from repro.fastpath.sampling import grouped_accept, multinomial_occupancy
from repro.light import run_light
from repro.lowerbound.adversary import uniform_adversary
from repro.lowerbound.simulate_degree import (
    run_degree_d_direct,
    run_degree_d_simulated,
)

COMMON = settings(
    deadline=None,
    max_examples=25,
    suppress_health_check=[HealthCheck.too_slow],
)


@COMMON
@given(
    n=st.integers(2, 128),
    ratio=st.integers(1, 64),
    seed=st.integers(0, 2**31),
)
def test_heavy_conservation_and_cap(n, ratio, seed):
    m = n * ratio
    res = run_heavy(m, n, seed=seed)
    assert res.complete
    assert res.loads.sum() == m
    assert res.loads.min() >= 0
    # O(1) gap with a generous constant (small-n instances are noisier;
    # the virtual-bin factor contributes up to 2g).
    assert res.gap <= 14.0


@COMMON
@given(
    n=st.integers(1, 64),
    m=st.integers(1, 4000),
    seed=st.integers(0, 2**31),
)
def test_trivial_always_perfect(n, m, seed):
    res = run_trivial(m, n, seed=seed)
    assert res.complete
    assert res.max_load == -(-m // n)  # ceil
    assert res.rounds <= n


@COMMON
@given(
    n_balls=st.integers(0, 500),
    n_bins=st.integers(1, 500),
    seed=st.integers(0, 2**31),
)
def test_light_never_exceeds_capacity(n_balls, n_bins, seed):
    if n_balls > 2 * n_bins:
        return  # outside the protocol's contract
    out = run_light(n_balls, n_bins, seed=seed)
    assert out.loads.max(initial=0) <= 2
    assert out.loads.sum() == n_balls


@COMMON
@given(
    k=st.integers(0, 2000),
    n=st.integers(1, 50),
    cap=st.integers(0, 100),
    seed=st.integers(0, 2**31),
)
def test_grouped_accept_cap_invariant(k, n, cap, seed):
    rng = np.random.default_rng(seed)
    choices = rng.integers(0, n, size=k)
    capacity = rng.integers(0, cap + 1, size=n)
    mask = grouped_accept(choices, capacity, rng)
    per_bin = np.bincount(choices[mask], minlength=n)
    assert (per_bin <= capacity).all()
    # accepted count is maximal: a bin with requests and spare capacity
    # must accept min(requests, capacity).
    req = np.bincount(choices, minlength=n)
    assert (per_bin == np.minimum(req, capacity)).all()


@COMMON
@given(
    k=st.integers(0, 10**6),
    n=st.integers(1, 64),
    seed=st.integers(0, 2**31),
)
def test_multinomial_occupancy_conserves(k, n, seed):
    rng = np.random.default_rng(seed)
    counts = multinomial_occupancy(k, n, rng)
    assert counts.sum() == k
    assert counts.min() >= 0


@COMMON
@given(
    n=st.integers(2, 256),
    exponent=st.integers(1, 40),
)
def test_paper_schedule_invariants(n, exponent):
    m = n * 2**exponent
    sched = PaperSchedule(m, n)
    rounds = sched.phase1_rounds()
    prev = -1
    for i in range(rounds):
        t = sched.threshold(i)
        assert isinstance(t, int)
        assert t >= prev  # monotone
        assert t <= m // n  # never above the mean
        prev = t
    # estimates decrease to the stop region
    assert sched.estimate(rounds) <= 2 * n


@COMMON
@given(
    n=st.integers(1, 200),
    n_r=st.integers(1, 200),
)
def test_superbin_blocks_partition(n, n_r):
    if n_r > n:
        return
    blocks = superbin_blocks(n, n_r)
    sizes = np.diff(blocks)
    assert sizes.sum() == n
    assert sizes.min() >= 1
    assert sizes.max() - sizes.min() <= 1


@COMMON
@given(
    seed=st.integers(0, 2**31),
    d=st.integers(1, 3),
)
def test_lemma2_simulation_property(seed, d):
    """Random-seeded Lemma 2 equivalence over a fixed schedule."""
    thresholds = [4, 6, 7, 9]
    direct = run_degree_d_direct(512, 64, d, thresholds, seed=seed)
    sim = run_degree_d_simulated(512, 64, d, thresholds, seed=seed)
    assert np.array_equal(direct.loads, sim.loads)
    assert sim.rounds == d * direct.rounds


@COMMON
@given(
    m_balls=st.integers(100, 10**5),
    n=st.integers(2, 128),
    extra=st.integers(0, 500),
    seed=st.integers(0, 2**31),
)
def test_adversary_budget_property(m_balls, n, extra, seed):
    rng = np.random.default_rng(seed)
    thresholds = uniform_adversary.thresholds(m_balls, n, extra, rng)
    assert thresholds.sum() == m_balls + extra
    assert thresholds.min() >= 0


@COMMON
@given(seed=st.integers(0, 2**31))
def test_determinism_property(seed):
    a = run_heavy(20_000, 64, seed=seed)
    b = run_heavy(20_000, 64, seed=seed)
    assert np.array_equal(a.loads, b.loads)
    assert a.total_messages == b.total_messages
    assert a.rounds == b.rounds


@COMMON
@given(
    n=st.integers(4, 128),
    ratio=st.integers(2, 256),
    seed=st.integers(0, 2**31),
)
def test_asymmetric_invariants(n, ratio, seed):
    from repro.core import run_asymmetric

    m = n * ratio
    res = run_asymmetric(m, n, seed=seed)
    assert res.complete
    assert res.loads.sum() == m
    # O(1) rounds with an absolute ceiling, O(1)-ish gap with slack for
    # tiny instances where log n terms dominate.
    assert res.rounds <= 10
    assert res.gap <= 6 + 2 * np.log(n)


@COMMON
@given(
    seed=st.integers(0, 2**31),
    crash=st.floats(0.0, 0.2),
    loss=st.floats(0.0, 0.3),
)
def test_faulty_conservation_property(seed, crash, loss):
    from repro.core import run_heavy_faulty

    m, n = 10_000, 64
    res = run_heavy_faulty(
        m, n, seed=seed, crash_prob=crash, loss_prob=loss
    )
    # Conservation under faults: placed + crashed + stragglers == m,
    # and every surviving ball is placed at most once.
    assert res.loads.sum() + res.unallocated == m
    assert res.loads.min() >= 0
    assert res.extra["crashed"] <= res.unallocated


@COMMON
@given(
    d=st.integers(1, 4),
    seed=st.integers(0, 2**31),
)
def test_multicontact_invariants(d, seed):
    from repro.core import run_heavy_multicontact

    m, n = 8192, 64
    res = run_heavy_multicontact(m, n, d, seed=seed)
    assert res.complete
    assert res.loads.sum() == m
    assert res.gap <= 14.0
