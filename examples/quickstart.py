#!/usr/bin/env python
"""Quickstart: allocate a million balls into a thousand bins.

Runs the paper's main algorithm (``A_heavy``, Theorem 1) next to the
naive baseline and prints the headline comparison: the naive random
allocation pays a ``sqrt((m/n) log n)`` overload, the paper's algorithm
pays ``O(1)`` — in about ``log log(m/n) + log* n`` communication rounds.

Run:
    python examples/quickstart.py
"""

from __future__ import annotations

import repro


def main() -> None:
    m, n, seed = 1_000_000, 1_000, 2019

    print(f"instance: m={m:,} balls, n={n:,} bins (average load {m // n})\n")

    # One entry point runs every registered algorithm; see
    # `python -m repro list` for the full registry.
    # --- the paper's symmetric algorithm (Theorem 1) -------------------
    heavy = repro.allocate("heavy", m, n, seed=seed)
    print("A_heavy (paper, Theorem 1)")
    print(heavy.describe())
    print()

    # --- the naive single-choice baseline ------------------------------
    naive = repro.allocate("single", m, n, seed=seed)
    print("single-choice baseline")
    print(naive.describe())
    print()

    # --- the asymmetric algorithm (Theorem 3) --------------------------
    asym = repro.allocate("asymmetric", m, n, seed=seed)
    print("asymmetric algorithm (Theorem 3)")
    print(asym.describe())
    print()

    print("headline comparison")
    print(f"  naive gap     : +{naive.gap:.0f} balls over the average")
    print(f"  A_heavy gap   : +{heavy.gap:.0f} in {heavy.rounds} rounds")
    print(f"  asymmetric gap: +{asym.gap:.0f} in {asym.rounds} rounds")
    improvement = naive.gap / max(heavy.gap, 1)
    print(f"  -> {improvement:.0f}x less overload than naive randomization")

    # Reproducibility: every run is replayable from its seed, and the
    # dispatch API is bitwise-identical to the direct entry point.
    again = repro.run_heavy(m, n, seed=seed)
    assert again.max_load == heavy.max_load
    print("\n(rerun with the same seed reproduced the identical outcome)")


if __name__ == "__main__":
    main()
