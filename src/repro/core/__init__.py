"""The paper's algorithms: ``A_heavy`` (Theorem 1), the asymmetric
superbin algorithm (Theorem 3), the deterministic trivial algorithm, and
the combined dispatcher — plus the threshold-schedule abstraction they
share with the lower-bound experiments.
"""

from repro.core.asymmetric import AsymmetricConfig, run_asymmetric, superbin_blocks
from repro.core.combined import run_combined, should_use_trivial
from repro.core.faulty import run_heavy_faulty
from repro.core.heavy import (
    HeavyConfig,
    ThresholdPhaseOutcome,
    run_heavy,
    run_threshold_protocol,
)
from repro.core.multicontact import run_heavy_multicontact
from repro.core.thresholds import (
    ExponentSchedule,
    FixedSchedule,
    PaperSchedule,
    ThresholdSchedule,
)
from repro.core.trivial import run_trivial
from repro.result import AllocationResult

__all__ = [
    "AllocationResult",
    "AsymmetricConfig",
    "ExponentSchedule",
    "FixedSchedule",
    "HeavyConfig",
    "PaperSchedule",
    "ThresholdPhaseOutcome",
    "ThresholdSchedule",
    "run_asymmetric",
    "run_combined",
    "run_heavy",
    "run_heavy_faulty",
    "run_heavy_multicontact",
    "run_threshold_protocol",
    "run_trivial",
    "should_use_trivial",
    "superbin_blocks",
]
