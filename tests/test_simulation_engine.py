"""Tests for the synchronous engine — the model's reference semantics."""

from typing import Optional, Sequence

import numpy as np
import pytest

from repro.simulation.agents import BallAgent, BinAgent
from repro.simulation.engine import EngineConfig, SyncEngine
from repro.simulation.messages import Message, MessageKind
from repro.utils.seeding import RngFactory


class OneShotBall(BallAgent):
    """Contacts one uniform bin per round, commits on first accept."""

    def choose_requests(self, round_no, n_bins):
        return [int(self.rng.integers(0, n_bins))]

    def receive_replies(self, round_no, replies):
        for msg in replies:
            if msg.kind is MessageKind.ACCEPT:
                return msg.bin
        return None


class CappedBin(BinAgent):
    """Accepts requests up to a fixed total capacity."""

    def __init__(self, index, rng, capacity=2):
        super().__init__(index, rng)
        self.capacity = capacity

    def respond(self, round_no, requests):
        free = max(0, self.capacity - self.load)
        return list(range(min(free, len(requests))))


class GreedyBin(BinAgent):
    """Accepts everything (no cap)."""

    def respond(self, round_no, requests):
        return list(range(len(requests)))


class MultiContactBall(OneShotBall):
    """Contacts two bins per round (exercises multi-accept revocation)."""

    def choose_requests(self, round_no, n_bins):
        return [int(b) for b in self.rng.integers(0, n_bins, size=2)]


def build(n_balls, n_bins, ball_cls=OneShotBall, bin_cls=GreedyBin, seed=0, **cfg):
    factory = RngFactory(seed)
    balls = [ball_cls(i, factory.stream("ball", i)) for i in range(n_balls)]
    bins = [bin_cls(j, factory.stream("bin", j)) for j in range(n_bins)]
    return SyncEngine(
        balls, bins, config=EngineConfig(**cfg), rng_factory=factory
    )


class TestEngineBasics:
    def test_greedy_bins_finish_in_one_round(self):
        engine = build(50, 8)
        out = engine.run()
        assert out.complete
        assert out.rounds == 1
        assert out.loads.sum() == 50

    def test_load_conservation_with_caps(self):
        engine = build(30, 20, bin_cls=CappedBin)
        out = engine.run()
        assert out.complete
        assert out.loads.sum() == 30
        assert out.loads.max() <= 2

    def test_commitments_consistent_with_loads(self):
        engine = build(40, 30, bin_cls=CappedBin)  # capacity 60 >= 40
        out = engine.run()
        assert out.complete
        recomputed = np.bincount(out.commitments, minlength=30)
        assert np.array_equal(recomputed, out.loads)

    def test_max_rounds_abort(self):
        # 30 balls into 10 bins of capacity 2 = capacity 20 < 30: can
        # never complete; engine must stop at the cap.
        engine = build(30, 10, bin_cls=CappedBin, max_rounds=5)
        out = engine.run()
        assert not out.complete
        assert out.rounds == 5
        assert out.unallocated == 30 - out.loads.sum()

    def test_deterministic_under_seed(self):
        out1 = build(60, 16, bin_cls=CappedBin, seed=9).run()
        out2 = build(60, 16, bin_cls=CappedBin, seed=9).run()
        assert np.array_equal(out1.loads, out2.loads)
        assert out1.counter.total == out2.counter.total

    def test_different_seeds_differ(self):
        out1 = build(200, 16, seed=1).run()
        out2 = build(200, 16, seed=2).run()
        assert not np.array_equal(out1.loads, out2.loads)


class TestMessageAccounting:
    def test_request_accept_counts(self):
        engine = build(25, 5)
        out = engine.run()
        # every ball: 1 request + 1 accept + 1 commit (count_commits on)
        assert out.counter.total == 25 * 3

    def test_commit_counting_disabled(self):
        engine = build(25, 5, count_commits=False)
        out = engine.run()
        assert out.counter.total == 25 * 2

    def test_explicit_rejects_counted(self):
        engine = build(30, 3, bin_cls=CappedBin, explicit_rejects=True)
        engine.step()
        m = engine.metrics.rounds[0]
        assert m.rejects_sent > 0
        # rejects are bin->ball sends
        assert engine.counter.total >= m.requests_sent + m.accepts_sent

    def test_per_round_metrics_progress(self):
        engine = build(40, 40, bin_cls=CappedBin)
        out = engine.run()
        history = out.metrics.unallocated_history
        assert history[0] == 40
        assert all(a >= b for a, b in zip(history, history[1:]))


class TestRevocation:
    def test_multi_accept_revokes_cleanly(self):
        # Balls contacting 2 bins may get 2 accepts; exactly one commit
        # must survive and bin loads must match commitments.
        engine = build(50, 10, ball_cls=MultiContactBall, bin_cls=CappedBin)
        out = engine.run()
        if out.complete:
            assert out.loads.sum() == 50
        recomputed = np.bincount(
            out.commitments[out.commitments >= 0], minlength=10
        )
        assert np.array_equal(recomputed, out.loads)
        # engine-tracked bin loads equal final committed loads
        for j, bin_ in enumerate(engine.bins):
            assert bin_.load == out.loads[j]


class TestSymmetricRouting:
    def test_symmetric_uniformity(self):
        # With symmetric routing, a ball that always requests local port
        # 0 must still spread uniformly over bins (private permutations).
        class Port0Ball(OneShotBall):
            def choose_requests(self, round_no, n_bins):
                return [0]

        engine = build(4000, 8, ball_cls=Port0Ball)
        out = engine.run()
        # Uniform w.h.p.: each bin gets 500 +- 5 sigma (~110)
        assert out.loads.min() > 300
        assert out.loads.max() < 700

    def test_asymmetric_port0_concentrates(self):
        class Port0Ball(OneShotBall):
            def choose_requests(self, round_no, n_bins):
                return [0]

        engine = build(100, 8, ball_cls=Port0Ball, symmetric=False)
        out = engine.run()
        assert out.loads[0] == 100


class TestValidation:
    def test_agent_index_mismatch(self):
        factory = RngFactory(0)
        balls = [OneShotBall(1, factory.stream("b", 0))]  # wrong index
        bins = [GreedyBin(0, factory.stream("c", 0))]
        with pytest.raises(ValueError, match="index"):
            SyncEngine(balls, bins)

    def test_no_bins_rejected(self):
        with pytest.raises(ValueError):
            SyncEngine([], [])

    def test_invalid_bin_request_caught(self):
        class BadBall(OneShotBall):
            def choose_requests(self, round_no, n_bins):
                return [n_bins + 5]

        engine = build(1, 2, ball_cls=BadBall)
        with pytest.raises(ValueError, match="invalid bin"):
            engine.step()

    def test_double_accept_caught(self):
        class BadBin(GreedyBin):
            def respond(self, round_no, requests):
                return [0, 0] if requests else []

        engine = build(1, 1, bin_cls=BadBin)
        with pytest.raises(ValueError, match="twice"):
            engine.step()

    def test_out_of_range_accept_caught(self):
        class BadBin(GreedyBin):
            def respond(self, round_no, requests):
                return [len(requests)]

        engine = build(1, 1, bin_cls=BadBin)
        with pytest.raises(ValueError, match="invalid position"):
            engine.step()

    def test_commit_without_accept_caught(self):
        class LyingBall(OneShotBall):
            def receive_replies(self, round_no, replies):
                return 0  # commits to port 0 regardless of accepts

        class StingyBin(GreedyBin):
            def respond(self, round_no, requests):
                return []

        engine = build(1, 4, ball_cls=LyingBall, bin_cls=StingyBin)
        # ball gets no accept -> receive_replies not called unless
        # replies or pending accepts exist; with explicit rejects it is.
        engine.config = EngineConfig(explicit_rejects=True)
        with pytest.raises(ValueError, match="outstanding accept"):
            engine.step()
