"""Hierarchical span tracing in Chrome trace-event form.

A *span* is a named interval on a thread's timeline; nesting emerges
from containment (``allocate`` spans the whole call, ``phase`` spans
sit inside it, ``round`` spans inside those), which is exactly how the
Chrome trace-event viewer and Perfetto reconstruct hierarchy from
"X" (complete) events: same process/thread, overlapping times, deeper
spans stack below shallower ones.

The tracer records events as plain dicts in the trace-event schema
(``name``/``cat``/``ph``/``ts``/``dur``/``pid``/``tid``/``args`` with
microsecond timestamps), so :meth:`SpanTracer.to_chrome_trace` is a
wrap, not a conversion — the output loads directly in
``chrome://tracing`` or https://ui.perfetto.dev.

Two recording styles:

* :meth:`SpanTracer.span` — a context manager, for cold paths where
  the allocation of the manager object is irrelevant (CLI entry
  points, service flushes);
* :meth:`SpanTracer.begin` / :meth:`SpanTracer.complete` — an explicit
  pair for hot loops: ``begin()`` is just ``perf_counter()`` (no
  allocation when telemetry is off — the caller guards both calls
  behind one ``is not None`` branch).

Determinism: the tracer reads ``time.perf_counter`` and nothing else —
no randomness, no effect on the caller's state.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from typing import Iterator

__all__ = ["SpanTracer"]


class SpanTracer:
    """Accumulates Chrome trace events (phase ``X`` and ``i``)."""

    def __init__(self) -> None:
        self.events: list[dict] = []
        self._pid = os.getpid()
        # Trace timestamps are offsets from the tracer's birth so a
        # trace starts near t=0 regardless of perf_counter's epoch.
        self._t0 = time.perf_counter()

    def __len__(self) -> int:
        return len(self.events)

    @staticmethod
    def begin() -> float:
        """Start-of-span timestamp (plain ``perf_counter`` seconds)."""
        return time.perf_counter()

    def complete(
        self, name: str, start: float, *, cat: str = "repro", **args
    ) -> float:
        """Record a complete ("X") span from ``start`` to now; returns
        the duration in seconds (one clock read serves span and
        histogram at a hot hook)."""
        now = time.perf_counter()
        event = {
            "name": name,
            "cat": cat,
            "ph": "X",
            "ts": (start - self._t0) * 1e6,
            "dur": (now - start) * 1e6,
            "pid": self._pid,
            "tid": threading.get_ident(),
        }
        if args:
            event["args"] = args
        self.events.append(event)
        return now - start

    def instant(self, name: str, *, cat: str = "repro", **args) -> None:
        """Record an instant ("i") event — a point-in-time marker."""
        event = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "ts": (time.perf_counter() - self._t0) * 1e6,
            "pid": self._pid,
            "tid": threading.get_ident(),
            "s": "t",  # thread-scoped marker
        }
        if args:
            event["args"] = args
        self.events.append(event)

    @contextmanager
    def span(
        self, name: str, *, cat: str = "repro", **args
    ) -> Iterator[None]:
        start = self.begin()
        try:
            yield
        finally:
            self.complete(name, start, cat=cat, **args)

    def to_chrome_trace(self) -> dict:
        """The Chrome trace-event JSON object (Perfetto-loadable)."""
        return {
            "traceEvents": list(self.events),
            "displayTimeUnit": "ms",
        }
