"""Symmetric non-adaptive parallel d-choice in the spirit of [ACMR98].

Adler, Chakrabarti, Mitzenmacher and Rasmussen introduced the parallel
balls-into-bins framework for ``m = n``: each ball picks ``d`` bins up
front (*non-adaptive*), communicates only with those bins, and the
protocol resolves collisions over ``r`` rounds, achieving load
``Theta(log log n / log log log n)`` for constant rounds.

Implementation (the canonical collision protocol of that family):

* each ball samples its ``d`` candidate bins once, up front;
* per round, every unallocated ball requests all its candidates;
* every bin grants one accept per round among the requests it received
  (uniformly at random), provided its load is below ``capacity``;
* a ball with at least one grant commits to a uniformly random granter.

The paper cites this line of work to note that it does **not** extend to
the heavily loaded case: with ``m >> n`` every bin is contacted by many
balls each round, so one grant per bin per round leaves
``m - n`` balls unallocated per round — the protocol needs ``~ m/n``
rounds (experiment T1's "why naive parallelization fails" row).  For
``m = n`` it reproduces the classical behaviour.

``capacity`` defaults to ``ceil(m/n) + slack`` so the protocol remains
complete-able in the heavy regime; the round count then exposes the
linear-in-``m/n`` blowup.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.api.spec import register_allocator
from repro.fastpath.roundstate import RoundState
from repro.fastpath.sampling import sample_choices
from repro.result import AllocationResult
from repro.utils.seeding import RngFactory
from repro.utils.validation import check_positive_int, ensure_m_n
from repro.workloads import bind_workload

__all__ = ["run_parallel_dchoice"]


@register_allocator(
    "dchoice",
    summary="non-adaptive parallel d-choice collision protocol",
    paper_ref="baseline [ACMR98]",
    aliases=("parallel_dchoice", "adler"),
    supports_multicontact=True,
    kernel_backed=True,
    workload_capable=True,
)
def run_parallel_dchoice(
    m: int,
    n: int,
    d: int = 2,
    *,
    seed=None,
    capacity: Optional[int] = None,
    grants_per_round: int = 1,
    max_rounds: int = 100_000,
    workload=None,
) -> AllocationResult:
    """Non-adaptive parallel d-choice collision protocol.

    Parameters
    ----------
    m, n:
        Instance size.
    d:
        Candidate bins per ball, fixed for the whole run (non-adaptive).
    capacity:
        Optional per-bin load cap.  The classical protocol has none (the
        final load *is* the measured quantity); a cap can strand balls
        whose fixed candidates all fill (non-adaptivity), so capped runs
        may return incomplete.
    grants_per_round:
        Accepts a bin may issue per round (1 in the classical protocol).
    max_rounds:
        Abort bound; the result is marked incomplete if hit.
    workload:
        Optional :class:`repro.workloads.Workload` (or spec string):
        candidate bins are drawn from the choice distribution, the
        capacity profile scales the per-bin cap, and ball weights feed
        the weighted-load statistics.  Skewed candidates concentrate
        requests on hot bins, so the one-grant-per-round rule needs
        proportionally more rounds — the measured behaviour.  Uniform
        workloads are bitwise-identical to the historical run.
    """
    m, n = ensure_m_n(m, n)
    d = check_positive_int(d, "d")
    grants_per_round = check_positive_int(grants_per_round, "grants_per_round")
    cap = capacity if capacity is not None else m  # m = effectively unbounded
    factory = RngFactory(seed)
    wl = bind_workload(workload, m, n, factory)
    caps = wl.capacities(cap)
    total_capacity = int(caps.sum()) if isinstance(caps, np.ndarray) else cap * n
    if total_capacity < m:
        raise ValueError(
            f"capacity {cap} cannot hold m={m} balls in n={n} bins"
        )
    rng = factory.stream("adler", "choices")
    grant_rng = factory.stream("adler", "grants")

    if wl.pvals is None:
        candidates = rng.integers(0, n, size=(m, d), dtype=np.int64)
    else:
        candidates = sample_choices(m * d, n, rng, wl.pvals).reshape(m, d)
    state = RoundState(m, n, weights=wl.weights)

    while state.active_count > 0 and state.rounds < max_rounds:
        # Non-adaptive: each ball re-requests its fixed candidate set;
        # each bin grants up to `grants_per_round` (uniformly among
        # requests), never beyond its residual capacity; a ball with
        # several grants commits to the first and the rest are revoked.
        batch = state.sample_contacts(targets=candidates[state.active], d=d)
        per_round_cap = np.minimum(grants_per_round, caps - state.loads)
        decision = state.group_and_accept(batch, per_round_cap, grant_rng)
        state.commit_and_revoke(batch, decision, count_commits=True)

    remaining = state.active_count
    extra: dict = {"capacity": cap, "d": d}
    workload_record = wl.extra_record(state.weighted_loads)
    if workload_record is not None:
        extra["workload"] = workload_record
    return AllocationResult(
        algorithm=f"parallel-dchoice[{d}]",
        m=m,
        n=n,
        loads=state.loads,
        rounds=state.rounds,
        metrics=state.metrics,
        total_messages=state.total_messages,
        complete=remaining == 0,
        unallocated=remaining,
        seed_entropy=factory.root_entropy,
        extra=extra,
    )
