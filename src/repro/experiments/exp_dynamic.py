"""Experiments D1/D2: dynamic allocation under churn and under attack.

D1 is the dynamic subsystem's headline cost claim: when balls churn
(depart and arrive) epoch by epoch, re-establishing the load guarantee
*incrementally* — only the arriving cohort runs through the round
kernels, against the residents' loads — costs messages proportional
to the **churn**, while the full-rerun oracle pays the one-shot cost
of the whole **population** every epoch.  D1 sweeps the churn rate
and measures steady-state messages per epoch for both strategies: the
incremental curve must track the churn (double the churn, roughly
double the cost) while the oracle's stays flat at the population
cost, with both keeping the O(1) steady-state gap.

D2 is the worst-case counterpart (the paper's guarantees are
worst-case statements): the same churn regime driven by the
gap-maximizing greedy departure adversary, which drains the lightest
bins level-by-level so arriving cohorts face maximally skewed
residuals.  Load-oblivious baselines ratchet their maximum up by
``churn * m / n`` every epoch (the adversary never touches the top
bin, and uniform placement keeps feeding it); ``A_heavy``'s
population-average threshold schedule re-levels the drained bins
instead, so its worst-epoch gap stays within a constant factor of the
benign run on the same seed — gap-over-time stability under attack,
extending D1's time-series framing.  A fault-injected leg (bin
crashes + ack loss on top of the adversary) checks graceful
degradation: quarantined placement still completes and holds a
bounded gap.
"""

from __future__ import annotations

from repro.core.faulty import FaultModel
from repro.dynamic import run_dynamic
from repro.experiments.plotting import ascii_chart
from repro.experiments.report import ExperimentReport

__all__ = ["exp_d1", "exp_d2"]


def exp_d1(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """D1 — messages/epoch of incremental vs full-rerun across churn."""
    report = ExperimentReport(
        exp_id="D1",
        title="Amortized rebalance cost vs churn rate",
        claim="extension: incremental rebalancing on the shared round "
        "kernels costs messages proportional to the churn (the arriving "
        "cohort), while a full re-run pays the population's one-shot "
        "cost every epoch; both hold the steady-state gap at O(1)",
        columns=[
            "churn",
            "inc msg/ep",
            "full msg/ep",
            "advantage",
            "inc moved/ep",
            "inc gap",
            "full gap",
        ],
    )
    if scale == "quick":
        m, n, epochs = 20_000, 64, 6
        churns = [0.05, 0.1, 0.2]
    else:
        m, n, epochs = 100_000, 256, 16
        churns = [0.02, 0.05, 0.1, 0.2, 0.5]

    inc_msgs, full_msgs, advantages = [], [], []
    ok = True
    for churn in churns:
        inc = run_dynamic(
            "heavy", m, n, seed=seed, epochs=epochs, churn=churn,
            rebalance="incremental",
        )
        full = run_dynamic(
            "heavy", m, n, seed=seed, epochs=epochs, churn=churn,
            rebalance="full_rerun",
        )
        inc_per = inc.churn_messages / epochs
        full_per = full.churn_messages / epochs
        advantage = full_per / inc_per
        inc_gap = float(inc.gaps[1:].mean())
        full_gap = float(full.gaps[1:].mean())
        report.add_row(
            churn,
            inc_per,
            full_per,
            advantage,
            float(inc.moved[1:].mean()),
            inc_gap,
            full_gap,
        )
        inc_msgs.append(inc_per)
        full_msgs.append(full_per)
        advantages.append(advantage)
        # Both strategies must keep the steady-state gap O(1), and
        # every run must place every ball.
        ok = ok and inc.complete and full.complete
        ok = ok and inc_gap <= 8.0 and full_gap <= 8.0

    # Incremental cost tracks the churn: strictly increasing in the
    # churn rate, and the advantage over the oracle shrinks as churn
    # grows (at 100% churn the two coincide by construction).
    ok = ok and all(
        a < b for a, b in zip(inc_msgs, inc_msgs[1:])
    )
    ok = ok and advantages[0] >= 2 * advantages[-1]
    # The oracle's cost is set by the population, not the churn: flat
    # within 35% across the sweep.
    ok = ok and max(full_msgs) <= 1.35 * min(full_msgs)
    # Material advantage at the headline 10% churn point.
    idx = churns.index(0.1)
    ok = ok and advantages[idx] >= 3.0

    report.charts.append(
        ascii_chart(
            churns,
            {"incremental": inc_msgs, "full_rerun": full_msgs},
            title="messages per churn epoch vs churn rate",
            x_label="churn",
        )
    )
    report.passed = ok
    report.notes.append(
        "incremental epochs place only the arriving cohort against the "
        "residents' loads (RoundState initial_loads + schedule "
        "fast-forward + settle rounds), so their message cost scales "
        "with churn * m; the full re-run re-places all m balls."
    )
    report.notes.append(
        "aggregate-granularity placements compress the wall-clock "
        "advantage (O(n) per round for both strategies) but the "
        "message advantage is granularity-independent; "
        "BENCH_dynamic.json records the per-ball wall-clock trajectory."
    )
    return report


def exp_d2(scale: str = "quick", seed: int = 20190416) -> ExperimentReport:
    """D2 — gap-over-time stability under the greedy departure adversary."""
    report = ExperimentReport(
        exp_id="D2",
        title="Gap-over-time under adversarial churn",
        claim="extension: under the gap-maximizing greedy departure "
        "adversary, A_heavy's worst-epoch gap stays within a constant "
        "factor of its benign run on the same seed (the threshold "
        "schedule re-levels the drained bins), while load-oblivious "
        "baselines ratchet their maximum up every epoch; with bin "
        "crashes and ack loss on top, quarantined placement still "
        "completes with a bounded gap",
        columns=[
            "algorithm",
            "regime",
            "fill gap",
            "steady gap",
            "worst gap",
            "degrade",
            "complete",
        ],
    )
    if scale == "quick":
        m, n, epochs = 20_000, 64, 8
        heavy_bar, blowup_bar = 3.0, 4.0
    else:
        m, n, epochs = 100_000, 256, 32
        heavy_bar, blowup_bar = 3.0, 10.0

    algorithms = ("heavy", "single", "stemann")
    ok = True
    degradations: dict[str, float] = {}
    attacked_series: dict[str, list[float]] = {}
    for algo in algorithms:
        benign = run_dynamic(
            algo, m, n, seed=seed, epochs=epochs, churn=0.1,
            departures="uniform",
        )
        attacked = run_dynamic(
            algo, m, n, seed=seed, epochs=epochs, churn=0.1,
            departures="greedy_adversary",
        )
        benign_worst = float(benign.gaps.max())
        attacked_worst = float(attacked.gaps.max())
        degrade = attacked_worst / max(benign_worst, 1e-9)
        degradations[algo] = degrade
        attacked_series[algo] = [float(g) for g in attacked.gaps]
        for regime, res, ratio in (
            ("benign", benign, None),
            ("adversarial", attacked, degrade),
        ):
            gaps = res.gaps
            report.add_row(
                algo,
                regime,
                float(gaps[0]),
                float(gaps[1:].mean()) if epochs else float(gaps[0]),
                float(gaps.max()),
                ratio,
                res.complete,
            )
        ok = ok and benign.complete and attacked.complete

    # The stability split: heavy degrades by at most a constant factor
    # while at least one load-oblivious baseline blows past it.
    ok = ok and degradations["heavy"] <= heavy_bar
    ok = ok and max(
        degradations[a] for a in algorithms if a != "heavy"
    ) > blowup_bar

    # Graceful degradation: the adversary plus bin crashes and ack
    # loss — placement must still complete every epoch (quarantine +
    # ghost retries), with the gap bounded by the quarantine squeeze
    # (half the bins may be down, so loads can legitimately double).
    faulted = run_dynamic(
        "heavy", m, n, seed=seed, epochs=epochs, churn=0.1,
        departures="greedy_adversary",
        fault_model=FaultModel(
            bin_fail_prob=0.05, bin_recover_prob=0.25, loss_prob=0.02
        ),
    )
    fault_gaps = faulted.gaps
    report.add_row(
        "heavy",
        "adv+faults",
        float(fault_gaps[0]),
        float(fault_gaps[1:].mean()) if epochs else float(fault_gaps[0]),
        float(fault_gaps.max()),
        None,
        faulted.complete,
    )
    ok = ok and faulted.complete
    ok = ok and float(fault_gaps.max()) <= 1.5 * (m / n)

    report.charts.append(
        ascii_chart(
            list(range(epochs + 1)),
            {a: attacked_series[a] for a in algorithms},
            title="gap per epoch under greedy adversarial departures",
            x_label="epoch",
        )
    )
    report.passed = ok
    report.notes.append(
        "the greedy adversary drains the lightest bins level-by-level "
        "(spread_budget ties), never the maximum: uniform placement "
        "then feeds the top bin ~churn*m/n new balls every epoch while "
        "heavy's population-average thresholds reject it and refill "
        "the drained bins (drain_settle escalation; see dynamic_heavy)."
    )
    report.notes.append(
        "the fault leg quarantines failed bins from placement and "
        "retries lost acks against ghost-inflated loads, so complete "
        "stays True; its gap bound is the quarantine squeeze, not the "
        "benign O(1)."
    )
    return report
