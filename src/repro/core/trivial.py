"""The deterministic ``n``-round algorithm (Section 3, success-probability note).

"Balls try all bins one by one, in arbitrary order (which may be
different for each ball); bins use threshold ``ceil(m/n)`` in each
round."  Every ball is allocated within ``n`` rounds *deterministically*:
a bin's fullness is monotone, so a ball rejected by every bin would
imply all bins full — i.e. ``n * ceil(m/n) >= m`` balls placed while one
remains, a contradiction.

The paper invokes this algorithm for the regime ``n < log log(m/n)``
where the w.h.p. guarantees of ``A_heavy`` (stated in terms of ``n``)
are vacuous; see :mod:`repro.core.combined`.

Implementation: ball ``b`` visits bin ``(b + r) mod n`` in round ``r``
(staggered orders spread contention); fully vectorized per round.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from repro.api.spec import register_allocator, register_replicator
from repro.fastpath.roundstate import RoundState
from repro.fastpath.sampling import grouped_accept_with_priorities
from repro.result import AllocationResult
from repro.simulation.metrics import RoundMetrics, RunMetrics
from repro.utils.seeding import RngFactory
from repro.utils.validation import ensure_m_n
from repro.workloads import bind_workload

__all__ = ["replicate_trivial", "run_trivial"]

#: Trial-batched replication processes trials in chunks so the flat
#: composite request array stays near this many elements (memory cap).
_CHUNK_TARGET_ELEMENTS = 2_000_000


@register_allocator(
    "trivial",
    summary="deterministic n-round algorithm, max load ceil(m/n)",
    paper_ref="Section 3",
    kernel_backed=True,
    workload_capable=True,
)
def run_trivial(
    m: int,
    n: int,
    *,
    seed=None,
    threshold: Optional[int] = None,
    workload=None,
) -> AllocationResult:
    """Deterministically allocate with max load ``ceil(m/n)`` in <= n rounds.

    Parameters
    ----------
    m, n:
        Instance size (any ``m >= 1``, ``n >= 1``).
    seed:
        Only used for the bins' arbitrary accept tie-breaking; the
        round/load guarantees are deterministic regardless.
    threshold:
        Override the per-bin cap (default ``ceil(m/n)``).  Must satisfy
        ``threshold * n >= m`` or the run cannot complete.
    workload:
        Optional :class:`repro.workloads.Workload` (or spec string).
        The capacity profile scales the per-bin cap (total capacity
        must still cover ``m``) and ball weights feed the weighted-load
        statistics.  The contact rule is deterministic, so a choice
        distribution is structurally inapplicable (recorded in
        ``extra["workload"]``).  The ``n``-round completion argument
        survives heterogeneous caps: a ball rejected everywhere would
        imply every bin full, i.e. total capacity ``>= m`` balls placed
        while one remains.
    """
    m, n = ensure_m_n(m, n)
    cap = threshold if threshold is not None else math.ceil(m / n)
    factory = RngFactory(seed)
    wl = bind_workload(workload, m, n, factory)
    caps = wl.capacities(cap)
    total_capacity = int(caps.sum()) if isinstance(caps, np.ndarray) else cap * n
    if total_capacity < m:
        raise ValueError(
            f"threshold {cap} gives total capacity {total_capacity} < m={m}"
        )
    accept_rng = factory.stream("trivial", "accept")

    state = RoundState(m, n, weights=wl.weights)
    while state.active_count > 0:
        if state.rounds >= n:  # impossible by the monotonicity argument
            raise RuntimeError(
                "trivial algorithm exceeded n rounds; invariant violated"
            )
        # Protocol policy: ball b deterministically visits bin (b + r)
        # mod n; bins cap at the fixed threshold (workload-scaled).
        targets = (state.active + state.rounds) % n
        batch = state.sample_contacts(targets=targets)
        decision = state.group_and_accept(batch, caps - state.loads, accept_rng)
        state.commit_and_revoke(batch, decision, threshold=cap)

    extra: dict = {"threshold": cap}
    workload_record = wl.extra_record(
        state.weighted_loads,
        inapplicable=(("choice",) if wl.pvals is not None else ()),
    )
    if workload_record is not None:
        extra["workload"] = workload_record

    return AllocationResult(
        algorithm="trivial",
        m=m,
        n=n,
        loads=state.loads,
        rounds=state.rounds,
        metrics=state.metrics,
        total_messages=state.total_messages,
        seed_entropy=factory.root_entropy,
        extra=extra,
    )


@register_replicator("trivial", equivalent_mode=None)
def replicate_trivial(
    m: int,
    n: int,
    *,
    trials: int,
    seed_seqs,
    threshold: Optional[int] = None,
    workload=None,
) -> list[AllocationResult]:
    """Run ``trials`` seeded deterministic allocations in lock-step.

    The contact rule is per-ball and deterministic, so trials batch in
    a *composite bin space*: round ``r`` concatenates every live
    trial's requests, offsets trial ``t``'s targets by ``t * n``, draws
    each trial's accept priorities from its own stream (in trial
    order), and resolves them all in one
    :func:`~repro.fastpath.sampling.grouped_accept_with_priorities`
    sort.  Trial ``t`` is bitwise-identical to ``run_trivial(m, n,
    seed=seed_seqs[t], ...)``.  Trials are processed in chunks that cap
    the flat array at ~2M elements, so memory stays bounded for large
    ``m * trials``.
    """
    m, n = ensure_m_n(m, n)
    if len(seed_seqs) != trials:
        raise ValueError(f"need {trials} seed sequences, got {len(seed_seqs)}")
    cap = threshold if threshold is not None else math.ceil(m / n)
    chunk = max(1, _CHUNK_TARGET_ELEMENTS // max(m, 1))
    results: list[AllocationResult] = []
    for lo in range(0, trials, chunk):
        results.extend(
            _replicate_trivial_chunk(
                m, n, seed_seqs[lo : lo + chunk], cap, workload
            )
        )
    return results


def _replicate_trivial_chunk(
    m: int, n: int, seed_seqs, cap: int, workload
) -> list[AllocationResult]:
    count = len(seed_seqs)
    factories = [RngFactory(s) for s in seed_seqs]
    wls = [bind_workload(workload, m, n, f) for f in factories]
    caps = wls[0].capacities(cap)
    total_capacity = (
        int(caps.sum()) if isinstance(caps, np.ndarray) else cap * n
    )
    if total_capacity < m:
        raise ValueError(
            f"threshold {cap} gives total capacity {total_capacity} < m={m}"
        )
    accept_rngs = [f.stream("trivial", "accept") for f in factories]
    caps_row = (
        caps.astype(np.int64)
        if isinstance(caps, np.ndarray)
        else np.full(n, cap, dtype=np.int64)
    )

    active = [np.arange(m, dtype=np.int64) for _ in range(count)]
    loads = np.zeros((count, n), dtype=np.int64)
    weighted = any(w.weights is not None for w in wls)
    weighted_loads = (
        np.zeros((count, n), dtype=np.float64) if weighted else None
    )
    messages = np.zeros(count, dtype=np.int64)
    rounds = np.zeros(count, dtype=np.int64)
    metrics = [RunMetrics(m, n) for _ in range(count)]

    r = 0
    while True:
        live = [t for t in range(count) if active[t].size]
        if not live:
            break
        if r >= n:  # impossible by the monotonicity argument
            raise RuntimeError(
                "trivial algorithm exceeded n rounds; invariant violated"
            )
        # Composite batch: trial t's deterministic targets, offset into
        # block t of the composite bin space; accept priorities drawn
        # per trial in trial order (each from its own stream, exactly
        # the draw grouped_accept would have made for that trial alone).
        targets = [(active[t] + r) % n for t in live]
        prios = [accept_rngs[t].random(active[t].size) for t in live]
        offsets = np.cumsum([0] + [tg.size for tg in targets])
        composite = np.concatenate(
            [tg + i * n for i, tg in enumerate(targets)]
        )
        capacity = np.maximum(
            caps_row[None, :] - loads[live], 0
        ).ravel()
        mask = grouped_accept_with_priorities(
            composite, capacity, np.concatenate(prios)
        )
        intake = np.bincount(
            composite[mask], minlength=len(live) * n
        ).reshape(len(live), n)
        loads[live] += intake
        for i, t in enumerate(live):
            acc = mask[offsets[i] : offsets[i + 1]]
            commits = int(acc.sum())
            balls = active[t]
            if weighted_loads is not None and commits:
                np.add.at(
                    weighted_loads[t],
                    targets[i][acc],
                    wls[t].weights[balls[acc]],
                )
            u = balls.size
            messages[t] += u + commits
            metrics[t].add_round(
                RoundMetrics(
                    round_no=r,
                    unallocated_start=u,
                    requests_sent=u,
                    accepts_sent=commits,
                    rejects_sent=0,
                    commits=commits,
                    unallocated_end=u - commits,
                    max_load=int(loads[t].max(initial=0)),
                    threshold=float(cap),
                )
            )
            active[t] = balls[~acc]
            rounds[t] = r + 1
        r += 1

    results = []
    for t in range(count):
        extra: dict = {"threshold": cap}
        workload_record = wls[t].extra_record(
            weighted_loads[t] if weighted_loads is not None else None,
            inapplicable=(("choice",) if wls[t].pvals is not None else ()),
        )
        if workload_record is not None:
            extra["workload"] = workload_record
        results.append(
            AllocationResult(
                algorithm="trivial",
                m=m,
                n=n,
                loads=loads[t],
                rounds=int(rounds[t]),
                metrics=metrics[t],
                total_messages=int(messages[t]),
                seed_entropy=factories[t].root_entropy,
                extra=extra,
            )
        )
    return results
