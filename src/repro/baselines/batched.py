"""Batched multiple-choice allocation in the spirit of [BCE+12].

Berenbrink, Czumaj, Englert, Friedetzky and Nagel study the
*semi-parallel* setting: balls arrive in **batches** of size ``b``; all
balls of a batch run the d-choice rule simultaneously against the load
vector as of the **end of the previous batch** (stale information — no
coordination inside a batch).  One communication round per batch.

This interpolates between the sequential greedy[d] (``b = 1``) and the
fully parallel one-shot d-choice (``b = m``), and is the closest prior
work to a parallel heavy-load algorithm; experiment T1 includes it to
show the gap-vs-rounds trade-off the paper's algorithm escapes.

Vectorization: each batch is one gather (stale loads), one row-argmin
with uniform tie-breaking, and one ``bincount`` update — no per-ball
Python work.
"""

from __future__ import annotations

import numpy as np

from repro.api.spec import register_allocator
from repro.result import AllocationResult
from repro.simulation.metrics import RoundMetrics, RunMetrics
from repro.utils.seeding import RngFactory
from repro.utils.validation import check_positive_int, ensure_m_n

__all__ = ["run_batched_dchoice"]


@register_allocator(
    "batched",
    summary="batched d-choice on stale loads",
    paper_ref="baseline [BCE+12]",
    aliases=("batched_dchoice",),
    supports_multicontact=True,
)
def run_batched_dchoice(
    m: int,
    n: int,
    d: int = 2,
    *,
    batch_size: int | None = None,
    seed=None,
) -> AllocationResult:
    """Batched d-choice: batches of ``batch_size`` balls use stale loads.

    Parameters
    ----------
    m, n:
        Instance size.
    d:
        Choices per ball.
    batch_size:
        Balls per batch (default ``n``, the canonical [BCE+12] setting).
    seed:
        Reproducibility seed.
    """
    m, n = ensure_m_n(m, n)
    d = check_positive_int(d, "d")
    b = check_positive_int(batch_size if batch_size is not None else n, "batch_size")
    factory = RngFactory(seed)
    rng = factory.stream("batched", d)

    loads = np.zeros(n, dtype=np.int64)
    metrics = RunMetrics(m, n)
    total_messages = 0
    round_no = 0

    for start in range(0, m, b):
        count = min(b, m - start)
        choices = rng.integers(0, n, size=(count, d), dtype=np.int64)
        stale = loads[choices].astype(np.float64)
        # Uniform tie-breaking among minimum stale loads via random
        # jitter strictly smaller than 1 (loads are integers).
        jitter = rng.random(size=(count, d))
        pick = np.argmin(stale + jitter * 0.5, axis=1)
        targets = choices[np.arange(count), pick]
        loads += np.bincount(targets, minlength=n)
        total_messages += count * d + count
        metrics.add_round(
            RoundMetrics(
                round_no=round_no,
                unallocated_start=m - start,
                requests_sent=count * d,
                accepts_sent=count,
                rejects_sent=0,
                commits=count,
                unallocated_end=m - start - count,
                max_load=int(loads.max(initial=0)),
            )
        )
        round_no += 1

    return AllocationResult(
        algorithm=f"batched-dchoice[{d},b={b}]",
        m=m,
        n=n,
        loads=loads,
        rounds=round_no,
        metrics=metrics,
        total_messages=total_messages,
        seed_entropy=factory.root_entropy,
        extra={"batch_size": b, "d": d},
    )
