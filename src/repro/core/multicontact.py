"""Degree-d symmetric threshold algorithm — probing the open problem.

The paper's conclusion asks: *"can we provide a faster symmetric
algorithm?"* — and Theorem 2 answers negatively for the uniform-contact
threshold family, even with ``d = O(1)`` contacts per round.  This
module makes the question executable: ``run_heavy_multicontact`` runs
the paper's schedule with each unallocated ball contacting ``d``
uniformly random bins per round (the degree-``d`` member of the
Section 4 family, executed phase-per-round via the shared
``priority_commit`` round kernel of
:mod:`repro.fastpath.roundstate` — the same kernel that powers the
Lemma 2/3 simulations in :mod:`repro.lowerbound.simulate_degree`).

Expected outcome (experiment A3): extra contacts do **not** reduce the
round count below ``Theta(log log(m/n))`` — they only shave lower-order
terms while multiplying message cost by ``d``, exactly the trade-off
the lower bound predicts.  Under tight thresholds the extra contacts
can even *hurt* (accepts consumed by multi-accepted balls), the
quantitative form of the paper's remark that collecting requests "is
not a good strategy for algorithms".
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.api.spec import register_allocator
from repro.core.thresholds import PaperSchedule, ThresholdSchedule
from repro.fastpath.roundstate import RoundState
from repro.light.virtual import run_light_on_virtual_bins
from repro.result import AllocationResult
from repro.utils.seeding import RngFactory
from repro.utils.validation import check_positive_int, ensure_m_n
from repro.workloads import bind_workload

__all__ = ["run_heavy_multicontact"]


@register_allocator(
    "multicontact",
    summary="degree-d threshold algorithm on the paper's schedule",
    paper_ref="extension (experiment A3)",
    aliases=("heavy_multicontact",),
    supports_multicontact=True,
    kernel_backed=True,
    workload_capable=True,
)
def run_heavy_multicontact(
    m: int,
    n: int,
    d: int = 2,
    *,
    seed=None,
    schedule: Optional[ThresholdSchedule] = None,
    stop_factor: float = 2.0,
    handoff: bool = True,
    max_rounds: int = 1024,
    workload=None,
) -> AllocationResult:
    """Run the degree-``d`` threshold algorithm on the paper's schedule.

    Per round: every unallocated ball contacts ``d`` uniform bins; each
    bin accepts up to ``T_i - load`` requests (smallest tie-break marks,
    i.e. a uniformized adversarial port order); balls with several
    accepts commit to one and the rest are revoked at round end.

    ``d = 1`` coincides in distribution with
    :func:`repro.core.heavy.run_heavy`'s phase 1.

    ``workload`` (optional :class:`repro.workloads.Workload` or spec
    string) skews the per-round contact draws, scales the per-bin
    thresholds by the capacity profile, and tracks weighted loads; the
    uniform default is bitwise-identical to the historical run.

    Returns
    -------
    AllocationResult
        ``extra`` carries ``d``, ``phase1_rounds``, ``phase1_remaining``
        and ``phase2_rounds``.
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    d = check_positive_int(d, "d")
    factory = RngFactory(seed)
    wl = bind_workload(workload, m, n, factory)
    rng = factory.stream("multicontact", d)
    sched = schedule or PaperSchedule(m, n, stop_factor=stop_factor)
    planned = sched.phase1_rounds()
    rounds_budget = planned if planned is not None else max_rounds

    state = RoundState(m, n, weights=wl.weights)

    while state.rounds < rounds_budget and state.active_count > 0:
        threshold = sched.threshold(state.rounds)
        batch = state.sample_contacts(rng, d=d, pvals=wl.pvals)
        # Messages: u*d requests; accepts are bounded by capacity opened
        # this round — count commits plus revoked accepts conservatively
        # as <= u*d responses; we track requests + one accept + one
        # commit per allocated ball (the dominant terms): accept_cost=2.
        decision = state.group_and_accept(
            batch,
            np.maximum(wl.capacities(threshold) - state.loads, 0),
            rng,
            policy="priority_commit",
        )
        state.commit_and_revoke(
            batch, decision, threshold=threshold, accept_cost=2
        )

    loads = state.loads
    metrics = state.metrics
    total_messages = state.total_messages
    phase1_rounds = state.rounds
    phase1_remaining = state.active_count
    extra = {
        "d": d,
        "phase1_rounds": phase1_rounds,
        "phase1_remaining": phase1_remaining,
        "phase2_rounds": 0,
    }
    unallocated = phase1_remaining
    rounds = phase1_rounds
    weighted_loads = state.weighted_loads

    if handoff and unallocated > 0:
        real_loads, light, vmap = run_light_on_virtual_bins(
            unallocated, n, seed=factory.stream("light")
        )
        loads += real_loads
        if weighted_loads is not None:
            np.add.at(
                weighted_loads,
                vmap.to_real(light.assignment),
                wl.weights[state.active],
            )
        rounds += light.rounds
        total_messages += light.total_messages
        extra["phase2_rounds"] = light.rounds
        extra["virtual_factor"] = vmap.factor
        unallocated = 0

    workload_record = wl.extra_record(weighted_loads)
    if workload_record is not None:
        extra["workload"] = workload_record

    return AllocationResult(
        algorithm=f"heavy-multicontact[{d}]",
        m=m,
        n=n,
        loads=loads,
        rounds=rounds,
        metrics=metrics,
        total_messages=total_messages,
        complete=unallocated == 0,
        unallocated=unallocated,
        seed_entropy=factory.root_entropy,
        extra=extra,
    )
