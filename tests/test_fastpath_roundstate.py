"""Unit tests of the shared RoundState round-kernel layer.

The protocols' own suites (heavy, asymmetric, light, baselines) cover
the kernels end-to-end; these tests pin the kernel contracts directly:
granularity-specific state handling, the three accept policies, commit
resolution with and without fan-out, message/metrics accounting knobs,
and the ``grouped_accept`` edge cases surfaced by the refactor
(zero-capacity bins, empty request rounds).
"""

import numpy as np
import pytest

from repro.fastpath.roundstate import (
    AcceptDecision,
    ContactBatch,
    RoundState,
    priority_commit_accept,
)
from repro.fastpath.sampling import grouped_accept


@pytest.fixture
def rng():
    return np.random.default_rng(7)


class TestGroupedAcceptEdgeCases:
    """Regression tests for satellite fix: edge cases in grouped_accept."""

    def test_empty_request_round(self, rng):
        mask = grouped_accept(np.zeros(0, dtype=np.int64), np.full(8, 3), rng)
        assert mask.shape == (0,)
        assert mask.dtype == bool

    def test_empty_requests_consume_no_rng(self):
        rng = np.random.default_rng(0)
        grouped_accept(np.zeros(0, dtype=np.int64), np.full(8, 3), rng)
        after = rng.random()
        assert after == np.random.default_rng(0).random()

    def test_all_zero_capacity_rejects_everything(self, rng):
        choices = rng.integers(0, 8, size=1000)
        mask = grouped_accept(choices, np.zeros(8, dtype=np.int64), rng)
        assert not mask.any()

    def test_all_zero_capacity_skips_priority_draws(self):
        """The saturated-round fast path must not consume the stream
        (the selection it skips is vacuous — nothing can be accepted)."""
        rng = np.random.default_rng(3)
        choices = np.random.default_rng(1).integers(0, 8, size=1000)
        grouped_accept(choices, np.zeros(8, dtype=np.int64), rng)
        assert rng.random() == np.random.default_rng(3).random()

    def test_negative_capacity_treated_as_zero(self, rng):
        choices = np.array([0, 0, 1, 1, 1])
        mask = grouped_accept(choices, np.array([-5, 2]), rng)
        assert not mask[:2].any()
        assert mask[2:].sum() == 2

    def test_mixed_zero_and_positive_capacity(self, rng):
        choices = np.array([0, 0, 0, 1, 1, 1])
        mask = grouped_accept(choices, np.array([0, 2]), rng)
        assert not mask[:3].any()
        assert mask[3:].sum() == 2

    def test_scalar_capacity_single_bin(self, rng):
        """0-d capacity arrays are promoted instead of crashing."""
        choices = np.zeros(5, dtype=np.int64)
        mask = grouped_accept(choices, np.asarray(3), rng)
        assert mask.sum() == 3

    def test_capacity_exceeding_requests_accepts_all(self, rng):
        choices = rng.integers(0, 4, size=50)
        mask = grouped_accept(choices, np.full(4, 1000), rng)
        assert mask.all()

    def test_non_integer_choices_rejected(self, rng):
        with pytest.raises(ValueError, match="integer"):
            grouped_accept(np.array([0.5, 1.5]), np.full(2, 1), rng)

    def test_out_of_range_choices_rejected(self, rng):
        with pytest.raises(ValueError, match="out of range"):
            grouped_accept(np.array([0, 5]), np.full(2, 1), rng)


class TestRoundStateConstruction:
    def test_perball_state(self):
        state = RoundState(10, 4)
        assert state.active_count == 10
        assert np.array_equal(state.active, np.arange(10))
        assert state.counter is None and state.assignment is None

    def test_aggregate_state(self):
        state = RoundState(10**12, 4, granularity="aggregate")
        assert state.active_count == 10**12
        assert state.active is None

    def test_aggregate_rejects_per_ball_tracking(self):
        with pytest.raises(ValueError, match="per-ball accounting"):
            RoundState(10, 4, granularity="aggregate", track_messages=True)

    def test_unknown_granularity(self):
        with pytest.raises(ValueError, match="granularity"):
            RoundState(10, 4, granularity="bogus")


class TestSampleContacts:
    def test_uniform_d1(self, rng):
        state = RoundState(100, 8)
        batch = state.sample_contacts(rng)
        assert batch.choices.size == 100
        assert batch.requester_pos is None
        assert batch.requests_sent == 100
        assert np.array_equal(batch.positions(), np.arange(100))

    def test_fanout_d3(self, rng):
        state = RoundState(10, 8)
        batch = state.sample_contacts(rng, d=3)
        assert batch.choices.size == 30
        assert np.array_equal(batch.requester_pos, np.repeat(np.arange(10), 3))

    def test_explicit_targets_2d_flattened(self):
        state = RoundState(4, 8)
        targets = np.arange(8).reshape(4, 2)
        batch = state.sample_contacts(targets=targets, d=2)
        assert np.array_equal(batch.choices, np.arange(8))

    def test_targets_size_mismatch(self):
        state = RoundState(4, 8)
        with pytest.raises(ValueError, match="expected active_count"):
            state.sample_contacts(targets=np.arange(3))

    def test_aggregate_counts_sum_to_active(self, rng):
        state = RoundState(10**9, 64, granularity="aggregate")
        batch = state.sample_contacts(rng)
        assert batch.counts.sum() == 10**9

    def test_aggregate_pvals(self, rng):
        state = RoundState(10**6, 64, granularity="aggregate")
        pvals = np.full(4, 0.25)
        batch = state.sample_contacts(rng, n_targets=4, pvals=pvals)
        assert batch.counts.size == 4
        assert batch.counts.sum() == 10**6

    def test_aggregate_rejects_targets(self, rng):
        state = RoundState(100, 8, granularity="aggregate")
        with pytest.raises(ValueError, match="pvals"):
            state.sample_contacts(rng, targets=np.zeros(100, dtype=np.int64))


class TestAcceptPolicies:
    def test_unbounded_capacity_accepts_all(self, rng):
        state = RoundState(50, 8)
        batch = state.sample_contacts(rng)
        decision = state.group_and_accept(batch, None)
        assert decision.accepted.all()

    def test_uniform_respects_capacity(self, rng):
        state = RoundState(1000, 4)
        batch = state.sample_contacts(rng)
        decision = state.group_and_accept(batch, np.full(4, 10), rng)
        per_bin = np.bincount(batch.choices[decision.accepted], minlength=4)
        assert (per_bin <= 10).all()

    def test_all_or_nothing(self, rng):
        state = RoundState(6, 3)
        batch = state.sample_contacts(
            targets=np.array([0, 0, 0, 1, 1, 2], dtype=np.int64)
        )
        decision = state.group_and_accept(
            batch, np.array([2, 2, 2]), policy="all_or_nothing"
        )
        # bin 0 got 3 > 2 requests: all rejected; bins 1 and 2 fit.
        assert not decision.accepted[:3].any()
        assert decision.accepted[3:].all()

    def test_all_or_nothing_aggregate_matches_rule(self, rng):
        state = RoundState(10**6, 16, granularity="aggregate")
        batch = state.sample_contacts(rng)
        cap = np.full(16, 70_000)
        decision = state.group_and_accept(batch, cap, policy="all_or_nothing")
        expect = np.where(batch.counts <= cap, batch.counts, 0)
        assert np.array_equal(decision.accepted_per_bin, expect)

    def test_priority_commit_one_commit_per_ball(self, rng):
        state = RoundState(500, 16)
        batch = state.sample_contacts(rng, d=3)
        decision = state.group_and_accept(
            batch, np.full(16, 20), rng, policy="priority_commit"
        )
        assert decision.resolved
        commits = decision.committed_pos.sum()
        assert decision.accepts_sent == commits
        assert (decision.committed_bin[decision.committed_pos] >= 0).all()
        per_bin = np.bincount(
            decision.committed_bin[decision.committed_pos], minlength=16
        )
        assert (per_bin <= 20).all()

    def test_priority_commit_kernel_capacity_consumed_by_commits(self):
        # 2 balls x 2 contacts, all to bin 0 with capacity 1: exactly
        # one ball commits (revoked accepts return capacity).
        choices = np.zeros(4, dtype=np.int64)
        marks = np.array([0.1, 0.2, 0.3, 0.4])
        pos = np.repeat(np.arange(2), 2)
        mask, bins = priority_commit_accept(
            choices, marks, pos, 2, np.array([1])
        )
        assert mask.sum() == 1 and bins[mask][0] == 0

    def test_delivered_mask_limits_acceptance(self, rng):
        state = RoundState(100, 4)
        batch = state.sample_contacts(rng)
        delivered = np.zeros(100, dtype=bool)
        delivered[:10] = True
        decision = state.group_and_accept(
            batch, np.full(4, 100), rng, delivered=delivered
        )
        assert decision.accepted[:10].all()
        assert not decision.accepted[10:].any()

    def test_unknown_policy(self, rng):
        state = RoundState(10, 4)
        batch = state.sample_contacts(rng)
        with pytest.raises(ValueError, match="unknown accept policy"):
            state.group_and_accept(batch, np.full(4, 1), rng, policy="bogus")


class TestCommitAndRevoke:
    def test_d1_commit_updates_everything(self, rng):
        state = RoundState(100, 4)
        batch = state.sample_contacts(rng)
        decision = state.group_and_accept(batch, np.full(4, 10), rng)
        out = state.commit_and_revoke(batch, decision, threshold=10)
        assert out.commits == decision.accepts_sent
        assert state.loads.sum() == out.commits
        assert state.active_count == 100 - out.commits
        assert state.rounds == 1
        assert state.total_messages == 100 + out.commits
        row = state.metrics.rounds[0]
        assert row.requests_sent == 100
        assert row.commits == out.commits
        assert row.threshold == 10.0

    def test_fanout_first_accept_resolution(self, rng):
        state = RoundState(200, 8, track_assignment=True)
        batch = state.sample_contacts(rng, d=4)
        decision = state.group_and_accept(batch, np.full(8, 100), rng)
        out = state.commit_and_revoke(
            batch, decision, commit_notifications=True
        )
        # every ball had 4 chances at ample capacity: all commit
        assert out.commits == 200
        assert (state.assignment >= 0).all()
        # commit notices: one per accept held by a committing ball
        assert out.commit_messages == decision.accepts_sent
        assert state.total_messages == 800 + decision.accepts_sent * 2

    def test_ball_conservation_many_rounds(self, rng):
        state = RoundState(5000, 16)
        while state.active_count and state.rounds < 50:
            batch = state.sample_contacts(rng)
            decision = state.group_and_accept(
                batch, np.full(16, 400) - state.loads, rng
            )
            state.commit_and_revoke(batch, decision)
        assert state.loads.sum() + state.active_count == 5000

    def test_target_bins_redirection(self, rng):
        state = RoundState(10, 4)
        batch = state.sample_contacts(
            targets=np.zeros(10, dtype=np.int64), n_targets=2
        )
        decision = state.group_and_accept(batch, np.array([6, 6]), rng)
        member_bins = np.full(decision.accepts_sent, 3, dtype=np.int64)
        state.commit_and_revoke(batch, decision, target_bins=member_bins)
        assert state.loads[3] == decision.accepts_sent
        assert state.loads[:3].sum() == 0

    def test_aggregate_commit(self, rng):
        state = RoundState(10**8, 32, granularity="aggregate")
        batch = state.sample_contacts(rng)
        decision = state.group_and_accept(batch, np.full(32, 10**6))
        out = state.commit_and_revoke(batch, decision)
        assert state.loads.sum() == out.commits == 32 * 10**6
        assert state.active_count == 10**8 - out.commits

    def test_message_cost_knobs(self, rng):
        # accept_cost=0 (one-shot): requests only.
        state = RoundState(50, 4, track_messages=True)
        batch = state.sample_contacts(rng)
        decision = state.group_and_accept(batch, None)
        state.commit_and_revoke(
            batch, decision, accept_cost=0, record_accepts=False
        )
        assert state.total_messages == 50
        assert state.counter.total == 50
        assert state.counter.bin_sent.sum() == 0

    def test_count_commits_cost(self, rng):
        state = RoundState(100, 8)
        batch = state.sample_contacts(rng, d=2)
        decision = state.group_and_accept(batch, np.full(8, 3), rng)
        out = state.commit_and_revoke(batch, decision, count_commits=True)
        assert state.total_messages == 200 + decision.accepts_sent + out.commits

    def test_counter_records_requests_and_accepts(self, rng):
        state = RoundState(100, 4, track_messages=True)
        batch = state.sample_contacts(rng)
        decision = state.group_and_accept(batch, np.full(4, 10), rng)
        out = state.commit_and_revoke(batch, decision)
        assert state.counter.ball_sent.sum() == 100
        assert state.counter.ball_received.sum() == out.commits
        assert state.counter.bin_received.sum() == 100

    def test_empty_round_is_recorded(self, rng):
        """Empty request rounds (no active balls, stop_when_empty off)
        flow through all three kernels without error."""
        state = RoundState(0, 4)
        batch = state.sample_contacts(rng)
        decision = state.group_and_accept(batch, np.full(4, 2), rng)
        out = state.commit_and_revoke(batch, decision)
        assert out.commits == 0 and out.requests_sent == 0
        assert state.rounds == 1


class TestInitialLoads:
    """The residual-occupancy axis backing the dynamic subsystem."""

    def test_loads_start_at_residual(self):
        initial = np.array([3, 0, 7, 1], dtype=np.int64)
        state = RoundState(10, 4, initial_loads=initial)
        assert np.array_equal(state.loads, initial)
        assert np.array_equal(state.initial_loads, initial)
        assert state.active_count == 10

    def test_initial_loads_copied(self):
        initial = np.array([1, 2], dtype=np.int64)
        state = RoundState(5, 2, initial_loads=initial)
        initial[0] = 99
        assert state.loads[0] == 1
        assert state.initial_loads[0] == 1

    def test_placed_loads_is_delta(self, rng):
        initial = np.array([5, 5, 5, 5], dtype=np.int64)
        state = RoundState(20, 4, initial_loads=initial)
        batch = state.sample_contacts(rng)
        decision = state.group_and_accept(batch, np.full(4, 3), rng)
        out = state.commit_and_revoke(batch, decision)
        assert state.placed_loads.sum() == out.commits
        assert np.array_equal(state.loads, initial + state.placed_loads)
        assert state.placed_loads.min() >= 0

    def test_placed_loads_alias_without_initial(self):
        state = RoundState(5, 2)
        assert state.placed_loads is state.loads

    def test_capacity_rule_respects_residents(self, rng):
        # A bin already at the cap never accepts.
        initial = np.array([4, 0], dtype=np.int64)
        state = RoundState(50, 2, initial_loads=initial)
        for _ in range(30):
            if state.active_count == 0:
                break
            cap = np.maximum(4 - state.loads, 0)
            batch = state.sample_contacts(rng)
            decision = state.group_and_accept(batch, cap, rng)
            state.commit_and_revoke(batch, decision)
        assert state.loads[0] == 4  # never exceeded its full start
        assert state.loads[1] <= 4

    def test_validation_shape(self):
        with pytest.raises(ValueError, match="shape"):
            RoundState(5, 4, initial_loads=np.zeros(3, dtype=np.int64))

    def test_validation_negative(self):
        with pytest.raises(ValueError, match="non-negative"):
            RoundState(5, 2, initial_loads=np.array([-1, 0]))

    def test_validation_dtype(self):
        with pytest.raises(ValueError, match="integer"):
            RoundState(5, 2, initial_loads=np.array([0.5, 1.0]))

    def test_trial_batched_broadcast(self):
        initial = np.array([2, 4, 6], dtype=np.int64)
        state = RoundState(
            9, 3, granularity="aggregate", trials=4, initial_loads=initial
        )
        assert state.loads.shape == (4, 3)
        for t in range(4):
            assert np.array_equal(state.loads[t], initial)

    def test_trial_batched_per_trial_matrix(self):
        initial = np.arange(6, dtype=np.int64).reshape(2, 3)
        state = RoundState(
            9, 3, granularity="aggregate", trials=2, initial_loads=initial
        )
        assert np.array_equal(state.loads, initial)
        with pytest.raises(ValueError, match="shape"):
            RoundState(
                9,
                3,
                granularity="aggregate",
                trials=2,
                initial_loads=np.zeros((3, 3), dtype=np.int64),
            )

    def test_trial_batched_rows_advance_from_residual(self):
        initial = np.array([[1, 0], [0, 5]], dtype=np.int64)
        state = RoundState(
            4, 2, granularity="aggregate", trials=2, initial_loads=initial
        )
        rngs = [np.random.default_rng(s) for s in (0, 1)]
        cap = np.full(2, 100, dtype=np.int64)
        while state.any_active and state.rounds < 10:
            batch = state.sample_contacts(rngs)
            decision = state.group_and_accept(batch, cap - state.loads)
            state.commit_and_revoke(batch, decision)
        assert np.array_equal(
            state.loads.sum(axis=1), initial.sum(axis=1) + 4
        )
