"""The common result type returned by every allocation algorithm.

All entry points — the paper's algorithms, the baselines, engine-mode and
vectorized runs alike — return an :class:`AllocationResult` so experiments
and tests can treat them uniformly.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field
from typing import Any, Optional

import numpy as np

from repro.analysis.stats import RunStatistics, summarize_loads
from repro.simulation.metrics import MessageCounter, RoundMetrics, RunMetrics

__all__ = ["AllocationResult"]


def _json_safe(value: Any) -> Any:
    """Recursively convert numpy scalars/arrays and tuples to JSON types.

    Anything without a JSON analogue falls back to ``repr`` — export is
    lossy only for exotic ``extra`` payloads (e.g. schedule objects),
    never for the numeric record.
    """
    if isinstance(value, (bool, np.bool_)):
        return bool(value)
    if isinstance(value, (int, np.integer)):
        return int(value)
    if isinstance(value, (float, np.floating)):
        return float(value)
    if value is None or isinstance(value, str):
        return value
    if isinstance(value, np.ndarray):
        return [_json_safe(v) for v in value.tolist()]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    if isinstance(value, (list, tuple, set, frozenset)):
        items = sorted(value) if isinstance(value, (set, frozenset)) else value
        return [_json_safe(v) for v in items]
    return repr(value)


@dataclass
class AllocationResult:
    """Outcome of allocating ``m`` balls into ``n`` bins.

    Attributes
    ----------
    algorithm:
        Human-readable algorithm identifier (e.g. ``"heavy"``,
        ``"single-choice"``).
    m, n:
        Instance size.
    loads:
        Final per-bin load vector; ``loads.sum() == m`` whenever
        ``complete`` is true.
    rounds:
        Number of synchronous rounds executed (0 for one-shot sequential
        baselines, which are *not* round-based; they report 0 and set
        ``sequential=True``).
    metrics:
        Per-round progress records (may be empty for sequential
        baselines).
    messages:
        Full message accounting, or ``None`` when the run used the
        aggregate fast path that does not track per-agent counts.
    total_messages:
        Total messages sent, tracked even by the aggregate path.
    complete:
        Whether every ball was allocated.  Algorithms that can leave
        balls unallocated under a round budget (e.g. a truncated
        fixed-threshold run) set this to False and report the leftover
        count in ``unallocated``.
    sequential:
        True for non-parallel baselines (greedy[d], single-choice);
        their "rounds" are not comparable to the parallel algorithms'.
    seed_entropy:
        Root entropy of the RNG, for exact reproduction.
    """

    algorithm: str
    m: int
    n: int
    loads: np.ndarray
    rounds: int
    metrics: Optional[RunMetrics] = None
    messages: Optional[MessageCounter] = None
    total_messages: int = 0
    complete: bool = True
    unallocated: int = 0
    sequential: bool = False
    seed_entropy: tuple[int, ...] = field(default_factory=tuple)
    extra: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.loads = np.asarray(self.loads, dtype=np.int64)
        if self.loads.ndim != 1 or self.loads.size != self.n:
            raise ValueError(
                f"loads must be a 1-D array of length n={self.n}, "
                f"got shape {self.loads.shape}"
            )
        allocated = int(self.loads.sum())
        expected = self.m - self.unallocated
        if allocated != expected:
            raise ValueError(
                f"loads sum to {allocated} but m - unallocated = {expected}"
            )
        if self.complete and self.unallocated:
            raise ValueError("complete runs cannot report unallocated balls")

    # -- derived quantities ----------------------------------------------

    @property
    def max_load(self) -> int:
        """The paper's objective: the maximum bin load."""
        return int(self.loads.max())

    @property
    def gap(self) -> float:
        """Max load minus the perfect average ``m/n``."""
        return self.max_load - self.m / self.n

    @property
    def average_load(self) -> float:
        return self.m / self.n

    def statistics(self) -> RunStatistics:
        """Full load-distribution summary (requires a complete run)."""
        if not self.complete:
            raise ValueError(
                "statistics() requires a complete allocation; "
                f"{self.unallocated} balls unallocated"
            )
        return summarize_loads(self.loads, self.m)

    @property
    def unallocated_history(self) -> list[int]:
        """``m_i`` per round, when per-round metrics were recorded."""
        if self.metrics is None:
            return []
        return self.metrics.unallocated_history

    # -- persistence ------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe dict capturing the full result.

        Numpy arrays become lists, tuples become lists, and numpy
        scalars become native ints/floats, so ``json.dumps`` works on
        the output directly.  Round-trips through :meth:`from_dict`:
        loads, per-round metrics, and message counters are restored
        exactly (``extra`` values survive as their JSON projections).
        """
        metrics = None
        if self.metrics is not None:
            metrics = {
                "m": int(self.metrics.m),
                "n": int(self.metrics.n),
                "rounds": [_json_safe(asdict(r)) for r in self.metrics.rounds],
            }
        messages = None
        if self.messages is not None:
            messages = {
                "m": int(self.messages.m),
                "n": int(self.messages.n),
                "ball_sent": self.messages.ball_sent.tolist(),
                "ball_received": self.messages.ball_received.tolist(),
                "bin_sent": self.messages.bin_sent.tolist(),
                "bin_received": self.messages.bin_received.tolist(),
                "total": int(self.messages.total),
            }
        return {
            "schema": 1,
            "algorithm": self.algorithm,
            "m": int(self.m),
            "n": int(self.n),
            "loads": self.loads.tolist(),
            "rounds": int(self.rounds),
            "metrics": metrics,
            "messages": messages,
            "total_messages": int(self.total_messages),
            "complete": bool(self.complete),
            "unallocated": int(self.unallocated),
            "sequential": bool(self.sequential),
            "seed_entropy": [int(e) for e in self.seed_entropy],
            "extra": _json_safe(self.extra),
        }

    @classmethod
    def from_dict(cls, data: dict) -> "AllocationResult":
        """Rebuild a result from :meth:`to_dict` output (or parsed JSON)."""
        schema = data.get("schema", 1)
        if schema != 1:
            raise ValueError(f"unsupported AllocationResult schema {schema!r}")
        metrics = None
        if data.get("metrics") is not None:
            m_data = data["metrics"]
            metrics = RunMetrics(m=int(m_data["m"]), n=int(m_data["n"]))
            for row in m_data["rounds"]:
                metrics.add_round(RoundMetrics(**row))
        messages = None
        if data.get("messages") is not None:
            c_data = data["messages"]
            messages = MessageCounter(int(c_data["m"]), int(c_data["n"]))
            messages.ball_sent = np.asarray(c_data["ball_sent"], dtype=np.int64)
            messages.ball_received = np.asarray(
                c_data["ball_received"], dtype=np.int64
            )
            messages.bin_sent = np.asarray(c_data["bin_sent"], dtype=np.int64)
            messages.bin_received = np.asarray(
                c_data["bin_received"], dtype=np.int64
            )
            messages.total = int(c_data["total"])
        return cls(
            algorithm=data["algorithm"],
            m=int(data["m"]),
            n=int(data["n"]),
            loads=np.asarray(data["loads"], dtype=np.int64),
            rounds=int(data["rounds"]),
            metrics=metrics,
            messages=messages,
            total_messages=int(data["total_messages"]),
            complete=bool(data["complete"]),
            unallocated=int(data["unallocated"]),
            sequential=bool(data["sequential"]),
            seed_entropy=tuple(int(e) for e in data.get("seed_entropy", ())),
            extra=dict(data.get("extra") or {}),
        )

    def describe(self) -> str:
        """Multi-line human-readable report."""
        lines = [
            f"algorithm     : {self.algorithm}",
            f"instance      : m={self.m}, n={self.n} (m/n={self.m / self.n:.4g})",
            f"max load      : {self.max_load} (gap {self.gap:+.3f})",
            f"rounds        : {self.rounds}"
            + (" (sequential)" if self.sequential else ""),
            f"messages      : {self.total_messages}",
            f"complete      : {self.complete}"
            + (f" ({self.unallocated} left)" if not self.complete else ""),
        ]
        if self.messages is not None:
            s = self.messages.summary()
            lines.append(
                "per-ball msgs : "
                f"mean {s['per_ball_mean']:.3f}, max {s['per_ball_max']:.0f}"
            )
            lines.append(
                "per-bin recv  : "
                f"mean {s['per_bin_received_mean']:.3f}, "
                f"max {s['per_bin_received_max']:.0f}"
            )
        return "\n".join(lines)

    def __str__(self) -> str:
        return (
            f"AllocationResult({self.algorithm}: m={self.m}, n={self.n}, "
            f"max_load={self.max_load}, gap={self.gap:+.3f}, "
            f"rounds={self.rounds})"
        )
