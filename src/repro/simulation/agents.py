"""Abstract ball and bin agents for the synchronous engine.

Concrete protocols subclass :class:`BallAgent` and :class:`BinAgent` and
implement the per-round hooks.  The hooks mirror the three steps of the
paper's model exactly; the engine enforces the information constraints
(a ball only ever sees the replies addressed to it, a bin only the
requests it received, identified by *port*, not by ball index).

Symmetry: the paper's symmetric algorithms require bins to be anonymous.
The engine supports this by having balls address bins through a
uniformly random private port permutation (one per ball) when
``EngineConfig.symmetric`` is set; protocol code then cannot distinguish
bins by index.  The asymmetric algorithm of Section 5 disables this and
addresses bins by global ID.
"""

from __future__ import annotations

import abc
from typing import TYPE_CHECKING, Optional, Sequence

import numpy as np

from repro.simulation.messages import Message, MessageKind

if TYPE_CHECKING:  # pragma: no cover
    from repro.simulation.engine import SyncEngine

__all__ = ["BallAgent", "BinAgent"]


class BallAgent(abc.ABC):
    """A ball in the synchronous model.

    Lifecycle: each round the engine calls :meth:`choose_requests` (step
    1) for unallocated balls, then delivers bin replies to
    :meth:`receive_replies` (step 3).  A ball commits by returning a bin
    index from :meth:`receive_replies`; afterwards it is *terminated* and
    receives no further callbacks.

    Attributes
    ----------
    index:
        Global ball index (used only by the engine for delivery; a
        symmetric protocol must not base decisions on it).
    rng:
        The ball's private random stream.
    committed_bin:
        The bin this ball is allocated to, or ``None``.
    """

    def __init__(self, index: int, rng: np.random.Generator) -> None:
        self.index = index
        self.rng = rng
        self.committed_bin: Optional[int] = None

    @property
    def allocated(self) -> bool:
        return self.committed_bin is not None

    @abc.abstractmethod
    def choose_requests(self, round_no: int, n_bins: int) -> Sequence[int]:
        """Return the bins to contact this round (step 1).

        The returned indices are *ball-local port numbers* when the
        engine runs in symmetric mode; the engine translates them to
        global bin indices through the ball's private permutation.
        """

    @abc.abstractmethod
    def receive_replies(
        self, round_no: int, replies: Sequence[Message]
    ) -> Optional[int]:
        """Handle bin replies (step 3); return a bin to commit to or None.

        ``replies`` contains every ACCEPT/REJECT addressed to this ball
        this round.  Returning a bin index (as used in the request, i.e.
        port-local in symmetric mode) commits the ball; the engine then
        emits the COMMIT message to the accepting bin on the ball's
        behalf and marks the ball terminated.
        """

    def on_terminate(self, round_no: int) -> None:
        """Optional hook invoked when the ball commits."""


class BinAgent(abc.ABC):
    """A bin in the synchronous model.

    Each round the engine passes all REQUESTs received this round to
    :meth:`respond` (step 2), which returns the subset (by position in
    the request list, i.e. by *port*) to ACCEPT.  The engine sends
    REJECTs for the rest if the protocol is configured with explicit
    rejects.  COMMIT messages arrive via :meth:`on_commit`.

    The bin's *load* is tracked by the engine as the number of commits
    received plus outstanding accepts, matching the paper's definition
    (``ℓ_b`` counts balls sent accept messages that have not revoked).
    """

    def __init__(self, index: int, rng: np.random.Generator) -> None:
        self.index = index
        self.rng = rng
        self.load = 0  # committed + outstanding accepted balls

    @abc.abstractmethod
    def respond(
        self, round_no: int, requests: Sequence[Message]
    ) -> Sequence[int]:
        """Select which requests to accept (step 2).

        Parameters
        ----------
        round_no:
            Current round.
        requests:
            The REQUEST messages received this round, in *port order*
            (the engine applies the adversarial port permutation before
            this call, so position carries no information about ball
            identity).

        Returns
        -------
        Sequence[int]
            Positions (indices into ``requests``) to accept.  Must not
            accept the same position twice; the engine validates.
        """

    def on_commit(self, round_no: int, message: Message) -> None:
        """A ball confirmed allocation (payload True) or revoked
        (payload False).  Default adjusts nothing — the engine maintains
        ``load``; override for protocols with bin-side bookkeeping."""

    def on_round_start(self, round_no: int) -> None:
        """Optional hook at the beginning of each round (e.g. to update
        thresholds from a global schedule)."""
