"""Micro-benchmarks of the vectorized kernels and algorithm hot paths.

These time the primitives the HPC guides direct us to optimize:
whole-array sampling, the grouped-accept lexsort kernel, the multinomial
aggregate round, the shared :class:`RoundState` round-step kernels, and
end-to-end algorithm runs at the two granularities.  They guard against
performance regressions (the per-round kernels are what caps the
feasible ``m``), and ``TestKernelVsEngine`` pins the headline claim:
the kernel backends beat the object-level agent engine by far more than
the required 5x at ``m = 10^6``.

Run ``python benchmarks/run_benchmarks.py`` for the pinned-seed JSON
trajectory (``BENCH_kernels.json``).
"""

from __future__ import annotations

import os
import time

import numpy as np
import pytest

from repro.baselines import run_single_choice
from repro.core import run_asymmetric, run_heavy
from repro.fastpath.roundstate import RoundState
from repro.fastpath.sampling import (
    grouped_accept,
    multinomial_occupancy,
    sample_uniform_choices,
)
from repro.light import run_light
from repro.telemetry import get_logger

_log = get_logger("benchmarks.kernels")


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestSamplingKernels:
    def test_uniform_choices_1m(self, benchmark, rng):
        out = benchmark(sample_uniform_choices, 1_000_000, 4096, rng)
        assert out.size == 1_000_000

    def test_multinomial_occupancy_1m_balls(self, benchmark, rng):
        out = benchmark(multinomial_occupancy, 1_000_000, 4096, rng)
        assert out.sum() == 1_000_000

    def test_multinomial_occupancy_1t_balls(self, benchmark, rng):
        """The aggregate path's selling point: 10^12 balls in O(n)."""
        out = benchmark(multinomial_occupancy, 10**12, 4096, rng)
        assert out.sum() == 10**12

    def test_grouped_accept_1m_requests(self, benchmark, rng):
        choices = rng.integers(0, 4096, size=1_000_000)
        capacity = np.full(4096, 200)
        mask = benchmark(grouped_accept, choices, capacity, rng)
        assert mask.sum() <= 4096 * 200


class TestRoundStateKernels:
    """The shared round-step kernels every protocol now drives."""

    def test_roundstate_perball_round_1m(self, benchmark, rng):
        def one_round():
            state = RoundState(1_000_000, 4096)
            batch = state.sample_contacts(rng)
            decision = state.group_and_accept(
                batch, np.full(4096, 300, dtype=np.int64), rng
            )
            state.commit_and_revoke(batch, decision)
            return state

        state = benchmark(one_round)
        assert state.rounds == 1
        assert state.loads.sum() + state.active_count == 1_000_000

    def test_roundstate_aggregate_round_1t(self, benchmark, rng):
        """One aggregate kernel round at 10^12 balls is O(n)."""

        def one_round():
            state = RoundState(10**12, 4096, granularity="aggregate")
            batch = state.sample_contacts(rng)
            decision = state.group_and_accept(
                batch, np.full(4096, 10**8, dtype=np.int64)
            )
            state.commit_and_revoke(batch, decision)
            return state

        state = benchmark(one_round)
        assert state.loads.sum() + state.active_count == 10**12

    def test_priority_commit_round_1m_d2(self, benchmark, rng):
        def one_round():
            state = RoundState(1_000_000, 4096)
            batch = state.sample_contacts(rng, d=2)
            decision = state.group_and_accept(
                batch,
                np.full(4096, 300, dtype=np.int64),
                rng,
                policy="priority_commit",
            )
            state.commit_and_revoke(batch, decision, accept_cost=2)
            return state

        state = benchmark(one_round)
        assert state.loads.sum() + state.active_count == 1_000_000


class TestKernelVsEngine:
    """ISSUE-2 acceptance: >= 5x over the agent engine at m = 10^6.

    The engine is O(m) Python objects per round; the kernels are
    whole-array numpy.  Measured ratios are ~10^3 (per-ball) and ~10^5
    (aggregate) — asserted with generous slack so the test pins the
    architecture claim, not machine noise.

    Opt-in (set ``RUN_ENGINE_BENCH=1``): the engine at m = 10^6 takes
    several minutes, which would ambush a plain
    ``pytest benchmarks/bench_kernels.py`` run.  The same 5x bar is
    enforced unconditionally — engine-normalized per ball — by
    ``benchmarks/run_benchmarks.py`` (CI runs its smoke scale).
    """

    M, N = 1_000_000, 1024

    @pytest.mark.skipif(
        not os.environ.get("RUN_ENGINE_BENCH"),
        reason="multi-minute engine run; set RUN_ENGINE_BENCH=1",
    )
    def test_heavy_kernel_5x_faster_than_engine_1m(self):
        start = time.perf_counter()
        eng = run_heavy(self.M, self.N, seed=0, mode="engine")
        engine_s = time.perf_counter() - start

        start = time.perf_counter()
        vec = run_heavy(self.M, self.N, seed=0, mode="perball")
        perball_s = time.perf_counter() - start

        start = time.perf_counter()
        agg = run_heavy(self.M, self.N, seed=0, mode="aggregate")
        aggregate_s = time.perf_counter() - start

        assert eng.complete and vec.complete and agg.complete
        _log.info(
            "engine %.2fs | perball %.3fs (%.0fx) | aggregate "
            "%.4fs (%.0fx)",
            engine_s,
            perball_s,
            engine_s / perball_s,
            aggregate_s,
            engine_s / aggregate_s,
        )
        assert engine_s / perball_s >= 5
        assert engine_s / aggregate_s >= 5


class TestAlgorithmThroughput:
    def test_heavy_perball_1m(self, benchmark):
        res = benchmark.pedantic(
            run_heavy,
            args=(1_000_000, 1024),
            kwargs={"seed": 1},
            rounds=1,
            iterations=1,
        )
        assert res.complete

    def test_heavy_aggregate_1g(self, benchmark):
        """10^9 balls: only feasible on the aggregate path."""
        res = benchmark.pedantic(
            run_heavy,
            args=(10**9, 1024),
            kwargs={"seed": 1, "mode": "aggregate"},
            rounds=1,
            iterations=1,
        )
        assert res.complete
        assert res.gap <= 8

    def test_asymmetric_1m(self, benchmark):
        res = benchmark.pedantic(
            run_asymmetric,
            args=(1_000_000, 1024),
            kwargs={"seed": 1},
            rounds=1,
            iterations=1,
        )
        assert res.complete

    def test_light_64k(self, benchmark):
        out = benchmark.pedantic(
            run_light,
            args=(65536, 65536),
            kwargs={"seed": 1},
            rounds=1,
            iterations=1,
        )
        assert out.max_load <= 2

    def test_single_choice_aggregate_1g(self, benchmark):
        res = benchmark.pedantic(
            run_single_choice,
            args=(10**9, 4096),
            kwargs={"seed": 1, "mode": "aggregate"},
            rounds=1,
            iterations=1,
        )
        assert res.loads.sum() == 10**9
