"""Unified allocator API: registry, dispatch, and batch execution.

The package's algorithms register themselves here (see
:func:`register_allocator`); :func:`allocate` runs any of them through
one validated code path, and :func:`allocate_many` / :func:`sweep`
batch over seeds and instance grids with independent RNG streams.

>>> import repro
>>> sorted(s.name for s in repro.list_allocators())[:3]
['asymmetric', 'batched', 'combined']
"""

from repro.api.batch import allocate_many, spawn_seeds, sweep
from repro.api.bench import (
    BenchRecord,
    benchmark_engine_reference,
    benchmark_registry,
)
from repro.api.dispatch import AGGREGATE_THRESHOLD, allocate, resolve_mode
from repro.api.spec import (
    AllocatorSpec,
    allocator_names,
    get_spec,
    list_allocators,
    register_allocator,
    resolve_name,
)

__all__ = [
    "AGGREGATE_THRESHOLD",
    "AllocatorSpec",
    "BenchRecord",
    "allocate",
    "allocate_many",
    "allocator_names",
    "benchmark_engine_reference",
    "benchmark_registry",
    "get_spec",
    "list_allocators",
    "register_allocator",
    "resolve_mode",
    "resolve_name",
    "spawn_seeds",
    "sweep",
]
