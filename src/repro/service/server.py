"""The long-lived allocator service: micro-batched incremental epochs.

:class:`AllocatorService` turns the PR-5 dynamic engine into a
*server*: instead of a closed-loop epoch script
(:func:`repro.run_dynamic`), arrivals and departures stream in through
``place()``/``release()``, pool in a bounded :class:`EventQueue`, and
flush as **micro-batches** onto the incremental-rebalance path — one
adapter call per batch against the residents' loads
(``RoundState(initial_loads=...)``), exactly one epoch's worth of
work.

Seed contract (the bitwise bridge to :func:`repro.run_dynamic`): the
root seed spawns **two SeedSequence children per flushed micro-batch**
— a control child for the departure draw and a placement child handed
verbatim to the adapter — in submission order.  ``SeedSequence.spawn``
numbers children incrementally, so batch ``b`` receives exactly the
children ``run_dynamic`` gives epoch ``b``.  Hence when a driver feeds
the service one count-matched cohort per batch (the
:func:`~repro.service.driver.simulate_service` arrangement), **every
micro-batch is bitwise-identical to the corresponding ``run_dynamic``
epoch on the same root seed** — loads, messages, rounds, departure
draws, everything (pinned by ``tests/test_service.py``).  An idle tick
flushes nothing, draws nothing, and spawns nothing: a service that
sits idle overnight replays exactly like one that never idled.

Admission (:mod:`repro.service.admission`) runs in front of the
queue: accept, defer (batches widen while the gap SLO or message
budget is threatened), or shed (queue overflow / gap emergency).

Every public mutating call is appended to ``self.trace``, so a run
can be replayed bitwise with :func:`replay_trace` — the audit-log
property the replay-determinism tests pin.
"""

from __future__ import annotations

import time
from dataclasses import asdict, dataclass, field
from typing import Any, Optional

import numpy as np

from repro.analysis.stats import percentiles
from repro.dynamic.runner import (
    _check_options,
    _resolve_entry,
    _resolve_workload,
)
from repro.dynamic.faults import FaultState, place_with_loss
from repro.dynamic.spec import DEPARTURE_KINDS
from repro.dynamic.state import ResidentState
from repro.fastpath.buffers import RoundBuffers
from repro.service.admission import (
    ACCEPT,
    DEFER,
    SHED,
    AdmissionPolicy,
    GapSloController,
)
from repro.service.events import (
    EventQueue,
    Place,
    Release,
    SimulatedClock,
    WallClock,
)
from repro.telemetry import current_telemetry
from repro.utils.seeding import RngFactory, as_seed_sequence

__all__ = [
    "AllocatorService",
    "BatchRecord",
    "ServiceStats",
    "replay_trace",
    "serve_queue",
]


@dataclass(frozen=True)
class BatchRecord:
    """What one flushed micro-batch did — the service's epoch record.

    ``places``/``releases`` are the ball counts the batch carried;
    ``released`` is the departures actually executed (clamped to the
    resident population, overflow recorded service-wide).  The cost
    fields (``moved``, ``rounds``, ``messages``) mirror
    :class:`~repro.dynamic.runner.EpochRecord` — on a count-matched
    trace they are equal, term for term.
    """

    batch: int
    t: float
    events: int
    places: int
    releases: int
    released: int
    placed: int
    unplaced: int
    moved: int
    rounds: int
    messages: int
    population: int
    max_load: int
    gap: float
    queue_after: int
    widen: int
    latency_mean: float
    latency_max: float
    seconds: float
    #: Bins quarantined during this batch (fault injection; 0 benign).
    failed_bins: int = 0
    #: Placement acks lost this batch (fault injection; 0 benign).
    lost_acks: int = 0

    def to_dict(self) -> dict:
        return asdict(self)


@dataclass(frozen=True)
class ServiceStats:
    """A point-in-time summary of the service (``stats()``)."""

    algorithm: str
    n: int
    population: int
    batches: int
    gap: float
    gap_worst: float
    queue_pending: int
    widen: int
    accepted: int
    deferred: int
    shed: int
    dropped_releases: int
    processed_places: int
    processed_releases: int
    messages: int
    rounds: int
    busy_seconds: float
    elapsed: float
    ops_per_sec: float
    latency: dict[str, float]
    latency_mean: float
    latency_max: float
    complete: bool
    #: Currently quarantined bins (fault injection; 0 benign).
    failed_bins: int = 0
    #: Total placement acks lost to fault injection.
    lost_acks: int = 0
    #: Most balls ever pending at once (queue-depth high-water mark).
    queue_depth_hwm: int = 0
    #: Per-flush wall-time percentiles (p50/p95/p99 over
    #: ``BatchRecord.seconds``; zeros before the first flush).
    flush_latency: dict[str, float] = field(
        default_factory=lambda: {"p50": 0.0, "p95": 0.0, "p99": 0.0}
    )

    @property
    def processed_ops(self) -> int:
        return self.processed_places + self.processed_releases

    @property
    def shed_rate(self) -> float:
        submitted = self.accepted + self.shed
        return self.shed / submitted if submitted else 0.0

    def to_dict(self) -> dict:
        out = asdict(self)
        out["processed_ops"] = self.processed_ops
        out["shed_rate"] = self.shed_rate
        return out


class AllocatorService:
    """A continuously running allocator over one ``dynamic_capable``
    algorithm.

    Parameters
    ----------
    algorithm:
        Any ``dynamic_capable`` registry name or alias.
    n:
        Bin count (fixed for the service's lifetime).
    seed:
        Root seed; two children are spawned per flushed micro-batch
        (control + placement), so the whole service replays bitwise —
        and matches ``run_dynamic``'s epoch seeds batch for batch.
    max_batch:
        Count watermark: pending balls at or above
        ``max_batch * widen`` trigger a flush (``widen`` is the
        admission controller's multiplier, 1 while healthy).
    max_wait:
        Age watermark: on ``tick()``, a head event older than this
        flushes the queue even below the count watermark.
    max_queue:
        Queue capacity in balls; beyond it, admission sheds.
    policy:
        :class:`AdmissionPolicy` (default: no gap SLO — queue capacity
        is the only backpressure).
    clock:
        A :class:`SimulatedClock` for deterministic replay, or None
        for wall time.
    departures, hot_frac:
        Departure policy applied when a batch's releases are drawn
        (``uniform``/``fifo``/``hotset``, as in :class:`DynamicSpec`).
    workload:
        Optional workload for arriving cohorts (same rules as
        ``run_dynamic``: skew/capacities yes, weights no).
    backend:
        Kernel backend name pinned for every flush's placement
        (:mod:`repro.fastpath.backend`); ``None`` keeps the ambient
        selection.  Value-identical across backends, so flushes still
        match ``run_dynamic`` epochs bitwise.
    fault_model:
        Optional :class:`~repro.core.faulty.FaultModel`: bins fail and
        recover at batch boundaries (failed bins quarantined from new
        placements — their residents stay, survivors absorb the
        traffic), and placement acks are lost with ghost-slot retries.
        The fault-inflated gap feeds the admission controller like any
        other gap, so the service widens/sheds instead of crashing —
        graceful degradation.  ``None`` (and the all-zero model,
        bitwise) keeps the benign path untouched, including the
        flush-for-flush match with ``run_dynamic``.
    auto_flush:
        When False, only ``tick()``/``flush()``/``drain()`` flush —
        submissions never trigger the count watermark (used to pin
        that deferred processing equals eager processing bitwise).
    options:
        Adapter-specific keywords, validated against the registered
        adapter signature exactly as in ``run_dynamic``.
    """

    def __init__(
        self,
        algorithm: str,
        n: int,
        *,
        seed=None,
        max_batch: int = 4096,
        max_wait: float = 1.0,
        max_queue: Optional[int] = None,
        policy: Optional[AdmissionPolicy] = None,
        clock=None,
        departures: str = "uniform",
        hot_frac: float = 0.1,
        workload=None,
        backend: Optional[str] = None,
        fault_model=None,
        auto_flush: bool = True,
        **options: Any,
    ) -> None:
        if n < 1:
            raise ValueError(f"need n >= 1, got {n}")
        if max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {max_batch}")
        if max_wait < 0:
            raise ValueError(f"max_wait must be >= 0, got {max_wait}")
        if departures not in DEPARTURE_KINDS:
            raise ValueError(
                f"unknown departure policy {departures!r}; expected one "
                f"of {', '.join(DEPARTURE_KINDS)}"
            )
        spec, entry = _resolve_entry(algorithm)
        _check_options(entry, spec.name, options)
        self._entry = entry
        self._workload = _resolve_workload(spec, entry, workload)
        self._options = dict(options)
        self._backend = backend
        if "buffers" in entry.options and "buffers" not in self._options:
            # Long-lived service: one scratch arena shared by every
            # flush's placement, so sustained streams stop churning the
            # allocator.  Value-preserving (the adapter's memory path
            # changes no draw), so flushes still match run_dynamic
            # epochs bitwise.
            self._options["buffers"] = RoundBuffers()
        self.fault = (
            FaultState(n, fault_model) if fault_model is not None else None
        )
        if (
            departures == "greedy_adversary"
            or (fault_model is not None and not fault_model.is_null)
        ) and "drain_settle" in entry.options:
            # Same graceful-degradation escalation as run_dynamic: under
            # adversarially skewed residuals the settle phase drains the
            # cohort instead of handing stragglers to the load-oblivious
            # phase-2 (see dynamic_heavy).  Benign services never set
            # this, keeping the run_dynamic bitwise pin intact.
            self._options.setdefault("drain_settle", True)
        self.algorithm = spec.name
        self.n = n
        self.max_batch = max_batch
        self.max_wait = max_wait
        self.departures = departures
        self.hot_frac = hot_frac
        self.auto_flush = auto_flush
        self.policy = policy if policy is not None else AdmissionPolicy()
        self.controller = GapSloController(self.policy)
        self.clock = clock if clock is not None else WallClock()
        self.queue = EventQueue(
            max_queue if max_queue is not None else 64 * max_batch
        )
        self._root = as_seed_sequence(seed)
        self.residents = ResidentState(n)
        self.records: list[BatchRecord] = []
        #: Audit log of public mutating calls: (op, count, at) tuples.
        self.trace: list[tuple[str, int, float]] = []
        self._start = self.clock.now()
        #: (latency, ball_count) pairs of every processed event.
        self._latencies: list[tuple[float, int]] = []
        self._accepted = 0
        self._deferred = 0
        self._shed = 0
        self._dropped_releases = 0
        self._processed_places = 0
        self._processed_releases = 0
        self._unplaced = 0
        self._busy_seconds = 0.0
        # Per-submission counter handles, keyed by the ambient Telemetry
        # instance: (telemetry, {label_value: Counter}).  The ingest
        # path runs once per submitted event — caching the handle turns
        # two labeled registry lookups per submit into dict hits.
        self._tele_counters: Optional[tuple] = None

    # -- ingest ---------------------------------------------------------

    @property
    def batch_limit(self) -> int:
        """Effective micro-batch size: the count watermark, widened
        while the admission controller sees SLO pressure."""
        return self.max_batch * self.controller.widen

    @property
    def population(self) -> int:
        return self.residents.population

    @property
    def gap(self) -> float:
        loads = self.residents._loads
        pop = int(loads.sum())
        return float(loads.max(initial=0) - pop / self.n) if pop else 0.0

    def _record_op(self, op: str, count: int, at: float) -> None:
        """The one audit-log recording path: every public mutating call
        lands here, appending the historical ``(op, count, at)`` tuple
        (``at = -1.0`` is the no-timestamp sentinel for clock-free ops)
        and mirroring the op into the telemetry event model when a sink
        is installed.  The tuple log — the :func:`replay_trace` input —
        is bitwise-unchanged by the mirror.  Per-op *instant* trace
        events are emitted for batch-level ops only (tick/flush/drain):
        place/release arrive per submission on the ingest hot path, so
        they mirror as an aggregated counter, not one span event each.
        """
        self.trace.append((op, count, at))
        tele = current_telemetry()
        if tele is not None:
            self._hot_counter(tele, "service.ops", "op", op).inc()
            if op not in ("place", "release"):
                tele.event(
                    "service.op", cat="service", op=op, count=count, at=at
                )

    def _hot_counter(self, tele, name: str, label: str, value: str):
        """Cached labeled-counter handle for the per-submission path."""
        cache = self._tele_counters
        if cache is None or cache[0] is not tele:
            cache = (tele, {})
            self._tele_counters = cache
        counter = cache[1].get((name, value))
        if counter is None:
            counter = tele.metrics.counter(name, **{label: value})
            cache[1][(name, value)] = counter
        return counter

    def _submit(self, kind: str, count: int) -> str:
        now = self.clock.now()
        self._record_op(kind, count, now)
        decision = self.controller.decide(kind, count, self.queue)
        tele = current_telemetry()
        if tele is not None:
            self._hot_counter(
                tele, "service.admission", "decision", decision
            ).inc(count)
        if decision == SHED:
            self._shed += count
            return SHED
        event = (
            Place(count, now) if kind == "place" else Release(count, now)
        )
        # No per-submit depth gauge: the queue maintains its high-water
        # mark unconditionally and the flush hook gauges depth — one
        # fewer telemetry call on the ingest hot path.
        self.queue.push(event)
        self._accepted += count
        if decision == DEFER:
            self._deferred += count
        # The count watermark applies to deferred events too — deferral
        # widens the watermark (batch_limit grows with the controller),
        # it does not suspend flushing.
        if self.auto_flush and self.queue.pending >= self.batch_limit:
            self.flush(_record_trace=False)
        return decision

    def place(self, count: int = 1) -> str:
        """Submit ``count`` arriving balls; returns the admission
        decision (``accept``/``defer``/``shed``)."""
        return self._submit("place", count)

    def release(self, count: int = 1) -> str:
        """Submit ``count`` departures (policy-sampled at flush)."""
        return self._submit("release", count)

    def query(self) -> dict:
        """Read-only snapshot: population, gap, queue depth.  Never
        flushes, never draws randomness."""
        return {
            "population": self.population,
            "gap": self.gap,
            "queue_pending": self.queue.pending,
            "widen": self.controller.widen,
            "batches": len(self.records),
        }

    def tick(self, now: Optional[float] = None) -> Optional[BatchRecord]:
        """Advance time and apply the age watermark.

        With a :class:`SimulatedClock`, ``now`` moves the clock (it
        must not run backward).  An idle tick — empty queue — is a
        strict no-op: no flush, no RNG draw, no seed spawn, no record.
        """
        self._record_op("tick", 0, now if now is not None else -1.0)
        if now is not None and isinstance(self.clock, SimulatedClock):
            self.clock.advance_to(now)
        if (
            self.queue.pending
            and self.queue.oldest_age(self.clock.now()) >= self.max_wait
        ):
            return self.flush(_record_trace=False)
        return None

    # -- the micro-batch epoch ------------------------------------------

    def flush(
        self, *, all_pending: bool = False, _record_trace: bool = True
    ) -> Optional[BatchRecord]:
        """Process one micro-batch (up to ``batch_limit`` balls, FIFO;
        everything pending when ``all_pending``).  Returns the batch
        record, or None when the queue was empty.

        A batch is exactly one dynamic epoch: departures drawn under
        the service's policy from the control child, then the arriving
        cohort placed against the residual loads with the placement
        child — both spawned from the root seed at flush time.
        """
        if _record_trace:
            self._record_op("flush", int(all_pending), -1.0)
        events = self.queue.take(None if all_pending else self.batch_limit)
        if not events:
            return None
        now = self.clock.now()
        places = sum(e.count for e in events if e.kind == "place")
        releases = sum(e.count for e in events if e.kind == "release")
        ctrl_seed, place_seed = self._root.spawn(2)
        # Creating the factory draws nothing; streams are pulled only
        # when a draw is actually needed (bitwise-stable benign path).
        ctrl = RngFactory(ctrl_seed)
        tele = current_telemetry()
        start = time.perf_counter()
        lost_acks = 0
        if self.fault is not None:
            # Fail/recover transitions at the batch boundary — the
            # service-side mirror of run_dynamic's epoch-start step,
            # on the same per-batch control child.
            failed_before = self.fault.failed_count
            self.fault.step(ctrl.stream("dynamic", "faults"))
            if tele is not None:
                tele.gauge("service.failed_bins", self.fault.failed_count)
                if self.fault.failed_count != failed_before:
                    tele.event(
                        "fault.step",
                        cat="service",
                        failed=self.fault.failed_count,
                        was=failed_before,
                    )
        released = min(releases, self.residents.population)
        self._dropped_releases += releases - released
        if released:
            self.residents.depart(
                released,
                self.departures,
                ctrl.stream("dynamic", "departures"),
                hot_frac=self.hot_frac,
            )
        placed = unplaced = rounds = messages = moved = 0
        place_start = tele.begin() if tele is not None else 0.0
        if places:
            epoch_wl = self._workload
            if self.fault is not None:
                epoch_wl = self.fault.quarantined(epoch_wl, self.n)
            kwargs = dict(self._options)
            if self._entry.workload_capable and epoch_wl is not None:
                kwargs["workload"] = epoch_wl
            from repro.fastpath.backend import use_backend

            base = self.residents.loads

            def _run(count, initial, seed):
                with use_backend(self._backend):
                    return self._entry.runner(
                        count,
                        self.n,
                        initial_loads=initial,
                        seed=seed,
                        **kwargs,
                    )

            if self.fault is not None and self.fault.model.loss_prob > 0:
                out = place_with_loss(
                    _run,
                    places,
                    base,
                    place_seed,
                    self.fault.model.loss_prob,
                    ctrl.stream("dynamic", "loss"),
                )
                self.fault.lost_acks += out.lost_acks
                lost_acks = out.lost_acks
                self.residents.add_cohort(len(self.records), out.cohort)
                placed = out.placed
                unplaced = out.unplaced
                rounds = out.rounds
                messages = out.messages
                moved = out.placed
            else:
                placement = _run(places, base, place_seed)
                self.residents.add_cohort(
                    len(self.records), placement.loads - base
                )
                placed = placement.placed
                unplaced = placement.unplaced
                rounds = placement.rounds
                messages = placement.total_messages
                moved = placement.placed
            if tele is not None:
                tele.complete(
                    "placement",
                    place_start,
                    cat="service",
                    batch=len(self.records),
                    places=places,
                    lost_acks=lost_acks,
                )
        elapsed = time.perf_counter() - start
        self._busy_seconds += elapsed
        self._processed_places += places
        self._processed_releases += released
        self._unplaced += unplaced
        lats = [(now - e.at, e.count) for e in events]
        self._latencies.extend(lats)
        total = sum(c for _, c in lats)
        lat_mean = sum(l * c for l, c in lats) / total if total else 0.0
        loads = self.residents._loads
        population = int(loads.sum())
        max_load = int(loads.max(initial=0))
        gap = max_load - population / self.n if population else 0.0
        self.controller.observe(gap, messages, places + released)
        record = BatchRecord(
            batch=len(self.records),
            t=now,
            events=len(events),
            places=places,
            releases=releases,
            released=released,
            placed=placed,
            unplaced=unplaced,
            moved=moved,
            rounds=rounds,
            messages=messages,
            population=population,
            max_load=max_load,
            gap=gap,
            queue_after=self.queue.pending,
            widen=self.controller.widen,
            latency_mean=lat_mean,
            latency_max=max((l for l, _ in lats), default=0.0),
            seconds=elapsed,
            failed_bins=(
                self.fault.failed_count if self.fault is not None else 0
            ),
            lost_acks=lost_acks,
        )
        self.records.append(record)
        if tele is not None:
            tele.count("service.flushes")
            tele.count("service.messages", messages)
            tele.observe("service.flush.seconds", elapsed)
            tele.observe("service.flush.gap", gap)
            tele.gauge("service.queue.depth", self.queue.pending)
            if lost_acks:
                tele.count("service.lost_acks", lost_acks)
            tele.complete(
                "flush",
                start,
                cat="service",
                batch=record.batch,
                events=len(events),
                places=places,
                releases=releases,
                gap=gap,
            )
        return record

    def drain(self) -> list[BatchRecord]:
        """Flush everything pending, in ``batch_limit``-sized FIFO
        chunks — the same batch boundaries eager processing would have
        produced, so a deferred burst drains to bitwise-identical
        state (pinned by test)."""
        self._record_op("drain", 0, -1.0)
        out = []
        while self.queue.pending:
            record = self.flush(_record_trace=False)
            if record is None:  # pragma: no cover - take() always pops
                break
            out.append(record)
        return out

    # -- reporting ------------------------------------------------------

    def stats(self) -> ServiceStats:
        """Cumulative service statistics (latency percentiles over
        every processed ball, weighted by event count; per-flush wall
        time percentiles over every batch)."""
        if self.records:
            flush_lat = percentiles(
                np.array([r.seconds for r in self.records])
            )
        else:
            flush_lat = {"p50": 0.0, "p95": 0.0, "p99": 0.0}
        if self._latencies:
            values = np.repeat(
                np.array([l for l, _ in self._latencies]),
                np.array([c for _, c in self._latencies]),
            )
            lat = percentiles(values)
            lat_mean = float(values.mean())
            lat_max = float(values.max())
        else:
            lat = {"p50": 0.0, "p95": 0.0, "p99": 0.0}
            lat_mean = lat_max = 0.0
        processed = self._processed_places + self._processed_releases
        return ServiceStats(
            algorithm=self.algorithm,
            n=self.n,
            population=self.population,
            batches=len(self.records),
            gap=self.gap,
            gap_worst=max((r.gap for r in self.records), default=0.0),
            queue_pending=self.queue.pending,
            widen=self.controller.widen,
            accepted=self._accepted,
            deferred=self._deferred,
            shed=self._shed,
            dropped_releases=self._dropped_releases,
            processed_places=self._processed_places,
            processed_releases=self._processed_releases,
            messages=sum(r.messages for r in self.records),
            rounds=sum(r.rounds for r in self.records),
            busy_seconds=self._busy_seconds,
            elapsed=self.clock.now() - self._start,
            ops_per_sec=(
                processed / self._busy_seconds
                if self._busy_seconds > 0
                else 0.0
            ),
            latency=lat,
            latency_mean=lat_mean,
            latency_max=lat_max,
            complete=self._unplaced == 0,
            failed_bins=(
                self.fault.failed_count if self.fault is not None else 0
            ),
            lost_acks=(
                int(self.fault.lost_acks) if self.fault is not None else 0
            ),
            queue_depth_hwm=self.queue.high_water,
            flush_latency=flush_lat,
        )


def replay_trace(
    trace: list[tuple[str, int, float]],
    algorithm: str,
    n: int,
    **service_kwargs: Any,
) -> AllocatorService:
    """Re-execute a recorded service trace on a fresh service.

    ``trace`` is an ``AllocatorService.trace`` audit log (ops
    ``place``/``release``/``tick``/``flush``/``drain``).  With the
    same constructor arguments and a simulated clock, the replayed
    service reaches bitwise-identical state — loads, batch records,
    latencies (the replay-determinism contract).  The clock is driven
    from the recorded timestamps, so callers should not pass one.
    """
    if "clock" in service_kwargs:
        raise ValueError("replay_trace drives its own simulated clock")
    service = AllocatorService(
        algorithm, n, clock=SimulatedClock(), **service_kwargs
    )
    for op, count, at in trace:
        if op in ("place", "release"):
            service.clock.advance_to(at)
            (service.place if op == "place" else service.release)(count)
        elif op == "tick":
            service.tick(None if at < 0 else at)
        elif op == "flush":
            service.flush(all_pending=bool(count))
        elif op == "drain":
            service.drain()
        else:  # pragma: no cover - corrupt trace
            raise ValueError(f"unknown trace op {op!r}")
    return service


async def serve_queue(service: AllocatorService, queue, *, poll: float = 0.01):
    """Asyncio ingest front-end: feed the service from an
    ``asyncio.Queue`` until a ``None`` sentinel arrives.

    Items are ``("place" | "release", count)`` pairs; the service's
    own clock stamps arrival.  Between items the loop ticks the
    service so the age watermark keeps flushing during quiet spells.
    Returns the final :class:`ServiceStats` after a drain.
    """
    import asyncio

    while True:
        try:
            item = await asyncio.wait_for(queue.get(), timeout=poll)
        except asyncio.TimeoutError:
            service.tick()
            continue
        if item is None:
            service.drain()
            return service.stats()
        kind, count = item
        if kind == "place":
            service.place(count)
        elif kind == "release":
            service.release(count)
        else:
            raise ValueError(f"unknown event kind {kind!r}")
