"""Baseline allocation processes the paper compares against.

* :mod:`repro.baselines.single_choice` — the naive one-shot random
  allocation; max load ``m/n + Theta(sqrt((m/n) log n))`` for
  ``m >= n log n`` (Section 1).  The paper's improvement target.
* :mod:`repro.baselines.greedy_d` — the *sequential* multiple-choice
  process of [ABKU99]; in the heavy regime its gap is
  ``log log n / log d + O(1)`` by [BCSV06].  The benchmark the paper
  parallelizes.
* :mod:`repro.baselines.adler` — the symmetric non-adaptive parallel
  d-choice collision protocol in the spirit of [ACMR98] (designed for
  ``m = n``; included to show why it does not help when ``m >> n``).
* :mod:`repro.baselines.stemann` — Stemann's collision protocol
  [Ste96], the prior parallel algorithm for ``m > n`` with load
  ``O(m/n)`` (footnote 2 of the paper).
* :mod:`repro.baselines.batched` — the batch-parallel multiple-choice
  process of [BCE+12]: balls arrive in batches and use stale load
  information.

All baselines return :class:`repro.result.AllocationResult`; sequential
ones set ``sequential=True`` (their "rounds" are not message rounds).
"""

from repro.baselines.adler import run_parallel_dchoice
from repro.baselines.batched import run_batched_dchoice
from repro.baselines.greedy_d import run_greedy_d
from repro.baselines.single_choice import run_single_choice
from repro.baselines.stemann import run_stemann

__all__ = [
    "run_batched_dchoice",
    "run_greedy_d",
    "run_parallel_dchoice",
    "run_single_choice",
    "run_stemann",
]
