"""The combined algorithm (Section 3, "A Note on Success Probability").

``A_heavy`` succeeds with probability ``1 - n^{-c}`` — vacuous when
``n`` is a small constant.  The paper's fix: when
``n < log log(m/n)``, run the deterministic trivial algorithm instead
(``n`` rounds, perfectly balanced), which is *within the round budget*
in exactly that regime.  The combination succeeds with probability
``1 - o(1)`` over the entire parameter range.

:func:`run_combined` implements the dispatch and records which branch
ran; experiment T8 exercises both sides of the boundary.
"""

from __future__ import annotations

from typing import Optional

from repro.api.spec import register_allocator
from repro.core.heavy import HeavyConfig, run_heavy
from repro.core.trivial import run_trivial
from repro.result import AllocationResult
from repro.utils.logstar import loglog2
from repro.utils.validation import ensure_m_n

__all__ = ["run_combined", "should_use_trivial"]


def should_use_trivial(m: int, n: int) -> bool:
    """The paper's dispatch test: ``n < log log(m/n)``.

    In this regime ``n`` rounds fit inside the ``O(log log(m/n))``
    budget and the deterministic algorithm's perfect balance beats any
    probabilistic guarantee that degrades with small ``n``.
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    return n < loglog2(m / n)


@register_allocator(
    "combined",
    summary="Section 3 dispatcher: trivial for tiny n, else A_heavy",
    paper_ref="Section 3",
    modes=("perball", "aggregate", "engine"),
    kernel_backed=True,
    workload_capable=True,
    config_type=HeavyConfig,
)
def run_combined(
    m: int,
    n: int,
    *,
    seed=None,
    config: Optional[HeavyConfig] = None,
    mode: str = "perball",
    workload=None,
) -> AllocationResult:
    """Run the combined algorithm of Section 3.

    Dispatches to :func:`~repro.core.trivial.run_trivial` when
    ``n < log log(m/n)`` and to :func:`~repro.core.heavy.run_heavy`
    otherwise.  The chosen branch is recorded in
    ``result.extra["branch"]``.  ``workload`` is forwarded to the
    chosen branch (see each branch's docstring for its workload
    semantics; engine mode supports the uniform workload only).
    """
    m, n = ensure_m_n(m, n, require_heavy=True)
    if should_use_trivial(m, n):
        result = run_trivial(m, n, seed=seed, workload=workload)
        result.extra["branch"] = "trivial"
    else:
        result = run_heavy(
            m,
            n,
            seed=seed,
            mode=mode,  # type: ignore[arg-type]
            config=config or HeavyConfig(),
            workload=workload,
        )
        result.extra["branch"] = "heavy"
    result.algorithm = "combined"
    return result
